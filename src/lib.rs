//! Workspace facade for the OnePerc reproduction.
//!
//! This crate re-exports the public APIs of every layer of the stack so
//! examples, integration tests and downstream users can depend on a single
//! crate:
//!
//! * [`graphstate`] — graph-state substrate (local complementation,
//!   measurements, fusions, union-find).
//! * [`circuit`] — circuit IR, benchmark generators and the MBQC
//!   translation to program graph states.
//! * [`hardware`] — photonic hardware model and the semi-static fusion
//!   strategy.
//! * [`percolation`] — the online pass: 2D renormalization, modular
//!   renormalization and time-like connections.
//! * [`ir`] — virtual hardware, FlexLattice IR and the instruction set.
//! * [`mapper`] — the offline mapping pass.
//! * [`oneq`] — the OneQ baseline with repeat-until-success execution.
//! * [`compiler`] — the OnePerc compiler service (sessions, batched
//!   multi-seed execution, the async front-end and content-addressed
//!   compile cache under `compiler::service`) and its metrics.
//! * [`tune`] — the auto-tuner: cost-model-driven configuration search
//!   over the service tier, with a cached Pareto-frontier artifact.
//! * [`corpus`] — structured random-circuit corpus (layered, reversible,
//!   chained-RCA, QFT-adder families) and the cross-path determinism
//!   fuzzer behind `cargo xtask fuzz-determinism`.
//!
//! # Example
//!
//! ```
//! use oneperc_suite::compiler::{CompilerConfig, Session};
//! use oneperc_suite::circuit::benchmarks;
//!
//! let session = Session::new(CompilerConfig::for_qubits(4, 0.9, 7));
//! let compiled = session
//!     .compile(&benchmarks::vqe(4, 7))
//!     .expect("compilation succeeds");
//! // Sweep two seeds through the warm session.
//! for outcome in session.execute_batch(&compiled, &[7, 8]) {
//!     assert!(outcome.report().rsl_consumed > 0);
//! }
//! ```
//!
//! # Auto-tuning a configuration
//!
//! Instead of hand-picking compiler knobs, span a lattice of candidates
//! and let the tuner search it. Evaluation fans out over the warm
//! multi-tenant fleet, dominated candidates are pruned (in-flight ones
//! cancelled mid-run), and the resulting Pareto frontier is cached by
//! the circuit's structural hash — re-tuning is a cache hit:
//!
//! ```
//! use oneperc_suite::compiler::CompilerConfig;
//! use oneperc_suite::circuit::benchmarks;
//! use oneperc_suite::tune::{ConfigLattice, TuneSource, Tuner};
//!
//! let lattice = ConfigLattice::new(CompilerConfig::for_qubits(4, 0.9, 1))
//!     .with_temporal_redundancies(&[2, 3])
//!     .with_pipelining(&[false, true])
//!     .with_renorm_workers(&[0, 2]);
//! let mut tuner = Tuner::builder(lattice).seeds(&[1, 2]).build();
//!
//! let tuned = tuner.tune(&benchmarks::qaoa(4, 1)).unwrap();
//! let best = tuned.artifact.recommended.to_config(42);
//! assert!(!tuned.artifact.frontier.is_empty());
//! assert_eq!(tuner.tune(&benchmarks::qaoa(4, 1)).unwrap().source, TuneSource::MemoryCache);
//! # let _ = best;
//! ```
//!
//! # Sampling the random-circuit corpus
//!
//! Corpus circuits are pure functions of a [`corpus::CorpusSpec`] plus a
//! seed — the same pair yields a byte-identical circuit on any host, which
//! is what makes the determinism fuzzer's findings replayable:
//!
//! ```
//! use oneperc_suite::corpus::CorpusSpec;
//!
//! // Specs round-trip through compact tokens (see crates/corpus/README.md).
//! let spec: CorpusSpec = "layered:w5,d8,e400".parse().unwrap();
//! let circuit = spec.circuit(7);
//! assert_eq!(circuit, spec.circuit(7));
//! assert_eq!(spec.to_token().parse::<CorpusSpec>().unwrap(), spec);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use graphstate;

/// Circuit IR, benchmark generators and MBQC translation.
pub use oneperc_circuit as circuit;
/// Photonic hardware model and fusion strategy.
pub use oneperc_hardware as hardware;
/// FlexLattice IR, virtual hardware and instruction set.
pub use oneperc_ir as ir;
/// Offline mapping pass.
pub use oneperc_mapper as mapper;
/// OneQ baseline compiler.
pub use oneperc_oneq as oneq;
/// Online pass: percolation, renormalization and time-like connections.
pub use oneperc_percolation as percolation;

/// The OnePerc compiler facade (core crate).
pub use oneperc as compiler;

/// Auto-tuner: cost-model-driven config search with a cached Pareto
/// frontier. (Lives beside the `oneperc` crate rather than inside it —
/// the tuner drives the session tier, so `oneperc::tune` would be a
/// dependency cycle.)
pub use oneperc_tune as tune;

/// Structured random-circuit corpus and the cross-path determinism
/// fuzzer. (Also beside `oneperc` rather than inside it: the fuzzer
/// drives whole sessions across path shapes.)
pub use oneperc_corpus as corpus;
