//! Integration tests for the headline claim of the paper: OnePerc stays
//! scalable under realistic fusion failure rates while the OneQ baseline
//! does not.

use oneperc_suite::circuit::benchmarks::Benchmark;
use oneperc_suite::compiler::{CompilerConfig, Session};
use oneperc_suite::oneq::{OneqCompiler, OneqConfig};

const CAP: u64 = 60_000;

fn oneq_rsl(bench: Benchmark, qubits: usize, p: f64) -> (u64, bool) {
    let circuit = bench.circuit(qubits, 13);
    // Same lattice sizing rule as the experiment harness: OneQ maps onto a
    // lattice twice the program side.
    let side = 2 * (qubits as f64).sqrt().ceil() as usize;
    let report = OneqCompiler::new(OneqConfig::new(side, p, 13).with_rsl_cap(CAP))
        .run(&circuit)
        .expect("baseline plans");
    (report.rsl_consumed, report.saturated)
}

fn oneperc_rsl(bench: Benchmark, qubits: usize, p: f64) -> u64 {
    let circuit = bench.circuit(qubits, 13);
    let session = Session::new(CompilerConfig::for_qubits(qubits, p, 13));
    let compiled = session.compile(&circuit).expect("oneperc compiles");
    session.execute_report(&compiled).rsl_consumed
}

/// At the practical fusion success probability (0.75) the baseline hits the
/// RSL cap even on the smallest benchmark, while OnePerc finishes orders of
/// magnitude below it (the core of Table 2).
#[test]
fn baseline_saturates_at_practical_probability_but_oneperc_does_not() {
    let (baseline, saturated) = oneq_rsl(Benchmark::Qaoa, 4, 0.75);
    let ours = oneperc_rsl(Benchmark::Qaoa, 4, 0.75);
    assert!(saturated, "baseline unexpectedly finished within {baseline} RSLs");
    assert!(
        ours < CAP / 10,
        "OnePerc should stay far below the baseline cap, used {ours} RSLs"
    );
}

/// At the hyper-advanced probability (0.90) the baseline can finish small
/// programs, which is exactly the regime the paper says OneQ is limited to.
#[test]
fn baseline_survives_only_small_programs_at_high_probability() {
    let (small_rsl, small_saturated) = oneq_rsl(Benchmark::Qaoa, 4, 0.9);
    assert!(!small_saturated, "4-qubit QAOA at p=0.9 should finish, took {small_rsl}");
    let (_, large_saturated) = oneq_rsl(Benchmark::Qft, 9, 0.9);
    assert!(large_saturated, "9-qubit QFT at p=0.9 should exhaust the baseline");
}

/// OnePerc's advantage grows as the program scales up (scalability claim).
#[test]
fn oneperc_advantage_grows_with_program_size() {
    let p = 0.75;
    let small_ours = oneperc_rsl(Benchmark::Vqe, 4, p);
    let large_ours = oneperc_rsl(Benchmark::Vqe, 9, p);
    // OnePerc cost grows roughly linearly with program size; the baseline is
    // already saturated at 4 qubits, so the relative advantage widens.
    let (small_base, _) = oneq_rsl(Benchmark::Vqe, 4, p);
    let (large_base, _) = oneq_rsl(Benchmark::Vqe, 9, p);
    let small_advantage = small_base as f64 / small_ours as f64;
    let large_advantage = large_base as f64 / large_ours as f64;
    assert!(large_ours >= small_ours);
    assert!(
        large_advantage <= small_advantage * 10.0,
        "sanity bound on advantage ratios ({small_advantage} vs {large_advantage})"
    );
    assert!(small_advantage > 1.0, "OnePerc should beat the baseline at 4 qubits");
}
