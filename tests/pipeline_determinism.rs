//! Determinism contract of the pipelined RSL stream: with a fixed seed,
//! the pipelined engines must produce byte-identical outputs to the serial
//! path — the same `RenormalizedLattice`s (down to every path site), the
//! same `LogicalLayerReport`s and the same cumulative statistics — for any
//! worker count and at every tested `(L, g, p)` point.
//!
//! These tests are the lock on the PR-2 tentpole: any scheduling leak in
//! the worker pool or RNG reordering in the double-buffered generator
//! shows up here as a diff on long streams.

use std::sync::Arc;

use oneperc_suite::circuit::benchmarks;
use oneperc_suite::compiler::{CompilerConfig, Session};
use oneperc_suite::hardware::{FusionEngine, HardwareConfig};
use oneperc_suite::percolation::{
    LayerRequirement, ModularConfig, ModularRenormalizer, ReshapeConfig, ReshapeEngine,
    TemporalRequirement,
};

/// Drives a serial and a pipelined reshaping engine through the same
/// requirement stream until both consumed at least `min_layers` merged
/// layers, comparing every report and every logical lattice.
fn assert_pipelined_stream_matches(rsl: usize, node_size: usize, p: f64, seed: u64, min_layers: u64) {
    let hw = HardwareConfig::new(rsl, 7, p);
    let config = ReshapeConfig::new(hw, node_size, 3, seed);
    let mut serial = ReshapeEngine::new(config);
    let mut piped = ReshapeEngine::new(config.with_pipelining(true));

    // A requirement mix with time-like edges so the dedicated time-like
    // sampler is exercised, not just layer generation.
    let requirements = [
        LayerRequirement::none(),
        LayerRequirement {
            temporal_edges: vec![
                TemporalRequirement { coord: (0, 0), back_distance: 1 },
                TemporalRequirement { coord: (2, 1), back_distance: 1 },
            ],
            stores: 1,
            retrieves: 0,
        },
        LayerRequirement { temporal_edges: vec![], stores: 0, retrieves: 1 },
    ];

    let mut logical = 0usize;
    while serial.stats().merged_layers < min_layers {
        let req = &requirements[logical % requirements.len()];
        let a = serial.advance_logical_layer(req);
        let b = piped.advance_logical_layer(req);
        assert_eq!(
            a, b,
            "L={rsl} p={p} seed={seed}: report diverged at logical layer {logical}"
        );
        assert_eq!(
            serial.last_logical_lattice(),
            piped.last_logical_lattice(),
            "L={rsl} p={p} seed={seed}: lattice diverged at logical layer {logical}"
        );
        assert!(a.formed, "L={rsl} p={p} seed={seed}: stream stalled");
        logical += 1;
    }
    assert_eq!(
        serial.stats(),
        piped.stats(),
        "L={rsl} p={p} seed={seed}: cumulative stats diverged"
    );
    assert!(serial.stats().merged_layers >= min_layers);
}

#[test]
fn pipelined_reshaping_is_byte_identical_small_layer() {
    assert_pipelined_stream_matches(24, 6, 0.72, 2024, 50);
}

#[test]
fn pipelined_reshaping_is_byte_identical_medium_layer() {
    assert_pipelined_stream_matches(36, 9, 0.78, 7, 50);
}

#[test]
fn pipelined_reshaping_is_byte_identical_table1_shape() {
    assert_pipelined_stream_matches(40, 10, 0.75, 411, 50);
}

/// Streams `layers` seeded RSLs through a pooled modular renormalizer at
/// the given worker count and through a sequential one, comparing the full
/// outcome (modules, joins, counts) per layer.
fn assert_pooled_modular_stream_matches(
    rsl: usize,
    g: usize,
    p: f64,
    workers: usize,
    seed: u64,
    layers: usize,
) {
    let config = ModularConfig::new(g, 7, 6);
    let mut pooled = ModularRenormalizer::new(config.with_workers(workers));
    let mut sequential = ModularRenormalizer::new(config.sequential());
    let mut engine = FusionEngine::new(HardwareConfig::new(rsl, 7, p), seed);
    for layer_idx in 0..layers {
        let layer = Arc::new(engine.generate_layer());
        let a = pooled.run_shared(&layer);
        let b = sequential.run(&layer);
        assert_eq!(
            a, b,
            "L={rsl} g={g} p={p} workers={workers}: layer {layer_idx} diverged"
        );
    }
}

#[test]
fn pooled_modular_matches_serial_one_worker() {
    // A single worker serializes all modules through one scratch pool.
    assert_pooled_modular_stream_matches(48, 2, 0.75, 1, 31, 50);
}

#[test]
fn pooled_modular_matches_serial_two_workers() {
    assert_pooled_modular_stream_matches(48, 2, 0.75, 2, 32, 50);
}

#[test]
fn pooled_modular_matches_serial_oversubscribed() {
    // More workers than modules: idle workers must not perturb anything.
    assert_pooled_modular_stream_matches(48, 2, 0.75, 9, 33, 50);
}

#[test]
fn pooled_modular_matches_serial_three_by_three() {
    // 9 modules at a larger layer, moderately sized pool.
    assert_pooled_modular_stream_matches(60, 3, 0.72, 4, 34, 50);
}

/// End to end through the compiler facade: the execution report of a full
/// benchmark run is identical in both modes except for the mode flag and
/// wall-clock times.
#[test]
fn compiler_reports_identical_across_modes() {
    for (qubits, p, seed) in [(4usize, 0.9, 5u64), (4, 0.75, 17)] {
        let circuit = benchmarks::qaoa(qubits, 6);
        let base = CompilerConfig::for_qubits(qubits, p, seed);
        let serial_session = Session::new(base);
        let serial =
            serial_session.execute_report(&serial_session.compile(&circuit).unwrap());
        let piped_session = Session::new(base.with_pipelining(true));
        let piped = piped_session.execute_report(&piped_session.compile(&circuit).unwrap());
        assert!(serial.complete && piped.complete, "p={p} seed={seed}");
        assert_eq!(serial.rsl_consumed, piped.rsl_consumed, "p={p} seed={seed}");
        assert_eq!(serial.merged_layers, piped.merged_layers, "p={p} seed={seed}");
        assert_eq!(serial.fusions, piped.fusions, "p={p} seed={seed}");
        assert_eq!(serial.logical_layers, piped.logical_layers, "p={p} seed={seed}");
        assert_eq!(serial.routing_layers, piped.routing_layers, "p={p} seed={seed}");
    }
}
