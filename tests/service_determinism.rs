//! Determinism and cache contract of the service layer (the PR-4
//! tentpole): an [`AsyncSession`] sweep compiles exactly once through the
//! content-addressed program cache and produces reports byte-identical
//! (wall-clock and cache telemetry aside, via
//! `ExecutionReport::deterministic`) to the synchronous
//! `Session::execute_batch` path — with every `JobFuture` resolving under
//! a minimal hand-rolled block-on executor.
//!
//! These tests are the lock on the PR-4 acceptance criteria, in the
//! spirit of `tests/session_determinism.rs` for PR 3.

use std::future::Future;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use oneperc_suite::circuit::benchmarks;
use oneperc_suite::compiler::service::{block_on, AsyncSession};
use oneperc_suite::compiler::{
    CompilerConfig, ExecuteOutcome, ExecutionReport, ExecutionRequest, Session,
};

const SEEDS: [u64; 16] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987, 1597];

fn deterministic(outcomes: &[ExecuteOutcome]) -> Vec<ExecutionReport> {
    outcomes.iter().map(|o| o.report().deterministic()).collect()
}

/// The acceptance sweep: ≥16 seeds through the async front-end compile
/// exactly once (cache counters prove it) and match the synchronous batch
/// byte for byte.
#[test]
fn async_sweep_compiles_once_and_matches_sync_batch() {
    let circuit = benchmarks::qaoa(4, 2);
    let config = CompilerConfig::for_sensitivity(36, 3, 0.8, 0);

    // Synchronous reference: explicit compile + batch.
    let session = Session::new(config);
    let compiled = session.compile(&circuit).unwrap();
    let sync = deterministic(&session.execute_batch(&compiled, &SEEDS));

    // Async path: the sweep resolves the circuit through the cache and the
    // admission window (narrower than the sweep, so submission exercises
    // backpressure parking too).
    let service = AsyncSession::builder(config).lanes(2).queue_depth(4).build();
    let futures = service.sweep(&circuit, &SEEDS).unwrap();
    assert_eq!(futures.len(), SEEDS.len());
    let outcomes: Vec<ExecuteOutcome> = futures.into_iter().map(block_on).collect();
    assert_eq!(deterministic(&outcomes), sync, "async and sync sweeps diverged");
    assert!(outcomes.iter().all(ExecuteOutcome::is_complete));

    // Compiled exactly once: one miss, zero further compiles.
    let stats = service.cache_stats();
    assert_eq!(stats.misses, 1, "the sweep must compile exactly once");
    assert_eq!(stats.hits, 0, "one sweep is one lookup");
    assert_eq!(stats.entries, 1);

    // A second full sweep is a pure cache hit.
    let again: Vec<ExecuteOutcome> =
        service.sweep(&circuit, &SEEDS).unwrap().into_iter().map(block_on).collect();
    assert_eq!(deterministic(&again), sync);
    let stats = service.cache_stats();
    assert_eq!(stats.misses, 1, "second sweep must not recompile");
    assert_eq!(stats.hits, 1);
    // In-band telemetry: the second sweep's reports carry the hit.
    assert_eq!(again[0].report().cache.hits, 1);
    assert_eq!(again[0].report().cache.misses, 1);
}

/// Per-submission circuit entry points hit the same cache line: 16
/// individually submitted seeds still compile once.
#[test]
fn per_seed_submissions_share_one_compile() {
    let circuit = benchmarks::qft(4);
    let config = CompilerConfig::for_sensitivity(36, 3, 0.85, 0);
    let service = AsyncSession::builder(config).lanes(2).build();

    let futures: Vec<_> = SEEDS
        .iter()
        .map(|&seed| service.submit_circuit(&circuit, seed).unwrap())
        .collect();
    let outcomes: Vec<ExecuteOutcome> = futures.into_iter().map(block_on).collect();
    assert!(outcomes.iter().all(ExecuteOutcome::is_complete));

    let stats = service.cache_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, SEEDS.len() as u64 - 1);

    let session = Session::new(config);
    let compiled = session.compile(&circuit).unwrap();
    assert_eq!(
        deterministic(&outcomes),
        deterministic(&session.execute_batch(&compiled, &SEEDS))
    );
}

/// Cache semantics: hit-vs-miss byte-identity across seeds — executions
/// from a cached (hit) program equal executions from a freshly compiled
/// (miss) one, and the synchronous `Session::sweep` shares the contract.
#[test]
fn hit_and_miss_programs_execute_identically() {
    let circuit = benchmarks::rca(4);
    let config = CompilerConfig::for_sensitivity(36, 3, 0.78, 0);

    // Fresh session per run → every sweep is a miss.
    let miss_session = Session::new(config);
    let from_miss = deterministic(&miss_session.sweep(&circuit, &SEEDS[..8]).unwrap());

    // One warm session → first sweep misses, second hits.
    let warm = Session::new(config);
    let first = deterministic(&warm.sweep(&circuit, &SEEDS[..8]).unwrap());
    let second = deterministic(&warm.sweep(&circuit, &SEEDS[..8]).unwrap());
    assert_eq!(warm.cache_stats().hits, 1);
    assert_eq!(warm.cache_stats().misses, 1);

    assert_eq!(first, from_miss, "miss-compiled programs agree across sessions");
    assert_eq!(second, from_miss, "hit-served program is byte-identical to a fresh compile");

    // The shared artifact really is shared: two cached compiles alias.
    let a = warm.compile_cached(&circuit).unwrap();
    let b = warm.compile_cached(&circuit).unwrap();
    assert!(Arc::ptr_eq(&a, &b));
}

/// Eviction under a tiny capacity: a capacity-1 cache thrashes between two
/// circuits (evictions counted), yet every served program stays correct.
#[test]
fn eviction_under_tiny_capacity_keeps_results_correct() {
    let config = CompilerConfig::for_sensitivity(36, 3, 0.85, 0);
    let tiny = Session::builder(config).program_cache(1).build();
    let qaoa = benchmarks::qaoa(4, 2);
    let qft = benchmarks::qft(4);

    let reference = Session::new(config);
    let qaoa_ref = deterministic(&reference.execute_batch(
        &reference.compile(&qaoa).unwrap(),
        &SEEDS[..4],
    ));
    let qft_ref = deterministic(&reference.execute_batch(
        &reference.compile(&qft).unwrap(),
        &SEEDS[..4],
    ));

    for round in 0..2 {
        let a = deterministic(&tiny.sweep(&qaoa, &SEEDS[..4]).unwrap());
        let b = deterministic(&tiny.sweep(&qft, &SEEDS[..4]).unwrap());
        assert_eq!(a, qaoa_ref, "round {round}");
        assert_eq!(b, qft_ref, "round {round}");
    }
    let stats = tiny.cache_stats();
    assert_eq!(stats.capacity, 1);
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.hits, 0, "alternating circuits on capacity 1 never hit");
    assert_eq!(stats.misses, 4);
    assert_eq!(stats.evictions, 3, "every miss after the first displaced the resident");
}

/// Config-fingerprint sensitivity: changing any knob addresses a different
/// cache line (a new compile), while changing only the seed does not.
#[test]
fn config_knobs_split_cache_lines_but_seeds_do_not() {
    let circuit = benchmarks::qaoa(4, 2);
    let base = CompilerConfig::for_sensitivity(36, 3, 0.8, 0);
    let variants = [
        base.with_refresh_period(Some(5)),
        base.with_resource_state_size(4),
        base.with_pipelining(true),
        base.with_renorm_workers(1),
        CompilerConfig::for_sensitivity(48, 3, 0.8, 0),
        CompilerConfig::for_sensitivity(36, 3, 0.75, 0),
    ];
    // Pairwise-distinct fingerprints (seed aside) → distinct keys.
    let mut fingerprints: Vec<u64> =
        variants.iter().chain([&base]).map(CompilerConfig::fingerprint).collect();
    fingerprints.sort_unstable();
    fingerprints.dedup();
    assert_eq!(fingerprints.len(), variants.len() + 1, "a knob change failed to split the key");
    assert_eq!(base.fingerprint(), base.with_seed(12345).fingerprint());

    // And behaviorally: a session re-keyed only by seed keeps hitting…
    let session = Session::new(base);
    session.sweep(&circuit, &[1]).unwrap();
    session.sweep(&circuit, &[2, 3]).unwrap();
    assert_eq!(session.cache_stats().misses, 1, "seed changes must reuse the artifact");
    // …while each knob variant compiles fresh in its own session.
    for variant in variants {
        let other = Session::new(variant);
        other.sweep(&circuit, &[1]).unwrap();
        assert_eq!(other.cache_stats().misses, 1);
    }
}

/// Backpressure contract: a full admission window answers `Busy` from
/// `try_submit` instead of queueing, and drains back to acceptance.
#[test]
fn try_submit_sheds_load_when_the_window_fills() {
    let config = CompilerConfig::for_sensitivity(36, 3, 0.8, 0);
    let service = AsyncSession::builder(config).queue_depth(2).build();
    let compiled = service.compile_cached(&benchmarks::qaoa(4, 2)).unwrap();

    // Saturate the window, counting refusals: with depth 2 and jobs that
    // take milliseconds, refusals must appear well before 64 attempts.
    let mut admitted = Vec::new();
    let mut refused = 0usize;
    for seed in 0..64u64 {
        match service.try_submit(ExecutionRequest::new(Arc::clone(&compiled), seed)) {
            Ok(future) => admitted.push(future),
            Err(err) => {
                refused += 1;
                assert!(err.to_string().contains("admission window full"));
            }
        }
        if refused > 0 && admitted.len() >= 2 {
            break;
        }
    }
    assert!(refused > 0, "a depth-2 window must refuse under a 64-submission burst");
    assert!(service.in_flight() <= 2, "admissions never exceed the window");

    // Drain: every admitted job resolves, and the window re-opens.
    for future in admitted {
        assert!(block_on(future).is_complete());
    }
    let future = service
        .try_submit(ExecutionRequest::new(compiled, 99))
        .expect("drained window admits again");
    assert!(block_on(future).is_complete());
}

/// The `JobFuture` contract under a *locally defined* block-on executor —
/// the test supplies its own waker wiring (poll-count instrumented), so
/// resolution is proven against the `Future` trait alone, not against the
/// crate's own executor.
#[test]
fn job_future_resolves_under_a_hand_rolled_executor() {
    struct CountingWaker {
        thread: std::thread::Thread,
        wakes: std::sync::atomic::AtomicUsize,
    }
    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.wakes.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.thread.unpark();
        }
    }

    fn drive<F: Future>(future: F) -> (F::Output, usize) {
        let mut future = std::pin::pin!(future);
        let waker_impl = Arc::new(CountingWaker {
            thread: std::thread::current(),
            wakes: std::sync::atomic::AtomicUsize::new(0),
        });
        let waker = Waker::from(Arc::clone(&waker_impl));
        let mut cx = Context::from_waker(&waker);
        let mut polls = 0usize;
        loop {
            polls += 1;
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(value) => return (value, polls),
                Poll::Pending => std::thread::park(),
            }
        }
    }

    let config = CompilerConfig::for_sensitivity(36, 3, 0.85, 0);
    let service = AsyncSession::new(config);
    let circuit = benchmarks::qaoa(4, 2);

    let future = service.submit_circuit(&circuit, 7).unwrap();
    let (outcome, polls) = drive(future);
    assert!(outcome.is_complete());
    assert!(polls >= 1);

    // Reference equality with the synchronous path.
    let sync = service.session().execute_shared(service.compile_cached(&circuit).unwrap(), 7);
    assert_eq!(outcome.report().deterministic(), sync.report().deterministic());
}

/// Redemption order is free: polling futures in reverse completes fine and
/// seed-order association is preserved through `JobFuture::seed`.
#[test]
fn futures_redeem_out_of_order_without_mixing_seeds() {
    let config = CompilerConfig::for_sensitivity(36, 3, 0.82, 0);
    let service = AsyncSession::builder(config).lanes(3).build();
    let circuit = benchmarks::vqe(4, 1);

    let futures = service.sweep(&circuit, &SEEDS[..6]).unwrap();
    let session = Session::new(config);
    let compiled = session.compile(&circuit).unwrap();

    for future in futures.into_iter().rev() {
        let seed = future.seed();
        let outcome = block_on(future);
        let solo = session.execute(&compiled, seed);
        assert_eq!(
            outcome.report().deterministic(),
            solo.report().deterministic(),
            "seed {seed} mixed up across out-of-order redemption"
        );
    }
}
