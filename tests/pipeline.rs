//! End-to-end integration tests: circuit → program graph → IR →
//! instructions → online execution, across crates.

use oneperc_suite::circuit::{benchmarks, ProgramGraph};
use oneperc_suite::compiler::{CompilerConfig, Session};
use oneperc_suite::ir::InstructionInterpreter;

/// Every benchmark family compiles and executes end to end on the Table 1
/// sizing for 4 qubits, and the reported metrics are internally consistent.
#[test]
fn all_benchmarks_compile_and_execute() {
    for bench in benchmarks::Benchmark::all() {
        let circuit = bench.circuit(4, 3);
        let session = Session::new(CompilerConfig::for_qubits(4, 0.9, 3));
        let compiled = session.compile(&circuit).expect("offline pass succeeds");
        assert!(compiled.mapping.complete, "{bench}: mapping incomplete");
        assert!(compiled.mapping.ir.validate().is_ok(), "{bench}: invalid IR");

        let report = session.execute_report(&compiled);
        assert!(report.complete, "{bench}: online pass did not finish");
        assert_eq!(report.logical_layers as usize, compiled.layer_count());
        assert_eq!(report.merged_layers, report.logical_layers + report.routing_layers);
        assert!(report.rsl_consumed >= report.merged_layers);
        assert!(report.fusions > 0);
    }
}

/// The instruction stream produced by the offline pass always satisfies the
/// virtual-hardware rules enforced by the interpreter.
#[test]
fn instruction_streams_are_well_formed() {
    for bench in benchmarks::Benchmark::all() {
        let circuit = bench.circuit(4, 9);
        let session = Session::new(CompilerConfig::for_qubits(4, 0.75, 9));
        let compiled = session.compile(&circuit).expect("offline pass succeeds");
        let mut interpreter = InstructionInterpreter::new();
        interpreter
            .run(&compiled.mapping.instructions)
            .unwrap_or_else(|e| panic!("{bench}: invalid instruction stream: {e}"));
        assert_eq!(interpreter.executed(), compiled.mapping.instructions.len());
    }
}

/// The program graph of every benchmark is a connected description of the
/// computation: every measured node has at least one edge, and output nodes
/// exist for every wire.
#[test]
fn program_graphs_are_well_formed() {
    for bench in benchmarks::Benchmark::all() {
        let circuit = bench.circuit(5, 1);
        let program = ProgramGraph::from_circuit(&circuit);
        assert_eq!(program.outputs().len(), 5);
        assert_eq!(program.inputs().len(), 5);
        for v in program.creation_order() {
            // Every measured node participates in the computation; idle
            // wires (for example the unused qubit of an odd-width adder)
            // only contribute an unmeasured output node.
            if program.node(*v).basis.is_some() {
                assert!(
                    program.graph().degree(*v).unwrap_or(0) > 0,
                    "{bench}: measured node {v} is isolated"
                );
            }
        }
        let dag = program.dependency_dag();
        assert!(dag.topological_order().is_some(), "{bench}: cyclic dependency DAG");
    }
}

/// Lower fusion success probability never reduces the number of consumed
/// RSLs for the same seed and program (Fig. 12(c) monotonicity at the scale
/// of a single program).
#[test]
fn rsl_grows_as_fusion_probability_drops() {
    let circuit = benchmarks::qaoa(4, 5);
    let mut previous = 0u64;
    for p in [0.9, 0.78, 0.7] {
        let session = Session::new(CompilerConfig::for_sensitivity(36, 2, p, 5));
        let compiled = session.compile(&circuit).expect("compilation succeeds");
        let report = session.execute_report(&compiled);
        assert!(
            report.rsl_consumed >= previous,
            "p = {p} consumed fewer RSLs ({}) than a higher probability ({previous})",
            report.rsl_consumed
        );
        previous = report.rsl_consumed;
    }
}

/// The refresh mechanism never increases the modeled memory footprint and
/// never loses program nodes.
#[test]
fn refresh_preserves_program_and_bounds_memory() {
    let circuit = benchmarks::qft(4);
    let base = CompilerConfig::for_sensitivity(36, 3, 0.85, 4);
    let session = Session::new(base);
    let plain = session.execute_report(&session.compile(&circuit).unwrap());
    let refreshed_session = Session::new(base.with_refresh_period(Some(6)));
    let refreshed =
        refreshed_session.execute_report(&refreshed_session.compile(&circuit).unwrap());
    assert_eq!(plain.program_nodes, refreshed.program_nodes);
    assert!(refreshed.peak_memory_bytes <= plain.peak_memory_bytes);
}
