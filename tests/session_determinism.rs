//! Determinism contract of the session API: per `(config, circuit, seed)`,
//! a warm [`Session`] produces reports byte-identical (wall-clock fields
//! aside, via `ExecutionReport::deterministic`) to fresh one-shot
//! `Compiler` runs — regardless of batch size, submission order, lane
//! count, renormalization worker count, or how many executions the session
//! has already served.
//!
//! These tests are the lock on the PR-3 tentpole, in the spirit of
//! `tests/pipeline_determinism.rs` for PR 2: any state leaking across
//! `ReshapeEngine::reset`, any cross-lane RNG contamination, and any
//! scheduling leak in the shared worker pool shows up here as a diff.

use std::sync::Arc;

use oneperc_suite::circuit::benchmarks;
use oneperc_suite::compiler::{
    CompilerConfig, ExecuteOutcome, ExecutionReport, ExecutionRequest, JobHandle, Session,
};

const SEEDS: [u64; 16] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987, 1597];

/// The cold reference: a fresh one-shot compiler per seed.
fn cold_reports(config: CompilerConfig, circuit: &oneperc_suite::circuit::Circuit) -> Vec<ExecutionReport> {
    SEEDS
        .iter()
        .map(|&seed| {
            #[allow(deprecated)]
            oneperc_suite::compiler::Compiler::new(config.with_seed(seed))
                .compile_and_execute(circuit)
                .expect("offline pass succeeds")
                .deterministic()
        })
        .collect()
}

fn batch_reports(outcomes: &[ExecuteOutcome]) -> Vec<ExecutionReport> {
    outcomes.iter().map(|o| o.report().deterministic()).collect()
}

/// The acceptance sweep: a 16-seed batch through one warm session equals 16
/// fresh `Compiler::compile_and_execute` calls, byte for byte.
#[test]
fn warm_16_seed_sweep_matches_cold_per_call_runs() {
    let circuit = benchmarks::qaoa(4, 2);
    let config = CompilerConfig::for_sensitivity(36, 3, 0.8, 0);
    let cold = cold_reports(config, &circuit);

    let session = Session::new(config);
    let compiled = session.compile(&circuit).unwrap();
    let warm = batch_reports(&session.execute_batch(&compiled, &SEEDS));
    assert_eq!(warm, cold);
    assert!(warm.iter().all(|r| r.complete));
}

/// Batch size and chunking never change per-seed results: one 16-batch,
/// four 4-batches and sixteen single executions all agree.
#[test]
fn batch_size_is_unobservable() {
    let circuit = benchmarks::qft(4);
    let config = CompilerConfig::for_sensitivity(36, 3, 0.85, 0);
    let session = Session::new(config);
    let compiled = session.compile(&circuit).unwrap();

    let whole = batch_reports(&session.execute_batch(&compiled, &SEEDS));
    let chunked: Vec<ExecutionReport> = SEEDS
        .chunks(4)
        .flat_map(|chunk| batch_reports(&session.execute_batch(&compiled, chunk)))
        .collect();
    let singles: Vec<ExecutionReport> = SEEDS
        .iter()
        .map(|&seed| session.execute(&compiled, seed).report().deterministic())
        .collect();
    assert_eq!(whole, chunked);
    assert_eq!(whole, singles);
    assert_eq!(session.jobs_submitted() as usize, 3 * SEEDS.len());
}

/// Lane count (1, 2, oversubscribed beyond the batch) never changes
/// per-seed results, nor does reversing the submission order.
#[test]
fn lane_count_and_submission_order_are_unobservable() {
    let circuit = benchmarks::rca(4);
    let config = CompilerConfig::for_sensitivity(36, 3, 0.78, 0);
    let mut baseline: Option<Vec<ExecutionReport>> = None;
    for lanes in [1usize, 2, 24] {
        let session = Session::builder(config).lanes(lanes).build();
        assert_eq!(session.lane_count(), lanes);
        let compiled = session.compile(&circuit).unwrap();
        let forward = batch_reports(&session.execute_batch(&compiled, &SEEDS));
        // Reversed submission: collect, then restore seed order.
        let reversed_seeds: Vec<u64> = SEEDS.iter().rev().copied().collect();
        let mut reversed = batch_reports(&session.execute_batch(&compiled, &reversed_seeds));
        reversed.reverse();
        assert_eq!(forward, reversed, "lanes = {lanes}: submission order leaked");
        match &baseline {
            None => baseline = Some(forward),
            Some(expected) => assert_eq!(&forward, expected, "lanes = {lanes}"),
        }
    }
}

/// `renorm_workers` (in-thread, 1, 2, oversubscribed) never changes
/// results — the knob the reshaping stage now actually consults — in both
/// serial and pipelined generation modes.
#[test]
fn renorm_worker_count_is_unobservable() {
    let circuit = benchmarks::qaoa(4, 5);
    for pipelined in [false, true] {
        let base = CompilerConfig::for_sensitivity(36, 3, 0.75, 0).with_pipelining(pipelined);
        let mut baseline: Option<Vec<ExecutionReport>> = None;
        for workers in [0usize, 1, 2, 6] {
            let session = Session::builder(base.with_renorm_workers(workers))
                .lanes(2)
                .build();
            assert_eq!(
                session.renorm_pool_workers(),
                (workers > 0).then_some(workers)
            );
            let compiled = session.compile(&circuit).unwrap();
            let reports = batch_reports(&session.execute_batch(&compiled, &SEEDS[..8]));
            match &baseline {
                None => baseline = Some(reports),
                Some(expected) => {
                    assert_eq!(&reports, expected, "pipelined={pipelined} workers={workers}")
                }
            }
        }
    }
}

/// A session that has served many executions behaves like a new one: no
/// state leaks across resets, even interleaving different programs through
/// the raw submit interface.
#[test]
fn long_lived_session_stays_clean() {
    let config = CompilerConfig::for_sensitivity(36, 3, 0.82, 0);
    let session = Session::builder(config).lanes(2).build();
    let qaoa = Arc::new(session.compile(&benchmarks::qaoa(4, 1)).unwrap());
    let vqe = Arc::new(session.compile(&benchmarks::vqe(4, 1)).unwrap());

    let first = session.execute(&qaoa, 31).report().deterministic();
    // Churn: interleave programs and seeds through both lanes.
    let handles: Vec<JobHandle> = (0..24u64)
        .map(|i| {
            let program = if i % 2 == 0 { &qaoa } else { &vqe };
            session.submit(ExecutionRequest::new(Arc::clone(program), i))
        })
        .collect();
    for handle in handles {
        let _ = handle.wait();
    }
    // The same request after the churn reproduces the first answer.
    let again = session.execute(&qaoa, 31).report().deterministic();
    assert_eq!(first, again);
}
