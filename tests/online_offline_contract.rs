//! Integration tests for the contract between the offline and online
//! passes: whatever the FlexLattice IR demands, the reshaping engine can
//! deliver on percolating hardware.

use oneperc_suite::circuit::{benchmarks, ProgramGraph};
use oneperc_suite::hardware::HardwareConfig;
use oneperc_suite::ir::VirtualHardware;
use oneperc_suite::mapper::{Mapper, MapperConfig};
use oneperc_suite::percolation::{
    LayerRequirement, ReshapeConfig, ReshapeEngine, TemporalRequirement,
};

/// Drives the reshaping engine directly from the layer summaries of a real
/// IR program (the same contract the compiler facade uses) and checks that
/// every layer is eventually formed.
#[test]
fn reshaping_satisfies_every_ir_layer() {
    let program = ProgramGraph::from_circuit(&benchmarks::qaoa(4, 21));
    let mapping = Mapper::new(MapperConfig::new(VirtualHardware::square(3)))
        .map(&program)
        .expect("mapping succeeds");

    let hardware = HardwareConfig::new(36, 7, 0.8);
    let mut engine = ReshapeEngine::new(ReshapeConfig::new(hardware, 12, 3, 21));
    for summary in mapping.ir.layer_summaries() {
        let requirement = LayerRequirement {
            temporal_edges: summary
                .incoming_temporal
                .iter()
                .map(|&(coord, gap)| TemporalRequirement { coord, back_distance: gap })
                .collect(),
            stores: summary.stores,
            retrieves: summary.retrieves,
        };
        let report = engine.advance_logical_layer(&requirement);
        assert!(report.formed, "a logical layer could not be formed");
    }
    let stats = engine.stats();
    assert_eq!(stats.logical_layers as usize, mapping.ir.layer_count());
    assert!(stats.pl_ratio() >= 1.0);
}

/// The renormalized lattice the online pass promises is exactly as large as
/// the virtual hardware the offline pass assumed.
#[test]
fn renormalized_lattice_matches_virtual_hardware_size() {
    let hardware = HardwareConfig::new(48, 7, 0.85);
    let mut engine = ReshapeEngine::new(ReshapeConfig::new(hardware, 12, 4, 5));
    let report = engine.advance_logical_layer(&LayerRequirement::none());
    assert!(report.formed);
    let lattice = engine.last_logical_lattice().expect("a logical layer exists");
    assert!(lattice.node_count() >= 16, "4x4 virtual layer requires 16 coarse nodes");
    for i in 0..4 {
        for j in 0..4 {
            assert!(lattice.node_site(i, j).is_some(), "missing coarse node ({i}, {j})");
        }
    }
}

/// Merging factor propagates end to end: 4-qubit resource states consume
/// three raw RSLs per merged layer, 7-qubit resource states only one.
#[test]
fn raw_rsl_accounting_respects_resource_state_size() {
    for (size, expected_factor) in [(4usize, 3u64), (7, 1)] {
        let hardware = HardwareConfig::new(36, size, 0.9);
        let mut engine = ReshapeEngine::new(ReshapeConfig::new(hardware, 12, 3, 2));
        let report = engine.advance_logical_layer(&LayerRequirement::none());
        assert!(report.formed);
        assert_eq!(report.raw_rsl, expected_factor * report.merged_layers as u64);
    }
}
