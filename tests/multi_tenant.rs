//! Multi-tenant serving contract (the PR-7 tentpole): per-key
//! single-flight compilation through a cache shared across sessions,
//! cancellation that sheds layers when a submitter walks away, and
//! per-tenant telemetry stamped on reports — all without perturbing the
//! byte-identity contracts the determinism suites enforce.
//!
//! Unit-level twins of the cache tests live in
//! `crates/oneperc/src/service/cache.rs`; these run the same guarantees
//! through the public facade the way an embedding server would.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use oneperc_suite::circuit::benchmarks;
use oneperc_suite::compiler::service::{program_key, ProgramCache};
use oneperc_suite::compiler::{
    CompilerConfig, ExecuteOutcome, ExecutionRequest, LayerFailureReason, Session,
};

fn small_config(p: f64, seed: u64) -> CompilerConfig {
    CompilerConfig::for_sensitivity(36, 3, p, seed)
}

/// A manually opened gate with a watchdog, so a regression that
/// re-serializes compilation deadlocks into a test failure instead of a
/// hung CI job.
struct Gate {
    open: Mutex<bool>,
    bell: Condvar,
}

impl Gate {
    fn new() -> Self {
        Gate { open: Mutex::new(false), bell: Condvar::new() }
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.bell.notify_all();
    }

    fn wait(&self) {
        let guard = self.open.lock().unwrap();
        let (guard, timeout) = self
            .bell
            .wait_timeout_while(guard, Duration::from_secs(10), |open| !*open)
            .unwrap();
        drop(guard);
        assert!(!timeout.timed_out(), "gate never opened: compiles serialized");
    }
}

/// Two tenants miss on *distinct* circuits at once: both compiles must be
/// in flight simultaneously (each compile closure blocks until it has
/// seen the other arrive), which is only possible if misses compile
/// outside the cache lock.
#[test]
fn distinct_circuit_compiles_overlap_across_tenants() {
    let cache = Arc::new(ProgramCache::new(8));
    let config = small_config(0.9, 1);
    let arrived = Arc::new(AtomicUsize::new(0));
    let gate = Arc::new(Gate::new());

    let tenants: Vec<_> = [benchmarks::qaoa(4, 1), benchmarks::rca(4)]
        .into_iter()
        .map(|circuit| {
            let cache = Arc::clone(&cache);
            let arrived = Arc::clone(&arrived);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let session = Session::builder(config)
                    .lanes(1)
                    .shared_program_cache(Arc::clone(&cache))
                    .build();
                let key = program_key(session.config(), &circuit);
                let lookup = cache
                    .get_or_try_insert_with::<std::convert::Infallible>(key, || {
                        // Rendezvous: refuse to finish compiling until both
                        // tenants are inside their compile closures.
                        if arrived.fetch_add(1, Ordering::SeqCst) + 1 == 2 {
                            gate.open();
                        }
                        gate.wait();
                        Ok(session.compile(&circuit).unwrap())
                    })
                    .unwrap();
                assert!(!lookup.hit);
                // The shared program is immediately executable.
                assert!(session.execute_shared(lookup.program, 3).is_complete());
            })
        })
        .collect();
    for tenant in tenants {
        tenant.join().unwrap();
    }
    assert_eq!(cache.stats().misses, 2);
    assert_eq!(cache.stats().entries, 2);
    assert_eq!(cache.in_flight(), 0);
}

/// Many tenants miss on the *same* circuit at once: one leader compiles,
/// everyone else waits and shares the leader's program (`Arc`-identical),
/// and the miss counter proves exactly one offline pass ran.
#[test]
fn same_key_tenants_share_one_compile() {
    let config = small_config(0.9, 1);
    let hub = Session::new(config);
    let cache = hub.program_cache_handle();
    let circuit = benchmarks::qaoa(4, 2);

    let tenants: Vec<_> = (0..4)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let circuit = circuit.clone();
            std::thread::spawn(move || {
                let session = Session::builder(config)
                    .lanes(1)
                    .shared_program_cache(cache)
                    .build();
                session.compile_cached(&circuit).unwrap()
            })
        })
        .collect();
    let programs: Vec<_> = tenants.into_iter().map(|t| t.join().unwrap()).collect();
    for other in &programs[1..] {
        assert!(Arc::ptr_eq(&programs[0], other), "tenants must share one program");
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, 1, "single-flight: exactly one offline pass");
    assert_eq!(stats.hits, 3, "every other tenant was served the leader's compile");
}

/// Dropping a `JobHandle` sheds the queued work: the lane observes the
/// cancelled token at its first layer checkpoint and skips the run,
/// while neighbours before and after it in the same lane's queue are
/// untouched — byte-identical to a session that never saw the
/// cancellation.
#[test]
fn dropped_handle_sheds_layers_without_perturbing_neighbours() {
    let config = small_config(0.8, 5);
    let circuit = benchmarks::qaoa(4, 2);

    let session = Session::builder(config).lanes(1).build();
    let compiled = session.compile_cached(&circuit).unwrap();

    // Queue depth on the single lane guarantees the victim's token is
    // cancelled long before the lane reaches it.
    let blockers: Vec<_> = (0..3)
        .map(|seed| session.submit(ExecutionRequest::new(Arc::clone(&compiled), seed)))
        .collect();
    let victim = session.submit(ExecutionRequest::new(Arc::clone(&compiled), 99));
    drop(victim); // walks away: nobody can observe this outcome any more
    let sentinel = session.submit(ExecutionRequest::new(Arc::clone(&compiled), 7));

    let mut outcomes: Vec<_> = blockers.into_iter().map(|handle| handle.wait()).collect();
    outcomes.push(sentinel.wait());
    assert!(outcomes.iter().all(ExecuteOutcome::is_complete), "neighbours unaffected");
    assert_eq!(session.jobs_cancelled(), 1, "the dropped handle's run was shed");
    assert_eq!(session.jobs_submitted(), 5);
    assert_eq!(session.jobs_completed(), 5, "cancelled runs still retire");

    // The survivors are byte-identical to a session with no cancellation.
    let fresh = Session::builder(config).lanes(1).build();
    let reference = fresh.execute_shared(Arc::clone(&compiled), 7);
    assert_eq!(
        outcomes[3].report().deterministic(),
        reference.report().deterministic(),
        "cancellation perturbed an unrelated run"
    );
}

/// Explicit `cancel()` reports `LayerFailureReason::Cancelled` on the
/// outcome the handle still redeems.
#[test]
fn explicit_cancel_reports_cancelled_outcome() {
    let config = small_config(0.8, 5);
    let circuit = benchmarks::qaoa(4, 2);
    let session = Session::builder(config).lanes(1).build();
    let compiled = session.compile_cached(&circuit).unwrap();

    // Hold the lane so the victim is still queued when we cancel.
    let blocker = session.submit(ExecutionRequest::new(Arc::clone(&compiled), 1));
    let victim = session.submit(ExecutionRequest::new(Arc::clone(&compiled), 2));
    victim.cancel();
    assert!(blocker.wait().is_complete());
    match victim.wait() {
        ExecuteOutcome::Incomplete { failure, report } => {
            assert_eq!(failure.reason, LayerFailureReason::Cancelled);
            assert_eq!(report.logical_layers, 0, "cancelled before the first layer");
        }
        ExecuteOutcome::Complete(_) => panic!("a pre-cancelled queued job must not run"),
    }
    assert_eq!(session.jobs_cancelled(), 1);
}

/// One tenant's compile is another tenant's hit, and the programs behave
/// byte-identically: the same `(circuit, seed)` through either session
/// produces the same deterministic report.
#[test]
fn shared_cache_cross_session_hit_is_byte_identical() {
    let config = small_config(0.9, 3);
    let circuit = benchmarks::rca(4);

    let tenant_a = Session::builder(config).lanes(1).build();
    let tenant_b = Session::builder(config)
        .lanes(2)
        .shared_program_cache(tenant_a.program_cache_handle())
        .build();

    let first = tenant_a.compile_cached_lookup(&circuit).unwrap();
    assert!(!first.hit);
    let second = tenant_b.compile_cached_lookup(&circuit).unwrap();
    assert!(second.hit, "tenant A's compile must serve tenant B");
    assert!(Arc::ptr_eq(&first.program, &second.program));
    assert_eq!(tenant_a.cache_stats(), tenant_b.cache_stats());

    for seed in [1u64, 8, 21] {
        let a = tenant_a.execute_shared(Arc::clone(&first.program), seed);
        let b = tenant_b.execute_shared(Arc::clone(&second.program), seed);
        assert_eq!(
            a.report().deterministic(),
            b.report().deterministic(),
            "shared-cache tenants diverged at seed {seed}"
        );
    }
}

/// The sweep stamps each report with its own lookup's telemetry: the
/// first sweep is a miss for every report, the second a hit — and
/// `deterministic()` erases the stamp so byte-identity contracts are
/// unaffected.
#[test]
fn sweep_reports_carry_per_lookup_cache_telemetry() {
    let config = small_config(0.9, 2);
    let circuit = benchmarks::qaoa(4, 1);
    let session = Session::builder(config).lanes(2).build();

    let cold = session.sweep(&circuit, &[1, 2, 3]).unwrap();
    assert!(cold.iter().all(|o| !o.report().service.cache_hit));
    let warm = session.sweep(&circuit, &[1, 2, 3]).unwrap();
    assert!(warm.iter().all(|o| o.report().service.cache_hit));

    for (c, w) in cold.iter().zip(&warm) {
        assert!(c.report().service.queue_depth >= 1);
        assert_eq!(c.report().deterministic(), w.report().deterministic());
        assert_eq!(c.report().deterministic().service, Default::default());
    }
}
