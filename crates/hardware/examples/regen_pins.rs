//! Regenerates the golden constants pinned in `tests/sampler_golden.rs`.
//!
//! ```text
//! cargo run -p oneperc-hardware --example regen_pins
//! ```
//!
//! prints one `assert_stream(...)` line per pinned (probability, seed,
//! stream) combination, in the same order and encoding as the test file
//! (outcome `k` at bit `k % 64` of word `k / 64`). When a sampler or RNG
//! change intentionally shifts a stream, paste the printed lines over the
//! pinned ones and say so loudly in the commit — every seeded result in
//! the repository shifts with them. When a change is supposed to leave
//! the streams alone (such as adding word-granular draws on top of the
//! same batch buffer), run this and diff against the test file to prove
//! nothing moved.

use oneperc_hardware::FusionSampler;

/// Outcomes pinned per stream (matches `N` in the test file).
const N: usize = 256;

fn stream_words(p: f64, seed: u64, batched: bool) -> [u64; 4] {
    let mut sampler = FusionSampler::new(p, seed);
    let mut words = [0u64; 4];
    for k in 0..N {
        let success = if batched {
            sampler.sample_batched().is_success()
        } else {
            sampler.sample().is_success()
        };
        if success {
            words[k / 64] |= 1 << (k % 64);
        }
    }
    words
}

fn main() {
    for (batched, label) in [(false, "per-attempt"), (true, "batched")] {
        for p in [0.75f64, 0.66] {
            println!("// {label} stream at p = {p}");
            for seed in [1u64, 7, 42, 2024] {
                let w = stream_words(p, seed, batched);
                println!(
                    "assert_stream({p}, {seed}, {batched}, [{:#018x}, {:#018x}, {:#018x}, {:#018x}]);",
                    w[0], w[1], w[2], w[3]
                );
            }
        }
    }
}
