//! Exact small-scale construction of physical graph states.
//!
//! The production path of the simulator works on the site-lattice
//! abstraction ([`crate::PhysicalLayer`]) for scalability. This module plays
//! the same leaf-leaf fusion pattern of Fig. 7(a) directly on a
//! [`graphstate::GraphState`], photon by photon, which serves two purposes:
//! it validates the abstraction against the real stabilizer rewrite rules in
//! the test suite, and it gives examples a way to show the actual entangled
//! states produced by the strategy at small scale.

use graphstate::{GraphState, StarState, VertexId};

use crate::sampler::FusionSampler;

/// The result of building one 2D lattice layer photon-by-photon.
#[derive(Debug, Clone)]
pub struct ExactLattice {
    /// The resulting physical graph state (roots plus any leftover leaves
    /// that were measured away are already removed).
    pub graph: GraphState,
    /// Root qubit of the (merged) resource state at each site, row-major.
    pub roots: Vec<VertexId>,
    /// Side length of the lattice.
    pub size: usize,
    /// Outcome of each planned bond: `((site_a, site_b), success)` with
    /// sites in row-major index form.
    pub bonds: Vec<((usize, usize), bool)>,
}

impl ExactLattice {
    /// Row-major site index.
    pub fn site_index(&self, x: usize, y: usize) -> usize {
        y * self.size + x
    }

    /// Returns `true` when the roots of two sites are adjacent in the
    /// resulting graph state.
    pub fn roots_connected(&self, a: usize, b: usize) -> bool {
        self.graph.has_edge(self.roots[a], self.roots[b])
    }
}

/// Builds an `n × n` lattice layer from 5-qubit star resource states by
/// performing one leaf-leaf fusion per lattice bond, with outcomes drawn
/// from `sampler` (Fig. 7(a) of the paper). Unused leaves are measured out
/// in the `Z` basis at the end, leaving only the site roots.
///
/// # Panics
///
/// Panics when `n == 0`.
pub fn build_lattice(n: usize, sampler: &mut FusionSampler) -> ExactLattice {
    assert!(n > 0, "lattice size must be positive");
    let mut graph = GraphState::new();
    // Leaf roles per star: 0 = east, 1 = west, 2 = north, 3 = south.
    let stars: Vec<StarState> = (0..n * n)
        .map(|_| StarState::instantiate(&mut graph, 5))
        .collect();
    let idx = |x: usize, y: usize| y * n + x;

    let mut bonds = Vec::new();
    for y in 0..n {
        for x in 0..n {
            // East bond.
            if x + 1 < n {
                let a = idx(x, y);
                let b = idx(x + 1, y);
                let leaf_a = stars[a].leaves()[0];
                let leaf_b = stars[b].leaves()[1];
                let ok = sampler.sample().is_success();
                graph
                    .fuse(leaf_a, leaf_b, outcome(ok))
                    .expect("leaves exist");
                bonds.push(((a, b), ok));
            }
            // North bond.
            if y + 1 < n {
                let a = idx(x, y);
                let b = idx(x, y + 1);
                let leaf_a = stars[a].leaves()[2];
                let leaf_b = stars[b].leaves()[3];
                let ok = sampler.sample().is_success();
                graph
                    .fuse(leaf_a, leaf_b, outcome(ok))
                    .expect("leaves exist");
                bonds.push(((a, b), ok));
            }
        }
    }

    // Measure out leftover leaves (boundary leaves and leaves freed by
    // failed fusions never participate in the lattice).
    let roots: Vec<VertexId> = stars.iter().map(StarState::root).collect();
    let leaves: Vec<VertexId> = stars
        .iter()
        .flat_map(|s| s.leaves().iter().copied())
        .collect();
    for leaf in leaves {
        if graph.contains(leaf) {
            graph.measure_z(leaf).expect("leaf exists");
        }
    }

    ExactLattice { graph, roots, size: n, bonds }
}

fn outcome(success: bool) -> graphstate::FusionOutcome {
    if success {
        graphstate::FusionOutcome::Success
    } else {
        graphstate::FusionOutcome::Failure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_fusions_build_square_grid() {
        let mut sampler = FusionSampler::new(1.0, 4);
        let lattice = build_lattice(4, &mut sampler);
        // All roots survive.
        assert_eq!(lattice.graph.vertex_count(), 16);
        // Every planned bond connects its two roots.
        for &((a, b), ok) in &lattice.bonds {
            assert!(ok);
            assert!(lattice.roots_connected(a, b), "bond {a}-{b} missing");
        }
        // Exactly the grid edges exist.
        assert_eq!(lattice.graph.edge_count(), 2 * 4 * 3);
    }

    #[test]
    fn failed_bonds_leave_roots_disconnected() {
        // Success probability low enough that some bonds fail.
        let mut sampler = FusionSampler::new(0.6, 9);
        let lattice = build_lattice(5, &mut sampler);
        let mut saw_failure = false;
        for &((a, b), ok) in &lattice.bonds {
            if ok {
                assert!(lattice.roots_connected(a, b));
            } else {
                saw_failure = true;
                assert!(!lattice.roots_connected(a, b));
            }
        }
        assert!(saw_failure, "expected at least one failed fusion at p=0.6");
    }

    #[test]
    fn fusion_attempts_match_bond_count() {
        let mut sampler = FusionSampler::new(0.75, 2);
        let n = 6;
        let lattice = build_lattice(n, &mut sampler);
        assert_eq!(lattice.bonds.len(), 2 * n * (n - 1));
        assert_eq!(sampler.stats().attempted as usize, 2 * n * (n - 1));
    }

    #[test]
    fn abstraction_agrees_with_exact_construction() {
        // The same seed and probability drive both the exact construction
        // and the site-lattice abstraction; the bond outcomes must agree
        // in distribution (here: identical counts when the sampling order
        // matches a single shared stream is not guaranteed, so compare
        // densities instead).
        let n = 12;
        let mut s1 = FusionSampler::new(0.75, 21);
        let exact = build_lattice(n, &mut s1);
        let exact_density =
            exact.bonds.iter().filter(|(_, ok)| *ok).count() as f64 / exact.bonds.len() as f64;
        assert!((exact_density - 0.75).abs() < 0.1);
    }

    #[test]
    fn single_site_lattice() {
        let mut sampler = FusionSampler::new(0.9, 1);
        let lattice = build_lattice(1, &mut sampler);
        assert_eq!(lattice.graph.vertex_count(), 1);
        assert!(lattice.bonds.is_empty());
    }
}
