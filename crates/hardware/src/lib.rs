//! Photonic hardware model for the OnePerc reproduction.
//!
//! Practical photonic hardware scales up by generating small star-like
//! resource states in a 2D array of resource-state generators (RSGs) every
//! clock cycle and merging them with probabilistic type-II fusions
//! (Section 2.2 of the paper). This crate simulates that machinery:
//!
//! * [`HardwareConfig`] — the knobs of the simulated machine: RSL size,
//!   resource-state size, fusion success probability, photon loss.
//! * [`FusionSampler`] — seeded stochastic fusion outcomes with attempt
//!   accounting (the `#fusion` metric of the evaluation).
//! * [`FusionStrategy`] / [`FusionEngine`] — the semi-static fusion strategy
//!   of Section 4: leaf-leaf fusions arrange (merged) resource states into a
//!   lattice, root-leaf fusions merge several RSLs when the resource states
//!   lack sufficient degree, failures trigger local-complementation recovery
//!   and collective retries.
//! * [`PhysicalLayer`] — the random physical graph state produced for one
//!   (merged) resource-state layer, in the site-lattice representation
//!   consumed by the online reshaping pass.
//! * [`exact`] — a small-scale exact construction that plays the same
//!   strategy directly on a [`graphstate::GraphState`], used to validate the
//!   site-lattice abstraction against the real rewrite rules.
//! * [`DelayLine`] — bounded-lifetime storage for photonic qubits.
//!
//! # Example
//!
//! ```
//! use oneperc_hardware::{FusionEngine, HardwareConfig};
//!
//! let config = HardwareConfig::new(24, 4, 0.75);
//! let mut engine = FusionEngine::new(config, 42);
//! let layer = engine.generate_layer();
//! assert_eq!(layer.width, 24);
//! assert!(layer.raw_rsl_consumed >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
mod config;
mod delay;
mod engine;
pub mod exact;
mod layer;
mod sampler;

pub use bitmap::Bitmap;
pub use config::HardwareConfig;
pub use delay::DelayLine;
pub use engine::{FusionEngine, FusionStrategy};
pub use layer::PhysicalLayer;
pub use sampler::{FusionSampler, FusionStats};
