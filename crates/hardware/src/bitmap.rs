//! Fixed-length bitmaps backing the site/bond/port planes of a
//! [`PhysicalLayer`](crate::PhysicalLayer).
//!
//! A [`Bitmap`] stores one bit per lattice site packed 64 to a `u64` word:
//! flat site index `i` lives at bit `i % 64` (LSB-first) of word `i / 64`.
//! All bits at positions `>= len` in the trailing word are kept zero — the
//! *canonical trailing mask* invariant — so two bitmaps holding the same
//! logical bits are `==` as plain word vectors and popcounts need no
//! per-call masking.

/// Bits per storage word.
pub const WORD_BITS: usize = 64;

/// Storage word holding bit `i`.
#[inline]
pub const fn word_index(i: usize) -> usize {
    i / WORD_BITS
}

/// Bit position of flat index `i` inside its storage word.
#[inline]
pub const fn bit_index(i: usize) -> u32 {
    (i % WORD_BITS) as u32
}

/// Mask selecting the `n % 64` valid bits of the trailing word of an
/// `n`-bit bitmap (all ones when `n` is a multiple of 64).
#[inline]
pub const fn trailing_mask(n: usize) -> u64 {
    let rem = n % WORD_BITS;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// A dense, fixed-length bit vector with word-granular access.
///
/// # Example
///
/// ```
/// use oneperc_hardware::Bitmap;
///
/// let mut bits = Bitmap::with_len(70, false);
/// bits.set(3, true);
/// bits.set(69, true);
/// assert!(bits.get(3));
/// assert_eq!(bits.count_ones(), 2);
/// assert_eq!(bits.words().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// Creates a bitmap of `len` bits, all set to `value`.
    pub fn with_len(len: usize, value: bool) -> Self {
        let mut bits = Bitmap::new();
        bits.reset(len, value);
        bits
    }

    /// Resets the bitmap to `len` bits all equal to `value`, reusing the
    /// existing allocation. The trailing word is masked so the canonical
    /// invariant (no set bit at positions `>= len`) holds for any `len`.
    pub fn reset(&mut self, len: usize, value: bool) {
        let n_words = len.div_ceil(WORD_BITS);
        let fill = if value { u64::MAX } else { 0 };
        self.words.clear();
        self.words.resize(n_words, fill);
        if value && n_words > 0 {
            self.words[n_words - 1] = trailing_mask(len);
        }
        self.len = len;
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        (self.words[word_index(i)] >> bit_index(i)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        let mask = 1u64 << bit_index(i);
        let w = &mut self.words[word_index(i)];
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Number of set bits (popcount over the packed words; exact thanks to
    /// the canonical trailing mask).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The packed storage words (bit `i` at `words()[i / 64] >> (i % 64)`).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reads storage word `wi` (zero when past the end, so callers may scan
    /// `len.div_ceil(64)` words without bounds juggling).
    #[inline]
    pub fn word(&self, wi: usize) -> u64 {
        self.words.get(wi).copied().unwrap_or(0)
    }

    /// ORs `bits` into storage word `wi`. The caller must only set bits
    /// below `len`; debug builds verify the invariant.
    #[inline]
    pub(crate) fn or_word(&mut self, wi: usize, bits: u64) {
        debug_assert!(
            wi + 1 < self.words.len() || (wi + 1 == self.words.len() && bits & !trailing_mask(self.len) == 0),
            "word write past the canonical trailing mask"
        );
        self.words[wi] |= bits;
    }

    /// Replaces storage word `wi` with `bits`, masking the trailing word so
    /// the canonical invariant is preserved.
    #[inline]
    pub(crate) fn store_word(&mut self, wi: usize, bits: u64) {
        let bits = if wi + 1 == self.words.len() { bits & trailing_mask(self.len) } else { bits };
        self.words[wi] = bits;
    }

    /// Extracts bits `lo..hi` (at most 64 of them) as a `u64` with bit `lo`
    /// at position 0. Handles ranges straddling a word boundary.
    ///
    /// # Panics
    ///
    /// Panics when the range is wider than 64 bits or exceeds `len`.
    #[inline]
    pub fn range_word(&self, lo: usize, hi: usize) -> u64 {
        assert!(lo <= hi && hi <= self.len, "bit range {lo}..{hi} out of range");
        let width = hi - lo;
        assert!(width <= WORD_BITS, "bit range wider than one word");
        if width == 0 {
            return 0;
        }
        let wi = word_index(lo);
        let shift = bit_index(lo);
        let mut out = self.words[wi] >> shift;
        if shift > 0 && wi + 1 < self.words.len() {
            out |= self.words[wi + 1] << (WORD_BITS as u32 - shift);
        }
        if width < WORD_BITS {
            out &= (1u64 << width) - 1;
        }
        out
    }

    /// Extracts the 64 bits starting at `lo` as a `u64` with bit `lo` at
    /// position 0, zero-padding past the end of the bitmap.
    ///
    /// This is the row-granular companion of [`Bitmap::range_word`] for
    /// callers that read full words at a fixed offset per row (the
    /// percolation band scans): no width argument, no range masking, and
    /// when `lo` is word-aligned — the common case for row starts — the
    /// extraction is a single load instead of `range_word`'s double shift.
    /// Callers that need a *partial* trailing word keep using `range_word`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > len`.
    #[inline]
    pub fn word_at(&self, lo: usize) -> u64 {
        assert!(lo <= self.len, "bit offset {lo} out of range (len {})", self.len);
        let wi = word_index(lo);
        let shift = bit_index(lo);
        let mut out = self.words.get(wi).copied().unwrap_or(0);
        if shift > 0 {
            out >>= shift;
            if let Some(&next) = self.words.get(wi + 1) {
                out |= next << (WORD_BITS as u32 - shift);
            }
        }
        out
    }

    /// Iterates the indices of set bits in `lo..hi` in increasing order,
    /// scanning whole words and peeling set bits with `trailing_zeros`
    /// instead of testing every position.
    pub fn iter_set_in(&self, lo: usize, hi: usize) -> SetBits<'_> {
        assert!(lo <= hi && hi <= self.len, "bit range {lo}..{hi} out of range");
        SetBits { bits: self, cursor: lo, hi, current: 0, current_base: lo }
    }
}

/// Iterator over the set bits of a [`Bitmap`] range; see
/// [`Bitmap::iter_set_in`].
#[derive(Debug)]
pub struct SetBits<'a> {
    bits: &'a Bitmap,
    /// Next unscanned bit position.
    cursor: usize,
    hi: usize,
    /// Remaining set bits of the word chunk being drained, shifted so bit 0
    /// corresponds to `current_base`.
    current: u64,
    current_base: usize,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.current_base + tz);
            }
            if self.cursor >= self.hi {
                return None;
            }
            // Refill with the next word-aligned chunk of the range.
            let chunk_hi = self.hi.min((word_index(self.cursor) + 1) * WORD_BITS);
            self.current = self.bits.range_word(self.cursor, chunk_hi)
                << bit_index(self.cursor);
            self.current_base = word_index(self.cursor) * WORD_BITS;
            self.cursor = chunk_hi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut bits = Bitmap::with_len(130, false);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            bits.set(i, true);
            assert!(bits.get(i), "bit {i}");
        }
        assert_eq!(bits.count_ones(), 8);
        bits.set(64, false);
        assert!(!bits.get(64));
        assert_eq!(bits.count_ones(), 7);
    }

    #[test]
    fn filled_bitmap_masks_trailing_word() {
        for n in [1usize, 63, 64, 65, 100, 128] {
            let bits = Bitmap::with_len(n, true);
            assert_eq!(bits.count_ones(), n, "len {n}");
            let last = *bits.words().last().unwrap();
            assert_eq!(last & !trailing_mask(n), 0, "len {n}: trailing garbage");
        }
    }

    #[test]
    fn equal_logical_bits_are_equal_bitmaps() {
        let mut a = Bitmap::with_len(70, true);
        let mut b = Bitmap::with_len(70, false);
        for i in 0..70 {
            a.set(i, i % 3 == 0);
            b.set(i, i % 3 == 0);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn reset_reuses_and_shrinks_cleanly() {
        let mut bits = Bitmap::with_len(200, true);
        bits.reset(5, false);
        assert_eq!(bits.len(), 5);
        assert_eq!(bits.count_ones(), 0);
        bits.reset(66, true);
        assert_eq!(bits.count_ones(), 66);
        assert_eq!(bits.words().len(), 2);
    }

    #[test]
    fn range_word_straddles_words() {
        let mut bits = Bitmap::with_len(192, false);
        for i in 60..70 {
            bits.set(i, true);
        }
        assert_eq!(bits.range_word(60, 70), 0x3FF);
        assert_eq!(bits.range_word(58, 72), 0x3FF << 2);
        assert_eq!(bits.range_word(0, 64), 0xF << 60);
        assert_eq!(bits.range_word(64, 128), 0x3F);
        assert_eq!(bits.range_word(100, 100), 0);
        // Full-width extraction at an unaligned offset.
        assert_eq!(bits.range_word(32, 96), (0x3FFu64 << 28));
    }

    #[test]
    fn iter_set_in_matches_scalar_scan() {
        let mut bits = Bitmap::with_len(300, false);
        for i in (0..300).filter(|i| i % 7 == 3 || i % 64 == 63) {
            bits.set(i, true);
        }
        for (lo, hi) in [(0, 300), (3, 3), (60, 70), (64, 128), (1, 299), (250, 300)] {
            let fast: Vec<usize> = bits.iter_set_in(lo, hi).collect();
            let slow: Vec<usize> = (lo..hi).filter(|&i| bits.get(i)).collect();
            assert_eq!(fast, slow, "range {lo}..{hi}");
        }
    }

    /// Naive reference: bit `j` of the result is bit `lo + j` of the
    /// bitmap, missing bits zero.
    fn naive_word(bits: &Bitmap, lo: usize, width: usize) -> u64 {
        let mut out = 0u64;
        for j in 0..width {
            if lo + j < bits.len() && bits.get(lo + j) {
                out |= 1u64 << j;
            }
        }
        out
    }

    #[test]
    fn word_at_matches_naive_bit_loop() {
        let mut bits = Bitmap::with_len(200, false);
        for i in (0..200).filter(|i| i % 5 == 1 || i % 64 >= 61) {
            bits.set(i, true);
        }
        // Aligned starts (single-load path), unaligned straddles, offsets
        // near and at the end (zero-padding path).
        for lo in [0usize, 64, 128, 1, 7, 63, 65, 100, 137, 190, 199, 200] {
            assert_eq!(bits.word_at(lo), naive_word(&bits, lo, 64), "lo {lo}");
        }
        // Every offset, exhaustively.
        for lo in 0..=bits.len() {
            assert_eq!(bits.word_at(lo), naive_word(&bits, lo, 64), "lo {lo}");
        }
    }

    #[test]
    fn range_word_matches_naive_bit_loop() {
        let mut bits = Bitmap::with_len(150, false);
        for i in (0..150).filter(|i| i % 3 == 0) {
            bits.set(i, true);
        }
        for (lo, hi) in [(0, 64), (0, 13), (60, 70), (64, 128), (100, 150), (149, 150), (10, 10)] {
            assert_eq!(bits.range_word(lo, hi), naive_word(&bits, lo, hi - lo), "{lo}..{hi}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn word_at_past_len_panics() {
        let bits = Bitmap::with_len(10, false);
        let _ = bits.word_at(11);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_past_len_panics() {
        let bits = Bitmap::with_len(10, false);
        let _ = bits.get(10);
    }
}
