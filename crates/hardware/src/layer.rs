//! The site-lattice representation of one random physical graph state layer.

use graphstate::{CsrSnapshot, DisjointSet, GraphState};

/// One (merged) resource-state layer after the fusion strategy has run: a
/// random subgraph of the `width × height` square lattice.
///
/// Every lattice *site* corresponds to one (merged) resource state; an
/// in-plane *bond* corresponds to a successful leaf-leaf fusion with one of
/// the four lattice neighbors, and a *temporal port* records whether the
/// site still has photons available for a time-like fusion with a later
/// layer.
///
/// This is the structure handed to the online reshaping pass; the exact
/// per-photon graph state it abstracts can be reconstructed for small sizes
/// with [`crate::exact`].
///
/// Equality compares the full site/bond/port state plus the accounting
/// fields — the byte-identity check used by the pipelined-stream
/// determinism suite to prove that layers generated on a dedicated
/// pipeline thread match in-thread generation exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalLayer {
    /// Sites along the x axis.
    pub width: usize,
    /// Sites along the y axis.
    pub height: usize,
    /// Whether each site holds a usable (merged) resource state.
    site_present: Vec<bool>,
    /// Bond between `(x, y)` and `(x + 1, y)`.
    bond_east: Vec<bool>,
    /// Bond between `(x, y)` and `(x, y + 1)`.
    bond_north: Vec<bool>,
    /// Whether each site retains a photon for a time-like fusion.
    temporal_port: Vec<bool>,
    /// Raw RSLs consumed to produce this merged layer.
    pub raw_rsl_consumed: usize,
    /// Fusions attempted while producing this layer.
    pub fusions_attempted: u64,
    /// Fusions that succeeded while producing this layer.
    pub fusions_succeeded: u64,
}

impl PhysicalLayer {
    /// Creates an empty layer (all sites present, no bonds, all temporal
    /// ports available) of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn blank(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "layer dimensions must be positive");
        PhysicalLayer {
            width,
            height,
            site_present: vec![true; width * height],
            bond_east: vec![false; width * height],
            bond_north: vec![false; width * height],
            temporal_port: vec![true; width * height],
            raw_rsl_consumed: 1,
            fusions_attempted: 0,
            fusions_succeeded: 0,
        }
    }

    /// A fully connected lattice (every site present, every bond present) —
    /// what the strategy would produce with a deterministic fusion.
    pub fn fully_connected(width: usize, height: usize) -> Self {
        let mut layer = Self::blank(width, height);
        for y in 0..height {
            for x in 0..width {
                if x + 1 < width {
                    layer.set_bond_east(x, y, true);
                }
                if y + 1 < height {
                    layer.set_bond_north(x, y, true);
                }
            }
        }
        layer
    }

    /// Resets this layer to the blank state (all sites present, no bonds,
    /// all temporal ports available) of the given dimensions, reusing the
    /// existing allocations. The per-RSL online loop calls this instead of
    /// [`PhysicalLayer::blank`] so steady-state layer generation performs no
    /// heap allocation.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn reset_blank(&mut self, width: usize, height: usize) {
        assert!(width > 0 && height > 0, "layer dimensions must be positive");
        let n = width * height;
        self.width = width;
        self.height = height;
        self.site_present.clear();
        self.site_present.resize(n, true);
        self.bond_east.clear();
        self.bond_east.resize(n, false);
        self.bond_north.clear();
        self.bond_north.resize(n, false);
        self.temporal_port.clear();
        self.temporal_port.resize(n, true);
        self.raw_rsl_consumed = 1;
        self.fusions_attempted = 0;
        self.fusions_succeeded = 0;
    }

    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Whether the site at flat index `i` (row-major `y * width + x`) holds
    /// a usable resource state. Flat-index twin of
    /// [`PhysicalLayer::site_present`] for the percolation hot path.
    #[inline]
    pub fn site_present_at(&self, i: usize) -> bool {
        self.site_present[i]
    }

    /// Whether the bond from flat site `i` to its east neighbor `i + 1` is
    /// present. Sites in the last column never store an east bond (the
    /// setter rejects them), so the raw read needs no column check.
    #[inline]
    pub fn bond_east_at(&self, i: usize) -> bool {
        self.bond_east[i]
    }

    /// Whether the bond from flat site `i` to its north neighbor
    /// `i + width` is present. Sites in the last row never store a north
    /// bond, so the raw read needs no row check.
    #[inline]
    pub fn bond_north_at(&self, i: usize) -> bool {
        self.bond_north[i]
    }

    /// Number of sites in the layer.
    pub fn site_count(&self) -> usize {
        self.width * self.height
    }

    /// Whether the site at `(x, y)` holds a usable resource state.
    pub fn site_present(&self, x: usize, y: usize) -> bool {
        self.site_present[self.idx(x, y)]
    }

    /// Marks the presence of the site at `(x, y)`.
    pub fn set_site_present(&mut self, x: usize, y: usize, present: bool) {
        let i = self.idx(x, y);
        self.site_present[i] = present;
    }

    /// Whether the bond from `(x, y)` to `(x + 1, y)` is present.
    pub fn bond_east(&self, x: usize, y: usize) -> bool {
        x + 1 < self.width && self.bond_east[self.idx(x, y)]
    }

    /// Whether the bond from `(x, y)` to `(x, y + 1)` is present.
    pub fn bond_north(&self, x: usize, y: usize) -> bool {
        y + 1 < self.height && self.bond_north[self.idx(x, y)]
    }

    /// Sets the bond from `(x, y)` to `(x + 1, y)`.
    ///
    /// # Panics
    ///
    /// Panics when `(x + 1, y)` is outside the lattice.
    pub fn set_bond_east(&mut self, x: usize, y: usize, present: bool) {
        assert!(x + 1 < self.width, "east bond leaves the lattice");
        let i = self.idx(x, y);
        self.bond_east[i] = present;
    }

    /// Sets the bond from `(x, y)` to `(x, y + 1)`.
    ///
    /// # Panics
    ///
    /// Panics when `(x, y + 1)` is outside the lattice.
    pub fn set_bond_north(&mut self, x: usize, y: usize, present: bool) {
        assert!(y + 1 < self.height, "north bond leaves the lattice");
        let i = self.idx(x, y);
        self.bond_north[i] = present;
    }

    /// Whether the site at `(x, y)` retains a photon for a time-like fusion.
    pub fn temporal_port(&self, x: usize, y: usize) -> bool {
        self.temporal_port[self.idx(x, y)]
    }

    /// Sets the temporal-port availability of the site at `(x, y)`.
    pub fn set_temporal_port(&mut self, x: usize, y: usize, available: bool) {
        let i = self.idx(x, y);
        self.temporal_port[i] = available;
    }

    /// Returns `true` when two adjacent sites are connected by a present
    /// bond (both sites must also be present).
    pub fn connected_neighbors(&self, a: (usize, usize), b: (usize, usize)) -> bool {
        if !self.site_present(a.0, a.1) || !self.site_present(b.0, b.1) {
            return false;
        }
        let (ax, ay) = a;
        let (bx, by) = b;
        if ay == by && bx == ax + 1 {
            self.bond_east(ax, ay)
        } else if ay == by && ax == bx + 1 {
            self.bond_east(bx, by)
        } else if ax == bx && by == ay + 1 {
            self.bond_north(ax, ay)
        } else if ax == bx && ay == by + 1 {
            self.bond_north(bx, by)
        } else {
            false
        }
    }

    /// Number of present bonds in the layer.
    pub fn bond_count(&self) -> usize {
        let mut count = 0;
        for y in 0..self.height {
            for x in 0..self.width {
                if self.bond_east(x, y) {
                    count += 1;
                }
                if self.bond_north(x, y) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Union-find structure over the sites connecting every present bond;
    /// used by the percolation pass for cheap connectivity checks.
    pub fn connectivity(&self) -> DisjointSet {
        let mut dsu = DisjointSet::new(self.site_count());
        for y in 0..self.height {
            for x in 0..self.width {
                if !self.site_present(x, y) {
                    continue;
                }
                if x + 1 < self.width
                    && self.site_present(x + 1, y)
                    && self.bond_east(x, y)
                {
                    dsu.union(self.idx(x, y), self.idx(x + 1, y));
                }
                if y + 1 < self.height
                    && self.site_present(x, y + 1)
                    && self.bond_north(x, y)
                {
                    dsu.union(self.idx(x, y), self.idx(x, y + 1));
                }
            }
        }
        dsu
    }

    /// Size of the largest connected component of present sites (isolated
    /// present sites count as components of size 1).
    pub fn largest_component_size(&self) -> usize {
        let mut dsu = self.connectivity();
        let mut counts = vec![0usize; self.site_count()];
        let mut best = 0;
        for y in 0..self.height {
            for x in 0..self.width {
                if self.site_present(x, y) {
                    let root = dsu.find(self.idx(x, y));
                    counts[root] += 1;
                    best = best.max(counts[root]);
                }
            }
        }
        best
    }

    /// Converts the site lattice into an explicit [`GraphState`] whose
    /// vertices are the present sites (vertex id = `y * width + x`) and
    /// whose edges are the present bonds. Convenient for path finding and
    /// for tests.
    pub fn to_graph(&self) -> GraphState {
        let mut g = GraphState::with_vertices(self.site_count());
        for y in 0..self.height {
            for x in 0..self.width {
                if !self.site_present(x, y) {
                    g.remove_vertex(self.idx(x, y));
                }
            }
        }
        for y in 0..self.height {
            for x in 0..self.width {
                if !self.site_present(x, y) {
                    continue;
                }
                if x + 1 < self.width && self.site_present(x + 1, y) && self.bond_east(x, y) {
                    g.add_edge(self.idx(x, y), self.idx(x + 1, y));
                }
                if y + 1 < self.height && self.site_present(x, y + 1) && self.bond_north(x, y) {
                    g.add_edge(self.idx(x, y), self.idx(x, y + 1));
                }
            }
        }
        g
    }

    /// Builds a compressed-sparse-row snapshot of the bond graph directly
    /// from the site lattice (vertex id = `y * width + x`, the flat site
    /// index). Equivalent to `self.to_graph().snapshot_csr()` but skips the
    /// intermediate mutable graph, which matters when percolation analyses
    /// take one read-only snapshot per RSL.
    pub fn to_csr(&self) -> CsrSnapshot {
        let n = self.site_count();
        let w = self.width;
        // A bond (i, j) with i < j contributes j to row i and i to row j.
        // The four neighbor directions of a site are visited in increasing
        // flat-index order (i - w, i - 1, i + 1, i + w), so each row of the
        // CSR comes out sorted without a sort pass.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * self.bond_count());
        offsets.push(0u32);
        for i in 0..n {
            if self.site_present[i] {
                let (x, y) = (i % w, i / w);
                if y > 0 && self.site_present[i - w] && self.bond_north[i - w] {
                    targets.push((i - w) as u32);
                }
                if x > 0 && self.site_present[i - 1] && self.bond_east[i - 1] {
                    targets.push((i - 1) as u32);
                }
                if x + 1 < w && self.site_present[i + 1] && self.bond_east[i] {
                    targets.push((i + 1) as u32);
                }
                if y + 1 < self.height && self.site_present[i + w] && self.bond_north[i] {
                    targets.push((i + w) as u32);
                }
            }
            offsets.push(targets.len() as u32);
        }
        CsrSnapshot::from_parts(offsets, targets)
    }

    /// Linear index of the site at `(x, y)` (row-major), matching the vertex
    /// ids of [`PhysicalLayer::to_graph`] and [`PhysicalLayer::connectivity`].
    pub fn site_index(&self, x: usize, y: usize) -> usize {
        self.idx(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_layer_has_no_bonds() {
        let layer = PhysicalLayer::blank(4, 3);
        assert_eq!(layer.site_count(), 12);
        assert_eq!(layer.bond_count(), 0);
        assert!(layer.site_present(2, 1));
        assert!(layer.temporal_port(0, 0));
    }

    #[test]
    fn fully_connected_bond_count() {
        let layer = PhysicalLayer::fully_connected(4, 4);
        // 2 * n * (n-1) bonds for an n x n lattice.
        assert_eq!(layer.bond_count(), 2 * 4 * 3);
        assert_eq!(layer.largest_component_size(), 16);
    }

    #[test]
    fn connected_neighbors_symmetry() {
        let mut layer = PhysicalLayer::blank(3, 3);
        layer.set_bond_east(0, 0, true);
        assert!(layer.connected_neighbors((0, 0), (1, 0)));
        assert!(layer.connected_neighbors((1, 0), (0, 0)));
        assert!(!layer.connected_neighbors((0, 0), (0, 1)));
        layer.set_site_present(1, 0, false);
        assert!(!layer.connected_neighbors((0, 0), (1, 0)));
    }

    #[test]
    fn connectivity_matches_graph() {
        let mut layer = PhysicalLayer::blank(3, 1);
        layer.set_bond_east(0, 0, true);
        let mut dsu = layer.connectivity();
        assert!(dsu.same_set(layer.site_index(0, 0), layer.site_index(1, 0)));
        assert!(!dsu.same_set(layer.site_index(0, 0), layer.site_index(2, 0)));
        let g = layer.to_graph();
        assert!(g.connected(0, 1));
        assert!(!g.connected(0, 2));
    }

    #[test]
    fn to_graph_skips_missing_sites() {
        let mut layer = PhysicalLayer::fully_connected(3, 3);
        layer.set_site_present(1, 1, false);
        let g = layer.to_graph();
        assert_eq!(g.vertex_count(), 8);
        assert!(!g.contains(layer.site_index(1, 1)));
    }

    #[test]
    #[should_panic(expected = "east bond leaves the lattice")]
    fn bond_off_the_edge_panics() {
        let mut layer = PhysicalLayer::blank(2, 2);
        layer.set_bond_east(1, 0, true);
    }

    #[test]
    fn flat_index_accessors_match_coordinates() {
        let mut layer = PhysicalLayer::blank(4, 3);
        layer.set_bond_east(1, 2, true);
        layer.set_bond_north(3, 1, true);
        layer.set_site_present(2, 0, false);
        for y in 0..3 {
            for x in 0..4 {
                let i = layer.site_index(x, y);
                assert_eq!(layer.site_present_at(i), layer.site_present(x, y));
                assert_eq!(layer.bond_east_at(i), layer.bond_east(x, y));
                assert_eq!(layer.bond_north_at(i), layer.bond_north(x, y));
            }
        }
    }

    #[test]
    fn reset_blank_reuses_and_resizes() {
        let mut layer = PhysicalLayer::fully_connected(6, 6);
        layer.raw_rsl_consumed = 9;
        layer.fusions_attempted = 5;
        layer.reset_blank(6, 6);
        assert_eq!(layer.bond_count(), 0);
        assert_eq!(layer.raw_rsl_consumed, 1);
        assert_eq!(layer.fusions_attempted, 0);
        assert!(layer.site_present(5, 5));
        // Resizing to a different geometry also works.
        layer.reset_blank(3, 8);
        assert_eq!(layer.width, 3);
        assert_eq!(layer.height, 8);
        assert_eq!(layer.site_count(), 24);
        assert_eq!(layer.bond_count(), 0);
    }

    #[test]
    fn csr_matches_graph_snapshot() {
        let mut layer = PhysicalLayer::fully_connected(5, 4);
        layer.set_site_present(2, 1, false);
        layer.set_bond_east(0, 0, false);
        let direct = layer.to_csr();
        let via_graph = layer.to_graph().snapshot_csr();
        assert_eq!(direct, via_graph);
        assert_eq!(direct.largest_component_size(), layer.largest_component_size());
    }

    #[test]
    fn generate_layer_into_matches_generate_layer() {
        use crate::config::HardwareConfig;
        use crate::engine::FusionEngine;
        let cfg = HardwareConfig::new(12, 4, 0.75);
        let mut a = FusionEngine::new(cfg, 31);
        let mut b = FusionEngine::new(cfg, 31);
        let mut reused = PhysicalLayer::blank(1, 1);
        for _ in 0..3 {
            let fresh = a.generate_layer();
            b.generate_layer_into(&mut reused);
            assert_eq!(fresh.bond_count(), reused.bond_count());
            assert_eq!(fresh.fusions_attempted, reused.fusions_attempted);
            for y in 0..12 {
                for x in 0..12 {
                    assert_eq!(fresh.site_present(x, y), reused.site_present(x, y));
                    assert_eq!(fresh.bond_east(x, y), reused.bond_east(x, y));
                    assert_eq!(fresh.bond_north(x, y), reused.bond_north(x, y));
                    assert_eq!(fresh.temporal_port(x, y), reused.temporal_port(x, y));
                }
            }
        }
    }
}
