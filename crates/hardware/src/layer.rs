//! The site-lattice representation of one random physical graph state layer.
//!
//! # Word layout
//!
//! Since PR 5 the four per-site planes (site presence, east bonds, north
//! bonds, temporal ports) are stored as [`Bitmap`]s — `u64` words holding 64
//! sites each — instead of `Vec<bool>`s, which makes the layer sampler and
//! the percolation strip scans memory-bandwidth-bound. The convention,
//! shared by every consumer of the word-granular accessors:
//!
//! * flat site index `i = y * width + x` (row-major, same as the
//!   coordinate accessors and [`PhysicalLayer::site_index`]);
//! * bit `i` lives at bit position `i % 64` (**LSB-first**) of word
//!   `i / 64`, i.e. `words()[i / 64] >> (i % 64) & 1`;
//! * the trailing word keeps every bit at positions `>= width * height`
//!   **zero** (the canonical trailing mask, see
//!   [`crate::bitmap::trailing_mask`]), so bitmap equality, popcounts and
//!   whole-word scans need no per-call masking;
//! * the east-bond plane never holds a bit in the last column
//!   (`x == width - 1`) and the north-bond plane never in the last row —
//!   the same invariant the `Vec<bool>` representation maintained through
//!   its panicking setters, now also relied on by popcount
//!   [`PhysicalLayer::bond_count`].
//!
//! # Word-frontier consumers (PR 6)
//!
//! The percolation crate's renormalizer builds *band-local* planes from
//! these bitmaps: per band row it reads 64 bits at an arbitrary flat
//! offset through [`PhysicalLayer::site_row_word`] /
//! [`PhysicalLayer::bond_east_row_word`] /
//! [`PhysicalLayer::bond_north_row_word`] (backed by
//! [`Bitmap::word_at`]), masks them to the band width and runs its BFS
//! reachability fixpoint on the results. Two derived invariants those
//! consumers rely on:
//!
//! * an *east-connectivity* word is `present & east & (present >> 1)`
//!   (all three taken at the same flat offset): bit `x` set means sites
//!   `x` and `x + 1` are both present and bonded, so a maximal run of
//!   set bits is exactly one horizontally connected span — this is what
//!   lets the modular joiner union a whole span with a single
//!   `DisjointSet::union_range` instead of one union per bond;
//! * a *vertical-bond* word is `north & present & present-of-row-above`,
//!   whose set bits are the only places a frontier can cross rows.
//!
//! Because the row-word accessors read in flat-index order, bits past the
//! row end belong to the next row; every band consumer masks with the
//! band width before using a word, and the invariant words above inherit
//! that requirement.

use graphstate::{CsrSnapshot, DisjointSet, GraphState};

use crate::bitmap::Bitmap;

/// One (merged) resource-state layer after the fusion strategy has run: a
/// random subgraph of the `width × height` square lattice.
///
/// Every lattice *site* corresponds to one (merged) resource state; an
/// in-plane *bond* corresponds to a successful leaf-leaf fusion with one of
/// the four lattice neighbors, and a *temporal port* records whether the
/// site still has photons available for a time-like fusion with a later
/// layer.
///
/// This is the structure handed to the online reshaping pass; the exact
/// per-photon graph state it abstracts can be reconstructed for small sizes
/// with [`crate::exact`].
///
/// Equality compares the full site/bond/port state plus the accounting
/// fields — the byte-identity check used by the pipelined-stream
/// determinism suite to prove that layers generated on a dedicated
/// pipeline thread match in-thread generation exactly. With the bit-packed
/// planes this holds word for word thanks to the canonical trailing mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalLayer {
    /// Sites along the x axis.
    pub width: usize,
    /// Sites along the y axis.
    pub height: usize,
    /// Whether each site holds a usable (merged) resource state.
    site_present: Bitmap,
    /// Bond between `(x, y)` and `(x + 1, y)`.
    bond_east: Bitmap,
    /// Bond between `(x, y)` and `(x, y + 1)`.
    bond_north: Bitmap,
    /// Whether each site retains a photon for a time-like fusion.
    temporal_port: Bitmap,
    /// Raw RSLs consumed to produce this merged layer.
    pub raw_rsl_consumed: usize,
    /// Fusions attempted while producing this layer.
    pub fusions_attempted: u64,
    /// Fusions that succeeded while producing this layer.
    pub fusions_succeeded: u64,
}

impl PhysicalLayer {
    /// Creates an empty layer (all sites present, no bonds, all temporal
    /// ports available) of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn blank(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "layer dimensions must be positive");
        let n = width * height;
        PhysicalLayer {
            width,
            height,
            site_present: Bitmap::with_len(n, true),
            bond_east: Bitmap::with_len(n, false),
            bond_north: Bitmap::with_len(n, false),
            temporal_port: Bitmap::with_len(n, true),
            raw_rsl_consumed: 1,
            fusions_attempted: 0,
            fusions_succeeded: 0,
        }
    }

    /// A fully connected lattice (every site present, every bond present) —
    /// what the strategy would produce with a deterministic fusion.
    ///
    /// Built word-parallel: both bond planes are filled whole words at a
    /// time (the trailing word masked to the lattice size), then the
    /// never-stored bits — the last column of the east plane, the last row
    /// of the north plane — are cleared.
    pub fn fully_connected(width: usize, height: usize) -> Self {
        let mut layer = Self::blank(width, height);
        let n = width * height;
        layer.bond_east.reset(n, true);
        for y in 0..height {
            layer.bond_east.set(y * width + width - 1, false);
        }
        layer.bond_north.reset(n, true);
        for x in 0..width {
            layer.bond_north.set((height - 1) * width + x, false);
        }
        layer
    }

    /// Resets this layer to the blank state (all sites present, no bonds,
    /// all temporal ports available) of the given dimensions, reusing the
    /// existing allocations. The per-RSL online loop calls this instead of
    /// [`PhysicalLayer::blank`] so steady-state layer generation performs no
    /// heap allocation.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn reset_blank(&mut self, width: usize, height: usize) {
        assert!(width > 0 && height > 0, "layer dimensions must be positive");
        let n = width * height;
        self.width = width;
        self.height = height;
        self.site_present.reset(n, true);
        self.bond_east.reset(n, false);
        self.bond_north.reset(n, false);
        self.temporal_port.reset(n, true);
        self.raw_rsl_consumed = 1;
        self.fusions_attempted = 0;
        self.fusions_succeeded = 0;
    }

    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Whether the site at flat index `i` (row-major `y * width + x`) holds
    /// a usable resource state. Flat-index twin of
    /// [`PhysicalLayer::site_present`] for the percolation hot path.
    #[inline]
    pub fn site_present_at(&self, i: usize) -> bool {
        self.site_present.get(i)
    }

    /// Whether the bond from flat site `i` to its east neighbor `i + 1` is
    /// present. Sites in the last column never store an east bond (the
    /// setter rejects them), so the raw read needs no column check.
    #[inline]
    pub fn bond_east_at(&self, i: usize) -> bool {
        self.bond_east.get(i)
    }

    /// Whether the bond from flat site `i` to its north neighbor
    /// `i + width` is present. Sites in the last row never store a north
    /// bond, so the raw read needs no row check.
    #[inline]
    pub fn bond_north_at(&self, i: usize) -> bool {
        self.bond_north.get(i)
    }

    /// Number of sites in the layer.
    pub fn site_count(&self) -> usize {
        self.width * self.height
    }

    /// Number of *present* sites, as a popcount over the packed site words.
    pub fn present_site_count(&self) -> usize {
        self.site_present.count_ones()
    }

    /// Number of sites with an available temporal port (popcount).
    pub fn temporal_port_count(&self) -> usize {
        self.temporal_port.count_ones()
    }

    /// Whether the site at `(x, y)` holds a usable resource state.
    pub fn site_present(&self, x: usize, y: usize) -> bool {
        self.site_present.get(self.idx(x, y))
    }

    /// Marks the presence of the site at `(x, y)`.
    pub fn set_site_present(&mut self, x: usize, y: usize, present: bool) {
        let i = self.idx(x, y);
        self.site_present.set(i, present);
    }

    /// Whether the bond from `(x, y)` to `(x + 1, y)` is present.
    pub fn bond_east(&self, x: usize, y: usize) -> bool {
        x + 1 < self.width && self.bond_east.get(self.idx(x, y))
    }

    /// Whether the bond from `(x, y)` to `(x, y + 1)` is present.
    pub fn bond_north(&self, x: usize, y: usize) -> bool {
        y + 1 < self.height && self.bond_north.get(self.idx(x, y))
    }

    /// Sets the bond from `(x, y)` to `(x + 1, y)`.
    ///
    /// # Panics
    ///
    /// Panics when `(x + 1, y)` is outside the lattice.
    pub fn set_bond_east(&mut self, x: usize, y: usize, present: bool) {
        assert!(x + 1 < self.width, "east bond leaves the lattice");
        let i = self.idx(x, y);
        self.bond_east.set(i, present);
    }

    /// Sets the bond from `(x, y)` to `(x, y + 1)`.
    ///
    /// # Panics
    ///
    /// Panics when `(x, y + 1)` is outside the lattice.
    pub fn set_bond_north(&mut self, x: usize, y: usize, present: bool) {
        assert!(y + 1 < self.height, "north bond leaves the lattice");
        let i = self.idx(x, y);
        self.bond_north.set(i, present);
    }

    /// Whether the site at `(x, y)` retains a photon for a time-like fusion.
    pub fn temporal_port(&self, x: usize, y: usize) -> bool {
        self.temporal_port.get(self.idx(x, y))
    }

    /// Sets the temporal-port availability of the site at `(x, y)`.
    pub fn set_temporal_port(&mut self, x: usize, y: usize, available: bool) {
        let i = self.idx(x, y);
        self.temporal_port.set(i, available);
    }

    /// The packed site-presence words (flat site `i` at bit `i % 64` of
    /// word `i / 64`; see the module docs for the full convention).
    pub fn site_words(&self) -> &[u64] {
        self.site_present.words()
    }

    /// The packed east-bond words. The last column of the lattice never
    /// holds a bit.
    pub fn bond_east_words(&self) -> &[u64] {
        self.bond_east.words()
    }

    /// The packed north-bond words. The last row of the lattice never holds
    /// a bit.
    pub fn bond_north_words(&self) -> &[u64] {
        self.bond_north.words()
    }

    /// The packed temporal-port words.
    pub fn temporal_port_words(&self) -> &[u64] {
        self.temporal_port.words()
    }

    /// The site-presence plane as a [`Bitmap`] (read-only), for word-scan
    /// consumers such as the renormalizer's band seeding and the modular
    /// joiner's strip precheck.
    pub fn site_bits(&self) -> &Bitmap {
        &self.site_present
    }

    /// The east-bond plane as a [`Bitmap`] (read-only).
    pub fn bond_east_bits(&self) -> &Bitmap {
        &self.bond_east
    }

    /// The north-bond plane as a [`Bitmap`] (read-only).
    pub fn bond_north_bits(&self) -> &Bitmap {
        &self.bond_north
    }

    /// Iterates the flat indices of present sites in `lo..hi` (word scan).
    pub fn present_in_range(&self, lo: usize, hi: usize) -> crate::bitmap::SetBits<'_> {
        self.site_present.iter_set_in(lo, hi)
    }

    /// 64 site-presence bits starting at `(x0, y)`: bit `j` is the site at
    /// `(x0 + j, y)` **in flat-index order**, which runs into row `y + 1`
    /// when `x0 + j` passes the row end — callers mask to their row width.
    /// Single-load when the flat offset is word-aligned (see
    /// [`Bitmap::word_at`]); the band scans of the percolation crates read
    /// every row through these instead of `range_word`'s double shift.
    #[inline]
    pub fn site_row_word(&self, y: usize, x0: usize) -> u64 {
        self.site_present.word_at(y * self.width + x0)
    }

    /// 64 east-bond bits starting at `(x0, y)` (bit `j`: bond from
    /// `(x0 + j, y)` to its east neighbor); same flat-order caveat as
    /// [`PhysicalLayer::site_row_word`].
    #[inline]
    pub fn bond_east_row_word(&self, y: usize, x0: usize) -> u64 {
        self.bond_east.word_at(y * self.width + x0)
    }

    /// 64 north-bond bits starting at `(x0, y)` (bit `j`: bond from
    /// `(x0 + j, y)` to `(x0 + j, y + 1)`); same flat-order caveat as
    /// [`PhysicalLayer::site_row_word`].
    #[inline]
    pub fn bond_north_row_word(&self, y: usize, x0: usize) -> u64 {
        self.bond_north.word_at(y * self.width + x0)
    }

    /// Stores 64 site-presence bits at word index `wi` (layer generator
    /// fast path).
    #[inline]
    pub(crate) fn store_site_word(&mut self, wi: usize, bits: u64) {
        self.site_present.store_word(wi, bits);
    }

    /// Stores 64 temporal-port bits at word index `wi`.
    #[inline]
    pub(crate) fn store_port_word(&mut self, wi: usize, bits: u64) {
        self.temporal_port.store_word(wi, bits);
    }

    /// ORs accumulated east-bond bits into word `wi`. The caller must not
    /// set last-column bits.
    #[inline]
    pub(crate) fn or_bond_east_word(&mut self, wi: usize, bits: u64) {
        self.bond_east.or_word(wi, bits);
    }

    /// ORs accumulated north-bond bits into word `wi`. The caller must not
    /// set last-row bits.
    #[inline]
    pub(crate) fn or_bond_north_word(&mut self, wi: usize, bits: u64) {
        self.bond_north.or_word(wi, bits);
    }

    /// Returns `true` when two adjacent sites are connected by a present
    /// bond (both sites must also be present).
    pub fn connected_neighbors(&self, a: (usize, usize), b: (usize, usize)) -> bool {
        if !self.site_present(a.0, a.1) || !self.site_present(b.0, b.1) {
            return false;
        }
        let (ax, ay) = a;
        let (bx, by) = b;
        if ay == by && bx == ax + 1 {
            self.bond_east(ax, ay)
        } else if ay == by && ax == bx + 1 {
            self.bond_east(bx, by)
        } else if ax == bx && by == ay + 1 {
            self.bond_north(ax, ay)
        } else if ax == bx && ay == by + 1 {
            self.bond_north(bx, by)
        } else {
            false
        }
    }

    /// Number of present bonds in the layer, as a popcount over the packed
    /// bond words (exact because the planes never store last-column /
    /// last-row bits and the trailing words are canonically masked).
    pub fn bond_count(&self) -> usize {
        self.bond_east.count_ones() + self.bond_north.count_ones()
    }

    /// Union-find structure over the sites connecting every present bond;
    /// used by the percolation pass for cheap connectivity checks.
    pub fn connectivity(&self) -> DisjointSet {
        let mut dsu = DisjointSet::new(self.site_count());
        for y in 0..self.height {
            for x in 0..self.width {
                if !self.site_present(x, y) {
                    continue;
                }
                if x + 1 < self.width
                    && self.site_present(x + 1, y)
                    && self.bond_east(x, y)
                {
                    dsu.union(self.idx(x, y), self.idx(x + 1, y));
                }
                if y + 1 < self.height
                    && self.site_present(x, y + 1)
                    && self.bond_north(x, y)
                {
                    dsu.union(self.idx(x, y), self.idx(x, y + 1));
                }
            }
        }
        dsu
    }

    /// Size of the largest connected component of present sites (isolated
    /// present sites count as components of size 1).
    pub fn largest_component_size(&self) -> usize {
        let mut dsu = self.connectivity();
        let mut counts = vec![0usize; self.site_count()];
        let mut best = 0;
        for i in self.site_present.iter_set_in(0, self.site_count()) {
            let root = dsu.find(i);
            counts[root] += 1;
            best = best.max(counts[root]);
        }
        best
    }

    /// Converts the site lattice into an explicit [`GraphState`] whose
    /// vertices are the present sites (vertex id = `y * width + x`) and
    /// whose edges are the present bonds. Convenient for path finding and
    /// for tests.
    pub fn to_graph(&self) -> GraphState {
        let mut g = GraphState::with_vertices(self.site_count());
        for y in 0..self.height {
            for x in 0..self.width {
                if !self.site_present(x, y) {
                    g.remove_vertex(self.idx(x, y));
                }
            }
        }
        for y in 0..self.height {
            for x in 0..self.width {
                if !self.site_present(x, y) {
                    continue;
                }
                if x + 1 < self.width && self.site_present(x + 1, y) && self.bond_east(x, y) {
                    g.add_edge(self.idx(x, y), self.idx(x + 1, y));
                }
                if y + 1 < self.height && self.site_present(x, y + 1) && self.bond_north(x, y) {
                    g.add_edge(self.idx(x, y), self.idx(x, y + 1));
                }
            }
        }
        g
    }

    /// Builds a compressed-sparse-row snapshot of the bond graph directly
    /// from the site lattice (vertex id = `y * width + x`, the flat site
    /// index). Equivalent to `self.to_graph().snapshot_csr()` but skips the
    /// intermediate mutable graph, which matters when percolation analyses
    /// take one read-only snapshot per RSL.
    pub fn to_csr(&self) -> CsrSnapshot {
        let n = self.site_count();
        let w = self.width;
        // A bond (i, j) with i < j contributes j to row i and i to row j.
        // The four neighbor directions of a site are visited in increasing
        // flat-index order (i - w, i - 1, i + 1, i + w), so each row of the
        // CSR comes out sorted without a sort pass.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * self.bond_count());
        offsets.push(0u32);
        for i in 0..n {
            if self.site_present.get(i) {
                let (x, y) = (i % w, i / w);
                if y > 0 && self.site_present.get(i - w) && self.bond_north.get(i - w) {
                    targets.push((i - w) as u32);
                }
                if x > 0 && self.site_present.get(i - 1) && self.bond_east.get(i - 1) {
                    targets.push((i - 1) as u32);
                }
                if x + 1 < w && self.site_present.get(i + 1) && self.bond_east.get(i) {
                    targets.push((i + 1) as u32);
                }
                if y + 1 < self.height && self.site_present.get(i + w) && self.bond_north.get(i) {
                    targets.push((i + w) as u32);
                }
            }
            offsets.push(targets.len() as u32);
        }
        CsrSnapshot::from_parts(offsets, targets)
    }

    /// Linear index of the site at `(x, y)` (row-major), matching the vertex
    /// ids of [`PhysicalLayer::to_graph`] and [`PhysicalLayer::connectivity`].
    pub fn site_index(&self, x: usize, y: usize) -> usize {
        self.idx(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_layer_has_no_bonds() {
        let layer = PhysicalLayer::blank(4, 3);
        assert_eq!(layer.site_count(), 12);
        assert_eq!(layer.bond_count(), 0);
        assert!(layer.site_present(2, 1));
        assert!(layer.temporal_port(0, 0));
    }

    #[test]
    fn fully_connected_bond_count() {
        let layer = PhysicalLayer::fully_connected(4, 4);
        // 2 * n * (n-1) bonds for an n x n lattice.
        assert_eq!(layer.bond_count(), 2 * 4 * 3);
        assert_eq!(layer.largest_component_size(), 16);
    }

    #[test]
    fn connected_neighbors_symmetry() {
        let mut layer = PhysicalLayer::blank(3, 3);
        layer.set_bond_east(0, 0, true);
        assert!(layer.connected_neighbors((0, 0), (1, 0)));
        assert!(layer.connected_neighbors((1, 0), (0, 0)));
        assert!(!layer.connected_neighbors((0, 0), (0, 1)));
        layer.set_site_present(1, 0, false);
        assert!(!layer.connected_neighbors((0, 0), (1, 0)));
    }

    #[test]
    fn connectivity_matches_graph() {
        let mut layer = PhysicalLayer::blank(3, 1);
        layer.set_bond_east(0, 0, true);
        let mut dsu = layer.connectivity();
        assert!(dsu.same_set(layer.site_index(0, 0), layer.site_index(1, 0)));
        assert!(!dsu.same_set(layer.site_index(0, 0), layer.site_index(2, 0)));
        let g = layer.to_graph();
        assert!(g.connected(0, 1));
        assert!(!g.connected(0, 2));
    }

    #[test]
    fn to_graph_skips_missing_sites() {
        let mut layer = PhysicalLayer::fully_connected(3, 3);
        layer.set_site_present(1, 1, false);
        let g = layer.to_graph();
        assert_eq!(g.vertex_count(), 8);
        assert!(!g.contains(layer.site_index(1, 1)));
    }

    #[test]
    #[should_panic(expected = "east bond leaves the lattice")]
    fn bond_off_the_edge_panics() {
        let mut layer = PhysicalLayer::blank(2, 2);
        layer.set_bond_east(1, 0, true);
    }

    #[test]
    fn flat_index_accessors_match_coordinates() {
        let mut layer = PhysicalLayer::blank(4, 3);
        layer.set_bond_east(1, 2, true);
        layer.set_bond_north(3, 1, true);
        layer.set_site_present(2, 0, false);
        for y in 0..3 {
            for x in 0..4 {
                let i = layer.site_index(x, y);
                assert_eq!(layer.site_present_at(i), layer.site_present(x, y));
                assert_eq!(layer.bond_east_at(i), layer.bond_east(x, y));
                assert_eq!(layer.bond_north_at(i), layer.bond_north(x, y));
            }
        }
    }

    #[test]
    fn reset_blank_reuses_and_resizes() {
        let mut layer = PhysicalLayer::fully_connected(6, 6);
        layer.raw_rsl_consumed = 9;
        layer.fusions_attempted = 5;
        layer.reset_blank(6, 6);
        assert_eq!(layer.bond_count(), 0);
        assert_eq!(layer.raw_rsl_consumed, 1);
        assert_eq!(layer.fusions_attempted, 0);
        assert!(layer.site_present(5, 5));
        // Resizing to a different geometry also works.
        layer.reset_blank(3, 8);
        assert_eq!(layer.width, 3);
        assert_eq!(layer.height, 8);
        assert_eq!(layer.site_count(), 24);
        assert_eq!(layer.bond_count(), 0);
    }

    #[test]
    fn csr_matches_graph_snapshot() {
        let mut layer = PhysicalLayer::fully_connected(5, 4);
        layer.set_site_present(2, 1, false);
        layer.set_bond_east(0, 0, false);
        let direct = layer.to_csr();
        let via_graph = layer.to_graph().snapshot_csr();
        assert_eq!(direct, via_graph);
        assert_eq!(direct.largest_component_size(), layer.largest_component_size());
    }

    #[test]
    fn word_accessors_match_bit_reads() {
        let mut layer = PhysicalLayer::blank(13, 7);
        layer.set_site_present(4, 3, false);
        layer.set_bond_east(7, 5, true);
        layer.set_bond_north(12, 2, true);
        layer.set_temporal_port(0, 6, false);
        let n = layer.site_count();
        for i in 0..n {
            let read = |words: &[u64]| (words[i / 64] >> (i % 64)) & 1 == 1;
            assert_eq!(read(layer.site_words()), layer.site_present_at(i), "site {i}");
            assert_eq!(read(layer.bond_east_words()), layer.bond_east_at(i), "east {i}");
            assert_eq!(read(layer.bond_north_words()), layer.bond_north_at(i), "north {i}");
            assert_eq!(
                read(layer.temporal_port_words()),
                layer.temporal_port(i % 13, i / 13),
                "port {i}"
            );
        }
    }

    #[test]
    fn row_word_accessors_match_bit_reads() {
        let mut layer = PhysicalLayer::blank(13, 7);
        layer.set_site_present(4, 3, false);
        layer.set_site_present(12, 6, false);
        layer.set_bond_east(7, 5, true);
        layer.set_bond_east(0, 0, true);
        layer.set_bond_north(12, 2, true);
        let n = layer.site_count();
        for y in 0..7 {
            for x0 in 0..13 {
                let base = y * 13 + x0;
                for j in 0..64usize {
                    let i = base + j;
                    let expect = |bit: bool| if i < n { bit } else { false };
                    let site = expect(i < n && layer.site_present_at(i));
                    let east = expect(i < n && layer.bond_east_at(i));
                    let north = expect(i < n && layer.bond_north_at(i));
                    assert_eq!((layer.site_row_word(y, x0) >> j) & 1 == 1, site, "site {y},{x0}+{j}");
                    assert_eq!((layer.bond_east_row_word(y, x0) >> j) & 1 == 1, east, "east {y},{x0}+{j}");
                    assert_eq!((layer.bond_north_row_word(y, x0) >> j) & 1 == 1, north, "north {y},{x0}+{j}");
                }
            }
        }
    }

    #[test]
    fn generate_layer_into_matches_generate_layer() {
        use crate::config::HardwareConfig;
        use crate::engine::FusionEngine;
        let cfg = HardwareConfig::new(12, 4, 0.75);
        let mut a = FusionEngine::new(cfg, 31);
        let mut b = FusionEngine::new(cfg, 31);
        let mut reused = PhysicalLayer::blank(1, 1);
        for _ in 0..3 {
            let fresh = a.generate_layer();
            b.generate_layer_into(&mut reused);
            assert_eq!(fresh.bond_count(), reused.bond_count());
            assert_eq!(fresh.fusions_attempted, reused.fusions_attempted);
            for y in 0..12 {
                for x in 0..12 {
                    assert_eq!(fresh.site_present(x, y), reused.site_present(x, y));
                    assert_eq!(fresh.bond_east(x, y), reused.bond_east(x, y));
                    assert_eq!(fresh.bond_north(x, y), reused.bond_north(x, y));
                    assert_eq!(fresh.temporal_port(x, y), reused.temporal_port(x, y));
                }
            }
        }
    }
}
