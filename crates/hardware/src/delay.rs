//! Delay-line storage with photon-lifetime accounting.
//!
//! Cross-layer time-like connections temporarily store photonic qubits in
//! optical-fiber delay lines. Photons survive only a bounded number of RSG
//! cycles (≈ 5000 in the paper); the online pass must therefore track how
//! long every stored qubit has been waiting and treat expired qubits as
//! lost.

use std::collections::HashMap;

/// A delay-line bank storing tagged items with a bounded lifetime measured
/// in RSG cycles.
///
/// The item type is generic so the online pass can store whatever handle it
/// needs (virtual-node ids, site coordinates, …).
///
/// # Example
///
/// ```
/// use oneperc_hardware::DelayLine;
///
/// let mut dl: DelayLine<&'static str> = DelayLine::new(3);
/// dl.store(7, "qubit");
/// dl.advance_cycle();
/// assert_eq!(dl.retrieve(7), Some("qubit"));
/// ```
#[derive(Debug, Clone)]
pub struct DelayLine<T> {
    lifetime: usize,
    cycle: u64,
    slots: HashMap<u64, (u64, T)>,
    expired: u64,
}

impl<T> DelayLine<T> {
    /// Creates a delay-line bank in which items survive `lifetime` cycles.
    ///
    /// # Panics
    ///
    /// Panics when `lifetime == 0`.
    pub fn new(lifetime: usize) -> Self {
        assert!(lifetime > 0, "photon lifetime must be positive");
        DelayLine {
            lifetime,
            cycle: 0,
            slots: HashMap::new(),
            expired: 0,
        }
    }

    /// The configured lifetime in cycles.
    pub fn lifetime(&self) -> usize {
        self.lifetime
    }

    /// The current cycle counter.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of items currently stored (expired items are purged lazily on
    /// [`DelayLine::advance_cycle`]).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of items that have been lost to photon decay so far.
    pub fn expired_count(&self) -> u64 {
        self.expired
    }

    /// Stores an item under `key`, replacing (and returning) any previous
    /// item under the same key.
    pub fn store(&mut self, key: u64, item: T) -> Option<T> {
        self.slots.insert(key, (self.cycle, item)).map(|(_, v)| v)
    }

    /// Removes and returns the item stored under `key`, if it is still
    /// alive.
    pub fn retrieve(&mut self, key: u64) -> Option<T> {
        self.slots.remove(&key).map(|(_, v)| v)
    }

    /// Returns `true` when `key` currently holds a live item.
    pub fn contains(&self, key: u64) -> bool {
        self.slots.contains_key(&key)
    }

    /// Age (in cycles) of the item under `key`, if present.
    pub fn age(&self, key: u64) -> Option<u64> {
        self.slots.get(&key).map(|(born, _)| self.cycle - born)
    }

    /// Advances the cycle counter by one and purges items that exceeded the
    /// photon lifetime, returning how many were lost this cycle.
    pub fn advance_cycle(&mut self) -> usize {
        self.cycle += 1;
        let lifetime = self.lifetime as u64;
        let cycle = self.cycle;
        let before = self.slots.len();
        self.slots.retain(|_, (born, _)| cycle - *born <= lifetime);
        let lost = before - self.slots.len();
        self.expired += lost as u64;
        lost
    }

    /// Advances the cycle counter by `n` cycles.
    pub fn advance_cycles(&mut self, n: usize) -> usize {
        (0..n).map(|_| self.advance_cycle()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_retrieve_within_lifetime() {
        let mut dl = DelayLine::new(5);
        dl.store(1, "a");
        dl.store(2, "b");
        assert_eq!(dl.len(), 2);
        dl.advance_cycles(3);
        assert_eq!(dl.retrieve(1), Some("a"));
        assert!(dl.contains(2));
        assert_eq!(dl.age(2), Some(3));
        assert_eq!(dl.expired_count(), 0);
    }

    #[test]
    fn items_expire_after_lifetime() {
        let mut dl = DelayLine::new(2);
        dl.store(1, 10u32);
        assert_eq!(dl.advance_cycles(2), 0);
        // Third cycle exceeds the lifetime.
        assert_eq!(dl.advance_cycle(), 1);
        assert!(dl.retrieve(1).is_none());
        assert_eq!(dl.expired_count(), 1);
        assert!(dl.is_empty());
    }

    #[test]
    fn replacing_resets_nothing_but_returns_old() {
        let mut dl = DelayLine::new(4);
        dl.store(1, "old");
        let prev = dl.store(1, "new");
        assert_eq!(prev, Some("old"));
        assert_eq!(dl.retrieve(1), Some("new"));
    }

    #[test]
    #[should_panic(expected = "lifetime must be positive")]
    fn zero_lifetime_panics() {
        let _: DelayLine<u8> = DelayLine::new(0);
    }
}
