//! The semi-static fusion strategy (Section 4) and the layer generator.

use crate::config::HardwareConfig;
use crate::layer::PhysicalLayer;
use crate::sampler::{FusionSampler, FusionStats};

/// A static description of the fusion strategy derived from the hardware
/// configuration: how many raw RSLs are merged per effective layer, how many
/// leaves each merged site can spend, and the expected fusion cost per
/// layer. The strategy is *semi-static*: the pattern is fixed offline, only
/// collective retries react to heralded failures at run time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionStrategy {
    config: HardwareConfig,
}

impl FusionStrategy {
    /// Builds the strategy for a hardware configuration.
    pub fn new(config: HardwareConfig) -> Self {
        FusionStrategy { config }
    }

    /// The underlying hardware configuration.
    pub fn config(&self) -> &HardwareConfig {
        &self.config
    }

    /// Raw RSLs merged per effective layer (1 when the resource states have
    /// sufficient degree).
    pub fn merging_factor(&self) -> usize {
        self.config.merging_factor()
    }

    /// Root-leaf fusions planned per site per layer (merging phase).
    pub fn root_leaf_fusions_per_site(&self) -> usize {
        self.merging_factor() - 1
    }

    /// In-plane leaf-leaf fusions planned per layer (one per lattice bond).
    pub fn planned_bond_fusions(&self) -> usize {
        let n = self.config.rsl_size;
        2 * n * (n - 1)
    }

    /// A rough expectation of the number of fusions consumed per effective
    /// layer (merging + bonds + one temporal port per site), ignoring
    /// retries. Used for capacity planning and sanity checks; the engine
    /// reports exact counts.
    pub fn expected_fusions_per_layer(&self) -> usize {
        let sites = self.config.sites_per_rsl();
        self.root_leaf_fusions_per_site() * sites + self.planned_bond_fusions() + sites
    }
}

/// Generates random physical graph state layers by executing the fusion
/// strategy against a stochastic fusion sampler.
///
/// # Example
///
/// ```
/// use oneperc_hardware::{FusionEngine, HardwareConfig};
///
/// let mut engine = FusionEngine::new(HardwareConfig::new(16, 7, 0.75), 1);
/// let layer = engine.generate_layer();
/// assert!(layer.bond_count() > 0);
/// assert_eq!(engine.raw_rsl_consumed(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FusionEngine {
    strategy: FusionStrategy,
    sampler: FusionSampler,
    raw_rsl_consumed: u64,
    /// Per-site scratch reused across layers: remaining leaves after the
    /// merging phase, then the in-plane bond budget. Kept on the engine so
    /// the steady-state per-RSL loop allocates nothing.
    site_leaves: Vec<usize>,
    inplane_budget: Vec<usize>,
    /// Pre-drawn first-attempt outcome words for one row of east/north
    /// bonds (whole-row fast path; reused across rows and layers).
    row_east: Vec<u64>,
    row_north: Vec<u64>,
}

impl FusionEngine {
    /// Creates an engine for the given configuration and RNG seed.
    pub fn new(config: HardwareConfig, seed: u64) -> Self {
        FusionEngine {
            strategy: FusionStrategy::new(config),
            sampler: FusionSampler::new(config.effective_fusion_prob(), seed),
            raw_rsl_consumed: 0,
            site_leaves: Vec::new(),
            inplane_budget: Vec::new(),
            row_east: Vec::new(),
            row_north: Vec::new(),
        }
    }

    /// The fusion strategy in use.
    pub fn strategy(&self) -> &FusionStrategy {
        &self.strategy
    }

    /// Restarts the engine's stochastic stream from `seed`, exactly as if
    /// the engine had been freshly constructed with that seed — the sampler
    /// stream, the attempt statistics and the raw-RSL counter all start
    /// over — while keeping the per-site scratch allocations warm. Long-
    /// lived execution contexts use this to run many seeded experiments
    /// through one engine (and one generator thread) without paying
    /// construction cost per run.
    pub fn reseed(&mut self, seed: u64) {
        let config = *self.config();
        self.sampler = FusionSampler::new(config.effective_fusion_prob(), seed);
        self.raw_rsl_consumed = 0;
    }

    /// The hardware configuration in use.
    pub fn config(&self) -> &HardwareConfig {
        self.strategy.config()
    }

    /// Total raw RSLs consumed so far (the paper's `#RSL` metric counts
    /// these).
    pub fn raw_rsl_consumed(&self) -> u64 {
        self.raw_rsl_consumed
    }

    /// Total fusion-attempt statistics so far (the `#fusion` metric).
    pub fn fusion_stats(&self) -> FusionStats {
        self.sampler.stats()
    }

    /// Samples one ad-hoc fusion outside the layer pattern (used by the
    /// reshaping pass for time-like fusions); the attempt is accounted for
    /// in [`FusionEngine::fusion_stats`].
    pub fn sample_fusion(&mut self) -> graphstate::FusionOutcome {
        self.sampler.sample()
    }

    /// Executes the fusion strategy for one effective layer and returns the
    /// resulting random physical graph state in site-lattice form.
    pub fn generate_layer(&mut self) -> PhysicalLayer {
        let n = self.config().rsl_size;
        let mut layer = PhysicalLayer::blank(n, n);
        self.generate_layer_into(&mut layer);
        layer
    }

    /// Executes the fusion strategy for one effective layer, writing the
    /// result into `layer` (resized and reset as needed). Combined with the
    /// engine-held per-site scratch this makes steady-state layer generation
    /// allocation-free, which is what the online per-RSL loop of the
    /// reshaping pass uses.
    pub fn generate_layer_into(&mut self, layer: &mut PhysicalLayer) {
        let cfg = *self.config();
        let n = cfg.rsl_size;
        let m = cfg.merging_factor();
        let base_degree = cfg.resource_state_degree();
        let stats_before = self.sampler.stats();

        layer.reset_blank(n, n);
        layer.raw_rsl_consumed = m;
        self.raw_rsl_consumed += m as u64;

        // Phase 1: root-leaf merging to boost site degree (Section 4.1/4.2).
        // Each failed attempt costs one leaf on the cluster and one degree on
        // the incoming star (which is recovered into a smaller star by local
        // complementation, Section 4.2); the retry uses the remaining
        // degrees (collective feed-forward, Section 4.3).
        self.site_leaves.clear();
        for _ in 0..(n * n) {
            let mut cluster = base_degree;
            for _ in 0..(m - 1) {
                let mut incoming = base_degree;
                loop {
                    if cluster == 0 || incoming == 0 {
                        break;
                    }
                    if self.sampler.sample().is_success() {
                        cluster = cluster - 1 + incoming;
                        break;
                    }
                    cluster -= 1;
                    incoming -= 1;
                }
            }
            self.site_leaves.push(cluster);
        }

        // Reserve one temporal port (a photon kept for fusing towards a
        // neighboring layer) before spending leaves on in-plane bonds. Only
        // the few sites that end up as renormalized nodes actually use their
        // port, so a single reservation per site suffices — the paper's
        // strategy likewise keeps the redundant degrees for retries rather
        // than parking them.
        //
        // The presence/port planes are written word-parallel: 64 sites of
        // derived bits are accumulated in registers and stored as one `u64`
        // each, instead of 64 boolean stores per plane.
        self.inplane_budget.clear();
        let total = n * n;
        let mut wi = 0usize;
        let mut site_word = 0u64;
        let mut port_word = 0u64;
        for (i, &leaves) in self.site_leaves.iter().enumerate() {
            let bit = 1u64 << (i % 64);
            let forward = leaves >= 1;
            if forward {
                port_word |= bit;
            }
            if leaves >= 2 {
                site_word |= bit;
            }
            self.inplane_budget.push(leaves - usize::from(forward));
            if i % 64 == 63 {
                layer.store_site_word(wi, site_word);
                layer.store_port_word(wi, port_word);
                wi += 1;
                site_word = 0;
                port_word = 0;
            }
        }
        if !total.is_multiple_of(64) {
            layer.store_site_word(wi, site_word);
            layer.store_port_word(wi, port_word);
        }
        // Split borrows: the bond loop below mutates the budget while
        // drawing from the sampler.
        let FusionEngine { sampler, inplane_budget, row_east, row_north, .. } = self;

        // Phase 2: in-plane leaf-leaf bonds. Every bond consumes one leaf at
        // each endpoint; failed bonds are retried when both endpoints still
        // hold redundant leaves beyond what their remaining planned bonds
        // need.
        //
        // Outcomes come from the sampler's word-batched bit-sliced stream
        // (64 Bernoulli draws per refill); decided bonds are OR-ed straight
        // into the packed words. (Register-accumulating 64 decisions before
        // storing was measured slower here: the word-boundary branch and the
        // extra live registers cost more than L1-hit read-modify-writes.)
        let idx = |x: usize, y: usize| y * n + x;
        let remaining_bonds = |x: usize, y: usize| -> usize {
            // Bonds not yet attempted for this site given the sweep order
            // (east then north, row-major): east of (x,y), north of (x,y),
            // and the bonds arriving from west/south are attempted when the
            // neighbor is visited, so count only the outgoing ones here.
            let mut c = 0;
            if x + 1 < n {
                c += 1;
            }
            if y + 1 < n {
                c += 1;
            }
            c
        };
        // Whole-row first-attempt fast path. With merging factor 1 the
        // merging phase draws nothing and every site starts with
        // `degree - 1` in-plane leaves; for `degree >= 6` that budget
        // provably never reaches zero before a first attempt: retries are
        // gated on `budget > remaining_bonds` (a per-site constant, at most
        // 2), so each retry leaves at least that many leaves behind, and
        // the worst-case drain before a site's last outgoing first attempt
        // (two neighbor bonds with retries, then the own east bond) still
        // leaves one leaf when starting from five. Every bond's first
        // attempt is therefore unconditional, and a whole row of them can
        // be pre-drawn as packed words — one `sample_batched_word` per 64
        // bonds with one stats update, instead of per-bit consumption —
        // while the data-dependent retries keep reading the same batched
        // stream bit by bit right after the row's words.
        //
        // This reorders the draws within a row (all first attempts, then
        // the retries of the sweep) and is the sanctioned one-time RNG
        // stream break of PR 6: the dense reference engine consumes the
        // stream in exactly the same order, so site-for-site equivalence
        // still pins the layers.
        let whole_row = m == 1 && base_degree >= 6;
        if whole_row {
            for y in 0..n {
                row_east.clear();
                for cx in 0..(n - 1).div_ceil(64) {
                    let cnt = 64.min(n - 1 - cx * 64) as u32;
                    row_east.push(sampler.sample_batched_word(cnt));
                }
                row_north.clear();
                if y + 1 < n {
                    for cx in 0..n.div_ceil(64) {
                        let cnt = 64.min(n - cx * 64) as u32;
                        row_north.push(sampler.sample_batched_word(cnt));
                    }
                }
                for x in 0..n {
                    let a = idx(x, y);
                    for east in [true, false] {
                        let (bx, by) = if east { (x + 1, y) } else { (x, y + 1) };
                        if bx >= n || by >= n {
                            continue;
                        }
                        let b = idx(bx, by);
                        debug_assert!(
                            inplane_budget[a] > 0 && inplane_budget[b] > 0,
                            "whole-row fast path drew a first attempt for a skipped bond"
                        );
                        inplane_budget[a] -= 1;
                        inplane_budget[b] -= 1;
                        let row = if east { &*row_east } else { &*row_north };
                        let mut ok = row[x / 64] >> (x % 64) & 1 == 1;
                        if !ok {
                            // Collective retry with redundant degrees.
                            let spare_a = inplane_budget[a] > remaining_bonds(x, y);
                            let spare_b = inplane_budget[b] > remaining_bonds(bx, by);
                            if spare_a && spare_b {
                                inplane_budget[a] -= 1;
                                inplane_budget[b] -= 1;
                                ok = sampler.sample_batched().is_success();
                            }
                        }
                        if ok {
                            let bit = 1u64 << (a % 64);
                            if east {
                                layer.or_bond_east_word(a / 64, bit);
                            } else {
                                layer.or_bond_north_word(a / 64, bit);
                            }
                        }
                    }
                }
            }
        } else {
            // Exhaustible budgets (merged or low-degree resource states):
            // attempt eligibility is data-dependent, so outcomes are
            // consumed one bit per attempt, keeping accounting exact under
            // the budget/retry control flow.
            for y in 0..n {
                for x in 0..n {
                    let a = idx(x, y);
                    for east in [true, false] {
                        let (bx, by) = if east { (x + 1, y) } else { (x, y + 1) };
                        if bx >= n || by >= n {
                            continue;
                        }
                        let b = idx(bx, by);
                        // Site presence (`leaves >= 2`) is equivalent to a
                        // positive initial in-plane budget (`leaves - 1 >= 1`),
                        // so the budget test below subsumes the presence test
                        // the byte-walk implementation performed first — no
                        // per-bond bitmap reads on this path.
                        if inplane_budget[a] == 0 || inplane_budget[b] == 0 {
                            continue;
                        }
                        inplane_budget[a] -= 1;
                        inplane_budget[b] -= 1;
                        let mut ok = sampler.sample_batched().is_success();
                        if !ok {
                            // Collective retry with redundant degrees.
                            let spare_a = inplane_budget[a] > remaining_bonds(x, y);
                            let spare_b = inplane_budget[b] > remaining_bonds(bx, by);
                            if spare_a && spare_b {
                                inplane_budget[a] -= 1;
                                inplane_budget[b] -= 1;
                                ok = sampler.sample_batched().is_success();
                            }
                        }
                        if ok {
                            let bit = 1u64 << (a % 64);
                            if east {
                                layer.or_bond_east_word(a / 64, bit);
                            } else {
                                layer.or_bond_north_word(a / 64, bit);
                            }
                        }
                    }
                }
            }
        }
        // End of the batched phase: discard leftover pre-drawn bits so the
        // merging phase of the next layer (and any time-like fusion) reads
        // the per-attempt stream from a deterministic state.
        sampler.flush_batch();

        let stats_after = sampler.stats();
        layer.fusions_attempted = stats_after.attempted - stats_before.attempted;
        layer.fusions_succeeded = stats_after.succeeded - stats_before.succeeded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_counts() {
        let s = FusionStrategy::new(HardwareConfig::new(10, 4, 0.75));
        assert_eq!(s.merging_factor(), 3);
        assert_eq!(s.root_leaf_fusions_per_site(), 2);
        assert_eq!(s.planned_bond_fusions(), 2 * 10 * 9);
        assert!(s.expected_fusions_per_layer() > s.planned_bond_fusions());
    }

    #[test]
    fn deterministic_fusion_yields_full_lattice() {
        let mut engine = FusionEngine::new(HardwareConfig::new(8, 7, 1.0), 3);
        let layer = engine.generate_layer();
        assert_eq!(layer.bond_count(), 2 * 8 * 7);
        assert_eq!(layer.largest_component_size(), 64);
        assert_eq!(layer.raw_rsl_consumed, 1);
    }

    #[test]
    fn whole_row_fast_path_attempts_every_bond() {
        // Merging factor 1 with degree >= 6: budgets provably never
        // exhaust, so every lattice bond gets exactly one first attempt
        // (pre-drawn by the whole-row words) and attempts beyond the
        // planned bond count are retries, at most one per bond. The
        // fast path's debug assertion cross-checks the non-exhaustion
        // proof on every generated layer.
        for side in [1usize, 2, 7, 33, 64, 65] {
            let cfg = HardwareConfig::new(side, 7, 0.7);
            assert_eq!(cfg.merging_factor(), 1);
            let mut engine = FusionEngine::new(cfg, 13);
            let layer = engine.generate_layer();
            let planned = engine.strategy().planned_bond_fusions() as u64;
            assert!(
                layer.fusions_attempted >= planned,
                "L={side}: {} attempts for {planned} planned bonds",
                layer.fusions_attempted
            );
            assert!(layer.fusions_attempted <= 2 * planned.max(1));
        }
    }

    #[test]
    fn practical_probability_percolates() {
        // At p = 0.75 (above the square-lattice bond-percolation threshold
        // of 0.5) the largest connected component spans most of the layer.
        let mut engine = FusionEngine::new(HardwareConfig::new(40, 7, 0.75), 11);
        let layer = engine.generate_layer();
        let giant = layer.largest_component_size();
        assert!(
            giant > layer.site_count() / 2,
            "giant component too small: {giant} of {}",
            layer.site_count()
        );
    }

    #[test]
    fn low_degree_resource_states_consume_more_raw_rsls() {
        let mut small = FusionEngine::new(HardwareConfig::new(12, 4, 0.75), 5);
        let mut big = FusionEngine::new(HardwareConfig::new(12, 7, 0.75), 5);
        let a = small.generate_layer();
        let b = big.generate_layer();
        assert_eq!(a.raw_rsl_consumed, 3);
        assert_eq!(b.raw_rsl_consumed, 1);
        assert_eq!(small.raw_rsl_consumed(), 3);
        assert_eq!(big.raw_rsl_consumed(), 1);
        // The merged layer also consumes extra fusions for the merging.
        assert!(a.fusions_attempted > b.fusions_attempted);
    }

    #[test]
    fn fusion_accounting_accumulates() {
        let mut engine = FusionEngine::new(HardwareConfig::new(10, 7, 0.75), 2);
        let l1 = engine.generate_layer();
        let l2 = engine.generate_layer();
        let total = engine.fusion_stats();
        assert_eq!(total.attempted, l1.fusions_attempted + l2.fusions_attempted);
        let _ = engine.sample_fusion();
        assert_eq!(engine.fusion_stats().attempted, total.attempted + 1);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut a = FusionEngine::new(HardwareConfig::new(14, 4, 0.7), 77);
        let mut b = FusionEngine::new(HardwareConfig::new(14, 4, 0.7), 77);
        let la = a.generate_layer();
        let lb = b.generate_layer();
        assert_eq!(la.bond_count(), lb.bond_count());
        assert_eq!(la.fusions_attempted, lb.fusions_attempted);
    }

    #[test]
    fn generation_stream_is_identical_across_threads() {
        // The pipelined reshaping engine moves the FusionEngine onto a
        // dedicated generator thread; the layer stream must not depend on
        // which thread drives the engine.
        let cfg = HardwareConfig::new(16, 7, 0.75);
        let mut local = FusionEngine::new(cfg, 55);
        let on_main: Vec<PhysicalLayer> = (0..5).map(|_| local.generate_layer()).collect();
        let on_worker = std::thread::spawn(move || {
            let mut engine = FusionEngine::new(cfg, 55);
            let mut buf = PhysicalLayer::blank(16, 16);
            (0..5)
                .map(|_| {
                    engine.generate_layer_into(&mut buf);
                    buf.clone()
                })
                .collect::<Vec<_>>()
        })
        .join()
        .expect("generator thread");
        assert_eq!(on_main, on_worker);
    }

    #[test]
    fn reseeded_engine_matches_fresh_engine() {
        let cfg = HardwareConfig::new(14, 4, 0.7);
        let mut warm = FusionEngine::new(cfg, 1);
        // Advance the warm engine arbitrarily far before reseeding.
        for _ in 0..3 {
            let _ = warm.generate_layer();
        }
        warm.reseed(99);
        let mut fresh = FusionEngine::new(cfg, 99);
        for _ in 0..4 {
            assert_eq!(warm.generate_layer(), fresh.generate_layer());
        }
        assert_eq!(warm.raw_rsl_consumed(), fresh.raw_rsl_consumed());
        assert_eq!(warm.fusion_stats(), fresh.fusion_stats());
    }

    #[test]
    fn bond_density_tracks_success_probability() {
        let density = |p: f64| {
            let mut engine = FusionEngine::new(HardwareConfig::new(30, 7, p), 9);
            let layer = engine.generate_layer();
            layer.bond_count() as f64 / (2.0 * 30.0 * 29.0)
        };
        let low = density(0.66);
        let high = density(0.9);
        assert!(high > low, "bond density should grow with fusion probability");
        assert!(low > 0.5, "even p=0.66 should exceed the percolation threshold");
    }
}
