//! Hardware configuration.

/// Parameters of the simulated photonic machine.
///
/// # Example
///
/// ```
/// use oneperc_hardware::HardwareConfig;
///
/// let cfg = HardwareConfig::new(48, 4, 0.75);
/// assert_eq!(cfg.merging_factor(), 3);
/// let big = HardwareConfig::new(84, 7, 0.75);
/// assert_eq!(big.merging_factor(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareConfig {
    /// Number of resource-state generators along one side of the square RSL
    /// (the paper's "RSL size = N x N").
    pub rsl_size: usize,
    /// Number of photonic qubits per star-like resource state (4–7 in the
    /// evaluation).
    pub resource_state_size: usize,
    /// Success probability of a single fusion attempt (0.66–0.90 in the
    /// evaluation; 0.75 is the practical value).
    pub fusion_success_prob: f64,
    /// Probability that a photon involved in a fusion has been lost before
    /// the fusion fires. Loss lowers the effective fusion success
    /// probability (a fusion only succeeds when both photons are detected).
    pub photon_loss_rate: f64,
    /// Lattice degree a site must reach to support the (2+1)-D structure
    /// (4 in-plane neighbors + 2 time-like ports).
    pub target_degree: usize,
    /// Photon lifetime in RSG cycles when stored in delay lines
    /// (≈ 5000 in the paper).
    pub photon_lifetime_cycles: usize,
}

impl HardwareConfig {
    /// Default target site degree: four in-plane bonds plus two temporal
    /// ports.
    pub const DEFAULT_TARGET_DEGREE: usize = 6;

    /// Default photon lifetime in delay lines (RSG cycles).
    pub const DEFAULT_PHOTON_LIFETIME: usize = 5000;

    /// Creates a configuration with the given RSL size, resource-state size
    /// and fusion success probability; loss is zero and the remaining knobs
    /// take their defaults.
    ///
    /// # Panics
    ///
    /// Panics when `rsl_size == 0`, when `resource_state_size < 3`, or when
    /// the probability is outside `(0, 1]`.
    pub fn new(rsl_size: usize, resource_state_size: usize, fusion_success_prob: f64) -> Self {
        assert!(rsl_size > 0, "RSL size must be positive");
        assert!(
            resource_state_size >= 3,
            "resource states need at least 3 qubits (degree 2)"
        );
        assert!(
            fusion_success_prob > 0.0 && fusion_success_prob <= 1.0,
            "fusion success probability must be in (0, 1]"
        );
        HardwareConfig {
            rsl_size,
            resource_state_size,
            fusion_success_prob,
            photon_loss_rate: 0.0,
            target_degree: Self::DEFAULT_TARGET_DEGREE,
            photon_lifetime_cycles: Self::DEFAULT_PHOTON_LIFETIME,
        }
    }

    /// Sets the photon loss rate.
    ///
    /// # Panics
    ///
    /// Panics when the rate is outside `[0, 1)`.
    pub fn with_photon_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss rate must be in [0, 1)");
        self.photon_loss_rate = loss;
        self
    }

    /// Sets the target site degree.
    pub fn with_target_degree(mut self, degree: usize) -> Self {
        self.target_degree = degree;
        self
    }

    /// Maximum degree of a single resource state (a star of `s` qubits has
    /// degree `s - 1`).
    pub fn resource_state_degree(&self) -> usize {
        self.resource_state_size - 1
    }

    /// Number of raw RSLs merged into one effective layer so that a site
    /// reaches the target degree (Section 4.1).
    ///
    /// Every successful root-leaf fusion of an extra degree-`d` star onto the
    /// site's cluster raises the cluster degree by `d - 1` (the fused leaf
    /// and root disappear).
    pub fn merging_factor(&self) -> usize {
        let d = self.resource_state_degree();
        if d >= self.target_degree {
            return 1;
        }
        let deficit = self.target_degree - d;
        1 + deficit.div_ceil(d - 1)
    }

    /// Effective single-attempt fusion success probability once photon loss
    /// is taken into account: both photons must survive for the fusion to be
    /// heralded as a success.
    pub fn effective_fusion_prob(&self) -> f64 {
        let survive = (1.0 - self.photon_loss_rate) * (1.0 - self.photon_loss_rate);
        self.fusion_success_prob * survive
    }

    /// Number of sites in one RSL.
    pub fn sites_per_rsl(&self) -> usize {
        self.rsl_size * self.rsl_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merging_factor_matches_paper_cases() {
        // 4-qubit stars (degree 3) need two extra RSLs merged to reach
        // degree ≥ 6; 7-qubit stars (degree 6) need none.
        assert_eq!(HardwareConfig::new(24, 4, 0.75).merging_factor(), 3);
        assert_eq!(HardwareConfig::new(24, 5, 0.75).merging_factor(), 2);
        assert_eq!(HardwareConfig::new(24, 6, 0.75).merging_factor(), 2);
        assert_eq!(HardwareConfig::new(24, 7, 0.75).merging_factor(), 1);
        assert_eq!(HardwareConfig::new(24, 8, 0.75).merging_factor(), 1);
    }

    #[test]
    fn effective_probability_accounts_for_loss() {
        let cfg = HardwareConfig::new(10, 4, 0.8).with_photon_loss(0.1);
        let expected = 0.8 * 0.9 * 0.9;
        assert!((cfg.effective_fusion_prob() - expected).abs() < 1e-12);
        let lossless = HardwareConfig::new(10, 4, 0.8);
        assert!((lossless.effective_fusion_prob() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn sites_per_rsl() {
        assert_eq!(HardwareConfig::new(24, 4, 0.75).sites_per_rsl(), 576);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = HardwareConfig::new(10, 4, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_resource_state_panics() {
        let _ = HardwareConfig::new(10, 2, 0.75);
    }

    #[test]
    fn builder_style_setters() {
        let cfg = HardwareConfig::new(10, 4, 0.75)
            .with_photon_loss(0.02)
            .with_target_degree(4);
        assert_eq!(cfg.target_degree, 4);
        assert!((cfg.photon_loss_rate - 0.02).abs() < 1e-12);
        assert_eq!(cfg.merging_factor(), 2);
    }
}
