//! Stochastic fusion outcomes with attempt accounting.

use graphstate::FusionOutcome;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Counters for the `#fusion` metric of the evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Fusions attempted (every attempt consumes two photons).
    pub attempted: u64,
    /// Attempts heralded as successful.
    pub succeeded: u64,
}

impl FusionStats {
    /// Attempts heralded as failed.
    pub fn failed(&self) -> u64 {
        self.attempted - self.succeeded
    }

    /// Empirical success rate over the recorded attempts, or `None` when no
    /// attempt was recorded.
    pub fn success_rate(&self) -> Option<f64> {
        if self.attempted == 0 {
            None
        } else {
            Some(self.succeeded as f64 / self.attempted as f64)
        }
    }

    /// Merges another counter into this one.
    pub fn absorb(&mut self, other: FusionStats) {
        self.attempted += other.attempted;
        self.succeeded += other.succeeded;
    }
}

/// Seeded source of heralded fusion outcomes.
///
/// Every sampled outcome is counted so the experiment harness can report the
/// exact number of fusions consumed by a compilation, matching the paper's
/// `#fusion` metric.
///
/// # Example
///
/// ```
/// use oneperc_hardware::FusionSampler;
///
/// let mut sampler = FusionSampler::new(0.75, 7);
/// let _ = sampler.sample();
/// assert_eq!(sampler.stats().attempted, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FusionSampler {
    success_prob: f64,
    rng: StdRng,
    stats: FusionStats,
    /// Binary expansion of `success_prob` for the word-batched draw path,
    /// packed **deepest digit first** (bit `j` holds fractional digit
    /// `block_depth - j`), truncated to 64 digits. Zero depth means the
    /// probability is exactly 1.
    block_digits: u64,
    block_depth: u32,
    /// Pre-drawn batched outcomes not yet consumed (next outcome at the
    /// LSB).
    batch: u64,
    batch_len: u32,
}

impl FusionSampler {
    /// Creates a sampler with the given single-attempt success probability
    /// and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics when the probability is outside `(0, 1]`.
    pub fn new(success_prob: f64, seed: u64) -> Self {
        assert!(
            success_prob > 0.0 && success_prob <= 1.0,
            "fusion success probability must be in (0, 1]"
        );
        // Binary expansion of the probability, MSB (weight 1/2) first.
        // Every f64 in (0, 1) is a dyadic rational, so for practical fusion
        // probabilities (0.75, 0.5, ...) the expansion terminates after a
        // few digits; the 64-digit truncation bounds the bias below 2^-64
        // for the rest (finer than the 2^-53 resolution of the scalar
        // `gen_bool` path).
        let mut msb_first = [false; 64];
        let mut depth = 0u32;
        if success_prob < 1.0 {
            let mut frac = success_prob;
            while frac > 0.0 && depth < 64 {
                frac *= 2.0;
                let bit = frac >= 1.0;
                if bit {
                    frac -= 1.0;
                }
                msb_first[depth as usize] = bit;
                depth += 1;
            }
        }
        let mut block_digits = 0u64;
        for j in 0..depth {
            if msb_first[(depth - 1 - j) as usize] {
                block_digits |= 1 << j;
            }
        }
        FusionSampler {
            success_prob,
            rng: StdRng::seed_from_u64(seed),
            stats: FusionStats::default(),
            block_digits,
            block_depth: depth,
            batch: 0,
            batch_len: 0,
        }
    }

    /// The configured success probability.
    pub fn success_prob(&self) -> f64 {
        self.success_prob
    }

    /// Samples one heralded fusion outcome.
    #[inline]
    pub fn sample(&mut self) -> FusionOutcome {
        self.stats.attempted += 1;
        if self.rng.gen_bool(self.success_prob) {
            self.stats.succeeded += 1;
            FusionOutcome::Success
        } else {
            FusionOutcome::Failure
        }
    }

    /// Samples a fusion that is retried on failure up to `retries` extra
    /// times (each retry consumes a fresh attempt). Returns the final
    /// outcome.
    pub fn sample_with_retries(&mut self, retries: usize) -> FusionOutcome {
        for _ in 0..=retries {
            if self.sample().is_success() {
                return FusionOutcome::Success;
            }
        }
        FusionOutcome::Failure
    }

    /// Draws 64 independent Bernoulli(`success_prob`) outcome bits in one
    /// word-parallel batch via bit-slicing: one fresh random word per
    /// binary digit of the probability, combined with an AND/OR ladder from
    /// the deepest digit up, so 64 outcomes cost `depth` RNG words instead
    /// of 64 (2 for the practical p = 0.75). Bit `j` of the result is the
    /// `j`-th outcome.
    fn draw_block(&mut self) -> u64 {
        if self.block_depth == 0 {
            // Probability exactly 1: every outcome succeeds, no RNG draw.
            return u64::MAX;
        }
        let mut acc = 0u64;
        for j in 0..self.block_depth {
            let r = self.rng.next_u64();
            acc = if (self.block_digits >> j) & 1 == 1 { r | acc } else { r & acc };
        }
        acc
    }

    /// Samples one heralded fusion outcome from the word-batched stream.
    ///
    /// Outcomes are pre-drawn 64 at a time with bit-sliced Bernoulli words
    /// (see the private `draw_block` for the construction) and consumed
    /// one bit per call, so attempt accounting stays exact under
    /// data-dependent control flow (an attempt is only counted — and a
    /// buffered bit only consumed — when the caller actually samples). The
    /// layer generator's in-plane bond phase runs on this stream; the
    /// merging-phase retry loop and time-like fusions stay on the
    /// per-attempt [`FusionSampler::sample`] stream.
    ///
    /// Callers that interleave batched and per-attempt draws must call
    /// [`FusionSampler::flush_batch`] at the end of each batched phase so
    /// the underlying RNG stream stays a deterministic function of the
    /// sampled sequence.
    #[inline]
    pub fn sample_batched(&mut self) -> FusionOutcome {
        if self.batch_len == 0 {
            self.batch = self.draw_block();
            self.batch_len = 64;
        }
        let success = self.batch & 1 == 1;
        self.batch >>= 1;
        self.batch_len -= 1;
        self.stats.attempted += 1;
        if success {
            self.stats.succeeded += 1;
            FusionOutcome::Success
        } else {
            FusionOutcome::Failure
        }
    }

    /// Draws `count` (at most 64) consecutive outcomes of the word-batched
    /// stream in one call; outcome `j` is bit `j` of the result (success =
    /// 1), and bits at positions `>= count` are zero.
    ///
    /// The returned bits are exactly the ones `count` successive
    /// [`FusionSampler::sample_batched`] calls would have produced — the
    /// buffered block and the underlying RNG advance identically — so
    /// callers may mix word-granular and single-bit consumption freely
    /// without perturbing the stream. All `count` outcomes are accounted
    /// as attempts at draw time; the layer generator's whole-row bond fast
    /// path therefore only draws words for bonds it provably attempts.
    ///
    /// # Panics
    ///
    /// Panics when `count > 64`.
    pub fn sample_batched_word(&mut self, count: u32) -> u64 {
        assert!(count <= 64, "at most one word of outcomes per draw");
        if count == 0 {
            return 0;
        }
        let take = self.batch_len.min(count);
        let mut out = self.batch & lo_mask(take);
        self.batch = self.batch.checked_shr(take).unwrap_or(0);
        self.batch_len -= take;
        if take < count {
            let rest = count - take;
            let block = self.draw_block();
            out |= (block & lo_mask(rest)) << take;
            self.batch = block.checked_shr(rest).unwrap_or(0);
            self.batch_len = 64 - rest;
        }
        self.stats.attempted += u64::from(count);
        self.stats.succeeded += u64::from(out.count_ones());
        out
    }

    /// Discards any pre-drawn batched outcomes. Called at the end of a
    /// batched sampling phase (deterministically, independent of data) so
    /// subsequent per-attempt draws never observe leftover batch state.
    pub fn flush_batch(&mut self) {
        self.batch = 0;
        self.batch_len = 0;
    }

    /// Accumulated attempt statistics.
    pub fn stats(&self) -> FusionStats {
        self.stats
    }

    /// Resets the attempt statistics (the RNG stream is unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = FusionStats::default();
    }

    /// Draws a uniform random number in `[0, 1)`; exposed for strategy code
    /// that needs auxiliary randomness tied to the same stream.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen()
    }
}

/// The lowest `k` bits set (`k <= 64`; the full word at `k = 64`).
#[inline]
fn lo_mask(k: u32) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = FusionSampler::new(0.5, 99);
        let mut b = FusionSampler::new(0.5, 99);
        let seq_a: Vec<_> = (0..32).map(|_| a.sample()).collect();
        let seq_b: Vec<_> = (0..32).map(|_| b.sample()).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn empirical_rate_close_to_configured() {
        let mut s = FusionSampler::new(0.75, 3);
        for _ in 0..20_000 {
            s.sample();
        }
        let rate = s.stats().success_rate().unwrap();
        assert!((rate - 0.75).abs() < 0.02, "rate {rate}");
        assert_eq!(s.stats().attempted, 20_000);
        assert_eq!(s.stats().failed(), s.stats().attempted - s.stats().succeeded);
    }

    #[test]
    fn retries_count_attempts() {
        let mut s = FusionSampler::new(0.999, 1);
        let out = s.sample_with_retries(3);
        assert!(out.is_success());
        assert_eq!(s.stats().attempted, 1);
        s.reset_stats();
        assert_eq!(s.stats().attempted, 0);
    }

    #[test]
    fn always_success_at_probability_one() {
        let mut s = FusionSampler::new(1.0, 5);
        assert!((0..100).all(|_| s.sample().is_success()));
    }

    #[test]
    fn stats_absorb() {
        let a = FusionStats { attempted: 10, succeeded: 7 };
        let mut b = FusionStats { attempted: 5, succeeded: 5 };
        b.absorb(a);
        assert_eq!(b.attempted, 15);
        assert_eq!(b.succeeded, 12);
        assert!(FusionStats::default().success_rate().is_none());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn zero_probability_rejected() {
        let _ = FusionSampler::new(0.0, 1);
    }

    #[test]
    fn batched_rate_close_to_configured() {
        // Dyadic (2-digit) and non-dyadic (full-depth) probabilities both
        // come out of the bit-sliced block construction at the right rate.
        for &p in &[0.75f64, 0.66, 0.5, 0.9] {
            let mut s = FusionSampler::new(p, 11);
            let hits = (0..100_000).filter(|_| s.sample_batched().is_success()).count();
            let rate = hits as f64 / 100_000.0;
            assert!((rate - p).abs() < 0.01, "p {p}: rate {rate}");
            assert_eq!(s.stats().attempted, 100_000);
        }
    }

    #[test]
    fn batched_accounting_is_per_consumed_outcome() {
        let mut s = FusionSampler::new(0.75, 3);
        for _ in 0..5 {
            let _ = s.sample_batched();
        }
        // Only the five consumed outcomes count, not the 64-outcome block
        // drawn behind them.
        assert_eq!(s.stats().attempted, 5);
        s.flush_batch();
        assert_eq!(s.stats().attempted, 5, "flush discards bits, not stats");
    }

    #[test]
    fn batched_certain_probability_always_succeeds() {
        let mut s = FusionSampler::new(1.0, 8);
        assert!((0..200).all(|_| s.sample_batched().is_success()));
    }

    #[test]
    fn word_draws_match_the_bit_stream_exactly() {
        // sample_batched_word(count) must hand out exactly the bits that
        // `count` successive sample_batched calls would, across word
        // counts that leave the internal block at every alignment.
        for &p in &[0.75f64, 0.66, 1.0] {
            let mut bits = FusionSampler::new(p, 31);
            let mut words = FusionSampler::new(p, 31);
            for &count in &[1u32, 63, 64, 7, 40, 64, 13, 64, 5] {
                let word = words.sample_batched_word(count);
                assert_eq!(word & !lo_mask(count), 0, "bits past count must be zero");
                for j in 0..count {
                    let expect = bits.sample_batched().is_success();
                    assert_eq!(
                        word >> j & 1 == 1,
                        expect,
                        "p {p}: outcome {j} of a {count}-wide draw diverged"
                    );
                }
            }
            assert_eq!(bits.stats(), words.stats(), "p {p}: accounting diverged");
        }
    }

    #[test]
    fn word_draws_interleave_with_single_draws_and_flushes() {
        // A mixed consumer (words, single bits, flush, per-attempt draws)
        // sees the same stream as a pure single-bit consumer of the same
        // pattern: the word draw is a view of the stream, not a fork.
        let mut mixed = FusionSampler::new(0.75, 9);
        let mut plain = FusionSampler::new(0.75, 9);
        let mut mixed_out = Vec::new();
        let mut plain_out = Vec::new();
        for round in 0..5u32 {
            let w = mixed.sample_batched_word(23 + round);
            for j in 0..(23 + round) {
                mixed_out.push(w >> j & 1 == 1);
                plain_out.push(plain.sample_batched().is_success());
            }
            for _ in 0..3 {
                mixed_out.push(mixed.sample_batched().is_success());
                plain_out.push(plain.sample_batched().is_success());
            }
            mixed.flush_batch();
            plain.flush_batch();
            mixed_out.push(mixed.sample().is_success());
            plain_out.push(plain.sample().is_success());
        }
        assert_eq!(mixed_out, plain_out);
        assert_eq!(mixed.stats(), plain.stats());
    }

    #[test]
    fn zero_width_word_draw_is_free() {
        let mut s = FusionSampler::new(0.75, 4);
        assert_eq!(s.sample_batched_word(0), 0);
        assert_eq!(s.stats().attempted, 0, "no outcome consumed, none counted");
        // The stream is untouched: the next full word matches a fresh
        // sampler's first word.
        let mut fresh = FusionSampler::new(0.75, 4);
        assert_eq!(s.sample_batched_word(64), fresh.sample_batched_word(64));
    }

    #[test]
    fn flushed_batches_keep_the_stream_deterministic() {
        // Two samplers consuming the same (batched-phase, per-attempt)
        // pattern see identical streams, regardless of how many bits each
        // batched phase left unconsumed before its flush.
        let run = |seed: u64| {
            let mut s = FusionSampler::new(0.75, seed);
            let mut outcomes = Vec::new();
            for phase in 0..4 {
                for _ in 0..(7 + phase * 13) {
                    outcomes.push(s.sample_batched());
                }
                s.flush_batch();
                for _ in 0..3 {
                    outcomes.push(s.sample());
                }
            }
            outcomes
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
