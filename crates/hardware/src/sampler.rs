//! Stochastic fusion outcomes with attempt accounting.

use graphstate::FusionOutcome;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Counters for the `#fusion` metric of the evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Fusions attempted (every attempt consumes two photons).
    pub attempted: u64,
    /// Attempts heralded as successful.
    pub succeeded: u64,
}

impl FusionStats {
    /// Attempts heralded as failed.
    pub fn failed(&self) -> u64 {
        self.attempted - self.succeeded
    }

    /// Empirical success rate over the recorded attempts, or `None` when no
    /// attempt was recorded.
    pub fn success_rate(&self) -> Option<f64> {
        if self.attempted == 0 {
            None
        } else {
            Some(self.succeeded as f64 / self.attempted as f64)
        }
    }

    /// Merges another counter into this one.
    pub fn absorb(&mut self, other: FusionStats) {
        self.attempted += other.attempted;
        self.succeeded += other.succeeded;
    }
}

/// Seeded source of heralded fusion outcomes.
///
/// Every sampled outcome is counted so the experiment harness can report the
/// exact number of fusions consumed by a compilation, matching the paper's
/// `#fusion` metric.
///
/// # Example
///
/// ```
/// use oneperc_hardware::FusionSampler;
///
/// let mut sampler = FusionSampler::new(0.75, 7);
/// let _ = sampler.sample();
/// assert_eq!(sampler.stats().attempted, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FusionSampler {
    success_prob: f64,
    rng: StdRng,
    stats: FusionStats,
}

impl FusionSampler {
    /// Creates a sampler with the given single-attempt success probability
    /// and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics when the probability is outside `(0, 1]`.
    pub fn new(success_prob: f64, seed: u64) -> Self {
        assert!(
            success_prob > 0.0 && success_prob <= 1.0,
            "fusion success probability must be in (0, 1]"
        );
        FusionSampler {
            success_prob,
            rng: StdRng::seed_from_u64(seed),
            stats: FusionStats::default(),
        }
    }

    /// The configured success probability.
    pub fn success_prob(&self) -> f64 {
        self.success_prob
    }

    /// Samples one heralded fusion outcome.
    pub fn sample(&mut self) -> FusionOutcome {
        self.stats.attempted += 1;
        if self.rng.gen_bool(self.success_prob) {
            self.stats.succeeded += 1;
            FusionOutcome::Success
        } else {
            FusionOutcome::Failure
        }
    }

    /// Samples a fusion that is retried on failure up to `retries` extra
    /// times (each retry consumes a fresh attempt). Returns the final
    /// outcome.
    pub fn sample_with_retries(&mut self, retries: usize) -> FusionOutcome {
        for _ in 0..=retries {
            if self.sample().is_success() {
                return FusionOutcome::Success;
            }
        }
        FusionOutcome::Failure
    }

    /// Accumulated attempt statistics.
    pub fn stats(&self) -> FusionStats {
        self.stats
    }

    /// Resets the attempt statistics (the RNG stream is unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = FusionStats::default();
    }

    /// Draws a uniform random number in `[0, 1)`; exposed for strategy code
    /// that needs auxiliary randomness tied to the same stream.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = FusionSampler::new(0.5, 99);
        let mut b = FusionSampler::new(0.5, 99);
        let seq_a: Vec<_> = (0..32).map(|_| a.sample()).collect();
        let seq_b: Vec<_> = (0..32).map(|_| b.sample()).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn empirical_rate_close_to_configured() {
        let mut s = FusionSampler::new(0.75, 3);
        for _ in 0..20_000 {
            s.sample();
        }
        let rate = s.stats().success_rate().unwrap();
        assert!((rate - 0.75).abs() < 0.02, "rate {rate}");
        assert_eq!(s.stats().attempted, 20_000);
        assert_eq!(s.stats().failed(), s.stats().attempted - s.stats().succeeded);
    }

    #[test]
    fn retries_count_attempts() {
        let mut s = FusionSampler::new(0.999, 1);
        let out = s.sample_with_retries(3);
        assert!(out.is_success());
        assert_eq!(s.stats().attempted, 1);
        s.reset_stats();
        assert_eq!(s.stats().attempted, 0);
    }

    #[test]
    fn always_success_at_probability_one() {
        let mut s = FusionSampler::new(1.0, 5);
        assert!((0..100).all(|_| s.sample().is_success()));
    }

    #[test]
    fn stats_absorb() {
        let a = FusionStats { attempted: 10, succeeded: 7 };
        let mut b = FusionStats { attempted: 5, succeeded: 5 };
        b.absorb(a);
        assert_eq!(b.attempted, 15);
        assert_eq!(b.succeeded, 12);
        assert!(FusionStats::default().success_rate().is_none());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn zero_probability_rejected() {
        let _ = FusionSampler::new(0.0, 1);
    }
}
