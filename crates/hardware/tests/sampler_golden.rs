//! Golden pin of the `FusionSampler` stochastic streams.
//!
//! The merging-phase retry loop, the time-like fusions of the reshaping
//! pass and the OneQ baseline all consume the per-attempt
//! [`FusionSampler::sample`] stream; the layer generator's in-plane bond
//! phase consumes the word-batched [`FusionSampler::sample_batched`]
//! stream. Any sampler refactor that silently shifts either stream would
//! change every compiled program while still passing the self-consistent
//! determinism suites — so the first 256 outcomes of both streams are
//! pinned here at fixed seeds, for the practical dyadic probability
//! (p = 0.75, two bit-sliced digits) and a non-dyadic one (p = 0.66,
//! full-depth expansion).
//!
//! Encoding: outcome `k` (success = 1) is bit `k % 64` of word `k / 64`.
//!
//! If a change to the RNG shim, the bit-slicing construction or the scalar
//! `gen_bool` path is *intentional*, regenerate these constants with the
//! checked-in tool (`cargo run -p oneperc-hardware --example regen_pins`
//! prints them in paste-ready form) and say so loudly in the commit —
//! every seeded result in the repository shifts with them. The word-
//! granular [`FusionSampler::sample_batched_word`] draw is a view of the
//! batched stream pinned here (its agreement is enforced by the sampler's
//! unit tests), so it needs no pin of its own.

use oneperc_hardware::FusionSampler;

const N: usize = 256;

fn collect(mut next: impl FnMut() -> bool) -> [u64; 4] {
    let mut words = [0u64; 4];
    for k in 0..N {
        if next() {
            words[k / 64] |= 1 << (k % 64);
        }
    }
    words
}

fn assert_stream(p: f64, seed: u64, batched: bool, expected: [u64; 4]) {
    let mut sampler = FusionSampler::new(p, seed);
    let got = if batched {
        collect(|| sampler.sample_batched().is_success())
    } else {
        collect(|| sampler.sample().is_success())
    };
    assert_eq!(
        got,
        expected,
        "{} stream shifted at p = {p}, seed {seed}",
        if batched { "batched" } else { "per-attempt" }
    );
    assert_eq!(sampler.stats().attempted, N as u64);
    let succeeded: u32 = expected.iter().map(|w| w.count_ones()).sum();
    assert_eq!(sampler.stats().succeeded, u64::from(succeeded));
}

#[test]
fn per_attempt_stream_is_pinned_at_p075() {
    assert_stream(
        0.75,
        1,
        false,
        [0xbffff7bbf7dbfbbe, 0x9fe7fddb3befbef9, 0xffd777ffffffed67, 0x7bf39beecfe7f65b],
    );
    assert_stream(
        0.75,
        7,
        false,
        [0x7b5dfebdbeb7feef, 0xebdfdff5bdf6d5ef, 0x7f7feffbfdd69dbe, 0xd5fbaff7fd7d5f3f],
    );
    assert_stream(
        0.75,
        42,
        false,
        [0x1fdefe6bd6dff5ea, 0x87def2ffbbffbe76, 0xffbd93ffff5ffbde, 0xf05f5ffbb7a9cdf6],
    );
    assert_stream(
        0.75,
        2024,
        false,
        [0x6f6fd3fbdffb779f, 0xd3fdcfdd2b8fef77, 0x2bfdc6f961eeee75, 0xe3bafff8bf526fcf],
    );
}

#[test]
fn per_attempt_stream_is_pinned_at_p066() {
    assert_stream(
        0.66,
        1,
        false,
        [0xbffbf71bd7dbfbb4, 0x9ba7fd5b3befbef0, 0x7fd357fffeffed67, 0x7bb39beccee7f25b],
    );
    assert_stream(
        0.66,
        7,
        false,
        [0x5b5dfe3dbea7eeab, 0xe3dfcff5b5f6d4ee, 0x6f7fedfb7dd69db4, 0xd5fbaff7f955593d],
    );
    assert_stream(
        0.66,
        42,
        false,
        [0x1edafe62d6dfe5e2, 0x83de22edabfebe76, 0xbfbc92ffff5ffbde, 0xb0495f5bb720cd76],
    );
    assert_stream(
        0.66,
        2024,
        false,
        [0x6d6fd3f2dfe3770f, 0xd3f9cfdd0b8be772, 0x2bed86f961eeae75, 0x63bafff88b526fce],
    );
}

#[test]
fn batched_stream_is_pinned_at_p075() {
    assert_stream(
        0.75,
        1,
        true,
        [0xffc7d17fff3fe29f, 0xbfab7ddf57eff7f6, 0xbf6f9fcbe7386fe5, 0xfdffe7dd0bf7f727],
    );
    assert_stream(
        0.75,
        7,
        true,
        [0x2e2fdaddfaee9f3d, 0xffff9ffbf3dc597e, 0xf7ba7bf2fd7bc7ff, 0xfd71fbfbfe1fe7a8],
    );
    assert_stream(
        0.75,
        42,
        true,
        [0xd1fe4d7f577f7f9f, 0xfbfdfffb0cfcfdbc, 0xdfaf9f387ed4fe7f, 0xbaff5eff2edaff56],
    );
    assert_stream(
        0.75,
        2024,
        true,
        [0xcf7fefffafffeaf9, 0x7ff9ffebcf766f6e, 0xffedecf7bb2cbfe5, 0xfbb7ff9dfa77ec3f],
    );
}

#[test]
fn batched_stream_is_pinned_at_p066() {
    assert_stream(
        0.66,
        1,
        true,
        [0xdfaf1fd857771cff, 0xfb7c2b5fd7d9bbf5, 0x6ff3afd15df52b6e, 0xfa8e5cb76feafcff],
    );
    assert_stream(
        0.66,
        7,
        true,
        [0x383acb6df51d13b6, 0x7ebcfe11ffbfdc7f, 0xa378da7dc3fefecf, 0xf75ffaee39e6e8f9],
    );
    assert_stream(
        0.66,
        42,
        true,
        [0x7d65ef83dab9af7b, 0x3beefde3fd455c3d, 0x85763ecd3f879ffd, 0xf8b00caf9f7db3f1],
    );
    assert_stream(
        0.66,
        2024,
        true,
        [0xf7f6b9fbf92f73f7, 0xf8d9bc5fbeddf24f, 0x0fff77fd218a71df, 0xffe9b3d9b597bc6b],
    );
}

#[test]
fn batched_and_per_attempt_streams_differ_but_share_the_rng() {
    // Sanity on the pin itself: the two streams are different functions of
    // the same seeded RNG (bit-sliced blocks vs f64 compares), so a
    // refactor that collapses one into the other cannot slip past the
    // constants.
    let mut a = FusionSampler::new(0.75, 1);
    let mut b = FusionSampler::new(0.75, 1);
    let per_attempt: Vec<bool> = (0..N).map(|_| a.sample().is_success()).collect();
    let batched: Vec<bool> = (0..N).map(|_| b.sample_batched().is_success()).collect();
    assert_ne!(per_attempt, batched);
}
