//! Edge-geometry coverage for the bit-packed `PhysicalLayer`: dimensions
//! hostile to the 64-sites-per-word layout (non-multiples of 64, single
//! rows/columns, 1×1), trailing-word masking, popcount counters against
//! naive per-site recounts, and `reset_blank` reuse across shrinking and
//! regrowing geometries.

use oneperc_hardware::bitmap::trailing_mask;
use oneperc_hardware::{FusionEngine, HardwareConfig, PhysicalLayer};

/// Naive recount of every counter straight through the per-site accessors.
fn naive_counts(layer: &PhysicalLayer) -> (usize, usize, usize) {
    let mut bonds = 0;
    let mut present = 0;
    let mut ports = 0;
    for y in 0..layer.height {
        for x in 0..layer.width {
            if layer.bond_east(x, y) {
                bonds += 1;
            }
            if layer.bond_north(x, y) {
                bonds += 1;
            }
            if layer.site_present(x, y) {
                present += 1;
            }
            if layer.temporal_port(x, y) {
                ports += 1;
            }
        }
    }
    (bonds, present, ports)
}

fn assert_popcounts_match_naive(layer: &PhysicalLayer, context: &str) {
    let (bonds, present, ports) = naive_counts(layer);
    assert_eq!(layer.bond_count(), bonds, "{context}: bond_count");
    assert_eq!(layer.present_site_count(), present, "{context}: present_site_count");
    assert_eq!(layer.temporal_port_count(), ports, "{context}: temporal_port_count");
}

#[test]
fn one_by_one_lattice() {
    let layer = PhysicalLayer::blank(1, 1);
    assert_eq!(layer.site_count(), 1);
    assert_eq!(layer.bond_count(), 0);
    assert!(layer.site_present(0, 0));
    let full = PhysicalLayer::fully_connected(1, 1);
    assert_eq!(full.bond_count(), 0, "1x1 has no bonds to connect");
    assert_eq!(full.largest_component_size(), 1);
    assert_popcounts_match_naive(&full, "1x1");
}

#[test]
fn single_row_and_single_column_lattices() {
    // 1×N: only north bonds exist; N×1: only east bonds. Both cross word
    // boundaries at N = 130.
    let row = PhysicalLayer::fully_connected(130, 1);
    assert_eq!(row.bond_count(), 129);
    assert_eq!(row.largest_component_size(), 130);
    assert_popcounts_match_naive(&row, "130x1");

    let col = PhysicalLayer::fully_connected(1, 130);
    assert_eq!(col.bond_count(), 129);
    assert_eq!(col.largest_component_size(), 130);
    assert_popcounts_match_naive(&col, "1x130");
}

#[test]
fn word_boundary_hostile_dimensions() {
    // Site counts 63, 64, 65, 4095, 4096, 4097 relative to the word size.
    for (w, h) in [(63, 1), (64, 1), (65, 1), (63, 65), (64, 64), (13, 7), (33, 33)] {
        let full = PhysicalLayer::fully_connected(w, h);
        assert_eq!(
            full.bond_count(),
            h * (w - 1) + w * (h - 1),
            "{w}x{h}: fully connected bond count"
        );
        assert_eq!(full.largest_component_size(), w * h, "{w}x{h}: one component");
        assert_popcounts_match_naive(&full, &format!("{w}x{h}"));
    }
}

#[test]
fn fully_connected_masks_trailing_word() {
    // The bond planes are built by whole-word fills; the bits past
    // width*height in the trailing word (and the never-stored last-column /
    // last-row bits) must come out clear, or popcounts and word scans
    // overcount.
    for (w, h) in [(5, 5), (13, 5), (33, 2), (63, 3), (65, 1)] {
        let layer = PhysicalLayer::fully_connected(w, h);
        let n = w * h;
        for words in [layer.site_words(), layer.bond_east_words(), layer.bond_north_words()] {
            assert_eq!(words.len(), n.div_ceil(64), "{w}x{h}: word count");
            let last = *words.last().unwrap();
            assert_eq!(last & !trailing_mask(n), 0, "{w}x{h}: trailing garbage");
        }
        // Last column stores no east bond, last row no north bond.
        for y in 0..h {
            let i = y * w + (w - 1);
            assert_eq!(
                (layer.bond_east_words()[i / 64] >> (i % 64)) & 1,
                0,
                "{w}x{h}: east bond stored in last column"
            );
        }
        for x in 0..w {
            let i = (h - 1) * w + x;
            assert_eq!(
                (layer.bond_north_words()[i / 64] >> (i % 64)) & 1,
                0,
                "{w}x{h}: north bond stored in last row"
            );
        }
    }
}

#[test]
fn popcounts_match_naive_counts_on_random_layers() {
    for (side, seed) in [(7usize, 3u64), (33, 5), (40, 11), (65, 17)] {
        let mut engine = FusionEngine::new(HardwareConfig::new(side, 4, 0.72), seed);
        let layer = engine.generate_layer();
        assert_popcounts_match_naive(&layer, &format!("random {side}x{side} seed {seed}"));
    }
}

#[test]
fn reset_blank_shrinks_and_regrows_through_word_boundaries() {
    let mut layer = PhysicalLayer::fully_connected(65, 65);
    // Shrink below one word, regrow past several, shrink to a single site.
    for (w, h) in [(3, 2), (130, 1), (1, 1), (64, 64), (7, 7), (65, 63)] {
        layer.reset_blank(w, h);
        assert_eq!(layer.width, w);
        assert_eq!(layer.height, h);
        assert_eq!(layer.bond_count(), 0, "{w}x{h}: bonds survived reset");
        assert_eq!(layer.present_site_count(), w * h, "{w}x{h}: all sites present");
        assert_eq!(layer.temporal_port_count(), w * h, "{w}x{h}: all ports available");
        assert_eq!(layer.raw_rsl_consumed, 1);
        assert_eq!(layer.fusions_attempted, 0);
        // Mutate so the next round's reset has stale state to clear.
        if w > 1 {
            layer.set_bond_east(0, 0, true);
        }
        layer.set_site_present(w - 1, h - 1, false);
    }
}

#[test]
fn word_accessor_layout_is_lsb_first_row_major() {
    // Pin the documented convention explicitly: flat index i = y*w + x at
    // bit i % 64 of word i / 64.
    let mut layer = PhysicalLayer::blank(10, 8);
    layer.set_site_present(3, 0, false); // flat 3
    layer.set_site_present(4, 6, false); // flat 64
    assert_eq!(layer.site_words()[0] & (1 << 3), 0);
    assert_eq!(layer.site_words()[1] & 1, 0);
    assert_eq!(layer.site_words()[0].count_ones(), 63);
    let mut present: Vec<usize> = layer.present_in_range(0, 80).collect();
    assert_eq!(present.len(), 78);
    present.retain(|&i| !(0..80).contains(&i));
    assert!(present.is_empty());
}
