//! Online Pareto pruning over cost vectors.
//!
//! Every objective is minimized. Dominance is the usual product order:
//! `a` dominates `b` when `a` is no worse on every objective and strictly
//! better on at least one — a **strict partial order** (irreflexive,
//! asymmetric, transitive; `tests/pareto_props.rs` checks all three by
//! exhaustion over random vectors). [`ParetoFront::insert`] maintains the
//! set of mutually non-dominated points online: a candidate dominated by a
//! resident point is rejected, and an admitted candidate evicts every
//! resident point it dominates. The surviving *set* is insensitive to
//! arrival order (also property-tested); iteration order is not, so
//! callers that serialize a frontier sort it canonically first (see
//! [`ParetoFront::into_sorted_entries`]).

use std::cmp::Ordering;

/// Whether cost vector `a` dominates `b`: no worse everywhere, strictly
/// better somewhere. Both vectors must have the same length and should be
/// finite (comparison uses [`f64::total_cmp`], so NaNs order after
/// infinity rather than poisoning the result).
///
/// # Panics
///
/// Panics when the vectors have different lengths — comparing costs from
/// different models is a caller bug, not a tie.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "cost vectors must share their objective axes");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            Ordering::Greater => return false,
            Ordering::Less => strictly_better = true,
            Ordering::Equal => {}
        }
    }
    strictly_better
}

/// One resident point of a [`ParetoFront`]: its cost vector plus the
/// caller's payload (for the tuner, the evaluated configuration).
#[derive(Debug, Clone)]
pub struct FrontEntry<T> {
    /// The point's cost vector (all objectives minimized).
    pub cost: Vec<f64>,
    /// The caller's payload for this point.
    pub item: T,
}

/// A set of mutually non-dominated cost vectors, pruned online.
///
/// Points with *equal* cost vectors are both kept: neither dominates the
/// other, and for tuning both configurations are equally good answers.
#[derive(Debug, Clone, Default)]
#[must_use]
pub struct ParetoFront<T> {
    entries: Vec<FrontEntry<T>>,
}

impl<T> ParetoFront<T> {
    /// An empty frontier.
    pub fn new() -> Self {
        ParetoFront { entries: Vec::new() }
    }

    /// Number of resident points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The resident points, in insertion order (survivors only).
    pub fn entries(&self) -> &[FrontEntry<T>] {
        &self.entries
    }

    /// Whether a point with this cost would survive insertion — i.e. no
    /// resident point dominates it. Used by the tuner to shed in-flight
    /// evaluations whose *optimistic lower bound* is already dominated:
    /// if the bound cannot get in, the true cost (componentwise ≥ the
    /// bound) cannot either.
    pub fn would_admit(&self, cost: &[f64]) -> bool {
        !self.entries.iter().any(|e| dominates(&e.cost, cost))
    }

    /// Offers a point to the frontier. Returns `true` when the point was
    /// admitted (it is now resident, and every resident point it dominates
    /// has been evicted) and `false` when a resident point dominates it.
    pub fn insert(&mut self, cost: Vec<f64>, item: T) -> bool {
        if !self.would_admit(&cost) {
            return false;
        }
        self.entries.retain(|e| !dominates(&cost, &e.cost));
        self.entries.push(FrontEntry { cost, item });
        true
    }

    /// Consumes the frontier into its entries in **canonical order**:
    /// lexicographic by cost vector ([`f64::total_cmp`] per axis), ties
    /// broken by the caller's key. This is the order the tuner serializes,
    /// making the artifact independent of evaluation arrival order.
    pub fn into_sorted_entries<K: Ord>(self, key: impl Fn(&T) -> K) -> Vec<FrontEntry<T>> {
        let mut entries = self.entries;
        entries.sort_by(|a, b| {
            for (x, y) in a.cost.iter().zip(&b.cost) {
                match x.total_cmp(y) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            key(&a.item).cmp(&key(&b.item))
        });
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]), "trade-offs do not dominate");
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]), "irreflexive on equals");
        assert!(!dominates(&[2.0, 2.0], &[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "objective axes")]
    fn mismatched_axes_panic() {
        let _ = dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn insert_prunes_dominated_residents() {
        let mut front = ParetoFront::new();
        assert!(front.insert(vec![3.0, 3.0], "worse"));
        assert!(front.insert(vec![2.0, 4.0], "trade-off"));
        // Dominates "worse" but not "trade-off".
        assert!(front.insert(vec![2.5, 3.0], "better"));
        let names: Vec<_> = front.entries().iter().map(|e| e.item).collect();
        assert_eq!(names, ["trade-off", "better"]);
        // Dominated by "better": rejected, frontier unchanged.
        assert!(!front.insert(vec![2.5, 3.5], "late"));
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn equal_costs_are_both_kept() {
        let mut front = ParetoFront::new();
        assert!(front.insert(vec![1.0, 2.0], "a"));
        assert!(front.insert(vec![1.0, 2.0], "b"));
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn would_admit_matches_insert() {
        let mut front = ParetoFront::new();
        front.insert(vec![1.0, 1.0], ());
        assert!(!front.would_admit(&[2.0, 2.0]));
        assert!(front.would_admit(&[0.5, 3.0]));
        assert!(front.would_admit(&[1.0, 1.0]), "equal cost is admitted");
    }

    #[test]
    fn canonical_order_sorts_by_cost_then_key() {
        let mut front = ParetoFront::new();
        front.insert(vec![2.0, 1.0], 7u64);
        front.insert(vec![1.0, 2.0], 9u64);
        front.insert(vec![1.0, 2.0], 3u64);
        let sorted = front.into_sorted_entries(|&id| id);
        let ids: Vec<_> = sorted.iter().map(|e| e.item).collect();
        assert_eq!(ids, [3, 9, 7]);
    }
}
