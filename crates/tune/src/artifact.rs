//! The serialized frontier artifact: canonical JSON, written and parsed
//! in-tree.
//!
//! The artifact is the tuner's durable output and its cache: keyed by
//! [`Circuit::structural_hash`](oneperc_circuit::Circuit::structural_hash),
//! carrying the full [tune key](crate::Tuner::tune_key) so a reload can
//! verify the lattice, seed set and cost model still match. **Byte
//! identity is contractual**: the writer emits a canonical form — fixed
//! key order, fixed 2-space indentation, floats through Rust's shortest
//! round-trip `Display`, hashes as zero-padded hex strings (JSON numbers
//! lose `u64` precision past 2⁵³) — so identical inputs and seeds produce
//! identical bytes, which the `tuner-determinism` CI job diffs directly.
//!
//! The reader is a minimal recursive-descent JSON parser covering the
//! subset the writer emits (the workspace builds offline, so there is no
//! serde); [`FrontierArtifact::from_json`] re-validates the format tag.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use oneperc::CompilerConfig;
use oneperc_hardware::HardwareConfig;

/// Format tag of the artifact encoding; bumped on breaking change.
pub const ARTIFACT_FORMAT: &str = "oneperc-tune-frontier-v1";

/// A malformed or mismatched artifact file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactError(String);

impl ArtifactError {
    fn new(message: impl Into<String>) -> Self {
        ArtifactError(message.into())
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frontier artifact: {}", self.0)
    }
}

impl Error for ArtifactError {}

/// The serializable view of a [`CompilerConfig`]: every knob except the
/// seed (the tuner sweeps seeds; a recommended configuration is reseeded
/// by the caller via [`ConfigKnobs::to_config`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigKnobs {
    /// RSL side length.
    pub rsl_size: usize,
    /// Photons per star-shaped resource state.
    pub resource_state_size: usize,
    /// Single-attempt fusion success probability.
    pub fusion_success_prob: f64,
    /// Photon loss rate.
    pub photon_loss_rate: f64,
    /// Target site degree.
    pub target_degree: usize,
    /// Photon lifetime in RSG cycles.
    pub photon_lifetime_cycles: usize,
    /// Virtual-hardware side.
    pub virtual_side: usize,
    /// Occupancy limit of the offline mapping.
    pub occupancy_limit: f64,
    /// Refresh period (`None` = off).
    pub refresh_period: Option<usize>,
    /// Photons fused in parallel per time-like hop.
    pub temporal_redundancy: usize,
    /// Double-buffered RSL pipeline.
    pub pipelined: bool,
    /// Renormalization worker threads (`0` = in-thread).
    pub renorm_workers: usize,
}

impl From<&CompilerConfig> for ConfigKnobs {
    fn from(config: &CompilerConfig) -> Self {
        ConfigKnobs {
            rsl_size: config.hardware.rsl_size,
            resource_state_size: config.hardware.resource_state_size,
            fusion_success_prob: config.hardware.fusion_success_prob,
            photon_loss_rate: config.hardware.photon_loss_rate,
            target_degree: config.hardware.target_degree,
            photon_lifetime_cycles: config.hardware.photon_lifetime_cycles,
            virtual_side: config.virtual_side,
            occupancy_limit: config.occupancy_limit,
            refresh_period: config.refresh_period,
            temporal_redundancy: config.temporal_redundancy,
            pipelined: config.pipelined,
            renorm_workers: config.renorm_workers,
        }
    }
}

impl ConfigKnobs {
    /// Rebuilds the [`CompilerConfig`] these knobs describe, with the
    /// caller's seed.
    pub fn to_config(&self, seed: u64) -> CompilerConfig {
        let hardware = HardwareConfig {
            rsl_size: self.rsl_size,
            resource_state_size: self.resource_state_size,
            fusion_success_prob: self.fusion_success_prob,
            photon_loss_rate: self.photon_loss_rate,
            target_degree: self.target_degree,
            photon_lifetime_cycles: self.photon_lifetime_cycles,
        };
        let mut config = CompilerConfig::new(hardware, self.virtual_side, seed);
        config.occupancy_limit = self.occupancy_limit;
        config.temporal_redundancy = self.temporal_redundancy;
        config
            .with_refresh_period(self.refresh_period)
            .with_pipelining(self.pipelined)
            .with_renorm_workers(self.renorm_workers)
    }
}

/// One surviving frontier point.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The point's configuration knobs.
    pub config: ConfigKnobs,
    /// The configuration's [`CompilerConfig::fingerprint`].
    pub fingerprint: u64,
    /// The cost vector (axes named by [`FrontierArtifact::objectives`]).
    pub cost: Vec<f64>,
    /// Fraction of swept seeds that completed.
    pub success_probability: f64,
    /// Seeds that completed every logical layer.
    pub complete_runs: usize,
    /// Seeds swept.
    pub total_runs: usize,
}

/// One successive-halving rung of the refinement stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RungSummary {
    /// 1-based rung index.
    pub rung: usize,
    /// Seeds each surviving candidate was re-evaluated on.
    pub seeds: usize,
    /// Candidates entering the rung.
    pub candidates: usize,
}

/// The tuner's serialized output: the exhaustive Pareto frontier, the
/// refinement recommendation, and the cache-key material needed to decide
/// whether a stored artifact still answers a [`Tuner::tune`] call.
///
/// [`Tuner::tune`]: crate::Tuner::tune
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierArtifact {
    /// Structural hash of the tuned circuit.
    pub circuit_hash: u64,
    /// Full cache key (circuit + lattice + seeds + cost model + refinement
    /// settings); see [`Tuner::tune_key`](crate::Tuner::tune_key).
    pub tune_key: u64,
    /// [`ConfigLattice::fingerprint`](crate::ConfigLattice::fingerprint)
    /// of the swept lattice.
    pub lattice_fingerprint: u64,
    /// [`CostModel::fingerprint`](crate::CostModel::fingerprint) of the
    /// scoring model.
    pub cost_model_fingerprint: u64,
    /// The seeds swept per lattice point, in sweep order.
    pub seeds: Vec<u64>,
    /// Objective axis names, in cost-vector order.
    pub objectives: Vec<String>,
    /// The Pareto frontier, in canonical order (lexicographic by cost,
    /// ties by fingerprint).
    pub frontier: Vec<FrontierPoint>,
    /// The successive-halving winner among the frontier members.
    pub recommended: ConfigKnobs,
    /// Refinement rungs, in execution order (empty when the frontier had
    /// a single member or refinement was disabled).
    pub rungs: Vec<RungSummary>,
}

impl FrontierArtifact {
    /// The artifact file name for a circuit hash (keyed by circuit, not by
    /// full tune key: one frontier per circuit per directory, replaced
    /// when the tuning question changes).
    pub fn file_name(circuit_hash: u64) -> String {
        format!("tune-{circuit_hash:016x}.json")
    }

    /// Serializes to canonical JSON (see the module docs for why the form
    /// is fixed).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        write_str(&mut out, 1, "format", ARTIFACT_FORMAT, true);
        write_hex(&mut out, 1, "circuit_hash", self.circuit_hash, true);
        write_hex(&mut out, 1, "tune_key", self.tune_key, true);
        write_hex(&mut out, 1, "lattice_fingerprint", self.lattice_fingerprint, true);
        write_hex(&mut out, 1, "cost_model_fingerprint", self.cost_model_fingerprint, true);
        indent(&mut out, 1);
        out.push_str("\"seeds\": [");
        for (i, seed) in self.seeds.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{seed}");
        }
        out.push_str("],\n");
        indent(&mut out, 1);
        out.push_str("\"objectives\": [");
        for (i, name) in self.objectives.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_json_string(&mut out, name);
        }
        out.push_str("],\n");
        indent(&mut out, 1);
        out.push_str("\"frontier\": [");
        for (i, point) in self.frontier.iter().enumerate() {
            out.push_str(if i > 0 { ",\n" } else { "\n" });
            write_point(&mut out, 2, point);
        }
        if self.frontier.is_empty() {
            out.push_str("],\n");
        } else {
            out.push('\n');
            indent(&mut out, 1);
            out.push_str("],\n");
        }
        indent(&mut out, 1);
        out.push_str("\"recommended\": ");
        write_knobs(&mut out, 1, &self.recommended);
        out.push_str(",\n");
        indent(&mut out, 1);
        out.push_str("\"rungs\": [");
        for (i, rung) in self.rungs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"rung\": {}, \"seeds\": {}, \"candidates\": {}}}",
                rung.rung, rung.seeds, rung.candidates
            );
        }
        out.push_str("]\n");
        out.push_str("}\n");
        out
    }

    /// Parses an artifact back from its canonical JSON.
    pub fn from_json(text: &str) -> Result<Self, ArtifactError> {
        let value = Json::parse(text)?;
        let obj = value.as_obj("artifact root")?;
        let format = get(obj, "format")?.as_str("format")?;
        if format != ARTIFACT_FORMAT {
            return Err(ArtifactError::new(format!(
                "format {format:?} is not {ARTIFACT_FORMAT:?}"
            )));
        }
        let seeds = get(obj, "seeds")?
            .as_arr("seeds")?
            .iter()
            .map(|v| v.as_u64("seed"))
            .collect::<Result<Vec<_>, _>>()?;
        let objectives = get(obj, "objectives")?
            .as_arr("objectives")?
            .iter()
            .map(|v| v.as_str("objective").map(String::from))
            .collect::<Result<Vec<_>, _>>()?;
        let frontier = get(obj, "frontier")?
            .as_arr("frontier")?
            .iter()
            .map(parse_point)
            .collect::<Result<Vec<_>, _>>()?;
        let rungs = get(obj, "rungs")?
            .as_arr("rungs")?
            .iter()
            .map(parse_rung)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FrontierArtifact {
            circuit_hash: get(obj, "circuit_hash")?.as_hex("circuit_hash")?,
            tune_key: get(obj, "tune_key")?.as_hex("tune_key")?,
            lattice_fingerprint: get(obj, "lattice_fingerprint")?.as_hex("lattice_fingerprint")?,
            cost_model_fingerprint: get(obj, "cost_model_fingerprint")?
                .as_hex("cost_model_fingerprint")?,
            seeds,
            objectives,
            frontier,
            recommended: parse_knobs(get(obj, "recommended")?)?,
            rungs,
        })
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// JSON-escapes and quotes `s` (ASCII control characters via `\u00XX`).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Canonical float form: Rust's shortest round-trip `Display`. Finiteness
/// is asserted — NaN/∞ have no JSON encoding and no place in a cost.
fn push_f64(out: &mut String, v: f64) {
    assert!(v.is_finite(), "artifact floats must be finite, got {v}");
    let _ = write!(out, "{v}");
}

fn write_str(out: &mut String, level: usize, key: &str, value: &str, comma: bool) {
    indent(out, level);
    let _ = write!(out, "\"{key}\": ");
    push_json_string(out, value);
    out.push_str(if comma { ",\n" } else { "\n" });
}

fn write_hex(out: &mut String, level: usize, key: &str, value: u64, comma: bool) {
    indent(out, level);
    let _ = write!(out, "\"{key}\": \"0x{value:016x}\"");
    out.push_str(if comma { ",\n" } else { "\n" });
}

fn write_knobs(out: &mut String, level: usize, knobs: &ConfigKnobs) {
    out.push('{');
    let mut first = true;
    let mut field = |out: &mut String, key: &str| {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "\"{key}\": ");
    };
    field(out, "rsl_size");
    let _ = write!(out, "{}", knobs.rsl_size);
    field(out, "resource_state_size");
    let _ = write!(out, "{}", knobs.resource_state_size);
    field(out, "fusion_success_prob");
    push_f64(out, knobs.fusion_success_prob);
    field(out, "photon_loss_rate");
    push_f64(out, knobs.photon_loss_rate);
    field(out, "target_degree");
    let _ = write!(out, "{}", knobs.target_degree);
    field(out, "photon_lifetime_cycles");
    let _ = write!(out, "{}", knobs.photon_lifetime_cycles);
    field(out, "virtual_side");
    let _ = write!(out, "{}", knobs.virtual_side);
    field(out, "occupancy_limit");
    push_f64(out, knobs.occupancy_limit);
    field(out, "refresh_period");
    match knobs.refresh_period {
        None => out.push_str("null"),
        Some(p) => {
            let _ = write!(out, "{p}");
        }
    }
    field(out, "temporal_redundancy");
    let _ = write!(out, "{}", knobs.temporal_redundancy);
    field(out, "pipelined");
    let _ = write!(out, "{}", knobs.pipelined);
    field(out, "renorm_workers");
    let _ = write!(out, "{}", knobs.renorm_workers);
    out.push('}');
    let _ = level;
}

fn write_point(out: &mut String, level: usize, point: &FrontierPoint) {
    indent(out, level);
    out.push_str("{\n");
    indent(out, level + 1);
    out.push_str("\"config\": ");
    write_knobs(out, level + 1, &point.config);
    out.push_str(",\n");
    write_hex(out, level + 1, "fingerprint", point.fingerprint, true);
    indent(out, level + 1);
    out.push_str("\"cost\": [");
    for (i, c) in point.cost.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_f64(out, *c);
    }
    out.push_str("],\n");
    indent(out, level + 1);
    out.push_str("\"success_probability\": ");
    push_f64(out, point.success_probability);
    out.push_str(",\n");
    indent(out, level + 1);
    let _ = write!(out, "\"complete_runs\": {}", point.complete_runs);
    out.push_str(",\n");
    indent(out, level + 1);
    let _ = write!(out, "\"total_runs\": {}", point.total_runs);
    out.push('\n');
    indent(out, level);
    out.push('}');
}

fn parse_point(value: &Json) -> Result<FrontierPoint, ArtifactError> {
    let obj = value.as_obj("frontier point")?;
    let cost = get(obj, "cost")?
        .as_arr("cost")?
        .iter()
        .map(|v| v.as_f64("cost component"))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FrontierPoint {
        config: parse_knobs(get(obj, "config")?)?,
        fingerprint: get(obj, "fingerprint")?.as_hex("fingerprint")?,
        cost,
        success_probability: get(obj, "success_probability")?.as_f64("success_probability")?,
        complete_runs: get(obj, "complete_runs")?.as_usize("complete_runs")?,
        total_runs: get(obj, "total_runs")?.as_usize("total_runs")?,
    })
}

fn parse_rung(value: &Json) -> Result<RungSummary, ArtifactError> {
    let obj = value.as_obj("rung")?;
    Ok(RungSummary {
        rung: get(obj, "rung")?.as_usize("rung")?,
        seeds: get(obj, "seeds")?.as_usize("seeds")?,
        candidates: get(obj, "candidates")?.as_usize("candidates")?,
    })
}

fn parse_knobs(value: &Json) -> Result<ConfigKnobs, ArtifactError> {
    let obj = value.as_obj("config knobs")?;
    let refresh = get(obj, "refresh_period")?;
    Ok(ConfigKnobs {
        rsl_size: get(obj, "rsl_size")?.as_usize("rsl_size")?,
        resource_state_size: get(obj, "resource_state_size")?.as_usize("resource_state_size")?,
        fusion_success_prob: get(obj, "fusion_success_prob")?.as_f64("fusion_success_prob")?,
        photon_loss_rate: get(obj, "photon_loss_rate")?.as_f64("photon_loss_rate")?,
        target_degree: get(obj, "target_degree")?.as_usize("target_degree")?,
        photon_lifetime_cycles: get(obj, "photon_lifetime_cycles")?
            .as_usize("photon_lifetime_cycles")?,
        virtual_side: get(obj, "virtual_side")?.as_usize("virtual_side")?,
        occupancy_limit: get(obj, "occupancy_limit")?.as_f64("occupancy_limit")?,
        refresh_period: if refresh.is_null() {
            None
        } else {
            Some(refresh.as_usize("refresh_period")?)
        },
        temporal_redundancy: get(obj, "temporal_redundancy")?.as_usize("temporal_redundancy")?,
        pipelined: get(obj, "pipelined")?.as_bool("pipelined")?,
        renorm_workers: get(obj, "renorm_workers")?.as_usize("renorm_workers")?,
    })
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (the subset the writer above emits).
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their source text so 64-bit integers
/// survive exactly (an `f64` detour would corrupt hashes past 2⁵³ — which
/// is also why the writer encodes hashes as hex strings).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, ArtifactError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| ArtifactError::new(format!("missing key {key:?}")))
}

impl Json {
    fn parse(text: &str) -> Result<Json, ArtifactError> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(ArtifactError::new("trailing data after JSON value"));
        }
        Ok(value)
    }

    fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    fn as_obj(&self, what: &str) -> Result<&[(String, Json)], ArtifactError> {
        match self {
            Json::Obj(fields) => Ok(fields),
            _ => Err(ArtifactError::new(format!("{what} is not an object"))),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], ArtifactError> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(ArtifactError::new(format!("{what} is not an array"))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, ArtifactError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(ArtifactError::new(format!("{what} is not a string"))),
        }
    }

    fn as_bool(&self, what: &str) -> Result<bool, ArtifactError> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(ArtifactError::new(format!("{what} is not a boolean"))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, ArtifactError> {
        match self {
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| ArtifactError::new(format!("{what} is not a u64: {raw}"))),
            _ => Err(ArtifactError::new(format!("{what} is not a number"))),
        }
    }

    fn as_usize(&self, what: &str) -> Result<usize, ArtifactError> {
        match self {
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| ArtifactError::new(format!("{what} is not a usize: {raw}"))),
            _ => Err(ArtifactError::new(format!("{what} is not a number"))),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, ArtifactError> {
        match self {
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| ArtifactError::new(format!("{what} is not a float: {raw}"))),
            _ => Err(ArtifactError::new(format!("{what} is not a number"))),
        }
    }

    fn as_hex(&self, what: &str) -> Result<u64, ArtifactError> {
        let s = self.as_str(what)?;
        let digits = s
            .strip_prefix("0x")
            .ok_or_else(|| ArtifactError::new(format!("{what} is not a 0x hex string: {s}")))?;
        u64::from_str_radix(digits, 16)
            .map_err(|_| ArtifactError::new(format!("{what} is not a hex u64: {s}")))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, ArtifactError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| ArtifactError::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), ArtifactError> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(ArtifactError::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, ArtifactError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(ArtifactError::new(format!("expected {literal:?} at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json, ArtifactError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.eat_literal("true", Json::Bool(true)),
            b'f' => self.eat_literal("false", Json::Bool(false)),
            b'n' => self.eat_literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, ArtifactError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(ArtifactError::new(format!(
                        "expected ',' or '}}' in object, got {:?}",
                        other as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ArtifactError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(ArtifactError::new(format!(
                        "expected ',' or ']' in array, got {:?}",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, ArtifactError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Advance over the plain (unescaped, non-terminator) run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| ArtifactError::new("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| ArtifactError::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| ArtifactError::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| ArtifactError::new("malformed \\u escape"))?;
                            // Surrogate pairs are out of scope: the writer
                            // only \u-escapes ASCII control characters.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| ArtifactError::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(ArtifactError::new(format!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(ArtifactError::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ArtifactError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(ArtifactError::new(format!("expected a number at byte {start}")));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ArtifactError::new("invalid UTF-8 in number"))?;
        // Validate now so `as_f64` can only fail on *type* mismatches.
        raw.parse::<f64>()
            .map_err(|_| ArtifactError::new(format!("malformed number {raw:?}")))?;
        Ok(Json::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knobs() -> ConfigKnobs {
        ConfigKnobs::from(&CompilerConfig::for_qubits(4, 0.9, 1))
    }

    fn artifact() -> FrontierArtifact {
        FrontierArtifact {
            circuit_hash: 0xdead_beef_0123_4567,
            tune_key: 42,
            lattice_fingerprint: u64::MAX,
            cost_model_fingerprint: 7,
            seeds: vec![1, 2, 3],
            objectives: vec!["latency".into(), "volume".into()],
            frontier: vec![FrontierPoint {
                config: knobs(),
                fingerprint: 0x0123_4567_89ab_cdef,
                cost: vec![3.5, 1024.0],
                success_probability: 0.75,
                complete_runs: 3,
                total_runs: 4,
            }],
            recommended: knobs(),
            rungs: vec![RungSummary { rung: 1, seeds: 6, candidates: 2 }],
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let original = artifact();
        let json = original.to_json();
        let parsed = FrontierArtifact::from_json(&json).expect("round trip parses");
        assert_eq!(parsed, original);
        assert_eq!(parsed.to_json(), json, "re-serialization is byte-identical");
    }

    #[test]
    fn knobs_round_trip_through_config() {
        let config = CompilerConfig::for_sensitivity(36, 3, 0.8, 9)
            .with_refresh_period(Some(5))
            .with_pipelining(true)
            .with_renorm_workers(2);
        let rebuilt = ConfigKnobs::from(&config).to_config(9);
        assert_eq!(rebuilt, config);
        assert_eq!(rebuilt.fingerprint(), config.fingerprint());
    }

    #[test]
    fn empty_frontier_serializes() {
        let mut a = artifact();
        a.frontier.clear();
        a.rungs.clear();
        let parsed = FrontierArtifact::from_json(&a.to_json()).expect("parses");
        assert!(parsed.frontier.is_empty());
        assert!(parsed.rungs.is_empty());
    }

    #[test]
    fn hashes_survive_past_f64_precision() {
        // 2^53 + 1 is not representable as f64; hex strings keep it exact.
        let mut a = artifact();
        a.circuit_hash = (1 << 53) + 1;
        let parsed = FrontierArtifact::from_json(&a.to_json()).expect("parses");
        assert_eq!(parsed.circuit_hash, (1 << 53) + 1);
    }

    #[test]
    fn format_tag_is_enforced() {
        let json = artifact().to_json().replace("frontier-v1", "frontier-v0");
        let err = FrontierArtifact::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("format"));
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in ["", "{", "{\"format\": }", "nope", "{\"a\": 1} trailing", "[1, 2"] {
            assert!(FrontierArtifact::from_json(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn file_name_is_stable() {
        assert_eq!(FrontierArtifact::file_name(0xab), "tune-00000000000000ab.json");
    }
}
