//! Pluggable cost models: how one evaluated lattice point becomes a cost
//! vector.
//!
//! A [`CostModel`] maps a [`PointSample`] — the configuration plus its
//! deterministic per-seed [`ExecutionReport`]s — to a vector of **finite,
//! minimized** objectives. The built-in [`ResourceDeadlineModel`] encodes
//! the paper's trade-off triangle: per-RSL latency against the
//! photon-lifetime deadline, raw resource volume, and success
//! probability.
//!
//! A model may also offer an **optimistic lower bound** for a point it has
//! not yet seen executed ([`CostModel::lower_bound`]). The tuner compares
//! bounds of in-flight points against the frontier of finished ones; a
//! bound that is already dominated proves the true cost will be dominated
//! too (costs are componentwise ≥ their bound), so the point's remaining
//! executions are cancelled mid-flight. A model that cannot bound soundly
//! returns `None` and the tuner simply never sheds.

use oneperc::{CompilerConfig, ExecutionReport};
use oneperc_circuit::StableHasher;

/// One evaluated lattice point as seen by a cost model: the configuration
/// and the **deterministic views** of its per-seed reports (wall-clock and
/// telemetry zeroed — costs must be functions of `(config, circuit, seed)`
/// only, or the frontier artifact would not be byte-stable).
#[derive(Debug, Clone, Copy)]
pub struct PointSample<'a> {
    /// The configuration this point was executed under.
    pub config: &'a CompilerConfig,
    /// Deterministic per-seed reports, in seed order.
    pub reports: &'a [ExecutionReport],
}

impl PointSample<'_> {
    /// RSL sites per raw layer for this point's hardware.
    pub fn sites_per_layer(&self) -> usize {
        self.config.hardware.sites_per_rsl()
    }

    /// Mean per-RSL latency across the seeds (RSG cycles per logical
    /// layer; see [`ExecutionReport::rsl_per_logical_layer`]).
    pub fn mean_rsl_per_logical_layer(&self) -> f64 {
        self.mean(|r| r.rsl_per_logical_layer())
    }

    /// Mean raw resource volume across the seeds (resource states
    /// consumed; see [`ExecutionReport::resource_volume`]).
    pub fn mean_resource_volume(&self) -> f64 {
        let sites = self.sites_per_layer();
        self.mean(|r| r.resource_volume(sites) as f64)
    }

    /// Fraction of seeds whose run completed every logical layer.
    pub fn success_probability(&self) -> f64 {
        ExecutionReport::success_probability(self.reports)
    }

    fn mean(&self, f: impl Fn(&ExecutionReport) -> f64) -> f64 {
        if self.reports.is_empty() {
            return 0.0;
        }
        self.reports.iter().map(f).sum::<f64>() / self.reports.len() as f64
    }
}

/// A cost model: scores evaluated points, optionally bounds unevaluated
/// ones, and fingerprints itself into the tuner's cache key.
pub trait CostModel {
    /// Names of the objective axes, in the order [`CostModel::cost`]
    /// emits them. Serialized into the frontier artifact so a reader
    /// knows what the numbers mean.
    fn objectives(&self) -> Vec<String>;

    /// The cost vector of an evaluated point. Every component must be
    /// finite and is minimized; `cost.len() == objectives().len()`.
    fn cost(&self, sample: &PointSample<'_>) -> Vec<f64>;

    /// An optimistic (componentwise ≤ the true cost) bound for a point
    /// known only by its configuration and compiled program depth, or
    /// `None` when no sound bound exists. Used to shed dominated
    /// in-flight evaluations; soundness matters — an over-tight bound
    /// would cancel points that belong on the frontier.
    fn lower_bound(&self, config: &CompilerConfig, ir_layers: usize) -> Option<Vec<f64>> {
        let _ = (config, ir_layers);
        None
    }

    /// A stable fingerprint of the model and its parameters. Part of the
    /// tuner's artifact cache key: two tuners agree on a cached frontier
    /// only if their models fingerprint identically.
    fn fingerprint(&self) -> u64;
}

/// The built-in model: the paper's resource/latency/success triangle with
/// a photon-lifetime deadline.
///
/// Objectives (all minimized, in order):
///
/// 1. `deadline_overrun_cycles` — how far the mean per-RSL latency
///    exceeds the photon lifetime (`0` when photons survive their layer).
///    Kept as its own axis rather than folded into latency: a config
///    meeting the deadline with slack and one missing it narrowly differ
///    in kind, not just degree.
/// 2. `rsl_per_logical_layer` — mean per-RSL latency in RSG cycles.
/// 3. `resource_volume` — mean raw resource states consumed.
/// 4. `failure_rate` — `1 −` empirical success probability.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceDeadlineModel {
    /// Deadline override in RSG cycles; `None` uses each configuration's
    /// own [`photon_lifetime_cycles`](oneperc_hardware::HardwareConfig).
    pub deadline_cycles: Option<usize>,
}

impl ResourceDeadlineModel {
    /// The model with the per-configuration photon lifetime as deadline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the deadline (in RSG cycles) for every configuration.
    #[must_use]
    pub fn with_deadline_cycles(mut self, cycles: usize) -> Self {
        self.deadline_cycles = Some(cycles);
        self
    }

    fn deadline_for(&self, config: &CompilerConfig) -> f64 {
        self.deadline_cycles.unwrap_or(config.hardware.photon_lifetime_cycles) as f64
    }
}

impl CostModel for ResourceDeadlineModel {
    fn objectives(&self) -> Vec<String> {
        ["deadline_overrun_cycles", "rsl_per_logical_layer", "resource_volume", "failure_rate"]
            .map(String::from)
            .to_vec()
    }

    fn cost(&self, sample: &PointSample<'_>) -> Vec<f64> {
        let latency = sample.mean_rsl_per_logical_layer();
        let overrun = (latency - self.deadline_for(sample.config)).max(0.0);
        let volume = sample.mean_resource_volume();
        let failure = 1.0 - sample.success_probability();
        vec![overrun, latency, volume, failure]
    }

    fn lower_bound(&self, config: &CompilerConfig, _ir_layers: usize) -> Option<Vec<f64>> {
        // Any run consumes at least one merged layer (the first attempt),
        // i.e. `merging_factor` raw layers — a floor on resource volume.
        // Latency has no sound positive floor (a run whose first logical
        // layer never forms reports latency 0), so those axes bound at 0.
        let volume_floor =
            (config.hardware.merging_factor() * config.hardware.sites_per_rsl()) as f64;
        Some(vec![0.0, 0.0, volume_floor, 0.0])
    }

    fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        // Model identity tag, then parameters; bump on format change.
        h.write_tag(1);
        match self.deadline_cycles {
            None => h.write_tag(0),
            Some(cycles) => {
                h.write_tag(1);
                h.write_usize(cycles);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rsl: u64, logical: u64, complete: bool) -> ExecutionReport {
        ExecutionReport { rsl_consumed: rsl, logical_layers: logical, complete, ..Default::default() }
    }

    #[test]
    fn sample_aggregates_in_seed_order_invariant_means() {
        let config = CompilerConfig::for_qubits(4, 0.9, 1);
        let reports = [report(40, 10, true), report(60, 10, false)];
        let sample = PointSample { config: &config, reports: &reports };
        assert_eq!(sample.sites_per_layer(), 576);
        assert!((sample.mean_rsl_per_logical_layer() - 5.0).abs() < 1e-12);
        assert!((sample.mean_resource_volume() - 50.0 * 576.0).abs() < 1e-9);
        assert!((sample.success_probability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deadline_model_costs_and_objectives_align() {
        let model = ResourceDeadlineModel::new().with_deadline_cycles(4);
        let config = CompilerConfig::for_qubits(4, 0.9, 1);
        let reports = [report(60, 10, true)];
        let sample = PointSample { config: &config, reports: &reports };
        let cost = model.cost(&sample);
        assert_eq!(cost.len(), model.objectives().len());
        assert!((cost[0] - 2.0).abs() < 1e-12, "latency 6 vs deadline 4");
        assert!((cost[1] - 6.0).abs() < 1e-12);
        assert!((cost[3] - 0.0).abs() < 1e-12);
        assert!(cost.iter().all(|c| c.is_finite()));

        // Default deadline is the hardware photon lifetime: no overrun.
        let lenient = ResourceDeadlineModel::new();
        assert_eq!(lenient.cost(&sample)[0], 0.0);
    }

    #[test]
    fn lower_bound_is_optimistic() {
        let model = ResourceDeadlineModel::new();
        let config = CompilerConfig::for_qubits(4, 0.9, 1);
        let bound = model.lower_bound(&config, 7).expect("built-in model bounds");
        // Evaluate a minimal run: one merged layer consumed, nothing formed.
        let mf = config.hardware.merging_factor() as u64;
        let reports = [report(mf, 0, false)];
        let cost = model.cost(&PointSample { config: &config, reports: &reports });
        for (b, c) in bound.iter().zip(&cost) {
            assert!(b <= c, "bound {b} must not exceed true cost {c}");
        }
    }

    #[test]
    fn model_fingerprint_tracks_parameters() {
        let a = ResourceDeadlineModel::new();
        let b = ResourceDeadlineModel::new().with_deadline_cycles(100);
        let c = ResourceDeadlineModel::new().with_deadline_cycles(200);
        assert_eq!(a.fingerprint(), ResourceDeadlineModel::new().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(b.fingerprint(), c.fingerprint());
    }
}
