//! `oneperc-tune`: cost-model-driven configuration search with a cached
//! Pareto frontier.
//!
//! The compiler exposes many interacting knobs — RSL size, resource-state
//! size (and with it the merging factor), temporal redundancy, refresh
//! period, pipelining, renormalization workers — over a cheap warm-sweep
//! path, but picking values by hand means picking blind. This crate turns
//! the choice into a search problem:
//!
//! 1. A [`ConfigLattice`] spans candidate values per knob around a base
//!    [`CompilerConfig`](oneperc::CompilerConfig).
//! 2. A [`Tuner`] sweeps every lattice point over the warm multi-tenant
//!    fleet — one [`AsyncSession`](oneperc::AsyncSession) per point, all
//!    sharing one [`ProgramCache`](oneperc::service::ProgramCache), seeds
//!    admitted through `submit_async` — and scores each point with a
//!    pluggable [`CostModel`] (the built-in [`ResourceDeadlineModel`]
//!    trades per-RSL latency against the photon-lifetime deadline, raw
//!    resource volume, and success probability).
//! 3. Dominated points are pruned online in a [`ParetoFront`]; in-flight
//!    points whose optimistic cost bound is already dominated are
//!    **cancelled mid-run** through the service tier's cancellation
//!    tokens.
//! 4. A successive-halving refinement stage re-evaluates the frontier on
//!    growing seed sets and recommends a single configuration.
//! 5. The frontier is serialized as a canonical-JSON [`FrontierArtifact`]
//!    keyed by the circuit's structural hash — re-tuning the same circuit
//!    is a cache hit that skips evaluation entirely, and identical inputs
//!    always produce byte-identical artifacts.
//!
//! # Quickstart
//!
//! ```
//! use oneperc::CompilerConfig;
//! use oneperc_circuit::benchmarks;
//! use oneperc_tune::{ConfigLattice, TuneSource, Tuner};
//!
//! // Three knobs around the 4-qubit Table 1 preset.
//! let lattice = ConfigLattice::new(CompilerConfig::for_qubits(4, 0.9, 1))
//!     .with_temporal_redundancies(&[2, 3])
//!     .with_pipelining(&[false, true])
//!     .with_renorm_workers(&[0, 2]);
//! let mut tuner = Tuner::builder(lattice).seeds(&[1, 2]).build();
//!
//! let circuit = benchmarks::qaoa(4, 1);
//! let tuned = tuner.tune(&circuit).unwrap();
//! assert_eq!(tuned.source, TuneSource::Evaluated);
//! assert!(!tuned.artifact.frontier.is_empty());
//!
//! // Same circuit, same question: answered from the artifact cache.
//! let again = tuner.tune(&circuit).unwrap();
//! assert_eq!(again.source, TuneSource::MemoryCache);
//! assert_eq!(again.json, tuned.json, "cached bytes are the stored bytes");
//!
//! // The recommendation rebuilds into a runnable configuration.
//! let best = tuned.artifact.recommended.to_config(42);
//! assert_eq!(best.virtual_side, 2);
//! ```
//!
//! The crate surfaces through the workspace facade as
//! `oneperc_suite::tune` (it cannot live *inside* the `oneperc` crate —
//! the tuner drives `oneperc`'s session tier, so `oneperc::tune` would be
//! a dependency cycle). See `crates/tune/README.md` for the cost-model
//! contract and the artifact format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod cost;
mod lattice;
mod pareto;
mod tuner;

pub use artifact::{
    ArtifactError, ConfigKnobs, FrontierArtifact, FrontierPoint, RungSummary, ARTIFACT_FORMAT,
};
pub use cost::{CostModel, PointSample, ResourceDeadlineModel};
pub use lattice::ConfigLattice;
pub use pareto::{dominates, FrontEntry, ParetoFront};
pub use tuner::{TuneError, TuneOutcome, TuneSource, TuneStats, Tuner, TunerBuilder};
