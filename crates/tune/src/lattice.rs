//! The configuration lattice: the cartesian knob grid a tuner sweeps.
//!
//! A [`ConfigLattice`] starts from a base [`CompilerConfig`] and replaces
//! chosen knobs with axes of candidate values. [`ConfigLattice::points`]
//! materializes the full cartesian product in a **fixed nesting order**
//! (RSL size outermost … renormalization workers innermost), so point
//! indices — and therefore the tuner's evaluation schedule — are a pure
//! function of the lattice. [`ConfigLattice::fingerprint`] hashes the base
//! configuration and every axis; it is part of the tuner's artifact cache
//! key, so adding a value to any axis invalidates cached frontiers.

use oneperc::CompilerConfig;
use oneperc_circuit::StableHasher;
use oneperc_hardware::HardwareConfig;

/// A cartesian lattice of compiler configurations around a base point.
///
/// Axes default to the base configuration's own value; each `with_*`
/// builder replaces one axis. The seed is **not** an axis: the tuner
/// sweeps seeds per point, and [`CompilerConfig::fingerprint`] excludes
/// the seed for the same reason.
#[derive(Debug, Clone)]
#[must_use]
pub struct ConfigLattice {
    base: CompilerConfig,
    rsl_sizes: Vec<usize>,
    resource_state_sizes: Vec<usize>,
    temporal_redundancies: Vec<usize>,
    refresh_periods: Vec<Option<usize>>,
    pipelined: Vec<bool>,
    renorm_workers: Vec<usize>,
}

impl ConfigLattice {
    /// A degenerate lattice holding only the base configuration.
    pub fn new(base: CompilerConfig) -> Self {
        ConfigLattice {
            base,
            rsl_sizes: vec![base.hardware.rsl_size],
            resource_state_sizes: vec![base.hardware.resource_state_size],
            temporal_redundancies: vec![base.temporal_redundancy],
            refresh_periods: vec![base.refresh_period],
            pipelined: vec![base.pipelined],
            renorm_workers: vec![base.renorm_workers],
        }
    }

    /// The base configuration the axes perturb.
    pub fn base(&self) -> &CompilerConfig {
        &self.base
    }

    /// Replaces the RSL-size axis. Every size must fit the base
    /// configuration's virtual hardware (checked when materializing).
    pub fn with_rsl_sizes(mut self, sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "an axis needs at least one value");
        self.rsl_sizes = sizes.to_vec();
        self
    }

    /// Replaces the resource-state-size axis (photons per star).
    pub fn with_resource_state_sizes(mut self, sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "an axis needs at least one value");
        self.resource_state_sizes = sizes.to_vec();
        self
    }

    /// Replaces the temporal-redundancy axis.
    pub fn with_temporal_redundancies(mut self, values: &[usize]) -> Self {
        assert!(!values.is_empty(), "an axis needs at least one value");
        self.temporal_redundancies = values.to_vec();
        self
    }

    /// Replaces the refresh-period axis (`None` = refresh off).
    pub fn with_refresh_periods(mut self, periods: &[Option<usize>]) -> Self {
        assert!(!periods.is_empty(), "an axis needs at least one value");
        self.refresh_periods = periods.to_vec();
        self
    }

    /// Replaces the pipelining axis.
    pub fn with_pipelining(mut self, values: &[bool]) -> Self {
        assert!(!values.is_empty(), "an axis needs at least one value");
        self.pipelined = values.to_vec();
        self
    }

    /// Replaces the renormalization-worker axis (`0` = in-thread).
    pub fn with_renorm_workers(mut self, values: &[usize]) -> Self {
        assert!(!values.is_empty(), "an axis needs at least one value");
        self.renorm_workers = values.to_vec();
        self
    }

    /// Number of lattice points (product of the axis lengths).
    pub fn len(&self) -> usize {
        self.rsl_sizes.len()
            * self.resource_state_sizes.len()
            * self.temporal_redundancies.len()
            * self.refresh_periods.len()
            * self.pipelined.len()
            * self.renorm_workers.len()
    }

    /// Whether the lattice has no points (never true: axes are non-empty
    /// by construction, but the tuner checks defensively).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of axes carrying more than one candidate value — the
    /// lattice's knob count.
    pub fn knob_count(&self) -> usize {
        [
            self.rsl_sizes.len(),
            self.resource_state_sizes.len(),
            self.temporal_redundancies.len(),
            self.refresh_periods.len(),
            self.pipelined.len(),
            self.renorm_workers.len(),
        ]
        .iter()
        .filter(|&&n| n > 1)
        .count()
    }

    /// Materializes every lattice point, in the fixed nesting order
    /// (RSL size ▸ resource-state size ▸ temporal redundancy ▸ refresh
    /// period ▸ pipelining ▸ renormalization workers).
    ///
    /// # Panics
    ///
    /// Panics when an RSL size cannot fit the base virtual hardware or a
    /// resource-state size is below 3 (the [`CompilerConfig`] /
    /// [`HardwareConfig`] constructors' own invariants).
    pub fn points(&self) -> Vec<CompilerConfig> {
        let mut out = Vec::with_capacity(self.len());
        for &rsl in &self.rsl_sizes {
            for &rss in &self.resource_state_sizes {
                for &tr in &self.temporal_redundancies {
                    for &refresh in &self.refresh_periods {
                        for &pipe in &self.pipelined {
                            for &workers in &self.renorm_workers {
                                out.push(self.materialize(rsl, rss, tr, refresh, pipe, workers));
                            }
                        }
                    }
                }
            }
        }
        out
    }

    fn materialize(
        &self,
        rsl_size: usize,
        resource_state_size: usize,
        temporal_redundancy: usize,
        refresh_period: Option<usize>,
        pipelined: bool,
        renorm_workers: usize,
    ) -> CompilerConfig {
        let hardware = HardwareConfig {
            rsl_size,
            resource_state_size,
            ..self.base.hardware
        };
        // `new` revalidates the fit and rederives the node size for the
        // perturbed RSL; the remaining knobs carry over from the base.
        let mut config = CompilerConfig::new(hardware, self.base.virtual_side, self.base.seed);
        config.occupancy_limit = self.base.occupancy_limit;
        config.temporal_redundancy = temporal_redundancy;
        config
            .with_refresh_period(refresh_period)
            .with_pipelining(pipelined)
            .with_renorm_workers(renorm_workers)
    }

    /// A stable fingerprint of the base configuration and every axis;
    /// part of the tuner's artifact cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        // Encoding version tag, bumped on format change.
        h.write_tag(1);
        h.write_u64(self.base.fingerprint());
        let usize_axis = |h: &mut StableHasher, tag: u8, values: &[usize]| {
            h.write_tag(tag);
            h.write_usize(values.len());
            for &v in values {
                h.write_usize(v);
            }
        };
        usize_axis(&mut h, 1, &self.rsl_sizes);
        usize_axis(&mut h, 2, &self.resource_state_sizes);
        usize_axis(&mut h, 3, &self.temporal_redundancies);
        h.write_tag(4);
        h.write_usize(self.refresh_periods.len());
        for period in &self.refresh_periods {
            match period {
                None => h.write_tag(0),
                Some(p) => {
                    h.write_tag(1);
                    h.write_usize(*p);
                }
            }
        }
        h.write_tag(5);
        h.write_usize(self.pipelined.len());
        for &p in &self.pipelined {
            h.write_tag(u8::from(p));
        }
        usize_axis(&mut h, 6, &self.renorm_workers);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CompilerConfig {
        CompilerConfig::for_qubits(4, 0.9, 1)
    }

    #[test]
    fn degenerate_lattice_is_the_base() {
        let lattice = ConfigLattice::new(base());
        assert_eq!(lattice.len(), 1);
        assert_eq!(lattice.knob_count(), 0);
        assert!(!lattice.is_empty());
        assert_eq!(lattice.points(), vec![base()]);
    }

    #[test]
    fn cartesian_product_in_fixed_order() {
        let lattice = ConfigLattice::new(base())
            .with_rsl_sizes(&[24, 30])
            .with_temporal_redundancies(&[2, 3])
            .with_pipelining(&[false, true]);
        assert_eq!(lattice.len(), 8);
        assert_eq!(lattice.knob_count(), 3);
        let points = lattice.points();
        assert_eq!(points.len(), 8);
        // RSL is the outermost axis, pipelining the innermost of the three.
        assert_eq!(points[0].hardware.rsl_size, 24);
        assert!(!points[0].pipelined);
        assert!(points[1].pipelined);
        assert_eq!(points[1].temporal_redundancy, 2);
        assert_eq!(points[2].temporal_redundancy, 3);
        assert_eq!(points[4].hardware.rsl_size, 30);
        // Node size is rederived per RSL size.
        assert_eq!(points[0].node_size, 24 / base().virtual_side);
        assert_eq!(points[4].node_size, 30 / base().virtual_side);
        // Same seed everywhere: seeds are swept per point, not an axis.
        assert!(points.iter().all(|p| p.seed == base().seed));
    }

    #[test]
    fn fingerprint_tracks_axes_and_base() {
        let a = ConfigLattice::new(base()).with_rsl_sizes(&[24, 30]);
        let same = ConfigLattice::new(base()).with_rsl_sizes(&[24, 30]);
        assert_eq!(a.fingerprint(), same.fingerprint());
        let reordered = ConfigLattice::new(base()).with_rsl_sizes(&[30, 24]);
        assert_ne!(a.fingerprint(), reordered.fingerprint(), "axis order is significant");
        let extra = ConfigLattice::new(base()).with_rsl_sizes(&[24, 30]).with_pipelining(&[true]);
        assert_ne!(a.fingerprint(), extra.fingerprint());
        let other_base = ConfigLattice::new(base().with_renorm_workers(2)).with_rsl_sizes(&[24, 30]);
        assert_ne!(a.fingerprint(), other_base.fingerprint());
        // Seed does not participate (it is swept, not tuned).
        let reseeded = ConfigLattice::new(base().with_seed(999)).with_rsl_sizes(&[24, 30]);
        assert_eq!(a.fingerprint(), reseeded.fingerprint());
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn oversized_virtual_hardware_still_panics() {
        let _ = ConfigLattice::new(base()).with_rsl_sizes(&[1]).points();
    }
}
