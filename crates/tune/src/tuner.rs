//! The tuner: exhaustive lattice sweep + successive-halving refinement
//! over the warm multi-tenant fleet, with a cached frontier artifact.
//!
//! # Evaluation pipeline
//!
//! [`Tuner::tune`] walks the lattice points in their fixed order, keeping
//! a bounded window of points **in flight**: each point gets its own
//! [`AsyncSession`] (one warm session per machine configuration — the
//! fleet-sharding shape the service layer documents), every session
//! shares the tuner's one [`ProgramCache`], and the point's seeds are
//! admitted through [`submit_async`](AsyncSession::submit_async) so the
//! sweep respects the service tier's bounded admission window. Points are
//! *harvested* (futures awaited, reports aggregated, cost scored, Pareto
//! frontier updated) strictly in lattice order.
//!
//! # Shedding dominated in-flight work
//!
//! After each harvest, every still-in-flight point whose [optimistic
//! lower bound](crate::CostModel::lower_bound) is dominated by a finished
//! point is **cancelled mid-flight** through the job futures' cancel
//! tokens — the lanes abandon the remaining runs at their next layer
//! checkpoint ([`LayerFailureReason::Cancelled`]). Soundness of the bound
//! guarantees a shed point could never have joined the frontier, so the
//! artifact is unaffected; *which* points are shed is a deterministic
//! function of the tuner's settings (the schedule has no data races),
//! though how far a shed run progressed before its checkpoint is
//! timing-dependent and therefore only surfaces in [`TuneStats`], never
//! in the artifact.
//!
//! # Refinement (successive halving)
//!
//! The exhaustive pass is exact but shallow: few seeds per point. The
//! refinement stage re-evaluates the frontier members on geometrically
//! growing seed sets, halving the candidate pool by scalarized cost each
//! rung, and records the winner as the artifact's `recommended`
//! configuration. The exhaustive frontier itself is never revised — the
//! rungs only pick among its members.
//!
//! # Determinism and the cache
//!
//! Per-seed reports are deterministic, aggregation follows fixed seed
//! order, the frontier serializes in canonical order: identical inputs
//! and seed sets produce a **byte-identical** artifact, independent of
//! lane count, in-flight window, or shedding. The artifact is cached in
//! memory and (with [`TunerBuilder::artifact_dir`]) on disk, keyed by
//! [`Circuit::structural_hash`] and validated against the full
//! [`Tuner::tune_key`]; a re-tune of a known circuit returns the stored
//! bytes without evaluating anything.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use oneperc::service::{block_on, AsyncSession, ProgramCache};
use oneperc::{
    CacheStats, CompileError, CompilerConfig, ExecutionReport, ExecutionRequest, JobFuture,
    LayerFailureReason, DEFAULT_PROGRAM_CACHE_CAPACITY,
};
use oneperc_circuit::{Circuit, StableHasher};

use crate::artifact::{ConfigKnobs, FrontierArtifact, FrontierPoint, RungSummary};
use crate::cost::{CostModel, PointSample, ResourceDeadlineModel};
use crate::lattice::ConfigLattice;
use crate::pareto::{FrontEntry, ParetoFront};

/// A failed tuning run.
#[derive(Debug)]
pub enum TuneError {
    /// The offline pass failed for a lattice point.
    Compile(CompileError),
    /// The lattice has no points.
    EmptyLattice,
    /// The seed set is empty.
    NoSeeds,
    /// Writing the artifact to disk failed.
    Io(std::io::Error),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Compile(e) => write!(f, "lattice point failed to compile: {e}"),
            TuneError::EmptyLattice => write!(f, "the configuration lattice has no points"),
            TuneError::NoSeeds => write!(f, "the tuner needs at least one seed"),
            TuneError::Io(e) => write!(f, "writing the frontier artifact failed: {e}"),
        }
    }
}

impl std::error::Error for TuneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuneError::Compile(e) => Some(e),
            TuneError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileError> for TuneError {
    fn from(e: CompileError) -> Self {
        TuneError::Compile(e)
    }
}

impl From<std::io::Error> for TuneError {
    fn from(e: std::io::Error) -> Self {
        TuneError::Io(e)
    }
}

/// Where a [`TuneOutcome`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneSource {
    /// The lattice was evaluated on the fleet.
    Evaluated,
    /// Served from this tuner's in-memory cache — nothing executed.
    MemoryCache,
    /// Reloaded from the artifact directory — nothing executed.
    DiskCache,
}

/// Operational counters of one [`Tuner::tune`] call.
///
/// The schedule-shape counters (`points_*`, `jobs_cancelled`) are
/// deterministic for fixed tuner settings; `cancellations_observed` and
/// `wall` depend on thread timing (how far a shed run got before its
/// cancellation checkpoint). None of these enter the artifact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use]
pub struct TuneStats {
    /// Lattice points in the sweep.
    pub points_total: usize,
    /// Points fully evaluated (harvested into the frontier).
    pub points_evaluated: usize,
    /// Points pruned *before submission*: their optimistic lower bound
    /// was already dominated when their turn came.
    pub points_pruned_static: usize,
    /// Points cancelled *mid-flight* after a harvest dominated their
    /// bound — the PR 7 cancellation path.
    pub points_shed_inflight: usize,
    /// Seed executions harvested into frontier costs (exhaustive pass).
    pub jobs_harvested: usize,
    /// Seed executions belonging to shed points whose futures were
    /// cancelled.
    pub jobs_cancelled: usize,
    /// Cancelled executions whose lane actually stopped at a cancellation
    /// checkpoint (the rest finished before observing the token; both are
    /// discarded). Timing-dependent.
    pub cancellations_observed: usize,
    /// Seed executions spent in refinement rungs.
    pub refinement_executions: usize,
    /// Shared program-cache counters after the run.
    pub cache: CacheStats,
    /// Wall-clock time of the whole call.
    pub wall: Duration,
}

/// The result of [`Tuner::tune`]: the frontier artifact, its canonical
/// bytes, where it came from, and the run's counters.
#[derive(Debug, Clone)]
#[must_use]
pub struct TuneOutcome {
    /// The Pareto frontier artifact.
    pub artifact: FrontierArtifact,
    /// The artifact's canonical JSON — byte-identical across runs with
    /// identical inputs, and exactly what the artifact directory stores.
    pub json: String,
    /// Whether this call evaluated the lattice or hit a cache.
    pub source: TuneSource,
    /// Operational counters (all zero except `points_total` and `wall`
    /// on cache hits).
    pub stats: TuneStats,
}

/// Configures a [`Tuner`]; see [`Tuner::builder`].
#[must_use]
pub struct TunerBuilder {
    lattice: ConfigLattice,
    seeds: Vec<u64>,
    cost_model: Box<dyn CostModel>,
    lanes: usize,
    concurrent_points: usize,
    queue_depth: Option<usize>,
    artifact_dir: Option<PathBuf>,
    refine_rungs: usize,
    refine_growth: usize,
    shed_inflight: bool,
    program_cache: Option<Arc<ProgramCache>>,
}

impl TunerBuilder {
    /// Replaces the per-point seed sweep (default `[1, 2, 3, 4]`).
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Replaces the cost model (default [`ResourceDeadlineModel`]).
    pub fn cost_model(mut self, model: impl CostModel + 'static) -> Self {
        self.cost_model = Box::new(model);
        self
    }

    /// Lanes per point session (default 1). More lanes overlap one
    /// point's seeds; the artifact is identical for every value.
    pub fn lanes(mut self, lanes: usize) -> Self {
        assert!(lanes > 0, "a session needs at least one lane");
        self.lanes = lanes;
        self
    }

    /// Lattice points in flight at once (default 2). More points overlap
    /// distinct configurations — and give the shedding pass targets; the
    /// artifact is identical for every value.
    pub fn concurrent_points(mut self, points: usize) -> Self {
        assert!(points > 0, "the in-flight window needs at least one slot");
        self.concurrent_points = points;
        self
    }

    /// Admission window per point session (default: the service tier's
    /// own default).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "admission window needs at least one slot");
        self.queue_depth = Some(depth);
        self
    }

    /// Persists artifacts under this directory and reloads them on
    /// re-tunes (one file per circuit hash).
    pub fn artifact_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.artifact_dir = Some(dir.into());
        self
    }

    /// Configures the successive-halving stage: `rungs` halving rounds,
    /// the seed set growing `growth`× per rung (defaults: 1 rung, 2×).
    /// `rungs = 0` disables refinement (the recommendation then comes
    /// from the exhaustive costs alone).
    pub fn refinement(mut self, rungs: usize, growth: usize) -> Self {
        assert!(growth >= 1, "the seed set cannot shrink between rungs");
        self.refine_rungs = rungs;
        self.refine_growth = growth;
        self
    }

    /// Enables or disables cancelling dominated in-flight points
    /// (default on). Off, every submitted point runs to completion; the
    /// artifact is identical either way.
    pub fn shed_inflight(mut self, shed: bool) -> Self {
        self.shed_inflight = shed;
        self
    }

    /// Shares an existing program cache (e.g. a serving fleet's) instead
    /// of creating a private one: circuits the fleet already compiled are
    /// cache hits for the tuner and vice versa.
    pub fn shared_program_cache(mut self, cache: Arc<ProgramCache>) -> Self {
        self.program_cache = Some(cache);
        self
    }

    /// Builds the tuner.
    pub fn build(self) -> Tuner {
        Tuner {
            lattice: self.lattice,
            seeds: self.seeds,
            cost_model: self.cost_model,
            lanes: self.lanes,
            concurrent_points: self.concurrent_points,
            queue_depth: self.queue_depth,
            artifact_dir: self.artifact_dir,
            refine_rungs: self.refine_rungs,
            refine_growth: self.refine_growth,
            shed_inflight: self.shed_inflight,
            program_cache: self
                .program_cache
                .unwrap_or_else(|| Arc::new(ProgramCache::new(DEFAULT_PROGRAM_CACHE_CAPACITY))),
            memory: HashMap::new(),
        }
    }
}

/// One memoized tuning answer.
struct CachedTune {
    tune_key: u64,
    json: String,
    artifact: FrontierArtifact,
}

/// The auto-tuner. See the [module docs](self) for the pipeline.
pub struct Tuner {
    lattice: ConfigLattice,
    seeds: Vec<u64>,
    cost_model: Box<dyn CostModel>,
    lanes: usize,
    concurrent_points: usize,
    queue_depth: Option<usize>,
    artifact_dir: Option<PathBuf>,
    refine_rungs: usize,
    refine_growth: usize,
    shed_inflight: bool,
    program_cache: Arc<ProgramCache>,
    memory: HashMap<u64, CachedTune>,
}

/// A fully evaluated lattice point, as carried on the frontier.
struct PointEval {
    config: CompilerConfig,
    fingerprint: u64,
    complete_runs: usize,
    total_runs: usize,
}

/// A point whose seeds are submitted but not yet harvested.
struct InFlightPoint {
    config: CompilerConfig,
    // Kept alive until harvest/shed: owns the lanes running the futures.
    session: AsyncSession,
    futures: Vec<JobFuture>,
    lower_bound: Option<Vec<f64>>,
}

impl Tuner {
    /// Starts configuring a tuner over a lattice.
    pub fn builder(lattice: ConfigLattice) -> TunerBuilder {
        TunerBuilder {
            lattice,
            seeds: vec![1, 2, 3, 4],
            cost_model: Box::new(ResourceDeadlineModel::new()),
            lanes: 1,
            concurrent_points: 2,
            queue_depth: None,
            artifact_dir: None,
            refine_rungs: 1,
            refine_growth: 2,
            shed_inflight: true,
            program_cache: None,
        }
    }

    /// A tuner with default settings over a lattice.
    pub fn new(lattice: ConfigLattice) -> Tuner {
        Self::builder(lattice).build()
    }

    /// The swept lattice.
    pub fn lattice(&self) -> &ConfigLattice {
        &self.lattice
    }

    /// The per-point seed sweep.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// The shared program cache every point session compiles through.
    pub fn program_cache_handle(&self) -> Arc<ProgramCache> {
        Arc::clone(&self.program_cache)
    }

    /// The full cache key of a tuning question: circuit, lattice, seeds,
    /// cost model and refinement settings. Fleet-shape knobs (lanes,
    /// window, shedding) are deliberately excluded — they cannot change
    /// the artifact, so they must not invalidate it.
    pub fn tune_key(&self, circuit: &Circuit) -> u64 {
        let mut h = StableHasher::new();
        // Key-encoding version tag, bumped on format change.
        h.write_tag(1);
        h.write_u64(circuit.structural_hash());
        h.write_u64(self.lattice.fingerprint());
        h.write_usize(self.seeds.len());
        for &seed in &self.seeds {
            h.write_u64(seed);
        }
        h.write_u64(self.cost_model.fingerprint());
        h.write_usize(self.refine_rungs);
        h.write_usize(self.refine_growth);
        h.finish()
    }

    /// Tunes a circuit: answers from the in-memory or on-disk artifact
    /// cache when the tuning question matches, otherwise sweeps the
    /// lattice on the fleet, refines, and stores the new artifact.
    pub fn tune(&mut self, circuit: &Circuit) -> Result<TuneOutcome, TuneError> {
        let started = Instant::now();
        let circuit_hash = circuit.structural_hash();
        let tune_key = self.tune_key(circuit);
        let mut stats = TuneStats { points_total: self.lattice.len(), ..TuneStats::default() };

        if let Some(cached) = self.memory.get(&circuit_hash) {
            if cached.tune_key == tune_key {
                stats.wall = started.elapsed();
                return Ok(TuneOutcome {
                    artifact: cached.artifact.clone(),
                    json: cached.json.clone(),
                    source: TuneSource::MemoryCache,
                    stats,
                });
            }
        }
        if let Some(cached) = self.load_from_disk(circuit_hash, tune_key) {
            let mut outcome = TuneOutcome {
                artifact: cached.artifact.clone(),
                json: cached.json.clone(),
                source: TuneSource::DiskCache,
                stats,
            };
            self.memory.insert(circuit_hash, cached);
            outcome.stats.wall = started.elapsed();
            return Ok(outcome);
        }

        let (artifact, json) = self.evaluate(circuit, circuit_hash, tune_key, &mut stats)?;
        self.store(circuit_hash, tune_key, &artifact, &json)?;
        stats.cache = self.program_cache.stats();
        stats.wall = started.elapsed();
        Ok(TuneOutcome { artifact, json, source: TuneSource::Evaluated, stats })
    }

    /// Forgets every cached answer held in memory (the artifact directory
    /// is untouched — useful for testing the disk path).
    pub fn clear_memory_cache(&mut self) {
        self.memory.clear();
    }

    // ------------------------------------------------------------------
    // Cache plumbing
    // ------------------------------------------------------------------

    fn artifact_path(&self, circuit_hash: u64) -> Option<PathBuf> {
        self.artifact_dir.as_ref().map(|dir| dir.join(FrontierArtifact::file_name(circuit_hash)))
    }

    /// A disk artifact is a hit only when it parses *and* answers exactly
    /// this tuning question; anything else (missing, unreadable, stale
    /// key) is a miss and will be overwritten after evaluation.
    fn load_from_disk(&self, circuit_hash: u64, tune_key: u64) -> Option<CachedTune> {
        let path = self.artifact_path(circuit_hash)?;
        let json = std::fs::read_to_string(path).ok()?;
        let artifact = FrontierArtifact::from_json(&json).ok()?;
        (artifact.circuit_hash == circuit_hash && artifact.tune_key == tune_key)
            .then_some(CachedTune { tune_key, json, artifact })
    }

    fn store(
        &mut self,
        circuit_hash: u64,
        tune_key: u64,
        artifact: &FrontierArtifact,
        json: &str,
    ) -> Result<(), TuneError> {
        if let Some(path) = self.artifact_path(circuit_hash) {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            std::fs::write(path, json)?;
        }
        self.memory.insert(
            circuit_hash,
            CachedTune { tune_key, json: json.to_string(), artifact: artifact.clone() },
        );
        Ok(())
    }

    // ------------------------------------------------------------------
    // Evaluation
    // ------------------------------------------------------------------

    fn session_for(&self, config: CompilerConfig) -> AsyncSession {
        let mut builder = AsyncSession::builder(config)
            .lanes(self.lanes)
            .shared_program_cache(Arc::clone(&self.program_cache));
        if let Some(depth) = self.queue_depth {
            builder = builder.queue_depth(depth);
        }
        builder.build()
    }

    fn evaluate(
        &self,
        circuit: &Circuit,
        circuit_hash: u64,
        tune_key: u64,
        stats: &mut TuneStats,
    ) -> Result<(FrontierArtifact, String), TuneError> {
        if self.seeds.is_empty() {
            return Err(TuneError::NoSeeds);
        }
        let points = self.lattice.points();
        if points.is_empty() {
            return Err(TuneError::EmptyLattice);
        }

        let frontier = self.sweep_lattice(circuit, &points, stats)?;
        // Canonical order before refinement so rung tie-breaks (and the
        // serialized frontier) are arrival-independent.
        let entries = frontier.into_sorted_entries(|eval: &PointEval| eval.fingerprint);
        let (recommended, rungs) = self.refine(circuit, &entries, stats)?;

        let artifact = FrontierArtifact {
            circuit_hash,
            tune_key,
            lattice_fingerprint: self.lattice.fingerprint(),
            cost_model_fingerprint: self.cost_model.fingerprint(),
            seeds: self.seeds.clone(),
            objectives: self.cost_model.objectives(),
            frontier: entries
                .iter()
                .map(|entry| FrontierPoint {
                    config: ConfigKnobs::from(&entry.item.config),
                    fingerprint: entry.item.fingerprint,
                    cost: entry.cost.clone(),
                    success_probability: entry.item.complete_runs as f64
                        / entry.item.total_runs as f64,
                    complete_runs: entry.item.complete_runs,
                    total_runs: entry.item.total_runs,
                })
                .collect(),
            recommended,
            rungs,
        };
        let json = artifact.to_json();
        Ok((artifact, json))
    }

    /// The exhaustive pass: fixed-order submission through a bounded
    /// in-flight window, fixed-order harvest, online Pareto pruning,
    /// and shedding of dominated in-flight points.
    fn sweep_lattice(
        &self,
        circuit: &Circuit,
        points: &[CompilerConfig],
        stats: &mut TuneStats,
    ) -> Result<ParetoFront<PointEval>, TuneError> {
        let mut frontier: ParetoFront<PointEval> = ParetoFront::new();
        let mut in_flight: VecDeque<InFlightPoint> = VecDeque::new();
        let mut next = 0usize;

        while next < points.len() || !in_flight.is_empty() {
            // Fill the window in lattice order.
            while in_flight.len() < self.concurrent_points && next < points.len() {
                let config = points[next];
                next += 1;
                let session = self.session_for(config);
                let compiled = session.compile_cached(circuit)?;
                let lower_bound = self.cost_model.lower_bound(&config, compiled.layer_count());
                // A bound already dominated by a harvested point proves
                // the true cost would be too: skip without executing.
                if let Some(bound) = &lower_bound {
                    if !frontier.would_admit(bound) {
                        stats.points_pruned_static += 1;
                        continue;
                    }
                }
                let futures = self
                    .seeds
                    .iter()
                    .map(|&seed| {
                        block_on(
                            session.submit_async(ExecutionRequest::new(
                                Arc::clone(&compiled),
                                seed,
                            )),
                        )
                    })
                    .collect();
                in_flight.push_back(InFlightPoint { config, session, futures, lower_bound });
            }

            let Some(point) = in_flight.pop_front() else { break };
            let (cost, eval) = self.harvest(point, stats);
            stats.points_evaluated += 1;
            frontier.insert(cost, eval);

            // The harvest may have re-drawn the frontier: cancel every
            // in-flight point whose optimistic bound can no longer win.
            if self.shed_inflight {
                let (doomed, alive): (Vec<_>, Vec<_>) =
                    in_flight.drain(..).partition(|p: &InFlightPoint| {
                        p.lower_bound.as_ref().is_some_and(|b| !frontier.would_admit(b))
                    });
                in_flight = alive.into();
                for point in doomed {
                    stats.points_shed_inflight += 1;
                    self.shed(point, stats);
                }
            }
        }
        Ok(frontier)
    }

    /// Waits a point's futures in seed order and scores the aggregate.
    fn harvest(&self, point: InFlightPoint, stats: &mut TuneStats) -> (Vec<f64>, PointEval) {
        let InFlightPoint { config, session, futures, .. } = point;
        let reports: Vec<ExecutionReport> =
            futures.into_iter().map(|f| f.wait().into_report().deterministic()).collect();
        stats.jobs_harvested += reports.len();
        drop(session);
        let complete_runs = reports.iter().filter(|r| r.complete).count();
        let cost = self.cost_model.cost(&PointSample { config: &config, reports: &reports });
        debug_assert!(cost.iter().all(|c| c.is_finite()), "cost models must emit finite costs");
        let fingerprint = config.fingerprint();
        (cost, PointEval { config, fingerprint, complete_runs, total_runs: reports.len() })
    }

    /// Cancels a dominated in-flight point and drains its lanes. The
    /// outcomes are discarded — they can only describe partial runs —
    /// but how many actually stopped at a cancellation checkpoint is
    /// counted (runs that finished before observing the token count as
    /// completed work, not cancellations).
    fn shed(&self, point: InFlightPoint, stats: &mut TuneStats) {
        stats.jobs_cancelled += point.futures.len();
        for future in &point.futures {
            future.cancel();
        }
        for future in point.futures {
            let outcome = future.wait();
            if outcome.failure().map(|f| f.reason) == Some(LayerFailureReason::Cancelled) {
                stats.cancellations_observed += 1;
            }
        }
        drop(point.session);
    }

    // ------------------------------------------------------------------
    // Successive-halving refinement
    // ------------------------------------------------------------------

    /// OneAdapt-style adaptive stage: re-evaluate the frontier members on
    /// growing seed sets, halving the pool by scalarized cost each rung.
    /// Returns the winner's knobs and the rung log.
    fn refine(
        &self,
        circuit: &Circuit,
        entries: &[FrontEntry<PointEval>],
        stats: &mut TuneStats,
    ) -> Result<(ConfigKnobs, Vec<RungSummary>), TuneError> {
        debug_assert!(!entries.is_empty(), "a non-empty lattice yields a non-empty frontier");
        let mut pool: Vec<usize> = (0..entries.len()).collect();
        let mut scores: Vec<Vec<f64>> = entries.iter().map(|e| e.cost.clone()).collect();
        let mut seeds = self.seeds.clone();
        let mut rungs = Vec::new();

        for rung in 1..=self.refine_rungs {
            if pool.len() <= 1 {
                break;
            }
            // Grow the seed set deterministically from the base seeds.
            let target = seeds.len().saturating_mul(self.refine_growth);
            while seeds.len() < target {
                seeds.push(self.derived_seed(rung, seeds.len()));
            }
            rungs.push(RungSummary { rung, seeds: seeds.len(), candidates: pool.len() });
            for &idx in &pool {
                let config = entries[idx].item.config;
                let session = self.session_for(config);
                let compiled = session.compile_cached(circuit)?;
                let reports: Vec<ExecutionReport> = seeds
                    .iter()
                    .map(|&seed| {
                        block_on(
                            session
                                .submit_async(ExecutionRequest::new(Arc::clone(&compiled), seed)),
                        )
                        .wait()
                        .into_report()
                        .deterministic()
                    })
                    .collect();
                stats.refinement_executions += reports.len();
                scores[idx] =
                    self.cost_model.cost(&PointSample { config: &config, reports: &reports });
            }
            let ranked = rank(&pool, &scores, entries);
            pool = ranked.into_iter().take(pool.len().div_ceil(2)).collect();
        }

        let winner = *rank(&pool, &scores, entries).first().expect("non-empty pool");
        Ok((ConfigKnobs::from(&entries[winner].item.config), rungs))
    }

    /// Deterministic rung seeds, tied to the base seed set so two tuners
    /// with the same settings grow identical sweeps.
    fn derived_seed(&self, rung: usize, index: usize) -> u64 {
        let mut h = StableHasher::new();
        h.write_tag(2);
        h.write_usize(rung);
        h.write_usize(index);
        h.write_usize(self.seeds.len());
        for &seed in &self.seeds {
            h.write_u64(seed);
        }
        h.finish()
    }
}

/// Ranks pool candidates by scalarized cost: each objective normalized by
/// the pool's maximum (so axes with different units weigh equally), then
/// summed; ties broken by configuration fingerprint. Deterministic.
fn rank(pool: &[usize], scores: &[Vec<f64>], entries: &[FrontEntry<PointEval>]) -> Vec<usize> {
    let axes = pool.iter().map(|&i| scores[i].len()).max().unwrap_or(0);
    let mut maxes = vec![0.0f64; axes];
    for &idx in pool {
        for (axis, &v) in scores[idx].iter().enumerate() {
            maxes[axis] = maxes[axis].max(v);
        }
    }
    let scalar = |idx: usize| -> f64 {
        scores[idx]
            .iter()
            .zip(&maxes)
            .map(|(&v, &m)| if m > 0.0 { v / m } else { 0.0 })
            .sum()
    };
    let mut ranked = pool.to_vec();
    ranked.sort_by(|&a, &b| {
        scalar(a)
            .total_cmp(&scalar(b))
            .then_with(|| entries[a].item.fingerprint.cmp(&entries[b].item.fingerprint))
    });
    ranked
}
