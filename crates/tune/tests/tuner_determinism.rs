//! ISSUE 9 acceptance: the tuner's determinism, cache, and cancellation
//! contracts, end to end.
//!
//! * The frontier artifact over a ≥3-knob lattice is **byte-identical**
//!   across repeated runs and across fleet shapes (lanes, in-flight
//!   window, shedding on/off) — these knobs parallelize evaluation, they
//!   must not touch the answer.
//! * A second `tune` of the same circuit is a **cache hit that skips
//!   evaluation entirely**, from memory within a tuner and from the
//!   artifact directory across tuners; a changed tuning question (e.g.
//!   new seeds) is a miss that overwrites.
//! * A dominated in-flight point is **cancelled mid-flight** through the
//!   PR 7 cancellation path (job futures → cancel tokens → lane
//!   checkpoints), observable as `LayerFailureReason::Cancelled`
//!   outcomes counted by [`TuneStats::cancellations_observed`].

use std::path::PathBuf;

use oneperc::CompilerConfig;
use oneperc_circuit::benchmarks;
use oneperc_tune::{
    ConfigLattice, CostModel, PointSample, TuneSource, TuneStats, Tuner, TunerBuilder,
};

/// The 3-knob lattice the determinism tests sweep: 8 points around the
/// 4-qubit Table 1 preset at p = 0.90 (24×24 RSL — cheap to execute).
fn three_knob_lattice() -> ConfigLattice {
    ConfigLattice::new(CompilerConfig::for_qubits(4, 0.9, 1))
        .with_temporal_redundancies(&[2, 3])
        .with_pipelining(&[false, true])
        .with_refresh_periods(&[None, Some(6)])
}

fn tuner(configure: impl FnOnce(TunerBuilder) -> TunerBuilder) -> Tuner {
    configure(Tuner::builder(three_knob_lattice()).seeds(&[1, 2]).refinement(1, 2)).build()
}

/// A scratch directory under the system temp dir (the same place the CI
/// bench smoke writes), fresh per test.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oneperc-tune-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn artifact_is_byte_identical_across_runs_and_fleet_shapes() {
    let lattice = three_knob_lattice();
    assert!(lattice.knob_count() >= 3, "acceptance demands a >=3-knob lattice");
    assert_eq!(lattice.len(), 8);

    let circuit = benchmarks::qaoa(4, 1);
    let baseline = tuner(|b| b).tune(&circuit).expect("baseline tune");
    assert_eq!(baseline.source, TuneSource::Evaluated);
    assert!(!baseline.artifact.frontier.is_empty());
    assert_eq!(baseline.artifact.rungs.len(), 1, "one refinement rung ran");

    // Same question, different fleet shapes: identical bytes.
    type Shape = fn(TunerBuilder) -> TunerBuilder;
    let shapes: [(&str, Shape); 3] = [
        ("rerun", |b| b),
        ("wide", |b| b.lanes(2).concurrent_points(4)),
        ("serial-no-shed", |b| b.concurrent_points(1).shed_inflight(false)),
    ];
    for (name, shape) in shapes {
        let outcome = tuner(shape).tune(&circuit).expect("shaped tune");
        assert_eq!(
            outcome.json, baseline.json,
            "fleet shape {name:?} changed the artifact bytes"
        );
    }

    // The artifact's own invariants: canonical frontier order and a
    // recommendation drawn from the frontier.
    let frontier = &baseline.artifact.frontier;
    for pair in frontier.windows(2) {
        let ordered = pair[0].cost.iter().zip(&pair[1].cost).find_map(|(a, b)| {
            match a.total_cmp(b) {
                std::cmp::Ordering::Equal => None,
                other => Some(other),
            }
        });
        assert_ne!(
            ordered,
            Some(std::cmp::Ordering::Greater),
            "frontier is sorted lexicographically by cost"
        );
    }
    let recommended = baseline.artifact.recommended;
    assert!(
        frontier.iter().any(|p| p.config == recommended),
        "the recommendation is a frontier member"
    );
}

#[test]
fn memory_cache_answers_retunes_without_evaluation() {
    let circuit = benchmarks::qaoa(4, 1);
    let mut t = tuner(|b| b);
    let first = t.tune(&circuit).expect("first tune");
    assert_eq!(first.source, TuneSource::Evaluated);
    assert!(first.stats.points_evaluated > 0);

    let second = t.tune(&circuit).expect("second tune");
    assert_eq!(second.source, TuneSource::MemoryCache);
    assert_eq!(second.json, first.json, "cache returns the stored bytes");
    assert_eq!(
        second.stats,
        TuneStats { points_total: 8, wall: second.stats.wall, ..TuneStats::default() },
        "a cache hit executes nothing"
    );

    // A different circuit is a different key: evaluated, cached separately.
    let other = benchmarks::qft(4);
    assert_eq!(t.tune(&other).expect("other circuit").source, TuneSource::Evaluated);
    assert_eq!(t.tune(&other).expect("other again").source, TuneSource::MemoryCache);
    assert_eq!(t.tune(&circuit).expect("original again").source, TuneSource::MemoryCache);
}

#[test]
fn disk_artifacts_reload_across_tuners_and_invalidate_on_new_questions() {
    let dir = scratch_dir("disk");
    let circuit = benchmarks::qaoa(4, 1);

    let first = tuner(|b| b.artifact_dir(&dir)).tune(&circuit).expect("first tune");
    assert_eq!(first.source, TuneSource::Evaluated);
    let path = dir.join(oneperc_tune::FrontierArtifact::file_name(
        first.artifact.circuit_hash,
    ));
    let stored = std::fs::read_to_string(&path).expect("artifact file exists");
    assert_eq!(stored, first.json, "the file holds exactly the canonical bytes");

    // A fresh tuner with the same question: disk hit, nothing evaluated.
    let mut reloaded_tuner = tuner(|b| b.artifact_dir(&dir));
    let reloaded = reloaded_tuner.tune(&circuit).expect("reload");
    assert_eq!(reloaded.source, TuneSource::DiskCache);
    assert_eq!(reloaded.json, first.json);
    assert_eq!(reloaded.stats.points_evaluated, 0);
    // And the disk answer is now memoized.
    assert_eq!(reloaded_tuner.tune(&circuit).expect("memo").source, TuneSource::MemoryCache);
    // Dropping the memo falls back to disk, not evaluation.
    reloaded_tuner.clear_memory_cache();
    assert_eq!(reloaded_tuner.tune(&circuit).expect("disk again").source, TuneSource::DiskCache);

    // A different seed set is a different tuning question: the stale
    // artifact is a miss and gets overwritten.
    let changed = tuner(|b| b.artifact_dir(&dir).seeds(&[7, 8]))
        .tune(&circuit)
        .expect("changed question");
    assert_eq!(changed.source, TuneSource::Evaluated);
    assert_ne!(changed.artifact.tune_key, first.artifact.tune_key);
    let rewritten = std::fs::read_to_string(&path).expect("artifact file exists");
    assert_eq!(rewritten, changed.json, "the new answer replaced the stale one");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Single-objective model for the cancellation test: raw resource volume
/// only, with the sound floor of one merged layer (`merging_factor ×
/// sites`). A 192×192 point can never beat a finished 24×24 point on
/// volume, so its bound is dominated the moment the small point lands.
struct VolumeOnly;

impl CostModel for VolumeOnly {
    fn objectives(&self) -> Vec<String> {
        vec!["resource_volume".into()]
    }

    fn cost(&self, sample: &PointSample<'_>) -> Vec<f64> {
        vec![sample.mean_resource_volume()]
    }

    fn lower_bound(&self, config: &CompilerConfig, _ir_layers: usize) -> Option<Vec<f64>> {
        let floor = config.hardware.merging_factor() * config.hardware.sites_per_rsl();
        Some(vec![floor as f64])
    }

    fn fingerprint(&self) -> u64 {
        0x766f_6c75_6d65 // "volume"
    }
}

fn volume_lattice() -> ConfigLattice {
    ConfigLattice::new(CompilerConfig::for_qubits(4, 0.9, 1)).with_rsl_sizes(&[24, 192])
}

#[test]
fn dominated_inflight_point_is_cancelled_through_the_service_path() {
    let circuit = benchmarks::qaoa(4, 1);
    let seeds = [1u64, 2, 3, 4];

    // Window of 2: both points are in flight when the cheap one lands,
    // so the dominated big point must be shed mid-run.
    let outcome = Tuner::builder(volume_lattice())
        .seeds(&seeds)
        .concurrent_points(2)
        .refinement(0, 2)
        .cost_model(VolumeOnly)
        .build()
        .tune(&circuit)
        .expect("tune with shedding");
    assert_eq!(outcome.stats.points_total, 2);
    assert_eq!(outcome.stats.points_evaluated, 1, "only the 24x24 point is harvested");
    assert_eq!(outcome.stats.points_shed_inflight, 1, "the 192x192 point was shed in flight");
    assert_eq!(outcome.stats.jobs_cancelled, seeds.len());
    assert!(
        outcome.stats.cancellations_observed >= 1,
        "at least one lane observed the cancel token at a checkpoint, got {:?}",
        outcome.stats
    );
    assert_eq!(outcome.artifact.frontier.len(), 1);
    assert_eq!(outcome.artifact.frontier[0].config.rsl_size, 24);
    assert_eq!(outcome.artifact.recommended.rsl_size, 24);

    // Window of 1: the same point never gets submitted at all (static
    // prune) — and the artifact bytes are identical either way.
    let serial = Tuner::builder(volume_lattice())
        .seeds(&seeds)
        .concurrent_points(1)
        .refinement(0, 2)
        .cost_model(VolumeOnly)
        .build()
        .tune(&circuit)
        .expect("tune without overlap");
    assert_eq!(serial.stats.points_pruned_static, 1);
    assert_eq!(serial.stats.points_shed_inflight, 0);
    assert_eq!(serial.stats.jobs_cancelled, 0);
    assert_eq!(serial.json, outcome.json, "shedding must not touch the artifact");
}
