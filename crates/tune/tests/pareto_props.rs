//! Property tests for the Pareto pruner (ISSUE 9 satellite).
//!
//! No crates.io access means no `proptest`; following the workspace
//! idiom, every property runs over a deterministic family of seeded
//! random cost vectors, with the failing seed in the panic message.
//!
//! Properties:
//! 1. Dominance is a **strict partial order**: irreflexive, asymmetric,
//!    transitive.
//! 2. Pruning is **insensitive to arrival order**: any permutation of the
//!    same points leaves the same surviving cost set.
//! 3. **No non-dominated point is ever dropped** (and no dominated point
//!    ever kept): the online frontier equals the brute-force frontier.

use oneperc_tune::{dominates, ParetoFront};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// A random batch of small-alphabet cost vectors. The coordinate values
/// are drawn from a handful of levels so that dominance, ties, and exact
/// duplicates all actually occur.
fn random_costs(rng: &mut StdRng) -> Vec<Vec<f64>> {
    let axes = 1 + rng.gen_range(0..4);
    let n = 1 + rng.gen_range(0..24);
    (0..n)
        .map(|_| (0..axes).map(|_| rng.gen_range(0..5) as f64 * 0.5).collect())
        .collect()
}

/// Brute-force frontier: keep exactly the points no other point dominates.
fn brute_force_frontier(costs: &[Vec<f64>]) -> Vec<Vec<f64>> {
    costs
        .iter()
        .filter(|c| !costs.iter().any(|other| dominates(other, c)))
        .cloned()
        .collect()
}

/// Multiset-equality of cost sets, independent of order.
fn same_cost_multiset(mut a: Vec<Vec<f64>>, mut b: Vec<Vec<f64>>) -> bool {
    let key = |c: &Vec<f64>| c.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    a.sort_by_key(key);
    b.sort_by_key(key);
    a == b
}

/// In-order Fisher–Yates over the shim RNG.
fn shuffle<T>(rng: &mut StdRng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..i + 1));
    }
}

#[test]
fn dominance_is_irreflexive() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        for c in random_costs(&mut rng) {
            assert!(!dominates(&c, &c), "seed {seed}: {c:?} dominated itself");
        }
    }
}

#[test]
fn dominance_is_asymmetric() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let costs = random_costs(&mut rng);
        for a in &costs {
            for b in &costs {
                if dominates(a, b) {
                    assert!(
                        !dominates(b, a),
                        "seed {seed}: {a:?} and {b:?} dominate each other"
                    );
                }
            }
        }
    }
}

#[test]
fn dominance_is_transitive() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let costs = random_costs(&mut rng);
        for a in &costs {
            for b in &costs {
                for c in &costs {
                    if dominates(a, b) && dominates(b, c) {
                        assert!(
                            dominates(a, c),
                            "seed {seed}: transitivity broke on {a:?} ≺ {b:?} ≺ {c:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn pruning_is_arrival_order_insensitive() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let costs = random_costs(&mut rng);

        let mut front = ParetoFront::new();
        for (i, c) in costs.iter().enumerate() {
            front.insert(c.clone(), i);
        }
        let baseline: Vec<Vec<f64>> =
            front.entries().iter().map(|e| e.cost.clone()).collect();

        // Insert the same points in a few random permutations.
        for round in 0..4 {
            let mut shuffled = costs.clone();
            shuffle(&mut rng, &mut shuffled);
            let mut front = ParetoFront::new();
            for (i, c) in shuffled.iter().enumerate() {
                front.insert(c.clone(), i);
            }
            let survivors: Vec<Vec<f64>> =
                front.entries().iter().map(|e| e.cost.clone()).collect();
            assert!(
                same_cost_multiset(baseline.clone(), survivors),
                "seed {seed}, permutation {round}: surviving set changed with arrival order"
            );
        }
    }
}

#[test]
fn no_non_dominated_point_is_dropped() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let costs = random_costs(&mut rng);
        let mut front = ParetoFront::new();
        for (i, c) in costs.iter().enumerate() {
            front.insert(c.clone(), i);
        }
        let survivors: Vec<Vec<f64>> = front.entries().iter().map(|e| e.cost.clone()).collect();
        let expected = brute_force_frontier(&costs);
        assert!(
            same_cost_multiset(expected.clone(), survivors.clone()),
            "seed {seed}: online frontier {survivors:?} != brute force {expected:?}"
        );
        // And the survivors are mutually non-dominated.
        for a in &survivors {
            for b in &survivors {
                assert!(
                    !dominates(a, b),
                    "seed {seed}: frontier kept dominated point {b:?} (under {a:?})"
                );
            }
        }
    }
}

#[test]
fn would_admit_agrees_with_insert_on_random_streams() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let costs = random_costs(&mut rng);
        let mut front = ParetoFront::new();
        for (i, c) in costs.iter().enumerate() {
            let predicted = front.would_admit(c);
            let admitted = front.insert(c.clone(), i);
            assert_eq!(predicted, admitted, "seed {seed}: would_admit lied about {c:?}");
        }
    }
}
