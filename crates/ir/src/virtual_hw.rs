//! The virtual hardware abstraction (Section 6.1).

use crate::error::IrError;

/// The geometry and connection rules of the virtual hardware exposed by the
/// online pass.
///
/// The virtual hardware consists of consecutive 2D lattice layers of a fixed
/// size with a virtual memory at every 2D coordinate. Nodes at the same
/// coordinate of different layers can be connected along the third
/// dimension, including across non-adjacent layers (through the virtual
/// memory); every connection is individually enable-able, and every node has
/// at most one connection towards preceding layers and one towards
/// subsequent layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VirtualHardware {
    width: usize,
    height: usize,
}

impl VirtualHardware {
    /// Creates a virtual hardware whose layers are `width × height`
    /// lattices.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "virtual hardware dimensions must be positive");
        VirtualHardware { width, height }
    }

    /// Creates a square virtual hardware of the given side.
    pub fn square(side: usize) -> Self {
        Self::new(side, side)
    }

    /// Layer width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Layer height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of nodes per layer.
    pub fn nodes_per_layer(&self) -> usize {
        self.width * self.height
    }

    /// Checks that a coordinate lies inside a layer.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::OutOfBounds`] when it does not.
    pub fn check_coord(&self, coord: (usize, usize)) -> Result<(), IrError> {
        if coord.0 < self.width && coord.1 < self.height {
            Ok(())
        } else {
            Err(IrError::OutOfBounds { coord, size: (self.width, self.height) })
        }
    }

    /// Returns `true` when two coordinates are 4-neighbors on the layer
    /// lattice.
    pub fn adjacent(&self, a: (usize, usize), b: (usize, usize)) -> bool {
        let dx = a.0.abs_diff(b.0);
        let dy = a.1.abs_diff(b.1);
        dx + dy == 1
    }

    /// The 4-neighborhood of a coordinate, clipped to the layer.
    pub fn neighbors(&self, coord: (usize, usize)) -> Vec<(usize, usize)> {
        let (x, y) = coord;
        let mut out = Vec::with_capacity(4);
        if x > 0 {
            out.push((x - 1, y));
        }
        if y > 0 {
            out.push((x, y - 1));
        }
        if x + 1 < self.width {
            out.push((x + 1, y));
        }
        if y + 1 < self.height {
            out.push((x, y + 1));
        }
        out
    }

    /// Iterator over every coordinate of a layer in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.height).flat_map(move |y| (0..self.width).map(move |x| (x, y)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_helpers() {
        let hw = VirtualHardware::new(3, 2);
        assert_eq!(hw.nodes_per_layer(), 6);
        assert_eq!(hw.coords().count(), 6);
        assert!(hw.check_coord((2, 1)).is_ok());
        assert!(matches!(hw.check_coord((3, 0)), Err(IrError::OutOfBounds { .. })));
        assert!(hw.adjacent((0, 0), (1, 0)));
        assert!(!hw.adjacent((0, 0), (1, 1)));
        assert_eq!(hw.neighbors((0, 0)).len(), 2);
        assert_eq!(hw.neighbors((1, 0)).len(), 3);
    }

    #[test]
    fn square_constructor() {
        let hw = VirtualHardware::square(5);
        assert_eq!(hw.width(), 5);
        assert_eq!(hw.height(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = VirtualHardware::new(0, 3);
    }
}
