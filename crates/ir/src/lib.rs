//! FlexLattice IR, virtual hardware abstraction and intermediate-level
//! instruction set (Section 6 of the paper).
//!
//! The virtual hardware is the contract between the offline and online
//! passes: a stack of fixed-size 2D lattice layers whose nodes can be
//! connected spatially (within a layer) and temporally (between layers,
//! adjacent or not, via a per-coordinate virtual memory), with every node
//! holding at most one connection towards preceding layers and at most one
//! towards subsequent layers.
//!
//! * [`VirtualHardware`] — the layer geometry and its connection rules.
//! * [`FlexLatticeIr`] — a program expressed directly on that structure:
//!   every node is either a mapped program-graph node or a routing ancilla,
//!   and edges are individually enabled.
//! * [`Instruction`] — the six intermediate-level instructions that a
//!   FlexLattice IR lowers to, plus an interpreter that validates an
//!   instruction stream against the virtual-hardware rules.
//!
//! # Example
//!
//! ```
//! use oneperc_ir::{FlexLatticeIr, NodeKind, VirtualHardware};
//!
//! let hw = VirtualHardware::new(2, 2);
//! let mut ir = FlexLatticeIr::new(hw);
//! let layer = ir.push_layer();
//! ir.place(layer, (0, 0), NodeKind::Program(7)).unwrap();
//! ir.place(layer, (1, 0), NodeKind::Ancilla).unwrap();
//! ir.enable_spatial_edge(layer, (0, 0), (1, 0)).unwrap();
//! assert!(ir.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod flexlattice;
mod instruction;
mod virtual_hw;

pub use error::IrError;
pub use flexlattice::{FlexLatticeIr, IrLayerSummary, IrNode, IrStats, NodeKind, TemporalEdge};
pub use instruction::{Instruction, InstructionInterpreter, InstructionProgram};
pub use virtual_hw::VirtualHardware;
