//! The FlexLattice intermediate representation (Section 6.2).

use std::collections::{HashMap, HashSet};

use graphstate::MeasBasis;

use crate::error::IrError;
use crate::virtual_hw::VirtualHardware;

/// What a virtual-hardware node is used for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeKind {
    /// The node realizes a program-graph node (identified by its id); the
    /// physical qubit will be measured in that node's basis.
    Program(usize),
    /// The node is a routing ancilla measured in the X or Y basis to act as
    /// a wire.
    Ancilla,
}

impl NodeKind {
    /// Returns the program-graph node id when this is a program node.
    pub fn program_node(&self) -> Option<usize> {
        match self {
            NodeKind::Program(g) => Some(*g),
            NodeKind::Ancilla => None,
        }
    }
}

/// One node of a FlexLattice IR layer.
#[derive(Debug, Clone, PartialEq)]
pub struct IrNode {
    /// Role of the node.
    pub kind: NodeKind,
    /// Optional explicit measurement basis (program nodes default to the
    /// basis recorded in the program graph; ancillas default to X/Y
    /// depending on wire parity).
    pub basis: Option<MeasBasis>,
    /// Spatial edge to the `(x + 1, y)` neighbor on the same layer.
    pub east_edge: bool,
    /// Spatial edge to the `(x, y + 1)` neighbor on the same layer.
    pub north_edge: bool,
    /// Temporal edge to a node of an earlier layer, recorded as
    /// `(layer, coordinate)`. Adjacent-layer edges must share the node's own
    /// coordinate (they are realized by a direct fusion towards the next
    /// RSL); cross-layer edges may originate from a different coordinate —
    /// the stored photons re-enter the lattice wherever
    /// `retrieve_v_node(v_node, position)` puts them.
    pub temporal_prev: Option<(usize, (usize, usize))>,
    /// Whether the node is stored into the virtual memory after its layer is
    /// consumed (set automatically when a later layer connects to it across
    /// a gap).
    pub stored_after: bool,
}

impl IrNode {
    fn new(kind: NodeKind) -> Self {
        IrNode {
            kind,
            basis: None,
            east_edge: false,
            north_edge: false,
            temporal_prev: None,
            stored_after: false,
        }
    }
}

/// A temporal edge listed in reading order (earlier layer first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalEdge {
    /// Coordinate of the earlier endpoint.
    pub from_coord: (usize, usize),
    /// Earlier layer.
    pub from_layer: usize,
    /// Coordinate of the later endpoint.
    pub to_coord: (usize, usize),
    /// Later layer.
    pub to_layer: usize,
}

impl TemporalEdge {
    /// Returns `true` when the edge skips at least one layer (and therefore
    /// needs the virtual memory).
    pub fn is_cross_layer(&self) -> bool {
        self.to_layer - self.from_layer > 1
    }
}

/// Aggregate statistics of an IR program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IrStats {
    /// Number of layers.
    pub layers: usize,
    /// Nodes mapped to program-graph nodes.
    pub program_nodes: usize,
    /// Ancilla (routing) nodes.
    pub ancilla_nodes: usize,
    /// Spatial edges enabled.
    pub spatial_edges: usize,
    /// Temporal edges between adjacent layers.
    pub adjacent_temporal_edges: usize,
    /// Temporal edges across non-adjacent layers.
    pub cross_temporal_edges: usize,
}

/// Per-layer summary consumed by the online pass: which temporal edges end
/// on this layer and how many store/retrieve operations it performs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IrLayerSummary {
    /// Temporal edges terminating on this layer as `(coord, gap)` where
    /// `gap` is the number of layers skipped plus one (1 = adjacent).
    pub incoming_temporal: Vec<((usize, usize), usize)>,
    /// Nodes of this layer stored into the virtual memory.
    pub stores: usize,
    /// Nodes retrieved from the virtual memory at this layer.
    pub retrieves: usize,
    /// Nodes occupied on this layer (program + ancilla).
    pub occupied: usize,
}

/// A program expressed on the virtual hardware: a stack of partially filled
/// lattice layers with individually enabled spatial and temporal edges.
#[derive(Debug, Clone)]
pub struct FlexLatticeIr {
    hardware: VirtualHardware,
    layers: Vec<HashMap<(usize, usize), IrNode>>,
    /// Nodes that are already the source of a temporal edge, for O(1)
    /// fan-out checks while building large programs.
    temporal_sources: HashSet<(usize, (usize, usize))>,
}

impl FlexLatticeIr {
    /// Creates an empty IR program for the given virtual hardware.
    pub fn new(hardware: VirtualHardware) -> Self {
        FlexLatticeIr {
            hardware,
            layers: Vec::new(),
            temporal_sources: HashSet::new(),
        }
    }

    /// The virtual hardware this program targets.
    pub fn hardware(&self) -> &VirtualHardware {
        &self.hardware
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Appends an empty layer and returns its index.
    pub fn push_layer(&mut self) -> usize {
        self.layers.push(HashMap::new());
        self.layers.len() - 1
    }

    /// The node at `(layer, coord)`, if any.
    pub fn node(&self, layer: usize, coord: (usize, usize)) -> Option<&IrNode> {
        self.layers.get(layer).and_then(|l| l.get(&coord))
    }

    /// Number of occupied coordinates on a layer.
    pub fn occupancy(&self, layer: usize) -> usize {
        self.layers.get(layer).map_or(0, HashMap::len)
    }

    /// Places a node on a layer.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::MissingLayer`], [`IrError::OutOfBounds`] or
    /// [`IrError::Occupied`] when the position is invalid.
    pub fn place(
        &mut self,
        layer: usize,
        coord: (usize, usize),
        kind: NodeKind,
    ) -> Result<(), IrError> {
        self.hardware.check_coord(coord)?;
        let l = self.layers.get_mut(layer).ok_or(IrError::MissingLayer(layer))?;
        if l.contains_key(&coord) {
            return Err(IrError::Occupied { layer, coord });
        }
        l.insert(coord, IrNode::new(kind));
        Ok(())
    }

    /// Sets an explicit measurement basis on a placed node.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::MissingNode`] when the position is empty.
    pub fn set_basis(
        &mut self,
        layer: usize,
        coord: (usize, usize),
        basis: MeasBasis,
    ) -> Result<(), IrError> {
        let node = self
            .layers
            .get_mut(layer)
            .ok_or(IrError::MissingLayer(layer))?
            .get_mut(&coord)
            .ok_or(IrError::MissingNode { layer, coord })?;
        node.basis = Some(basis);
        Ok(())
    }

    /// Enables a spatial edge between two adjacent coordinates of the same
    /// layer.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::NotAdjacent`] when the coordinates are not lattice
    /// neighbors, or [`IrError::MissingNode`] when either endpoint is empty.
    pub fn enable_spatial_edge(
        &mut self,
        layer: usize,
        a: (usize, usize),
        b: (usize, usize),
    ) -> Result<(), IrError> {
        self.hardware.check_coord(a)?;
        self.hardware.check_coord(b)?;
        if !self.hardware.adjacent(a, b) {
            return Err(IrError::NotAdjacent { a, b });
        }
        let l = self.layers.get_mut(layer).ok_or(IrError::MissingLayer(layer))?;
        if !l.contains_key(&a) {
            return Err(IrError::MissingNode { layer, coord: a });
        }
        if !l.contains_key(&b) {
            return Err(IrError::MissingNode { layer, coord: b });
        }
        // Normalize to the west/south endpoint owning the flag.
        let (owner, east) = if a.0 + 1 == b.0 || b.0 + 1 == a.0 {
            (if a.0 < b.0 { a } else { b }, true)
        } else {
            (if a.1 < b.1 { a } else { b }, false)
        };
        let node = l.get_mut(&owner).expect("owner exists");
        if east {
            node.east_edge = true;
        } else {
            node.north_edge = true;
        }
        Ok(())
    }

    /// Enables a temporal edge between the node at `coord` on `from_layer`
    /// and the node at the same coordinate on `to_layer` (`from_layer <
    /// to_layer`). Cross-layer edges automatically mark the earlier node as
    /// stored into the virtual memory.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidTemporalOrder`] when the layers are not in
    /// increasing order, [`IrError::MissingNode`] when either endpoint is
    /// empty, and [`IrError::TemporalConflict`] when either endpoint already
    /// has a temporal edge in the corresponding direction.
    pub fn enable_temporal_edge(
        &mut self,
        coord: (usize, usize),
        from_layer: usize,
        to_layer: usize,
    ) -> Result<(), IrError> {
        self.enable_temporal_edge_relocated(from_layer, coord, to_layer, coord)
    }

    /// Enables a temporal edge whose earlier endpoint lives at a different
    /// coordinate than the later one. Only cross-layer edges may relocate:
    /// the stored photons re-enter the lattice at the later coordinate via
    /// the `retrieve_v_node` position argument. Adjacent-layer edges must
    /// keep the same coordinate (they are realized by a direct fusion).
    ///
    /// # Errors
    ///
    /// As [`FlexLatticeIr::enable_temporal_edge`], plus
    /// [`IrError::NotAdjacent`] when an adjacent-layer edge tries to change
    /// coordinates.
    pub fn enable_temporal_edge_relocated(
        &mut self,
        from_layer: usize,
        from_coord: (usize, usize),
        to_layer: usize,
        to_coord: (usize, usize),
    ) -> Result<(), IrError> {
        self.hardware.check_coord(from_coord)?;
        self.hardware.check_coord(to_coord)?;
        if from_layer >= to_layer {
            return Err(IrError::InvalidTemporalOrder { from: from_layer, to: to_layer });
        }
        if to_layer >= self.layers.len() {
            return Err(IrError::MissingLayer(to_layer));
        }
        if to_layer - from_layer == 1 && from_coord != to_coord {
            return Err(IrError::NotAdjacent { a: from_coord, b: to_coord });
        }
        if !self.layers[from_layer].contains_key(&from_coord) {
            return Err(IrError::MissingNode { layer: from_layer, coord: from_coord });
        }
        if !self.layers[to_layer].contains_key(&to_coord) {
            return Err(IrError::MissingNode { layer: to_layer, coord: to_coord });
        }
        // The earlier node may have at most one edge towards subsequent
        // layers: it must not already be the source of another temporal
        // edge.
        if self.temporal_sources.contains(&(from_layer, from_coord)) {
            return Err(IrError::TemporalConflict { layer: from_layer, coord: from_coord });
        }
        let to_node = self.layers[to_layer].get_mut(&to_coord).expect("checked above");
        if to_node.temporal_prev.is_some() {
            return Err(IrError::TemporalConflict { layer: to_layer, coord: to_coord });
        }
        to_node.temporal_prev = Some((from_layer, from_coord));
        self.temporal_sources.insert((from_layer, from_coord));
        if to_layer - from_layer > 1 {
            let from_node =
                self.layers[from_layer].get_mut(&from_coord).expect("checked above");
            from_node.stored_after = true;
        }
        Ok(())
    }

    /// All temporal edges of the program in `(to_layer, to_coord)` order.
    pub fn temporal_edges(&self) -> Vec<TemporalEdge> {
        let mut out = Vec::new();
        for (to_layer, layer) in self.layers.iter().enumerate() {
            for (&to_coord, node) in layer {
                if let Some((from_layer, from_coord)) = node.temporal_prev {
                    out.push(TemporalEdge { from_coord, from_layer, to_coord, to_layer });
                }
            }
        }
        out.sort_by_key(|e| (e.to_layer, e.to_coord));
        out
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> IrStats {
        let mut stats = IrStats { layers: self.layers.len(), ..IrStats::default() };
        for layer in &self.layers {
            for node in layer.values() {
                match node.kind {
                    NodeKind::Program(_) => stats.program_nodes += 1,
                    NodeKind::Ancilla => stats.ancilla_nodes += 1,
                }
                if node.east_edge {
                    stats.spatial_edges += 1;
                }
                if node.north_edge {
                    stats.spatial_edges += 1;
                }
            }
        }
        for edge in self.temporal_edges() {
            if edge.is_cross_layer() {
                stats.cross_temporal_edges += 1;
            } else {
                stats.adjacent_temporal_edges += 1;
            }
        }
        stats
    }

    /// Per-layer summaries in layer order, used to drive the online pass.
    pub fn layer_summaries(&self) -> Vec<IrLayerSummary> {
        let mut summaries: Vec<IrLayerSummary> =
            (0..self.layers.len()).map(|_| IrLayerSummary::default()).collect();
        for (idx, layer) in self.layers.iter().enumerate() {
            summaries[idx].occupied = layer.len();
            for node in layer.values() {
                if node.stored_after {
                    summaries[idx].stores += 1;
                }
            }
        }
        for edge in self.temporal_edges() {
            let gap = edge.to_layer - edge.from_layer;
            summaries[edge.to_layer].incoming_temporal.push((edge.to_coord, gap));
            if edge.is_cross_layer() {
                // The stored node is retrieved just before the destination
                // layer.
                summaries[edge.to_layer].retrieves += 1;
            }
        }
        summaries
    }

    /// Full structural validation: every edge endpoint exists, spatial edges
    /// connect neighbors, temporal fan-in/out is at most one per node per
    /// direction.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), IrError> {
        for (idx, layer) in self.layers.iter().enumerate() {
            for (&(x, y), node) in layer {
                self.hardware.check_coord((x, y))?;
                if node.east_edge && !layer.contains_key(&(x + 1, y)) {
                    return Err(IrError::MissingNode { layer: idx, coord: (x + 1, y) });
                }
                if node.north_edge && !layer.contains_key(&(x, y + 1)) {
                    return Err(IrError::MissingNode { layer: idx, coord: (x, y + 1) });
                }
                if let Some((from, from_coord)) = node.temporal_prev {
                    if from >= idx {
                        return Err(IrError::InvalidTemporalOrder { from, to: idx });
                    }
                    if !self.layers[from].contains_key(&from_coord) {
                        return Err(IrError::MissingNode { layer: from, coord: from_coord });
                    }
                    if idx - from == 1 && from_coord != (x, y) {
                        return Err(IrError::NotAdjacent { a: from_coord, b: (x, y) });
                    }
                }
            }
        }
        // At most one outgoing temporal edge per node.
        let mut sources: HashMap<(usize, (usize, usize)), usize> = HashMap::new();
        for edge in self.temporal_edges() {
            let count = sources.entry((edge.from_layer, edge.from_coord)).or_insert(0);
            *count += 1;
            if *count > 1 {
                return Err(IrError::TemporalConflict {
                    layer: edge.from_layer,
                    coord: edge.from_coord,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_layer_ir() -> FlexLatticeIr {
        let mut ir = FlexLatticeIr::new(VirtualHardware::new(3, 3));
        let l0 = ir.push_layer();
        let l1 = ir.push_layer();
        ir.place(l0, (0, 0), NodeKind::Program(1)).unwrap();
        ir.place(l0, (1, 0), NodeKind::Ancilla).unwrap();
        ir.place(l1, (0, 0), NodeKind::Program(2)).unwrap();
        ir
    }

    #[test]
    fn place_and_query() {
        let ir = two_layer_ir();
        assert_eq!(ir.layer_count(), 2);
        assert_eq!(ir.occupancy(0), 2);
        assert_eq!(ir.node(0, (0, 0)).unwrap().kind.program_node(), Some(1));
        assert!(ir.node(0, (2, 2)).is_none());
    }

    #[test]
    fn double_placement_rejected() {
        let mut ir = two_layer_ir();
        assert_eq!(
            ir.place(0, (0, 0), NodeKind::Ancilla),
            Err(IrError::Occupied { layer: 0, coord: (0, 0) })
        );
        assert_eq!(
            ir.place(0, (9, 0), NodeKind::Ancilla),
            Err(IrError::OutOfBounds { coord: (9, 0), size: (3, 3) })
        );
    }

    #[test]
    fn spatial_edges_require_adjacency_and_nodes() {
        let mut ir = two_layer_ir();
        ir.enable_spatial_edge(0, (0, 0), (1, 0)).unwrap();
        assert!(ir.node(0, (0, 0)).unwrap().east_edge);
        assert_eq!(
            ir.enable_spatial_edge(0, (0, 0), (2, 0)),
            Err(IrError::NotAdjacent { a: (0, 0), b: (2, 0) })
        );
        assert_eq!(
            ir.enable_spatial_edge(0, (0, 0), (0, 1)),
            Err(IrError::MissingNode { layer: 0, coord: (0, 1) })
        );
        assert!(ir.validate().is_ok());
    }

    #[test]
    fn temporal_edges_adjacent_and_cross_layer() {
        let mut ir = two_layer_ir();
        ir.enable_temporal_edge((0, 0), 0, 1).unwrap();
        assert_eq!(ir.node(1, (0, 0)).unwrap().temporal_prev, Some((0, (0, 0))));
        assert!(!ir.node(0, (0, 0)).unwrap().stored_after);
        // Add a third layer and a cross-layer edge from layer 0.
        let l2 = ir.push_layer();
        ir.place(l2, (1, 0), NodeKind::Program(5)).unwrap();
        ir.enable_temporal_edge((1, 0), 0, 2).unwrap();
        assert!(ir.node(0, (1, 0)).unwrap().stored_after);
        let edges = ir.temporal_edges();
        assert_eq!(edges.len(), 2);
        assert!(edges.iter().any(|e| e.is_cross_layer()));
        assert!(ir.validate().is_ok());
    }

    #[test]
    fn temporal_fan_in_and_out_limited_to_one() {
        let mut ir = FlexLatticeIr::new(VirtualHardware::new(2, 2));
        for _ in 0..3 {
            ir.push_layer();
        }
        for layer in 0..3 {
            ir.place(layer, (0, 0), NodeKind::Ancilla).unwrap();
        }
        ir.enable_temporal_edge((0, 0), 0, 1).unwrap();
        // Node at layer 1 already has an incoming edge.
        assert!(matches!(
            ir.enable_temporal_edge((0, 0), 0, 1),
            Err(IrError::TemporalConflict { .. })
        ));
        // Node at layer 0 already has an outgoing edge.
        assert!(matches!(
            ir.enable_temporal_edge((0, 0), 0, 2),
            Err(IrError::TemporalConflict { .. })
        ));
        // A fresh edge from layer 1 to layer 2 is fine.
        ir.enable_temporal_edge((0, 0), 1, 2).unwrap();
        assert!(ir.validate().is_ok());
    }

    #[test]
    fn relocated_cross_layer_edge_allowed_but_adjacent_must_stay_put() {
        let mut ir = FlexLatticeIr::new(VirtualHardware::new(3, 3));
        for _ in 0..3 {
            ir.push_layer();
        }
        ir.place(0, (0, 0), NodeKind::Program(1)).unwrap();
        ir.place(1, (2, 2), NodeKind::Program(2)).unwrap();
        ir.place(2, (2, 2), NodeKind::Program(3)).unwrap();
        // Adjacent-layer edges cannot change coordinate.
        assert!(matches!(
            ir.enable_temporal_edge_relocated(0, (0, 0), 1, (2, 2)),
            Err(IrError::NotAdjacent { .. })
        ));
        // Cross-layer edges can: the photons re-enter through the virtual
        // memory at the new position.
        ir.enable_temporal_edge_relocated(0, (0, 0), 2, (2, 2)).unwrap();
        assert!(ir.node(0, (0, 0)).unwrap().stored_after);
        assert_eq!(ir.node(2, (2, 2)).unwrap().temporal_prev, Some((0, (0, 0))));
        assert!(ir.validate().is_ok());
        let edges = ir.temporal_edges();
        assert_eq!(edges.len(), 1);
        assert!(edges[0].is_cross_layer());
        assert_eq!(edges[0].from_coord, (0, 0));
        assert_eq!(edges[0].to_coord, (2, 2));
    }

    #[test]
    fn invalid_temporal_order_rejected() {
        let mut ir = two_layer_ir();
        assert!(matches!(
            ir.enable_temporal_edge((0, 0), 1, 1),
            Err(IrError::InvalidTemporalOrder { .. })
        ));
        assert!(matches!(
            ir.enable_temporal_edge((0, 0), 0, 7),
            Err(IrError::MissingLayer(7))
        ));
    }

    #[test]
    fn stats_and_summaries() {
        let mut ir = two_layer_ir();
        ir.enable_spatial_edge(0, (0, 0), (1, 0)).unwrap();
        ir.enable_temporal_edge((0, 0), 0, 1).unwrap();
        let l2 = ir.push_layer();
        ir.place(l2, (1, 0), NodeKind::Program(9)).unwrap();
        ir.enable_temporal_edge((1, 0), 0, 2).unwrap();
        let stats = ir.stats();
        assert_eq!(stats.layers, 3);
        assert_eq!(stats.program_nodes, 3);
        assert_eq!(stats.ancilla_nodes, 1);
        assert_eq!(stats.spatial_edges, 1);
        assert_eq!(stats.adjacent_temporal_edges, 1);
        assert_eq!(stats.cross_temporal_edges, 1);
        let summaries = ir.layer_summaries();
        assert_eq!(summaries.len(), 3);
        assert_eq!(summaries[0].stores, 1);
        assert_eq!(summaries[1].incoming_temporal.len(), 1);
        assert_eq!(summaries[2].retrieves, 1);
        assert_eq!(summaries[2].incoming_temporal[0].1, 2);
    }

    #[test]
    fn set_basis_on_existing_node() {
        let mut ir = two_layer_ir();
        ir.set_basis(0, (0, 0), MeasBasis::equatorial(0.3)).unwrap();
        assert!(ir.node(0, (0, 0)).unwrap().basis.is_some());
        assert!(matches!(
            ir.set_basis(0, (2, 2), MeasBasis::z()),
            Err(IrError::MissingNode { .. })
        ));
    }
}
