//! Error type for IR construction and validation.

use std::error::Error;
use std::fmt;

/// Errors raised while building or validating a FlexLattice IR or an
/// instruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A coordinate lies outside the virtual-hardware layer.
    OutOfBounds {
        /// The offending coordinate.
        coord: (usize, usize),
        /// The layer dimensions.
        size: (usize, usize),
    },
    /// A layer index does not exist (yet).
    MissingLayer(usize),
    /// No node has been placed at the referenced position.
    MissingNode {
        /// Layer index.
        layer: usize,
        /// Coordinate inside the layer.
        coord: (usize, usize),
    },
    /// A node has already been placed at the referenced position.
    Occupied {
        /// Layer index.
        layer: usize,
        /// Coordinate inside the layer.
        coord: (usize, usize),
    },
    /// The two endpoints of a spatial edge are not adjacent lattice sites.
    NotAdjacent {
        /// First endpoint.
        a: (usize, usize),
        /// Second endpoint.
        b: (usize, usize),
    },
    /// A node already has a temporal connection in the requested direction;
    /// the virtual hardware allows at most one towards preceding layers and
    /// one towards subsequent layers.
    TemporalConflict {
        /// Layer index of the node.
        layer: usize,
        /// Coordinate of the node.
        coord: (usize, usize),
    },
    /// A temporal edge was requested towards a layer that is not strictly
    /// earlier.
    InvalidTemporalOrder {
        /// Source (earlier) layer.
        from: usize,
        /// Destination (later) layer.
        to: usize,
    },
    /// An instruction referenced virtual memory contents that do not exist
    /// (retrieve without a matching store).
    MemoryUnderflow {
        /// Coordinate whose virtual memory was empty.
        coord: (usize, usize),
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::OutOfBounds { coord, size } => write!(
                f,
                "coordinate ({}, {}) outside the {}x{} virtual layer",
                coord.0, coord.1, size.0, size.1
            ),
            IrError::MissingLayer(l) => write!(f, "layer {l} does not exist"),
            IrError::MissingNode { layer, coord } => {
                write!(f, "no node at layer {layer}, coordinate ({}, {})", coord.0, coord.1)
            }
            IrError::Occupied { layer, coord } => {
                write!(f, "layer {layer} coordinate ({}, {}) already holds a node", coord.0, coord.1)
            }
            IrError::NotAdjacent { a, b } => write!(
                f,
                "coordinates ({}, {}) and ({}, {}) are not lattice neighbors",
                a.0, a.1, b.0, b.1
            ),
            IrError::TemporalConflict { layer, coord } => write!(
                f,
                "node at layer {layer} coordinate ({}, {}) already has a temporal edge in that direction",
                coord.0, coord.1
            ),
            IrError::InvalidTemporalOrder { from, to } => {
                write!(f, "temporal edge must go forward in time (from layer {from} to {to})")
            }
            IrError::MemoryUnderflow { coord } => write!(
                f,
                "virtual memory at coordinate ({}, {}) is empty",
                coord.0, coord.1
            ),
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = IrError::OutOfBounds { coord: (5, 1), size: (4, 4) };
        assert!(e.to_string().contains("(5, 1)"));
        assert!(e.to_string().contains("4x4"));
        let e = IrError::InvalidTemporalOrder { from: 3, to: 1 };
        assert!(e.to_string().contains("forward in time"));
    }

    #[test]
    fn error_trait_object_friendly() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<IrError>();
    }
}
