//! The intermediate-level instruction set (Section 6.3) and its
//! interpreter.
//!
//! A FlexLattice IR program executes by lowering to the six
//! intermediate-level instructions which guide the real-time reshaping pass.
//! By default every physical qubit is measured in the `Z` basis (edges
//! disabled); the instructions enable exactly the structure the program
//! needs.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::error::IrError;
use crate::flexlattice::{FlexLatticeIr, NodeKind};

/// A position on the virtual hardware: `(x, y, layer)`.
pub type VPos = (usize, usize, usize);

/// The six intermediate-level instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// Map a program-graph node onto a virtual node; the physical qubit is
    /// measured in the program node's basis.
    MapVNode {
        /// Virtual node position.
        v_node: VPos,
        /// Program-graph node id.
        g_node: usize,
    },
    /// Use a virtual node as a routing ancilla (measured in X or Y).
    MakeVNodeAncilla {
        /// Virtual node position.
        v_node: VPos,
    },
    /// Push the physical qubits around a virtual node into the delay lines.
    StoreVNode {
        /// Virtual node position.
        v_node: VPos,
    },
    /// Pop a previously stored virtual node out of the delay lines at a new
    /// position.
    RetrieveVNode {
        /// Original stored position.
        v_node: VPos,
        /// Position at which the node re-enters the lattice.
        position: VPos,
    },
    /// Enable a spatial edge between two adjacent virtual nodes of the same
    /// layer.
    EnableSpatialVEdge {
        /// First endpoint.
        v_node: VPos,
        /// Second endpoint (adjacent, same layer).
        adjacent_v_node: VPos,
    },
    /// Enable a temporal edge between virtual nodes at the same coordinate
    /// of adjacent layers.
    EnableTemporalVEdge {
        /// Earlier endpoint.
        v_node: VPos,
        /// Later endpoint (same coordinate, next layer).
        adjacent_v_node: VPos,
    },
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn pos(p: VPos) -> String {
            format!("({}, {}, {})", p.0, p.1, p.2)
        }
        match self {
            Instruction::MapVNode { v_node, g_node } => {
                write!(f, "map_v_node({}, g{})", pos(*v_node), g_node)
            }
            Instruction::MakeVNodeAncilla { v_node } => {
                write!(f, "make_v_node_ancilla({})", pos(*v_node))
            }
            Instruction::StoreVNode { v_node } => write!(f, "store_v_node({})", pos(*v_node)),
            Instruction::RetrieveVNode { v_node, position } => {
                write!(f, "retrieve_v_node({}, {})", pos(*v_node), pos(*position))
            }
            Instruction::EnableSpatialVEdge { v_node, adjacent_v_node } => {
                write!(
                    f,
                    "enable_spatial_v_edge({}, {})",
                    pos(*v_node),
                    pos(*adjacent_v_node)
                )
            }
            Instruction::EnableTemporalVEdge { v_node, adjacent_v_node } => {
                write!(
                    f,
                    "enable_temporal_v_edge({}, {})",
                    pos(*v_node),
                    pos(*adjacent_v_node)
                )
            }
        }
    }
}

/// An ordered instruction stream together with the virtual-hardware layer
/// count it spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InstructionProgram {
    instructions: Vec<Instruction>,
    layer_count: usize,
}

impl InstructionProgram {
    /// The instructions in execution order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` when the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Number of virtual-hardware layers the program spans.
    pub fn layer_count(&self) -> usize {
        self.layer_count
    }

    /// Lowers a FlexLattice IR program into an instruction stream, layer by
    /// layer: node mapping instructions first, then spatial edges, then
    /// store / retrieve / temporal-edge instructions realizing the temporal
    /// structure.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation found while validating the IR.
    pub fn lower(ir: &FlexLatticeIr) -> Result<Self, IrError> {
        ir.validate()?;
        let mut instructions = Vec::new();
        // Group temporal edges by destination layer once, instead of
        // rescanning the whole program per layer.
        let mut edges_by_layer: Vec<Vec<crate::flexlattice::TemporalEdge>> =
            vec![Vec::new(); ir.layer_count()];
        for edge in ir.temporal_edges() {
            edges_by_layer[edge.to_layer].push(edge);
        }
        for (layer, layer_edges) in edges_by_layer.iter().enumerate() {
            // Deterministic order: row-major over the layer.
            let mut coords: Vec<(usize, usize)> = ir
                .hardware()
                .coords()
                .filter(|&c| ir.node(layer, c).is_some())
                .collect();
            coords.sort_by_key(|&(x, y)| (y, x));
            for &coord in &coords {
                let node = ir.node(layer, coord).expect("filtered above");
                let v_node = (coord.0, coord.1, layer);
                match node.kind {
                    NodeKind::Program(g) => {
                        instructions.push(Instruction::MapVNode { v_node, g_node: g })
                    }
                    NodeKind::Ancilla => {
                        instructions.push(Instruction::MakeVNodeAncilla { v_node })
                    }
                }
            }
            for &coord in &coords {
                let node = ir.node(layer, coord).expect("filtered above");
                let v_node = (coord.0, coord.1, layer);
                if node.east_edge {
                    instructions.push(Instruction::EnableSpatialVEdge {
                        v_node,
                        adjacent_v_node: (coord.0 + 1, coord.1, layer),
                    });
                }
                if node.north_edge {
                    instructions.push(Instruction::EnableSpatialVEdge {
                        v_node,
                        adjacent_v_node: (coord.0, coord.1 + 1, layer),
                    });
                }
                if node.stored_after {
                    instructions.push(Instruction::StoreVNode { v_node });
                }
            }
            // Temporal edges terminating on this layer.
            for edge in layer_edges.iter().copied() {
                let (tx, ty) = edge.to_coord;
                if edge.is_cross_layer() {
                    // Retrieve the stored node just below the destination
                    // layer (possibly at a new position), then enable an
                    // adjacent temporal edge.
                    instructions.push(Instruction::RetrieveVNode {
                        v_node: (edge.from_coord.0, edge.from_coord.1, edge.from_layer),
                        position: (tx, ty, layer - 1),
                    });
                }
                let below = if edge.is_cross_layer() { layer - 1 } else { edge.from_layer };
                instructions.push(Instruction::EnableTemporalVEdge {
                    v_node: (tx, ty, below),
                    adjacent_v_node: (tx, ty, layer),
                });
            }
        }
        Ok(InstructionProgram { instructions, layer_count: ir.layer_count() })
    }
}

impl fmt::Display for InstructionProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in &self.instructions {
            writeln!(f, "{i}")?;
        }
        Ok(())
    }
}

/// Replays an instruction stream against the virtual-hardware rules,
/// checking that every reference is legal. Used in tests and by the runtime
/// to guard against malformed streams.
#[derive(Debug, Default)]
pub struct InstructionInterpreter {
    /// Occupied virtual nodes.
    occupied: HashSet<VPos>,
    /// Bundles currently parked in the virtual memory, keyed by coordinate.
    /// Delay lines are high-capacity, so several bundles may share a
    /// coordinate.
    memory: HashMap<(usize, usize), Vec<VPos>>,
    /// Temporal edges already enabled, keyed by the later endpoint.
    temporal_in: HashSet<VPos>,
    /// Temporal edges already enabled, keyed by the earlier endpoint.
    temporal_out: HashSet<VPos>,
    /// Number of executed instructions.
    executed: usize,
}

impl InstructionInterpreter {
    /// Creates an interpreter with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions executed so far.
    pub fn executed(&self) -> usize {
        self.executed
    }

    /// Number of bundles currently parked in the virtual memory.
    pub fn stored(&self) -> usize {
        self.memory.values().map(Vec::len).sum()
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] describing the first rule violated.
    pub fn execute(&mut self, instruction: &Instruction) -> Result<(), IrError> {
        match instruction {
            Instruction::MapVNode { v_node, .. } | Instruction::MakeVNodeAncilla { v_node } => {
                if !self.occupied.insert(*v_node) {
                    return Err(IrError::Occupied {
                        layer: v_node.2,
                        coord: (v_node.0, v_node.1),
                    });
                }
            }
            Instruction::StoreVNode { v_node } => {
                if !self.occupied.contains(v_node) {
                    return Err(IrError::MissingNode {
                        layer: v_node.2,
                        coord: (v_node.0, v_node.1),
                    });
                }
                self.memory.entry((v_node.0, v_node.1)).or_default().push(*v_node);
            }
            Instruction::RetrieveVNode { v_node, position } => {
                let slot = self.memory.get_mut(&(v_node.0, v_node.1));
                let found = slot
                    .and_then(|bundles| {
                        bundles.iter().position(|b| b == v_node).map(|i| bundles.remove(i))
                    })
                    .is_some();
                if !found {
                    return Err(IrError::MemoryUnderflow { coord: (v_node.0, v_node.1) });
                }
                // The retrieved bundle re-occupies the lattice at `position`.
                self.occupied.insert(*position);
            }
            Instruction::EnableSpatialVEdge { v_node, adjacent_v_node } => {
                if v_node.2 != adjacent_v_node.2 {
                    return Err(IrError::NotAdjacent {
                        a: (v_node.0, v_node.1),
                        b: (adjacent_v_node.0, adjacent_v_node.1),
                    });
                }
                let dx = v_node.0.abs_diff(adjacent_v_node.0);
                let dy = v_node.1.abs_diff(adjacent_v_node.1);
                if dx + dy != 1 {
                    return Err(IrError::NotAdjacent {
                        a: (v_node.0, v_node.1),
                        b: (adjacent_v_node.0, adjacent_v_node.1),
                    });
                }
                for p in [v_node, adjacent_v_node] {
                    if !self.occupied.contains(p) {
                        return Err(IrError::MissingNode { layer: p.2, coord: (p.0, p.1) });
                    }
                }
            }
            Instruction::EnableTemporalVEdge { v_node, adjacent_v_node } => {
                if v_node.0 != adjacent_v_node.0
                    || v_node.1 != adjacent_v_node.1
                    || v_node.2 + 1 != adjacent_v_node.2
                {
                    return Err(IrError::InvalidTemporalOrder {
                        from: v_node.2,
                        to: adjacent_v_node.2,
                    });
                }
                if !self.occupied.contains(adjacent_v_node) {
                    return Err(IrError::MissingNode {
                        layer: adjacent_v_node.2,
                        coord: (adjacent_v_node.0, adjacent_v_node.1),
                    });
                }
                if !self.temporal_out.insert(*v_node) {
                    return Err(IrError::TemporalConflict {
                        layer: v_node.2,
                        coord: (v_node.0, v_node.1),
                    });
                }
                if !self.temporal_in.insert(*adjacent_v_node) {
                    return Err(IrError::TemporalConflict {
                        layer: adjacent_v_node.2,
                        coord: (adjacent_v_node.0, adjacent_v_node.1),
                    });
                }
            }
        }
        self.executed += 1;
        Ok(())
    }

    /// Executes a whole program.
    ///
    /// # Errors
    ///
    /// Returns the first rule violation together with no further execution.
    pub fn run(&mut self, program: &InstructionProgram) -> Result<(), IrError> {
        for instruction in program.instructions() {
            self.execute(instruction)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::virtual_hw::VirtualHardware;

    /// Builds the cross-layer example of Section 6.3: an ancilla at
    /// (1, 1, 0) stored and retrieved to realize a temporal edge with a
    /// program node at (1, 1, 2).
    fn cross_layer_example() -> FlexLatticeIr {
        let mut ir = FlexLatticeIr::new(VirtualHardware::new(3, 3));
        for _ in 0..3 {
            ir.push_layer();
        }
        ir.place(0, (1, 1), NodeKind::Ancilla).unwrap();
        ir.place(1, (0, 0), NodeKind::Program(13)).unwrap();
        ir.place(2, (1, 1), NodeKind::Program(0)).unwrap();
        ir.enable_temporal_edge((1, 1), 0, 2).unwrap();
        ir
    }

    #[test]
    fn lowering_produces_papers_instruction_sequence() {
        let ir = cross_layer_example();
        let program = InstructionProgram::lower(&ir).unwrap();
        let text = program.to_string();
        assert!(text.contains("make_v_node_ancilla((1, 1, 0))"));
        assert!(text.contains("store_v_node((1, 1, 0))"));
        assert!(text.contains("retrieve_v_node((1, 1, 0), (1, 1, 1))"));
        assert!(text.contains("enable_temporal_v_edge((1, 1, 1), (1, 1, 2))"));
        assert!(text.contains("map_v_node((1, 1, 2), g0)"));
        assert_eq!(program.layer_count(), 3);
    }

    #[test]
    fn interpreter_accepts_lowered_program() {
        let ir = cross_layer_example();
        let program = InstructionProgram::lower(&ir).unwrap();
        let mut interp = InstructionInterpreter::new();
        interp.run(&program).unwrap();
        assert_eq!(interp.executed(), program.len());
        assert_eq!(interp.stored(), 0, "store/retrieve should balance");
    }

    #[test]
    fn interpreter_rejects_double_mapping() {
        let mut interp = InstructionInterpreter::new();
        let i = Instruction::MapVNode { v_node: (0, 0, 0), g_node: 1 };
        interp.execute(&i).unwrap();
        assert!(matches!(interp.execute(&i), Err(IrError::Occupied { .. })));
    }

    #[test]
    fn interpreter_rejects_retrieve_without_store() {
        let mut interp = InstructionInterpreter::new();
        let i = Instruction::RetrieveVNode { v_node: (1, 1, 0), position: (1, 1, 3) };
        assert!(matches!(interp.execute(&i), Err(IrError::MemoryUnderflow { .. })));
    }

    #[test]
    fn interpreter_enforces_temporal_adjacency() {
        let mut interp = InstructionInterpreter::new();
        interp
            .execute(&Instruction::MakeVNodeAncilla { v_node: (0, 0, 0) })
            .unwrap();
        interp
            .execute(&Instruction::MakeVNodeAncilla { v_node: (0, 0, 2) })
            .unwrap();
        let bad = Instruction::EnableTemporalVEdge {
            v_node: (0, 0, 0),
            adjacent_v_node: (0, 0, 2),
        };
        assert!(matches!(interp.execute(&bad), Err(IrError::InvalidTemporalOrder { .. })));
    }

    #[test]
    fn interpreter_enforces_single_temporal_edge_per_direction() {
        let mut interp = InstructionInterpreter::new();
        for z in 0..3 {
            interp
                .execute(&Instruction::MakeVNodeAncilla { v_node: (0, 0, z) })
                .unwrap();
        }
        interp
            .execute(&Instruction::EnableTemporalVEdge {
                v_node: (0, 0, 0),
                adjacent_v_node: (0, 0, 1),
            })
            .unwrap();
        // (0,0,1) already has an incoming edge; a second one must fail.
        let dup = Instruction::EnableTemporalVEdge {
            v_node: (0, 0, 0),
            adjacent_v_node: (0, 0, 1),
        };
        assert!(matches!(interp.execute(&dup), Err(IrError::TemporalConflict { .. })));
    }

    #[test]
    fn spatial_edge_requires_same_layer_neighbors() {
        let mut interp = InstructionInterpreter::new();
        interp
            .execute(&Instruction::MakeVNodeAncilla { v_node: (0, 0, 0) })
            .unwrap();
        interp
            .execute(&Instruction::MakeVNodeAncilla { v_node: (1, 1, 0) })
            .unwrap();
        let diagonal = Instruction::EnableSpatialVEdge {
            v_node: (0, 0, 0),
            adjacent_v_node: (1, 1, 0),
        };
        assert!(matches!(interp.execute(&diagonal), Err(IrError::NotAdjacent { .. })));
    }

    #[test]
    fn display_of_instructions() {
        let i = Instruction::MapVNode { v_node: (1, 2, 3), g_node: 4 };
        assert_eq!(i.to_string(), "map_v_node((1, 2, 3), g4)");
        let i = Instruction::EnableSpatialVEdge {
            v_node: (0, 0, 0),
            adjacent_v_node: (1, 0, 0),
        };
        assert!(i.to_string().starts_with("enable_spatial_v_edge"));
    }

    #[test]
    fn empty_program() {
        let ir = FlexLatticeIr::new(VirtualHardware::new(2, 2));
        let program = InstructionProgram::lower(&ir).unwrap();
        assert!(program.is_empty());
        assert_eq!(program.len(), 0);
    }
}
