//! Static fusion plan derivation for the OneQ baseline.

use oneperc_circuit::ProgramGraph;
use oneperc_ir::VirtualHardware;
use oneperc_mapper::{MapError, Mapper, MapperConfig};

/// Planned fusion counts for one resource-state layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerPlan {
    /// Fusions internal to the layer (building the layer's piece of the
    /// program graph state from resource states).
    pub intra_fusions: u64,
    /// Fusions connecting the layer to its predecessor.
    pub inter_fusions: u64,
    /// Program nodes realized on the layer.
    pub nodes: u64,
}

/// The full static plan: one entry per resource-state layer, in execution
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneqPlan {
    layers: Vec<LayerPlan>,
}

impl OneqPlan {
    /// Derives the plan for a program graph on a lattice of the given side.
    ///
    /// The mapping uses OneQ's static creation-order partition. Intra-layer
    /// fusions count one fusion per node placed (joining its resource state
    /// into the layer) plus one per spatial edge; inter-layer fusions count
    /// one per temporal edge arriving at the layer.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures (for example a hardware side of zero).
    pub fn derive(program: &ProgramGraph, lattice_side: usize) -> Result<Self, MapError> {
        let config = MapperConfig::new(VirtualHardware::square(lattice_side))
            .with_dynamic_scheduling(false)
            .with_occupancy_limit(1.0);
        let result = Mapper::new(config).map(program)?;
        let summaries = result.ir.layer_summaries();
        let ir_stats = result.ir.stats();
        let _ = ir_stats;
        let mut layers = Vec::with_capacity(summaries.len());
        for (idx, summary) in summaries.iter().enumerate() {
            // Spatial edges of this layer: count the enabled edges by
            // walking the layer's nodes.
            let mut spatial = 0u64;
            for coord in result.ir.hardware().coords() {
                if let Some(node) = result.ir.node(idx, coord) {
                    if node.east_edge {
                        spatial += 1;
                    }
                    if node.north_edge {
                        spatial += 1;
                    }
                }
            }
            layers.push(LayerPlan {
                intra_fusions: summary.occupied as u64 + spatial,
                inter_fusions: summary.incoming_temporal.len() as u64,
                nodes: summary.occupied as u64,
            });
        }
        Ok(OneqPlan { layers })
    }

    /// The per-layer plans in execution order.
    pub fn layers(&self) -> &[LayerPlan] {
        &self.layers
    }

    /// Number of planned layers (the `#RSL` OneQ would consume if every
    /// fusion succeeded).
    pub fn planned_rsl(&self) -> usize {
        self.layers.len()
    }

    /// Total planned fusions assuming every fusion succeeds.
    pub fn planned_fusions(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.intra_fusions + l.inter_fusions)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneperc_circuit::benchmarks;

    #[test]
    fn plan_covers_all_program_nodes() {
        let program = ProgramGraph::from_circuit(&benchmarks::qft(3));
        let plan = OneqPlan::derive(&program, 3).unwrap();
        let total_nodes: u64 = plan.layers().iter().map(|l| l.nodes).sum();
        // Program nodes may appear on several layers while incomplete, so
        // the total is at least the node count.
        assert!(total_nodes >= program.node_count() as u64);
        assert!(plan.planned_rsl() > 0);
        assert!(plan.planned_fusions() > 0);
    }

    #[test]
    fn bigger_programs_need_bigger_plans() {
        let small = OneqPlan::derive(&ProgramGraph::from_circuit(&benchmarks::qft(3)), 3).unwrap();
        let large = OneqPlan::derive(&ProgramGraph::from_circuit(&benchmarks::qft(5)), 3).unwrap();
        assert!(large.planned_rsl() > small.planned_rsl());
        assert!(large.planned_fusions() > small.planned_fusions());
    }

    #[test]
    fn derivation_is_deterministic() {
        let program = ProgramGraph::from_circuit(&benchmarks::vqe(4, 5));
        let a = OneqPlan::derive(&program, 2).unwrap();
        let b = OneqPlan::derive(&program, 2).unwrap();
        assert_eq!(a, b);
    }
}
