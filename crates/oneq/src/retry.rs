//! The repeat-until-success execution model of the OneQ baseline.

use std::error::Error;
use std::fmt;

use oneperc_circuit::{Circuit, ProgramGraph};
use oneperc_hardware::FusionSampler;
use oneperc_mapper::MapError;

use crate::plan::OneqPlan;

/// Configuration of a OneQ baseline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OneqConfig {
    /// Side of the lattice OneQ maps each layer onto (matched to the
    /// virtual-hardware size used by OnePerc for a fair comparison).
    pub lattice_side: usize,
    /// Fusion success probability.
    pub fusion_success_prob: f64,
    /// RNG seed.
    pub seed: u64,
    /// Abort once this many resource-state layers have been consumed
    /// (the paper caps the baseline at `10^6`).
    pub rsl_cap: u64,
}

impl OneqConfig {
    /// Default RSL cap used by the paper's evaluation.
    pub const DEFAULT_RSL_CAP: u64 = 1_000_000;

    /// Creates a configuration with the paper's `10^6` RSL cap.
    ///
    /// # Panics
    ///
    /// Panics when the lattice side is zero or the probability is outside
    /// `(0, 1]`.
    pub fn new(lattice_side: usize, fusion_success_prob: f64, seed: u64) -> Self {
        assert!(lattice_side > 0, "lattice side must be positive");
        assert!(
            fusion_success_prob > 0.0 && fusion_success_prob <= 1.0,
            "fusion success probability must be in (0, 1]"
        );
        OneqConfig {
            lattice_side,
            fusion_success_prob,
            seed,
            rsl_cap: Self::DEFAULT_RSL_CAP,
        }
    }

    /// Overrides the RSL cap (mostly useful to keep tests fast).
    pub fn with_rsl_cap(mut self, cap: u64) -> Self {
        assert!(cap > 0, "the RSL cap must be positive");
        self.rsl_cap = cap;
        self
    }
}

/// Outcome of a OneQ baseline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OneqReport {
    /// Resource-state layers consumed (the `#RSL` metric). When
    /// [`OneqReport::saturated`] is set, this equals the cap.
    pub rsl_consumed: u64,
    /// Fusions attempted (the `#fusion` metric).
    pub fusions: u64,
    /// Layers in the static plan (the `#RSL` a fusion-failure-free machine
    /// would need).
    pub planned_rsl: u64,
    /// Full compilation restarts triggered by inter-layer fusion failures.
    pub restarts: u64,
    /// `true` when the run hit the RSL cap before finishing.
    pub saturated: bool,
}

/// Errors from the baseline compiler.
#[derive(Debug, Clone, PartialEq)]
pub enum OneqError {
    /// The static mapping failed.
    Plan(MapError),
}

impl fmt::Display for OneqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OneqError::Plan(e) => write!(f, "oneq planning failed: {e}"),
        }
    }
}

impl Error for OneqError {}

impl From<MapError> for OneqError {
    fn from(e: MapError) -> Self {
        OneqError::Plan(e)
    }
}

/// The OneQ baseline compiler plus its repeat-until-success executor.
#[derive(Debug, Clone)]
pub struct OneqCompiler {
    config: OneqConfig,
}

impl OneqCompiler {
    /// Creates a baseline compiler.
    pub fn new(config: OneqConfig) -> Self {
        OneqCompiler { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OneqConfig {
        &self.config
    }

    /// Plans and executes a circuit, returning the consumed `#RSL` and
    /// `#fusion`.
    ///
    /// # Errors
    ///
    /// Returns [`OneqError::Plan`] when the static mapping fails.
    pub fn run(&self, circuit: &Circuit) -> Result<OneqReport, OneqError> {
        let program = ProgramGraph::from_circuit(circuit);
        let plan = OneqPlan::derive(&program, self.config.lattice_side)?;
        Ok(self.execute_plan(&plan))
    }

    /// Executes a pre-derived plan with the repeat-until-success strategy.
    pub fn execute_plan(&self, plan: &OneqPlan) -> OneqReport {
        let p = self.config.fusion_success_prob;
        let cap = self.config.rsl_cap;
        let mut sampler = FusionSampler::new(p, self.config.seed);

        let mut rsl: u64 = 0;
        let mut fusions: u64 = 0;
        let mut restarts: u64 = 0;
        let mut saturated = false;

        'restart: loop {
            for layer in plan.layers() {
                // Repeat the layer until every planned intra-layer fusion
                // succeeds in the same attempt.
                loop {
                    if rsl >= cap {
                        saturated = true;
                        break 'restart;
                    }
                    rsl += 1;
                    let success_prob = p.powi(layer.intra_fusions as i32);
                    if success_prob < 1e-9 {
                        // The layer can essentially never succeed in one
                        // shot; charge the cap directly instead of looping
                        // a million times.
                        fusions += (cap - rsl) * layer.intra_fusions.max(1);
                        rsl = cap;
                        saturated = true;
                        break 'restart;
                    }
                    fusions += layer.intra_fusions;
                    if sampler.uniform() < success_prob {
                        break;
                    }
                }
                // Inter-layer fusions: any failure restarts the entire
                // compilation.
                fusions += layer.inter_fusions;
                let inter_prob = p.powi(layer.inter_fusions as i32);
                if sampler.uniform() >= inter_prob {
                    restarts += 1;
                    continue 'restart;
                }
            }
            break;
        }

        OneqReport {
            rsl_consumed: rsl,
            fusions,
            planned_rsl: plan.planned_rsl() as u64,
            restarts,
            saturated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneperc_circuit::benchmarks;

    #[test]
    fn perfect_fusions_consume_exactly_the_plan() {
        let circuit = benchmarks::qaoa(4, 2);
        let compiler = OneqCompiler::new(OneqConfig::new(2, 1.0, 5));
        let report = compiler.run(&circuit).unwrap();
        assert!(!report.saturated);
        assert_eq!(report.rsl_consumed, report.planned_rsl);
        assert_eq!(report.restarts, 0);
    }

    #[test]
    fn high_success_probability_finishes_with_retries() {
        let circuit = benchmarks::vqe(4, 3);
        let compiler = OneqCompiler::new(OneqConfig::new(2, 0.95, 7));
        let report = compiler.run(&circuit).unwrap();
        assert!(!report.saturated);
        assert!(report.rsl_consumed >= report.planned_rsl);
        assert!(report.fusions > 0);
    }

    #[test]
    fn practical_probability_saturates_on_larger_programs() {
        // At p = 0.75, a 9-qubit QFT has enough fusions per layer and enough
        // layers that the repeat-until-success strategy hits the cap.
        let circuit = benchmarks::qft(9);
        let compiler =
            OneqCompiler::new(OneqConfig::new(3, 0.75, 3).with_rsl_cap(100_000));
        let report = compiler.run(&circuit).unwrap();
        assert!(report.saturated, "expected the baseline to saturate, got {report:?}");
        assert_eq!(report.rsl_consumed, 100_000);
    }

    #[test]
    fn lower_probability_needs_more_rsl() {
        let circuit = benchmarks::qaoa(4, 9);
        let high = OneqCompiler::new(OneqConfig::new(2, 0.95, 1).with_rsl_cap(200_000))
            .run(&circuit)
            .unwrap();
        let low = OneqCompiler::new(OneqConfig::new(2, 0.8, 1).with_rsl_cap(200_000))
            .run(&circuit)
            .unwrap();
        assert!(
            low.rsl_consumed >= high.rsl_consumed,
            "lower fusion probability should cost at least as many RSLs ({} vs {})",
            low.rsl_consumed,
            high.rsl_consumed
        );
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let circuit = benchmarks::rca(4);
        let cfg = OneqConfig::new(2, 0.9, 42).with_rsl_cap(500_000);
        let a = OneqCompiler::new(cfg).run(&circuit).unwrap();
        let b = OneqCompiler::new(cfg).run(&circuit).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "lattice side")]
    fn zero_lattice_rejected() {
        let _ = OneqConfig::new(0, 0.9, 1);
    }
}
