//! OneQ baseline compiler with the repeat-until-success execution model.
//!
//! OneQ (ISCA 2023) is the efficient photonic MBQC compiler the paper
//! compares against. It plans a fusion pattern assuming fusions always
//! succeed; the paper extends it with the only strategy available to a
//! randomness-unaware compiler (Section 7.1):
//!
//! * every resource-state layer's planned fusions are retried — the whole
//!   layer is regenerated — until all of them succeed;
//! * the successful layer is then fused with its predecessors; if any of
//!   those inter-layer fusions fails, the entire compilation restarts;
//! * the run is aborted once `10^6` resource-state layers have been
//!   consumed.
//!
//! The plan itself is derived with the same mapping machinery as OnePerc but
//! with the static, creation-order partition of OneQ (no dynamic
//! scheduling) and no occupancy reservation; what changes is the execution
//! model, which is exactly the source of OneQ's non-scalability under
//! realistic fusion success probabilities.
//!
//! # Example
//!
//! ```
//! use oneperc_circuit::benchmarks;
//! use oneperc_oneq::{OneqCompiler, OneqConfig};
//!
//! let circuit = benchmarks::qaoa(4, 1);
//! let compiler = OneqCompiler::new(OneqConfig::new(2, 0.9, 11));
//! let report = compiler.run(&circuit).unwrap();
//! assert!(report.rsl_consumed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod retry;

pub use plan::{LayerPlan, OneqPlan};
pub use retry::{OneqCompiler, OneqConfig, OneqReport};
