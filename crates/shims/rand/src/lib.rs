//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace (see `crates/shims/README.md`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64: fast, well
//! distributed and deterministic per seed. It is **not** bit-compatible
//! with upstream `rand::rngs::StdRng`; the workspace only relies on
//! "deterministic given a seed", never on a specific stream.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the "standard" distribution of the
/// upstream crate (`f64` in `[0, 1)`; unsigned integers over their full
/// range).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<usize> for std::ops::Range<usize> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_index(rng, self.end - self.start)
    }
}

/// Unbiased uniform integer in `0..bound` via Lemire's multiply-shift
/// rejection method.
#[inline]
fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
    debug_assert!(bound > 0);
    let bound = bound as u64;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= bound.wrapping_neg() % bound {
            return (m >> 64) as usize;
        }
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value from the standard distribution of `T`.
    #[inline]
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Draws one value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_index, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, uniform_index(rng, i + 1));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_index(rng, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_edge_cases_and_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.5..2.5);
            assert!((0.5..2.5).contains(&x));
            let i: usize = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
        assert!([1usize, 2, 3].choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
