//! Offline shim for the subset of the `criterion` API used by this
//! workspace (see `crates/shims/README.md`).
//!
//! Each benchmark auto-calibrates the number of iterations per sample to a
//! target wall-clock budget, collects `sample_size` samples and reports the
//! median, minimum and maximum time per iteration on stdout. When the
//! binary is run with `--test` (what `cargo test` does for bench targets),
//! every benchmark body executes exactly once as a smoke check.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark inside a group: a function name plus an
/// optional parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { name: function_name.into(), parameter: Some(parameter.to_string()) }
    }

    /// Creates an id with no parameter component.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { name: String::new(), parameter: Some(parameter.to_string()) }
    }

    fn render(&self, group: &str) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => format!("{group}/{p}"),
            Some(p) => format!("{group}/{}/{p}", self.name),
            None => format!("{group}/{}", self.name),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name, parameter: None }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated number of iterations and records the
    /// total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.render(&self.name);
        self.run(&label, |b| f(b, input));
        self
    }

    /// Benchmarks a closure that takes only the bencher.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().render(&self.name);
        self.run(&label, |b| f(b));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        if self.criterion.test_mode {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            println!("{label}: test passed");
            return;
        }

        // Calibration: grow the iteration count until one sample costs at
        // least the per-sample budget.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= self.criterion.sample_budget || iters >= (1 << 30) {
                break;
            }
            let per_iter = (b.elapsed.as_nanos() as u64 / iters).max(1);
            let wanted = self.criterion.sample_budget.as_nanos() as u64 / per_iter + 1;
            iters = wanted.clamp(iters * 2, iters * 16);
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let max = per_iter_ns[per_iter_ns.len() - 1];
        println!(
            "{label}\n    time: [{} {} {}]  ({} samples x {} iters)",
            format_ns(min),
            format_ns(median),
            format_ns(max),
            self.sample_size,
            iters
        );
    }

    /// Ends the group (retained for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness.
pub struct Criterion {
    sample_budget: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs bench targets with `--test`; `cargo bench`
        // passes `--bench`. Only the former switches to smoke-check mode.
        let test_mode = std::env::args().any(|a| a == "--test");
        let sample_budget = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(20));
        Criterion { sample_budget, test_mode }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        f: F,
    ) -> &mut Self {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        };
        let mut f = f;
        group.run(name, |b| f(b));
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} us", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declares a benchmark group function, mirroring the upstream macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring the upstream macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", 40).render("g"), "g/f/40");
        assert_eq!(BenchmarkId::from("plain").render("g"), "g/plain");
        assert_eq!(BenchmarkId::from_parameter(7).render("g"), "g/7");
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher { iters: 5, elapsed: Duration::ZERO };
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
    }

    #[test]
    fn format_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
