//! Online pass of the OnePerc compiler: percolation-based reshaping of
//! random physical graph states.
//!
//! The fusion strategy of the hardware layer produces, for every
//! resource-state layer (RSL), a *random* subgraph of a square lattice.
//! Because the fusion success probability exceeds the bond-percolation
//! threshold of the square lattice (0.5), the random graph contains a
//! long-range-connected component with high probability. The online pass
//! turns that raw randomness into the regular, program-agnostic structure
//! promised to the offline pass by the virtual hardware abstraction:
//!
//! * [`renormalize`] / [`Renormalizer`] — 2D renormalization of a single RSL
//!   into a coarse-grained `k × k` lattice by alternating vertical /
//!   horizontal path searches (Section 5.1).
//! * [`ModularRenormalizer`] — the modular variant that splits the RSL into
//!   independently-processed modules separated by joining intervals,
//!   trading a small resource overhead for a large reduction in real-time
//!   latency (Fig. 10, Fig. 13(c), Fig. 14(b)).
//! * [`WorkerPool`] — persistent, channel-fed renormalization workers,
//!   amortizing thread startup across the RSL stream. The pool multiplexes
//!   any number of submitters: each [`PoolClient`] has a private reply
//!   channel and slot sequence, so concurrent batches (several reshaping
//!   engines, the modular renormalizer, …) interleave on the workers
//!   without ever mixing results.
//! * [`ReshapeEngine`] — the (2+1)-D driver that consumes a stream of RSLs,
//!   classifies them into logical and routing layers, and establishes the
//!   adjacent-layer and cross-layer time-like connections requested by the
//!   IR program (Section 5.2). With [`ReshapeConfig::with_pipelining`] and
//!   [`ReshapeConfig::with_renorm_workers`] the driver becomes a
//!   three-stage pipeline: layer generation on a dedicated thread,
//!   renormalization fanned out on a worker pool a few layers ahead, and
//!   connection in the driving thread. [`ReshapeEngine::reset`] restarts
//!   the stochastic stream for a new seed while keeping every thread and
//!   allocation warm — the primitive behind the `oneperc` session API.
//!
//! # Pipeline architecture and ownership rules
//!
//! The online pass is organized as a stream of resource-state layers
//! flowing generate → renormalize → connect. Three independent levers
//! spread that stream across cores, and all are determinism-preserving —
//! with a fixed seed they produce byte-identical [`RenormalizedLattice`]s
//! and reports to the fully serial path, for any worker count:
//!
//! * **Stage overlap** (`ReshapeEngine`, pipelined mode): a generator
//!   thread owns the `FusionEngine` and runs exactly one layer ahead
//!   through a bounded depth-1 channel; spent [`PhysicalLayer`] buffers
//!   cycle back over a recycle channel, so the steady state circulates a
//!   fixed set of allocations. Time-like fusion outcomes draw from their
//!   own seeded sampler in both modes, which is what keeps the
//!   layer-pattern RNG stream independent of prefetch timing. Layers are
//!   epoch-tagged, so a [`ReshapeEngine::reset`] reseeds the generator in
//!   place and silently discards the few stale prefetched layers.
//! * **Stream fan-out** (`ReshapeEngine` with `renorm_workers` > 0):
//!   upcoming layers are submitted to a [`WorkerPool`] as whole-layer
//!   region jobs, a bounded lookahead ahead of consumption, and their
//!   lattices are collected strictly in stream order. Every layer is
//!   consumed in generation order whatever its logical/routing fate, so
//!   the prefetched renormalization is never speculative waste.
//! * **Module fan-out** (`ModularRenormalizer` on a [`WorkerPool`]):
//!   modules of one layer are renormalized by persistent workers fed over
//!   a channel. Each worker permanently owns one `Renormalizer` (and thus
//!   one [`ScratchPool`]); layers are shared with workers as
//!   `Arc<PhysicalLayer>` for the duration of a batch only, and results
//!   are written back by slot so worker scheduling cannot reorder them.
//!   Scratch pools never migrate between workers mid-search; their epoch
//!   stamps make cross-layer reuse reset-free.
//!
//! [`PhysicalLayer`]: oneperc_hardware::PhysicalLayer
//!
//! # Flat-index site convention
//!
//! This crate addresses physical sites by **dense flat index**: the site at
//! column `x`, row `y` of a `W × H` layer is the `u32` value `y * W + x`,
//! matching [`oneperc_hardware::PhysicalLayer::site_index`] and the vertex
//! ids of [`oneperc_hardware::PhysicalLayer::to_graph`]. Consequences:
//!
//! * Neighbor arithmetic is `±1` (east/west) and `±W` (north/south); no
//!   coordinate pairs are hashed anywhere on the online hot path.
//! * [`RenormalizedLattice`] stores coarse-node representatives and paths
//!   as flat indices. [`RenormalizedLattice::site_coords`] and
//!   [`RenormalizedLattice::path_coords`] decode them back to `(x, y)` for
//!   presentation-layer consumers.
//! * All per-search working memory (BFS predecessor/visited arrays, the
//!   queue, path-membership stamps, the joining union-find) lives in a
//!   [`ScratchPool`] that is epoch-stamped and reused across bands,
//!   modules and RSLs, so the steady-state per-RSL loop allocates only its
//!   outputs.
//!
//! # Example
//!
//! ```
//! use oneperc_hardware::{FusionEngine, HardwareConfig};
//! use oneperc_percolation::renormalize;
//!
//! let mut engine = FusionEngine::new(HardwareConfig::new(36, 7, 0.78), 7);
//! let layer = engine.generate_layer();
//! let lattice = renormalize(&layer, 12);
//! assert_eq!(lattice.target_side(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod modular;
mod pool;
mod renormalize;
mod scratch;
pub mod sync;
mod timelike;

pub use cancel::CancelToken;
pub use modular::{ModularConfig, ModularOutcome, ModularRenormalizer, ModuleLayout};
pub use pool::{panic_message, ModuleRegion, PoolClient, WorkerPool};
pub use renormalize::{renormalize, RenormalizedLattice, Renormalizer};
pub use scratch::ScratchPool;
pub use timelike::{
    LayerRequirement, LogicalLayerReport, ReshapeConfig, ReshapeEngine, ReshapeStats,
    TemporalRequirement,
};
