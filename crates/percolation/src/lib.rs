//! Online pass of the OnePerc compiler: percolation-based reshaping of
//! random physical graph states.
//!
//! The fusion strategy of the hardware layer produces, for every
//! resource-state layer (RSL), a *random* subgraph of a square lattice.
//! Because the fusion success probability exceeds the bond-percolation
//! threshold of the square lattice (0.5), the random graph contains a
//! long-range-connected component with high probability. The online pass
//! turns that raw randomness into the regular, program-agnostic structure
//! promised to the offline pass by the virtual hardware abstraction:
//!
//! * [`renormalize`] / [`Renormalizer`] — 2D renormalization of a single RSL
//!   into a coarse-grained `k × k` lattice by alternating vertical /
//!   horizontal path searches (Section 5.1).
//! * [`ModularRenormalizer`] — the modular variant that splits the RSL into
//!   independently-processed modules separated by joining intervals,
//!   trading a small resource overhead for a large reduction in real-time
//!   latency (Fig. 10, Fig. 13(c), Fig. 14(b)).
//! * [`ReshapeEngine`] — the (2+1)-D driver that consumes a stream of RSLs,
//!   classifies them into logical and routing layers, and establishes the
//!   adjacent-layer and cross-layer time-like connections requested by the
//!   IR program (Section 5.2).
//!
//! # Example
//!
//! ```
//! use oneperc_hardware::{FusionEngine, HardwareConfig};
//! use oneperc_percolation::renormalize;
//!
//! let mut engine = FusionEngine::new(HardwareConfig::new(36, 7, 0.78), 7);
//! let layer = engine.generate_layer();
//! let lattice = renormalize(&layer, 12);
//! assert_eq!(lattice.target_side(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod modular;
mod renormalize;
mod timelike;

pub use modular::{ModularConfig, ModularRenormalizer};
pub use renormalize::{renormalize, RenormalizedLattice, Renormalizer};
pub use timelike::{
    LayerRequirement, LogicalLayerReport, ReshapeConfig, ReshapeEngine, ReshapeStats,
    TemporalRequirement,
};
