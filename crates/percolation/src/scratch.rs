//! Reusable scratch memory for the flat-grid percolation engine.
//!
//! The online pass runs once per resource-state layer inside the photon
//! lifetime, so its steady state must not allocate. All working memory of
//! the renormalizer — BFS predecessor/visited arrays, the BFS queue, the
//! path-membership stamps used for intersection tests and a resettable
//! union-find — lives in a [`ScratchPool`] sized once per layer geometry
//! and reused for every subsequent band, module and RSL.
//!
//! Visited/membership arrays are *epoch-stamped*: instead of clearing
//! `width × height` entries per band search, the pool bumps a generation
//! counter and treats any stale stamp as "unvisited". A full clear only
//! happens on the (practically unreachable) epoch wrap.

use graphstate::DisjointSet;

/// Sentinel flat index meaning "no site" / "no predecessor".
pub(crate) const NO_SITE: u32 = u32::MAX;

/// Reusable working memory shared by all flat-grid searches.
///
/// The pool is intentionally cheap to construct empty; it grows to the
/// largest layer it has seen and stays there.
#[derive(Debug, Clone, Default)]
pub struct ScratchPool {
    /// Epoch stamp per flat site: `visited[i] == epoch` means visited in
    /// the current search.
    visited: Vec<u32>,
    /// BFS predecessor per flat site (valid only where `visited` is
    /// current).
    prev: Vec<u32>,
    /// BFS queue (head index instead of pop-front so the buffer is reused).
    queue: Vec<u32>,
    /// Epoch stamp per flat site marking membership of the current vertical
    /// path during intersection tests.
    mark: Vec<u32>,
    epoch: u32,
    mark_epoch: u32,
    /// Resettable union-find for joining-interval connectivity checks.
    pub(crate) dsu: DisjointSet,
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures capacity for `n` flat sites.
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
            self.prev.resize(n, NO_SITE);
            self.mark.resize(n, 0);
        }
    }

    /// Starts a new BFS generation and returns its epoch stamp.
    pub(crate) fn begin_search(&mut self) -> u32 {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.visited.fill(0);
                1
            }
        };
        self.queue.clear();
        self.epoch
    }

    /// Starts a new membership generation (path intersection tests) and
    /// returns its epoch stamp.
    pub(crate) fn begin_mark(&mut self) -> u32 {
        self.mark_epoch = match self.mark_epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.mark.fill(0);
                1
            }
        };
        self.mark_epoch
    }

    #[inline]
    pub(crate) fn is_visited(&self, i: u32, epoch: u32) -> bool {
        self.visited[i as usize] == epoch
    }

    /// Marks `i` visited with predecessor `from` and enqueues it.
    #[inline]
    pub(crate) fn visit(&mut self, i: u32, from: u32, epoch: u32) {
        self.visited[i as usize] = epoch;
        self.prev[i as usize] = from;
        self.queue.push(i);
    }

    #[inline]
    pub(crate) fn queue_get(&self, head: usize) -> Option<u32> {
        self.queue.get(head).copied()
    }

    #[inline]
    pub(crate) fn predecessor(&self, i: u32) -> u32 {
        self.prev[i as usize]
    }

    #[inline]
    pub(crate) fn set_mark(&mut self, i: u32, epoch: u32) {
        self.mark[i as usize] = epoch;
    }

    #[inline]
    pub(crate) fn is_marked(&self, i: u32, epoch: u32) -> bool {
        self.mark[i as usize] == epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_invalidate_without_clearing() {
        let mut pool = ScratchPool::new();
        pool.ensure(16);
        let e1 = pool.begin_search();
        pool.visit(3, NO_SITE, e1);
        assert!(pool.is_visited(3, e1));
        let e2 = pool.begin_search();
        assert!(!pool.is_visited(3, e2), "stale stamp must read unvisited");
        assert_eq!(pool.queue_get(0), None, "queue resets per search");
    }

    #[test]
    fn marks_are_independent_of_visits() {
        let mut pool = ScratchPool::new();
        pool.ensure(8);
        let m1 = pool.begin_mark();
        pool.set_mark(5, m1);
        let e = pool.begin_search();
        assert!(pool.is_marked(5, m1));
        assert!(!pool.is_visited(5, e));
        let m2 = pool.begin_mark();
        assert!(!pool.is_marked(5, m2));
    }

    #[test]
    fn growing_preserves_current_epoch_semantics() {
        let mut pool = ScratchPool::new();
        pool.ensure(4);
        let e = pool.begin_search();
        pool.visit(1, NO_SITE, e);
        pool.ensure(64);
        assert!(pool.is_visited(1, e));
        assert!(!pool.is_visited(60, e), "new entries start unvisited");
    }

    #[test]
    fn search_epoch_wraparound_clears_stale_stamps() {
        let mut pool = ScratchPool::new();
        pool.ensure(8);
        // Park the counter two steps from overflow and leave stamps behind
        // at every epoch up to the wrap.
        pool.epoch = u32::MAX - 2;
        let e1 = pool.begin_search(); // MAX - 1
        pool.visit(3, NO_SITE, e1);
        let e2 = pool.begin_search(); // MAX
        pool.visit(5, NO_SITE, e2);
        assert_eq!(e2, u32::MAX);
        assert!(!pool.is_visited(3, e2), "previous epoch invisible at MAX");
        // The wrap itself: the pool must fall back to a full clear so no
        // site stamped with a pre-wrap epoch can alias a post-wrap one.
        let e3 = pool.begin_search();
        assert_eq!(e3, 1, "epoch restarts after the wrap");
        for i in 0..8u32 {
            assert!(!pool.is_visited(i, e3), "site {i} leaked across the wrap");
        }
        pool.visit(2, NO_SITE, e3);
        assert!(pool.is_visited(2, e3));
    }

    #[test]
    fn mark_epoch_wraparound_is_independent_of_search_epoch() {
        let mut pool = ScratchPool::new();
        pool.ensure(8);
        pool.mark_epoch = u32::MAX;
        let e = pool.begin_search();
        pool.visit(1, NO_SITE, e);
        let m = pool.begin_mark(); // wraps to 1
        assert_eq!(m, 1);
        for i in 0..8u32 {
            assert!(!pool.is_marked(i, m), "mark {i} leaked across the wrap");
        }
        // The search epoch and its stamps are untouched by the mark wrap.
        assert!(pool.is_visited(1, e));
    }

    #[test]
    fn thousands_of_searches_never_leak_visits() {
        // Cross-layer reuse: one search per "layer" for thousands of
        // layers, without any intervening reset. Every search must start
        // from a blank view of the grid.
        let n = 16usize;
        let mut pool = ScratchPool::new();
        pool.ensure(n);
        for layer in 0..5000u32 {
            let e = pool.begin_search();
            for i in 0..n as u32 {
                assert!(!pool.is_visited(i, e), "layer {layer}: site {i} pre-visited");
            }
            // Visit a layer-dependent subset so stale stamps differ between
            // consecutive layers.
            pool.visit(layer % n as u32, NO_SITE, e);
            pool.visit((layer * 7 + 3) % n as u32, layer % n as u32, e);
        }
    }

    #[test]
    fn thousands_of_mark_generations_never_leak_marks() {
        let n = 12usize;
        let mut pool = ScratchPool::new();
        pool.ensure(n);
        for round in 0..4000u32 {
            let m = pool.begin_mark();
            for i in 0..n as u32 {
                assert!(!pool.is_marked(i, m), "round {round}: site {i} pre-marked");
            }
            pool.set_mark(round % n as u32, m);
            assert!(pool.is_marked(round % n as u32, m));
        }
    }
}
