//! Reusable scratch memory for the flat-grid percolation engine.
//!
//! The online pass runs once per resource-state layer inside the photon
//! lifetime, so its steady state must not allocate. All working memory of
//! the renormalizer — BFS predecessor/visited arrays, the BFS queue, the
//! path-membership stamps used for intersection tests and a resettable
//! union-find — lives in a [`ScratchPool`] sized once per layer geometry
//! and reused for every subsequent band, module and RSL.
//!
//! Membership arrays are *epoch-stamped*: instead of clearing
//! `width × height` entries per intersection pass, the pool bumps a
//! generation counter and treats any stale stamp as "unmarked". A full
//! clear only happens on the (practically unreachable) epoch wrap.
//!
//! BFS state is *band-local* since PR 6: the frontier, visited set and
//! bond-connectivity planes are row-aligned `u64` bitmaps covering only
//! the band being searched (`ceil(band_width / 64)` words per band row),
//! so a whole search touches a few cache lines instead of striding
//! through `width × height` per-site arrays.

use graphstate::DisjointSet;

/// Sentinel flat index meaning "no site" / "no predecessor".
pub(crate) const NO_SITE: u32 = u32::MAX;

/// Packs a BFS queue entry: the flat site index in bits `0..32`, its `x`
/// coordinate in `32..48` and its `y` coordinate in `48..64`. Carrying the
/// coordinates through the queue removes the `idx / width` division from
/// the hot dequeue path; [`crate::Renormalizer`] asserts that both layer
/// sides fit the 16-bit coordinate fields.
#[inline]
pub(crate) fn pack_site(i: u32, x: usize, y: usize) -> u64 {
    debug_assert!(x <= 0xFFFF && y <= 0xFFFF, "coordinates exceed the packed range");
    i as u64 | ((x as u64) << 32) | ((y as u64) << 48)
}

/// Reusable working memory shared by all flat-grid searches.
///
/// The pool is intentionally cheap to construct empty; it grows to the
/// largest layer it has seen and stays there.
#[derive(Debug, Clone, Default)]
pub struct ScratchPool {
    /// BFS queue of [`pack_site`] entries (head index instead of pop-front
    /// so the buffer is reused).
    pub(crate) queue: Vec<u64>,
    /// Epoch stamp per flat site marking membership of the current vertical
    /// path during intersection tests.
    mark: Vec<u32>,
    mark_epoch: u32,
    /// Resettable union-find for joining-interval connectivity checks.
    pub(crate) dsu: DisjointSet,
    /// Band-local row bitmaps for the word-parallel reachability fixpoint
    /// (`nc` words per band row, resized per search): present sites masked
    /// to the band, east-run connectivity, both-present vertical bonds and
    /// the reachability frontier.
    pub(crate) band_pres: Vec<u64>,
    /// East-connectivity plane of the current band (see `band_pres`).
    pub(crate) band_conn: Vec<u64>,
    /// Vertical-bond plane of the current band (see `band_pres`).
    pub(crate) band_vert: Vec<u64>,
    /// Reachability frontier of the current band (see `band_pres`).
    pub(crate) band_reach: Vec<u64>,
    /// Visited bitmap of the path-extraction BFS, band-local like
    /// `band_pres`.
    pub(crate) band_visited: Vec<u64>,
    /// Interleaved `[east-conn, vert, vert-of-row-above, pad]` quadruple per
    /// band row for the single-word extraction fast path: one bounds check
    /// and one cache line fetch all three connectivity words of a site's
    /// row.
    pub(crate) band_cv: Vec<u64>,
    /// Packed predecessor entry per band-local site (`nc * 64` slots per
    /// band row so the row offset is a shift-free multiply); only entries
    /// of visited sites are ever read, so the buffer is grown but never
    /// cleared.
    pub(crate) band_prev: Vec<u64>,
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures capacity for `n` flat sites.
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
    }

    /// Starts a new membership generation (path intersection tests) and
    /// returns its epoch stamp.
    pub(crate) fn begin_mark(&mut self) -> u32 {
        self.mark_epoch = match self.mark_epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.mark.fill(0);
                1
            }
        };
        self.mark_epoch
    }

    #[inline]
    pub(crate) fn set_mark(&mut self, i: u32, epoch: u32) {
        self.mark[i as usize] = epoch;
    }

    #[inline]
    pub(crate) fn is_marked(&self, i: u32, epoch: u32) -> bool {
        self.mark[i as usize] == epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_site_round_trips_all_fields() {
        let packed = pack_site(1234, 56, 78);
        assert_eq!(packed as u32, 1234);
        assert_eq!((packed >> 32) as u16 as usize, 56);
        assert_eq!((packed >> 48) as usize, 78);
        // Extremes of the coordinate fields.
        let hi = pack_site(u32::MAX - 1, 0xFFFF, 0xFFFF);
        assert_eq!(hi as u32, u32::MAX - 1);
        assert_eq!((hi >> 32) as u16 as usize, 0xFFFF);
        assert_eq!((hi >> 48) as usize, 0xFFFF);
    }

    #[test]
    fn mark_epochs_invalidate_without_clearing() {
        let mut pool = ScratchPool::new();
        pool.ensure(16);
        let m1 = pool.begin_mark();
        pool.set_mark(5, m1);
        assert!(pool.is_marked(5, m1));
        let m2 = pool.begin_mark();
        assert!(!pool.is_marked(5, m2), "stale mark must read unmarked");
    }

    #[test]
    fn growing_preserves_current_mark_epoch() {
        let mut pool = ScratchPool::new();
        pool.ensure(4);
        let m = pool.begin_mark();
        pool.set_mark(1, m);
        pool.ensure(64);
        assert!(pool.is_marked(1, m));
        assert!(!pool.is_marked(60, m), "new entries start unmarked");
    }

    #[test]
    fn mark_epoch_wraparound_clears_stale_stamps() {
        let mut pool = ScratchPool::new();
        pool.ensure(8);
        pool.mark_epoch = u32::MAX - 1;
        let m1 = pool.begin_mark(); // MAX
        pool.set_mark(3, m1);
        assert_eq!(m1, u32::MAX);
        // The wrap itself: the pool must fall back to a full clear so no
        // site stamped with a pre-wrap epoch can alias a post-wrap one.
        let m2 = pool.begin_mark();
        assert_eq!(m2, 1, "epoch restarts after the wrap");
        for i in 0..8u32 {
            assert!(!pool.is_marked(i, m2), "site {i} leaked across the wrap");
        }
        pool.set_mark(2, m2);
        assert!(pool.is_marked(2, m2));
    }

    #[test]
    fn thousands_of_mark_generations_never_leak_marks() {
        let n = 12usize;
        let mut pool = ScratchPool::new();
        pool.ensure(n);
        for round in 0..4000u32 {
            let m = pool.begin_mark();
            for i in 0..n as u32 {
                assert!(!pool.is_marked(i, m), "round {round}: site {i} pre-marked");
            }
            pool.set_mark(round % n as u32, m);
            assert!(pool.is_marked(round % n as u32, m));
        }
    }
}
