//! Synchronization façade for this crate.
//!
//! All production code imports its concurrency primitives from here, not
//! from `std` directly (enforced by `cargo xtask lint-sync`). In normal
//! builds this module is a pure re-export of `std` — zero overhead, no
//! model-checker code in release artifacts. Under
//! `RUSTFLAGS="--cfg oneperc_model"` the same names resolve to
//! `oneperc_verify::sync`, whose dual-mode types route every operation
//! through the bounded model checker's deterministic scheduler when (and
//! only when) the calling thread is part of a model execution.
//!
//! See the workspace-level `CONCURRENCY.md` for the catalogue of
//! primitives, their invariants, and the model tests pinning them.

#[cfg(not(oneperc_model))]
pub use std::sync::{
    atomic, mpsc, Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError, TryLockError,
    TryLockResult, WaitTimeoutResult, Weak,
};
#[cfg(not(oneperc_model))]
pub use std::thread;

#[cfg(oneperc_model)]
pub use oneperc_verify::sync::{
    atomic, mpsc, thread, Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError,
    TryLockError, TryLockResult, WaitTimeoutResult, Weak,
};
