//! Persistent worker pool for renormalization jobs.
//!
//! The modular renormalizer used to spawn one scoped OS thread per module
//! per layer; across an RSL stream that pays the full thread-startup cost
//! on every single layer. [`WorkerPool`] instead keeps a fixed set of
//! workers alive for the lifetime of the pool, feeding them jobs over a
//! channel. Each worker owns its own [`Renormalizer`] (and thus its own
//! `ScratchPool`), so the per-worker scratch memory is sized once and
//! reused for every job the pool ever processes.
//!
//! # Multiplexing and determinism rules
//!
//! The pool multiplexes work from **multiple concurrent submitters**: every
//! submitter obtains its own [`PoolClient`], and every job carries a reply
//! sender pointing back at the client that submitted it. Workers draw jobs
//! from one shared FIFO queue but answer each submitter on its private
//! channel, so batches from different clients can interleave freely on the
//! workers without their results ever mixing. This is what lets several
//! warm reshaping engines (one per session lane) share a single pool.
//!
//! * Layers are shared with the workers as `Arc<PhysicalLayer>`; the pool
//!   never mutates a layer. When a job's result has been received, the
//!   caller again holds the only strong references it created, so buffer
//!   recycling (dropping or reusing the layer allocation) stays in the
//!   caller's hands.
//! * Every job is tagged with its submitter-local slot. A client hands out
//!   slots monotonically and reorders arrivals back into submission order,
//!   so the outcome of a batch is independent of worker scheduling: any
//!   worker count — including a single worker, or more workers than jobs —
//!   produces byte-identical lattices in identical order.
//! * Region renormalization is a pure function of `(layer, region,
//!   node_size)`; workers keep no cross-job state other than their scratch
//!   pool, whose epoch stamps make reuse observationally reset-free. A job
//!   that panics is reported back to its submitter and the worker replaces
//!   its (possibly mid-search) scratch with a fresh one, so one submitter's
//!   failure never corrupts another's batch.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use crate::sync::mpsc::{channel, Receiver, Sender};
use crate::sync::thread::{self, JoinHandle};
use crate::sync::{Arc, Mutex};

use oneperc_hardware::PhysicalLayer;

use crate::renormalize::{RenormalizedLattice, Renormalizer};

/// One rectangular region of a layer, in physical sites. A region may be a
/// module of the modular renormalization or an entire layer (the shape the
/// reshaping stage submits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleRegion {
    /// Top-left corner `(x, y)` of the region.
    pub origin: (usize, usize),
    /// Extent along x.
    pub width: usize,
    /// Extent along y.
    pub height: usize,
}

impl ModuleRegion {
    /// The region covering an entire layer.
    pub fn whole_layer(layer: &PhysicalLayer) -> Self {
        ModuleRegion { origin: (0, 0), width: layer.width, height: layer.height }
    }
}

/// A worker's answer for one job: the slot plus the lattice, or the panic
/// message of a job that blew up. Panics must travel back explicitly — a
/// silently swallowed panic would leave the submitter waiting forever.
type JobReply = (usize, Result<RenormalizedLattice, String>);

/// One unit of work: renormalize a region of a shared layer and answer the
/// submitting client on its private reply channel.
struct WorkItem {
    layer: Arc<PhysicalLayer>,
    region: ModuleRegion,
    node_size: usize,
    slot: usize,
    reply: Sender<JobReply>,
}

/// Messages on the shared job queue. `Shutdown` is injected once per worker
/// when the pool is dropped; each worker consumes exactly one and exits,
/// which makes teardown independent of how many [`PoolClient`]s still hold
/// a sender.
enum Job {
    Work(Box<WorkItem>),
    Shutdown,
}

/// Best-effort extraction of a panic payload's message. Shared with the
/// session layer of the `oneperc` facade, which relays execution panics
/// the same way the pool relays job panics.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "renormalization worker panicked".to_string()
    }
}

/// A persistent pool of renormalization workers fed over a shared queue.
///
/// Obtain per-submitter handles with [`WorkerPool::client`]; the one-shot
/// [`WorkerPool::renormalize_modules`] batch entry point remains for
/// callers that process one layer at a time (the modular renormalizer).
///
/// Dropping the pool injects one shutdown message per worker and joins all
/// of them. In-flight jobs finish first; jobs submitted by clients that
/// outlive the pool are never processed, so clients must not be used after
/// their pool is gone.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use oneperc_hardware::PhysicalLayer;
/// use oneperc_percolation::{ModuleRegion, WorkerPool};
///
/// let pool = WorkerPool::new(2);
/// let layer = Arc::new(PhysicalLayer::fully_connected(20, 20));
/// let regions = [
///     ModuleRegion { origin: (0, 0), width: 10, height: 10 },
///     ModuleRegion { origin: (10, 10), width: 10, height: 10 },
/// ];
/// let lattices = pool.renormalize_modules(&layer, &regions, 5);
/// assert_eq!(lattices.len(), 2);
/// assert!(lattices.iter().all(|l| l.is_success()));
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    job_tx: Sender<Job>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns a pool with `workers` persistent worker threads.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "worker pool needs at least one worker");
        let (job_tx, job_rx) = channel::<Job>();
        // mpsc receivers are single-consumer; the workers share the queue
        // through a mutex, locking only for the dequeue itself.
        let job_rx = Arc::new(Mutex::new(job_rx));
        let handles = (0..workers)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                thread::spawn(move || {
                    let mut renorm = Renormalizer::new();
                    loop {
                        // Release the queue lock before renormalizing so
                        // other workers can pick up the next job.
                        let job = match job_rx.lock().expect("job queue poisoned").recv() {
                            Ok(job) => job,
                            Err(_) => break, // pool and every client dropped
                        };
                        let item = match job {
                            Job::Work(item) => item,
                            Job::Shutdown => break,
                        };
                        let WorkItem { layer, region, node_size, slot, reply } = *item;
                        // A panicking job must reach its submitter as a
                        // message, or that batch would wait forever while
                        // the worker moved on.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            renorm.renormalize_region(
                                &layer,
                                region.origin,
                                region.width,
                                region.height,
                                node_size,
                            )
                        }));
                        // Release the layer before replying: once the
                        // submitter has the result, it again holds the only
                        // references it created.
                        drop(layer);
                        match outcome {
                            Ok(lattice) => {
                                // A dead reply channel only means the
                                // submitter abandoned its jobs (its engine
                                // was dropped or reset); other submitters
                                // still need this worker.
                                let _ = reply.send((slot, Ok(lattice)));
                            }
                            Err(payload) => {
                                // The scratch may be mid-search; replace it
                                // rather than retiring the worker, so one
                                // submitter's bad job cannot shrink the
                                // pool for everyone else.
                                renorm = Renormalizer::new();
                                let _ = reply.send((slot, Err(panic_message(payload))));
                            }
                        }
                    }
                })
            })
            .collect();
        WorkerPool { job_tx, handles, workers }
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Creates a new submitter handle. Clients are independent: each one
    /// has a private reply channel and its own slot sequence, so any number
    /// of clients (across threads) can stream batches through the shared
    /// workers concurrently.
    ///
    /// A client must not be used after its pool has been dropped — jobs
    /// submitted to a dead pool are never processed.
    pub fn client(&self) -> PoolClient {
        let (reply_tx, reply_rx) = channel::<JobReply>();
        PoolClient {
            job_tx: self.job_tx.clone(),
            reply_tx,
            reply_rx,
            pool_workers: self.workers,
            next_slot: 0,
            next_result: 0,
            reordered: BTreeMap::new(),
        }
    }

    /// Renormalizes every region of `layer` on the pool and returns the
    /// lattices in region order. Blocks until the whole batch is done.
    ///
    /// The output is deterministic: result `i` always corresponds to
    /// `regions[i]`, whatever order the workers finish in. Concurrent
    /// batches from other clients interleave on the workers without
    /// affecting this batch's output.
    ///
    /// # Panics
    ///
    /// Panics when a job panics (the worker's message is relayed). The pool
    /// itself stays usable: results are per-submitter, so a failed batch
    /// cannot leak stale lattices into any later batch.
    pub fn renormalize_modules(
        &self,
        layer: &Arc<PhysicalLayer>,
        regions: &[ModuleRegion],
        node_size: usize,
    ) -> Vec<RenormalizedLattice> {
        let mut client = self.client();
        for &region in regions {
            client.submit(layer, region, node_size);
        }
        (0..regions.len()).map(|_| client.recv_next()).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // One shutdown message per worker: each consumes exactly one and
        // exits, even while clients still hold job senders. In-flight work
        // ahead of the sentinels completes first.
        for _ in 0..self.workers {
            let _ = self.job_tx.send(Job::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A per-submitter handle onto a [`WorkerPool`].
///
/// `submit` enqueues a region-renormalization job and assigns it the next
/// slot of this client's stream; `recv_next` returns results strictly in
/// submission order, buffering any that arrive early. One client therefore
/// behaves like a private pipeline through the shared workers: results come
/// back in the order the work went in, independent of the worker count and
/// of what other clients are doing.
#[derive(Debug)]
pub struct PoolClient {
    job_tx: Sender<Job>,
    reply_tx: Sender<JobReply>,
    reply_rx: Receiver<JobReply>,
    /// Worker count of the pool this client submits to.
    pool_workers: usize,
    /// Slot assigned to the next submitted job.
    next_slot: usize,
    /// Slot whose result `recv_next` returns next.
    next_result: usize,
    /// Results that arrived ahead of `next_result`.
    reordered: BTreeMap<usize, Result<RenormalizedLattice, String>>,
}

impl PoolClient {
    /// Worker count of the pool behind this client — what a submitter
    /// should size its in-flight window against.
    pub fn pool_workers(&self) -> usize {
        self.pool_workers
    }
    /// Enqueues one region job and returns its slot in this client's
    /// stream.
    pub fn submit(
        &mut self,
        layer: &Arc<PhysicalLayer>,
        region: ModuleRegion,
        node_size: usize,
    ) -> usize {
        let slot = self.next_slot;
        self.next_slot += 1;
        let item = WorkItem {
            layer: Arc::clone(layer),
            region,
            node_size,
            slot,
            reply: self.reply_tx.clone(),
        };
        self.job_tx.send(Job::Work(Box::new(item))).expect("worker pool hung up");
        slot
    }

    /// Number of submitted jobs whose results have not been received yet.
    pub fn in_flight(&self) -> usize {
        self.next_slot - self.next_result - self.reordered.len()
    }

    /// Receives the result of the oldest outstanding job, blocking until it
    /// is available.
    ///
    /// The pool must outlive the client's outstanding work: jobs submitted
    /// before the pool is dropped are always processed (the teardown
    /// sentinels queue behind them), but a job racing the teardown can be
    /// left unprocessed, and this call would then block forever — there is
    /// no other thread left to answer. Submitting to an already-torn-down
    /// pool fails loudly in [`PoolClient::submit`] instead.
    ///
    /// # Panics
    ///
    /// Panics when no job is outstanding or when the job itself panicked
    /// (the worker's message is relayed).
    pub fn recv_next(&mut self) -> RenormalizedLattice {
        let want = self.next_result;
        assert!(want < self.next_slot, "no outstanding job to receive");
        let result = loop {
            if let Some(result) = self.reordered.remove(&want) {
                break result;
            }
            // The channel cannot hang up while `self` holds a sender; a
            // worker answers every job it dequeues, panicking included.
            let (slot, result) = self.reply_rx.recv().expect("reply channel is open");
            if slot == want {
                break result;
            }
            self.reordered.insert(slot, result);
        };
        self.next_result += 1;
        match result {
            Ok(lattice) => lattice,
            Err(msg) => panic!("renormalization job for slot {want} panicked: {msg}"),
        }
    }
}

/// Exhaustive interleaving checks (see `CONCURRENCY.md`). Run with
/// `RUSTFLAGS="--cfg oneperc_model" cargo test -p oneperc-percolation model_`.
#[cfg(all(test, oneperc_model))]
mod model_tests {
    use super::*;

    /// Drop of an idle pool injects one shutdown sentinel per worker and
    /// joins both — no schedule may leave a worker parked on the queue.
    /// This is the "shutdown without hangs" pin: a lost sentinel or a
    /// worker blocked on a dead queue shows up as a deadlock here.
    #[test]
    fn model_shutdown_never_hangs() {
        let report = oneperc_verify::model(|| {
            let pool = WorkerPool::new(2);
            assert_eq!(pool.worker_count(), 2);
            drop(pool);
        });
        assert!(report.complete, "exploration must be exhaustive");
    }

    /// A submitted job's reply reaches its client before shutdown under
    /// every interleaving of submitter, worker, and teardown: the
    /// in-flight work is ahead of the shutdown sentinel in the queue.
    #[test]
    fn model_submitted_job_completes_before_shutdown() {
        let report = oneperc_verify::model(|| {
            let pool = WorkerPool::new(1);
            let layer = Arc::new(PhysicalLayer::fully_connected(20, 20));
            let mut client = pool.client();
            client.submit(
                &layer,
                ModuleRegion { origin: (0, 0), width: 10, height: 10 },
                5,
            );
            let lattice = client.recv_next();
            assert!(lattice.is_success());
            drop(pool);
        });
        assert!(report.complete, "exploration must be exhaustive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadrants(side: usize) -> Vec<ModuleRegion> {
        let h = side / 2;
        vec![
            ModuleRegion { origin: (0, 0), width: h, height: h },
            ModuleRegion { origin: (h, 0), width: h, height: h },
            ModuleRegion { origin: (0, h), width: h, height: h },
            ModuleRegion { origin: (h, h), width: h, height: h },
        ]
    }

    #[test]
    fn batch_results_follow_region_order() {
        let layer = Arc::new(PhysicalLayer::fully_connected(24, 24));
        let regions = quadrants(24);
        let pool = WorkerPool::new(3);
        let lattices = pool.renormalize_modules(&layer, &regions, 6);
        let mut reference = Renormalizer::new();
        for (region, lattice) in regions.iter().zip(&lattices) {
            let expected = reference.renormalize_region(
                &layer,
                region.origin,
                region.width,
                region.height,
                6,
            );
            assert_eq!(lattice, &expected);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        use oneperc_hardware::{FusionEngine, HardwareConfig};
        let mut engine = FusionEngine::new(HardwareConfig::new(32, 7, 0.75), 5);
        let layer = Arc::new(engine.generate_layer());
        let regions = quadrants(32);
        let mut baseline: Option<Vec<RenormalizedLattice>> = None;
        // 1 worker, a few workers, and oversubscribed (workers > modules).
        for workers in [1, 2, 4, 7] {
            let pool = WorkerPool::new(workers);
            let lattices = pool.renormalize_modules(&layer, &regions, 8);
            match &baseline {
                None => baseline = Some(lattices),
                Some(expected) => assert_eq!(&lattices, expected, "workers = {workers}"),
            }
        }
    }

    #[test]
    fn pool_survives_many_batches() {
        let layer = Arc::new(PhysicalLayer::fully_connected(16, 16));
        let regions = quadrants(16);
        let pool = WorkerPool::new(2);
        let first = pool.renormalize_modules(&layer, &regions, 4);
        for _ in 0..200 {
            let again = pool.renormalize_modules(&layer, &regions, 4);
            assert_eq!(again, first);
        }
    }

    #[test]
    fn caller_keeps_sole_ownership_after_batch() {
        let layer = Arc::new(PhysicalLayer::fully_connected(12, 12));
        let regions = quadrants(12);
        let pool = WorkerPool::new(2);
        let _ = pool.renormalize_modules(&layer, &regions, 3);
        // All job-held clones were dropped with the batch: the allocation
        // can cycle back to a layer buffer.
        let layer = Arc::try_unwrap(layer).expect("pool released the layer");
        assert_eq!(layer.site_count(), 144);
    }

    #[test]
    fn concurrent_clients_multiplex_one_pool() {
        use oneperc_hardware::{FusionEngine, HardwareConfig};
        // Several submitter threads stream interleaved batches through the
        // same two workers; every submitter must see exactly the lattices a
        // private sequential renormalizer computes, in its own order.
        let pool = Arc::new(WorkerPool::new(2));
        let layers: Vec<Arc<PhysicalLayer>> = (0..4)
            .map(|seed| {
                let hw = HardwareConfig::new(24, 7, 0.75);
                Arc::new(FusionEngine::new(hw, seed).generate_layer())
            })
            .collect();
        std::thread::scope(|scope| {
            for submitter in 0..3usize {
                let pool = Arc::clone(&pool);
                let layers = layers.clone();
                scope.spawn(move || {
                    let mut client = pool.client();
                    let mut reference = Renormalizer::new();
                    for round in 0..10 {
                        let layer = &layers[(submitter + round) % layers.len()];
                        let region = ModuleRegion::whole_layer(layer);
                        client.submit(layer, region, 6);
                        // Keep a second job in flight to force interleaving.
                        let second = &layers[(submitter + round + 1) % layers.len()];
                        client.submit(second, ModuleRegion::whole_layer(second), 6);
                        let a = client.recv_next();
                        let b = client.recv_next();
                        assert_eq!(a, reference.renormalize(layer, 6));
                        assert_eq!(b, reference.renormalize(second, 6));
                    }
                    assert_eq!(client.in_flight(), 0);
                });
            }
        });
    }

    #[test]
    fn client_streams_results_in_submission_order() {
        let layer = Arc::new(PhysicalLayer::fully_connected(16, 16));
        let pool = WorkerPool::new(3);
        let mut client = pool.client();
        let regions = quadrants(16);
        for &region in &regions {
            client.submit(&layer, region, 4);
        }
        assert_eq!(client.in_flight(), 4);
        let mut reference = Renormalizer::new();
        for region in &regions {
            let got = client.recv_next();
            let expected = reference.renormalize_region(
                &layer,
                region.origin,
                region.width,
                region.height,
                4,
            );
            assert_eq!(got, expected);
        }
        assert_eq!(client.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn worker_panic_propagates_instead_of_hanging() {
        // Regression: with 2+ workers, a job that panics must surface as a
        // batch panic; without the catch_unwind relay, the dead worker's
        // missing result would leave `renormalize_modules` blocked forever.
        let layer = Arc::new(PhysicalLayer::fully_connected(8, 8));
        let regions = [
            // Out-of-bounds region: renormalize_region asserts and panics.
            ModuleRegion { origin: (6, 6), width: 8, height: 8 },
            ModuleRegion { origin: (0, 0), width: 4, height: 4 },
            ModuleRegion { origin: (4, 0), width: 4, height: 4 },
        ];
        let pool = WorkerPool::new(2);
        let _ = pool.renormalize_modules(&layer, &regions, 2);
    }

    #[test]
    fn panicked_batch_leaves_pool_usable() {
        // Per-submitter reply channels mean a failed batch cannot leak
        // stale results into a later one, so the pool stays usable — the
        // worker replaces its scratch and keeps serving. (The previous
        // design had to poison the whole pool here.)
        let layer = Arc::new(PhysicalLayer::fully_connected(8, 8));
        let bad = [ModuleRegion { origin: (6, 6), width: 8, height: 8 }];
        let good = [ModuleRegion { origin: (0, 0), width: 4, height: 4 }];
        let pool = WorkerPool::new(2);
        let first = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.renormalize_modules(&layer, &bad, 2)
        }));
        assert!(first.is_err(), "bad region must panic the batch");
        for _ in 0..4 {
            let again = pool.renormalize_modules(&layer, &good, 2);
            assert_eq!(again.len(), 1);
            assert!(again[0].is_success());
        }
    }

    #[test]
    fn pool_drops_cleanly_with_abandoned_jobs() {
        // A client whose jobs are still queued when it is dropped must not
        // wedge the pool or its teardown.
        let layer = Arc::new(PhysicalLayer::fully_connected(32, 32));
        let pool = WorkerPool::new(1);
        let mut client = pool.client();
        for _ in 0..8 {
            client.submit(&layer, ModuleRegion::whole_layer(&layer), 8);
        }
        drop(client); // replies go nowhere; workers must shrug it off
        let survivors = pool.renormalize_modules(&layer, &quadrants(32), 8);
        assert_eq!(survivors.len(), 4);
        drop(pool);
    }
}
