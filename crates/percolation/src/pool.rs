//! Persistent worker pool for module renormalization.
//!
//! The modular renormalizer used to spawn one scoped OS thread per module
//! per layer; across an RSL stream that pays the full thread-startup cost
//! on every single layer. [`WorkerPool`] instead keeps a fixed set of
//! workers alive for the lifetime of the pool, feeding them module jobs
//! over a channel. Each worker owns its own [`Renormalizer`] (and thus its
//! own `ScratchPool`), so the per-worker scratch memory is sized once and
//! reused for every module of every layer the pool ever processes.
//!
//! # Ownership and determinism rules
//!
//! * Layers are shared with the workers as `Arc<PhysicalLayer>`; the pool
//!   never mutates a layer. When the batch returns, the caller again holds
//!   the only strong references it created, so buffer recycling (dropping
//!   or reusing the layer allocation) stays in the caller's hands.
//! * Every job is tagged with its output slot. Results are written back by
//!   slot index, so the outcome of a batch is independent of worker
//!   scheduling: any worker count — including a single worker, or more
//!   workers than modules — produces byte-identical lattices in identical
//!   order.
//! * Module renormalization is a pure function of `(layer, region,
//!   node_size)`; workers keep no cross-job state other than their scratch
//!   pool, whose epoch-stamping makes reuse observationally reset-free.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use oneperc_hardware::PhysicalLayer;

use crate::renormalize::{RenormalizedLattice, Renormalizer};

/// One rectangular module region of a layer, in physical sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleRegion {
    /// Top-left corner `(x, y)` of the region.
    pub origin: (usize, usize),
    /// Extent along x.
    pub width: usize,
    /// Extent along y.
    pub height: usize,
}

/// One unit of work: renormalize a region of a shared layer into slot
/// `slot` of the batch output.
struct ModuleJob {
    layer: Arc<PhysicalLayer>,
    region: ModuleRegion,
    node_size: usize,
    slot: usize,
}

/// A worker's answer for one job: the lattice, or the panic message of a
/// job that blew up. Panics must travel back explicitly — a worker that
/// died silently would leave the batch collector waiting forever while
/// the surviving workers keep the result channel open.
type ModuleResult = (usize, Result<RenormalizedLattice, String>);

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "module worker panicked".to_string()
    }
}

/// A persistent pool of renormalization workers fed over a channel.
///
/// Dropping the pool closes the job channel and joins every worker.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use oneperc_hardware::PhysicalLayer;
/// use oneperc_percolation::{ModuleRegion, WorkerPool};
///
/// let mut pool = WorkerPool::new(2);
/// let layer = Arc::new(PhysicalLayer::fully_connected(20, 20));
/// let regions = [
///     ModuleRegion { origin: (0, 0), width: 10, height: 10 },
///     ModuleRegion { origin: (10, 10), width: 10, height: 10 },
/// ];
/// let lattices = pool.renormalize_modules(&layer, &regions, 5);
/// assert_eq!(lattices.len(), 2);
/// assert!(lattices.iter().all(|l| l.is_success()));
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    /// Job sender; `None` only during teardown.
    job_tx: Option<Sender<ModuleJob>>,
    result_rx: Receiver<ModuleResult>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    /// Set when a batch panicked: the channels may still hold that batch's
    /// stale jobs/results, so the pool refuses further batches instead of
    /// mixing old results into new output slots.
    poisoned: bool,
}

impl WorkerPool {
    /// Spawns a pool with `workers` persistent worker threads.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "worker pool needs at least one worker");
        let (job_tx, job_rx) = channel::<ModuleJob>();
        let (result_tx, result_rx) = channel::<ModuleResult>();
        // mpsc receivers are single-consumer; the workers share the queue
        // through a mutex, locking only for the dequeue itself.
        let job_rx = Arc::new(Mutex::new(job_rx));
        let handles = (0..workers)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                std::thread::spawn(move || {
                    let mut renorm = Renormalizer::new();
                    loop {
                        // Release the queue lock before renormalizing so
                        // other workers can pick up the next job.
                        let job = match job_rx.lock().expect("job queue poisoned").recv() {
                            Ok(job) => job,
                            Err(_) => break, // pool dropped
                        };
                        let ModuleJob { layer, region, node_size, slot } = job;
                        // A panicking job must reach the collector as a
                        // message, or the batch would wait forever while
                        // the other workers keep the channel open.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            renorm.renormalize_region(
                                &layer,
                                region.origin,
                                region.width,
                                region.height,
                                node_size,
                            )
                        }));
                        // Release the layer before reporting: once the
                        // caller has collected the whole batch, it again
                        // holds the only references it created.
                        drop(layer);
                        match outcome {
                            Ok(lattice) => {
                                if result_tx.send((slot, Ok(lattice))).is_err() {
                                    break;
                                }
                            }
                            Err(payload) => {
                                // The scratch may be mid-search; retire
                                // this worker after reporting.
                                let _ = result_tx.send((slot, Err(panic_message(payload))));
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        WorkerPool { job_tx: Some(job_tx), result_rx, handles, workers, poisoned: false }
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Renormalizes every region of `layer` on the pool and returns the
    /// lattices in region order. Blocks until the whole batch is done.
    ///
    /// The output is deterministic: result `i` always corresponds to
    /// `regions[i]`, whatever order the workers finish in.
    ///
    /// # Panics
    ///
    /// Panics when a module job panics (the worker's message is relayed),
    /// and on every later batch after such a failure — the channels may
    /// still hold the failed batch's stale work, so the pool is poisoned
    /// rather than risking old lattices surfacing in new output slots.
    pub fn renormalize_modules(
        &mut self,
        layer: &Arc<PhysicalLayer>,
        regions: &[ModuleRegion],
        node_size: usize,
    ) -> Vec<RenormalizedLattice> {
        assert!(
            !self.poisoned,
            "worker pool poisoned by an earlier panicked batch; build a fresh pool"
        );
        let job_tx = self.job_tx.as_ref().expect("pool is live");
        for (slot, &region) in regions.iter().enumerate() {
            let job = ModuleJob { layer: Arc::clone(layer), region, node_size, slot };
            job_tx.send(job).expect("worker pool hung up");
        }
        let mut out: Vec<Option<RenormalizedLattice>> = (0..regions.len()).map(|_| None).collect();
        for _ in 0..regions.len() {
            let (slot, result) = self.result_rx.recv().expect("worker pool died mid-batch");
            match result {
                Ok(lattice) => out[slot] = Some(lattice),
                Err(msg) => {
                    self.poisoned = true;
                    panic!("module worker panicked renormalizing region {slot}: {msg}")
                }
            }
        }
        out.into_iter().map(|l| l.expect("every slot filled")).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channel wakes every worker out of `recv`.
        self.job_tx = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadrants(side: usize) -> Vec<ModuleRegion> {
        let h = side / 2;
        vec![
            ModuleRegion { origin: (0, 0), width: h, height: h },
            ModuleRegion { origin: (h, 0), width: h, height: h },
            ModuleRegion { origin: (0, h), width: h, height: h },
            ModuleRegion { origin: (h, h), width: h, height: h },
        ]
    }

    #[test]
    fn batch_results_follow_region_order() {
        let layer = Arc::new(PhysicalLayer::fully_connected(24, 24));
        let regions = quadrants(24);
        let mut pool = WorkerPool::new(3);
        let lattices = pool.renormalize_modules(&layer, &regions, 6);
        let mut reference = Renormalizer::new();
        for (region, lattice) in regions.iter().zip(&lattices) {
            let expected = reference.renormalize_region(
                &layer,
                region.origin,
                region.width,
                region.height,
                6,
            );
            assert_eq!(lattice, &expected);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        use oneperc_hardware::{FusionEngine, HardwareConfig};
        let mut engine = FusionEngine::new(HardwareConfig::new(32, 7, 0.75), 5);
        let layer = Arc::new(engine.generate_layer());
        let regions = quadrants(32);
        let mut baseline: Option<Vec<RenormalizedLattice>> = None;
        // 1 worker, a few workers, and oversubscribed (workers > modules).
        for workers in [1, 2, 4, 7] {
            let mut pool = WorkerPool::new(workers);
            let lattices = pool.renormalize_modules(&layer, &regions, 8);
            match &baseline {
                None => baseline = Some(lattices),
                Some(expected) => assert_eq!(&lattices, expected, "workers = {workers}"),
            }
        }
    }

    #[test]
    fn pool_survives_many_batches() {
        let layer = Arc::new(PhysicalLayer::fully_connected(16, 16));
        let regions = quadrants(16);
        let mut pool = WorkerPool::new(2);
        let first = pool.renormalize_modules(&layer, &regions, 4);
        for _ in 0..200 {
            let again = pool.renormalize_modules(&layer, &regions, 4);
            assert_eq!(again, first);
        }
    }

    #[test]
    fn caller_keeps_sole_ownership_after_batch() {
        let layer = Arc::new(PhysicalLayer::fully_connected(12, 12));
        let regions = quadrants(12);
        let mut pool = WorkerPool::new(2);
        let _ = pool.renormalize_modules(&layer, &regions, 3);
        // All job-held clones were dropped with the batch: the allocation
        // can cycle back to a layer buffer.
        let layer = Arc::try_unwrap(layer).expect("pool released the layer");
        assert_eq!(layer.site_count(), 144);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    #[should_panic(expected = "module worker panicked")]
    fn worker_panic_propagates_instead_of_hanging() {
        // Regression: with 2+ workers, a job that panics must surface as a
        // batch panic; before the catch_unwind relay, the dead worker's
        // missing result left `renormalize_modules` blocked forever
        // because the surviving worker kept the result channel open.
        let layer = Arc::new(PhysicalLayer::fully_connected(8, 8));
        let regions = [
            // Out-of-bounds region: renormalize_region asserts and panics.
            ModuleRegion { origin: (6, 6), width: 8, height: 8 },
            ModuleRegion { origin: (0, 0), width: 4, height: 4 },
            ModuleRegion { origin: (4, 0), width: 4, height: 4 },
        ];
        let mut pool = WorkerPool::new(2);
        let _ = pool.renormalize_modules(&layer, &regions, 2);
    }

    #[test]
    fn panicked_batch_poisons_the_pool() {
        // A caller that catches the batch panic must not be able to reuse
        // the pool: the failed batch's stale jobs/results may still sit in
        // the channels and would corrupt the next batch's output slots.
        let layer = Arc::new(PhysicalLayer::fully_connected(8, 8));
        let bad = [ModuleRegion { origin: (6, 6), width: 8, height: 8 }];
        let good = [ModuleRegion { origin: (0, 0), width: 4, height: 4 }];
        let mut pool = WorkerPool::new(2);
        let first = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.renormalize_modules(&layer, &bad, 2)
        }));
        assert!(first.is_err(), "bad region must panic the batch");
        let second = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.renormalize_modules(&layer, &good, 2)
        }));
        let err = second.expect_err("poisoned pool must refuse new batches");
        let msg = panic_message(err);
        assert!(msg.contains("poisoned"), "unexpected message: {msg}");
    }
}
