//! Flexible time-like connections and the (2+1)-D reshaping driver
//! (Section 5.2).
//!
//! The [`ReshapeEngine`] consumes resource-state layers from the hardware
//! simulator one after another. Each layer is renormalized; layers whose
//! renormalization reaches the target size *and* that can establish every
//! time-like connection requested by the IR program become **logical
//! layers**, all other layers become **routing layers** whose qubits are
//! simply fused forward to the next RSL. Cross-layer connections park the
//! photons of the source node in delay lines until the target layer exists.

use graphstate::FusionOutcome;
use oneperc_hardware::{DelayLine, FusionEngine, HardwareConfig, PhysicalLayer};

use crate::renormalize::{RenormalizedLattice, Renormalizer};

/// One time-like edge requested by the IR program for the layer currently
/// being formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalRequirement {
    /// Coarse coordinate of the node on the layer being formed.
    pub coord: (usize, usize),
    /// How many logical layers back the partner node lives (`1` means the
    /// immediately preceding logical layer, larger values are cross-layer
    /// connections realized through delay lines).
    pub back_distance: usize,
}

/// Everything the online pass must realize for one virtual-hardware layer.
#[derive(Debug, Clone, Default)]
pub struct LayerRequirement {
    /// Time-like edges terminating on this layer.
    pub temporal_edges: Vec<TemporalRequirement>,
    /// Number of nodes of this layer that will be stored into the virtual
    /// memory (delay lines) for later cross-layer edges.
    pub stores: usize,
    /// Number of stored nodes retrieved from the virtual memory at this
    /// layer.
    pub retrieves: usize,
}

impl LayerRequirement {
    /// A layer with no time-like obligations (the first logical layer of a
    /// program).
    pub fn none() -> Self {
        Self::default()
    }
}

/// Configuration of the reshaping engine.
#[derive(Debug, Clone, Copy)]
pub struct ReshapeConfig {
    /// Hardware model to draw resource-state layers from.
    pub hardware: HardwareConfig,
    /// Average node size used by the 2D renormalization.
    pub node_size: usize,
    /// Side of the virtual-hardware layer the renormalization must reach.
    pub target_side: usize,
    /// Number of photons fused in parallel per time-like hop (the "set of
    /// physical qubits around the preceding node").
    pub temporal_redundancy: usize,
    /// Safety cap on the number of merged layers consumed per logical layer.
    pub max_layers_per_logical: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ReshapeConfig {
    /// Creates a configuration with the default redundancy (4) and safety
    /// cap (2048 merged layers per logical layer).
    ///
    /// # Panics
    ///
    /// Panics when the target lattice does not fit in the RSL
    /// (`target_side * node_size > rsl_size`).
    pub fn new(hardware: HardwareConfig, node_size: usize, target_side: usize, seed: u64) -> Self {
        assert!(
            target_side * node_size <= hardware.rsl_size,
            "target {target_side} x node size {node_size} exceeds the RSL size {}",
            hardware.rsl_size
        );
        ReshapeConfig {
            hardware,
            node_size,
            target_side,
            temporal_redundancy: 4,
            max_layers_per_logical: 2048,
            seed,
        }
    }

    /// Overrides the per-hop redundancy.
    pub fn with_temporal_redundancy(mut self, redundancy: usize) -> Self {
        assert!(redundancy > 0, "redundancy must be positive");
        self.temporal_redundancy = redundancy;
        self
    }
}

/// Outcome of forming one logical layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct LogicalLayerReport {
    /// Whether the logical layer was formed within the safety cap.
    pub formed: bool,
    /// Merged layers consumed (logical + routing) for this logical layer.
    pub merged_layers: usize,
    /// Raw RSLs consumed for this logical layer.
    pub raw_rsl: u64,
    /// Merged layers that failed 2D renormalization.
    pub renorm_failures: usize,
    /// Merged layers that renormalized but failed a time-like connection.
    pub timelike_failures: usize,
}

/// Cumulative statistics of a reshaping run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReshapeStats {
    /// Logical layers formed so far.
    pub logical_layers: u64,
    /// Routing layers consumed so far.
    pub routing_layers: u64,
    /// Merged layers consumed so far (logical + routing).
    pub merged_layers: u64,
    /// Raw RSLs consumed so far (the paper's `#RSL`).
    pub raw_rsl: u64,
    /// Fusions attempted so far (the paper's `#fusion`), including the bulk
    /// forward-fusions of routing layers.
    pub fusions_attempted: u64,
    /// Fusions that succeeded.
    pub fusions_succeeded: u64,
    /// Largest number of node bundles simultaneously parked in delay lines.
    pub delay_line_peak: usize,
    /// Node bundles lost to photon decay in the delay lines.
    pub delay_line_expired: u64,
}

impl ReshapeStats {
    /// The PL ratio — merged layers consumed per logical layer (Fig. 13(b)).
    pub fn pl_ratio(&self) -> f64 {
        if self.logical_layers == 0 {
            0.0
        } else {
            self.merged_layers as f64 / self.logical_layers as f64
        }
    }
}

/// The (2+1)-D reshaping driver.
///
/// # Example
///
/// ```
/// use oneperc_hardware::HardwareConfig;
/// use oneperc_percolation::{LayerRequirement, ReshapeConfig, ReshapeEngine};
///
/// let hw = HardwareConfig::new(36, 7, 0.78);
/// let mut engine = ReshapeEngine::new(ReshapeConfig::new(hw, 12, 3, 1));
/// let report = engine.advance_logical_layer(&LayerRequirement::none());
/// assert!(report.formed);
/// assert!(engine.stats().logical_layers >= 1);
/// ```
#[derive(Debug)]
pub struct ReshapeEngine {
    config: ReshapeConfig,
    fusion_engine: FusionEngine,
    delay: DelayLine<(usize, usize)>,
    stats: ReshapeStats,
    routing_since_logical: usize,
    next_store_key: u64,
    stored_keys: Vec<u64>,
    /// Bulk-accounted forward fusions of routing layers (not drawn through
    /// the sampler to keep large-RSL runs fast).
    bulk_attempted: u64,
    bulk_succeeded: u64,
    /// Renormalized lattice of the most recent logical layer (if any).
    last_logical: Option<RenormalizedLattice>,
    /// Flat-grid renormalizer whose scratch memory is reused across every
    /// RSL this engine consumes.
    renormalizer: Renormalizer,
    /// Reusable layer buffer: each merged layer is generated in place, so
    /// the steady-state per-RSL loop performs no layer allocation.
    layer_buf: Option<PhysicalLayer>,
}

impl ReshapeEngine {
    /// Creates an engine.
    pub fn new(config: ReshapeConfig) -> Self {
        ReshapeEngine {
            config,
            fusion_engine: FusionEngine::new(config.hardware, config.seed),
            delay: DelayLine::new(config.hardware.photon_lifetime_cycles),
            stats: ReshapeStats::default(),
            routing_since_logical: 0,
            next_store_key: 0,
            stored_keys: Vec::new(),
            bulk_attempted: 0,
            bulk_succeeded: 0,
            last_logical: None,
            renormalizer: Renormalizer::new(),
            layer_buf: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ReshapeConfig {
        &self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &ReshapeStats {
        &self.stats
    }

    /// The renormalized lattice realizing the most recent logical layer.
    pub fn last_logical_lattice(&self) -> Option<&RenormalizedLattice> {
        self.last_logical.as_ref()
    }

    /// Consumes resource-state layers until one of them becomes a logical
    /// layer satisfying `requirement`, or the safety cap is hit.
    pub fn advance_logical_layer(&mut self, requirement: &LayerRequirement) -> LogicalLayerReport {
        let mut report = LogicalLayerReport::default();
        let merging = self.config.hardware.merging_factor() as u64;

        while report.merged_layers < self.config.max_layers_per_logical {
            let n = self.config.hardware.rsl_size;
            let mut layer = self
                .layer_buf
                .take()
                .unwrap_or_else(|| PhysicalLayer::blank(n, n));
            self.fusion_engine.generate_layer_into(&mut layer);
            report.merged_layers += 1;
            report.raw_rsl += layer.raw_rsl_consumed as u64;
            self.stats.merged_layers += 1;
            self.stats.raw_rsl += layer.raw_rsl_consumed as u64;
            // Every merged layer advances the delay-line clock by the number
            // of raw RSG cycles it took to produce.
            for _ in 0..layer.raw_rsl_consumed {
                self.stats.delay_line_expired += self.delay.advance_cycle() as u64;
            }

            // Attempt 2D renormalization to the requested target size; the
            // renormalizer's flat-grid scratch is reused across layers.
            let lattice = self.renormalizer.renormalize(&layer, self.config.node_size);
            let target_reached = lattice.node_count()
                >= self.config.target_side * self.config.target_side
                && (0..self.config.target_side).all(|i| {
                    (0..self.config.target_side).all(|j| lattice.node_flat(i, j).is_some())
                });

            if !target_reached {
                report.renorm_failures += 1;
                self.absorb_routing_layer(&layer);
                self.layer_buf = Some(layer);
                self.update_fusion_totals();
                continue;
            }

            // Renormalization succeeded: try to establish every requested
            // time-like connection through the routing layers in between.
            let hops = self.routing_since_logical + 1;
            let mut all_ok = true;
            for edge in &requirement.temporal_edges {
                if !self.establish_connection(edge, hops, merging) {
                    all_ok = false;
                    break;
                }
            }

            if !all_ok {
                report.timelike_failures += 1;
                self.absorb_routing_layer(&layer);
                self.layer_buf = Some(layer);
                self.update_fusion_totals();
                continue;
            }

            // Logical layer formed. Update delay-line bookkeeping for the
            // stores/retrieves the IR schedules at this layer.
            for _ in 0..requirement.retrieves {
                if let Some(key) = self.stored_keys.pop() {
                    let _ = self.delay.retrieve(key);
                }
            }
            for _ in 0..requirement.stores {
                let key = self.next_store_key;
                self.next_store_key += 1;
                self.delay.store(key, (0, 0));
                self.stored_keys.push(key);
            }
            self.stats.delay_line_peak = self.stats.delay_line_peak.max(self.delay.len());

            self.stats.logical_layers += 1;
            self.routing_since_logical = 0;
            self.last_logical = Some(lattice);
            self.layer_buf = Some(layer);
            self.update_fusion_totals();
            report.formed = true;
            return report;
        }

        self.update_fusion_totals();
        report
    }

    /// Establishes one time-like connection: the photons around the source
    /// node must be fused forward through every intervening layer, each hop
    /// succeeding when at least one of `temporal_redundancy` parallel
    /// fusions succeeds.
    fn establish_connection(
        &mut self,
        edge: &TemporalRequirement,
        hops: usize,
        merging: u64,
    ) -> bool {
        // Cross-layer connections must additionally have survived the delay
        // lines: the stored photons waited `back_distance`-ish logical
        // layers, i.e. roughly pl_ratio * merging RSG cycles per layer.
        if edge.back_distance > 1 {
            let waited = (edge.back_distance as u64)
                * merging
                * self.stats.pl_ratio().max(1.0) as u64;
            if waited > self.config.hardware.photon_lifetime_cycles as u64 {
                return false;
            }
        }
        for _ in 0..hops {
            let mut hop_ok = false;
            for _ in 0..self.config.temporal_redundancy {
                if self.fusion_engine.sample_fusion() == FusionOutcome::Success {
                    hop_ok = true;
                    break;
                }
            }
            if !hop_ok {
                return false;
            }
        }
        true
    }

    /// Accounts for a routing layer: all of its qubits with available
    /// temporal ports are fused forward to the next RSL (grey fusions of
    /// Fig. 9(c)). The fusions are accounted in bulk to avoid per-site
    /// sampling cost on large RSLs.
    fn absorb_routing_layer(&mut self, layer: &oneperc_hardware::PhysicalLayer) {
        self.routing_since_logical += 1;
        self.stats.routing_layers += 1;
        let forward = layer.site_count() as u64;
        self.bulk_attempted += forward;
        self.bulk_succeeded +=
            (forward as f64 * self.config.hardware.effective_fusion_prob()).round() as u64;
    }

    /// Recomputes the cumulative fusion totals: everything drawn through the
    /// hardware sampler (layer patterns and time-like hops) plus the
    /// bulk-accounted forward fusions of routing layers.
    fn update_fusion_totals(&mut self) {
        let engine_total = self.fusion_engine.fusion_stats();
        self.stats.fusions_attempted = engine_total.attempted + self.bulk_attempted;
        self.stats.fusions_succeeded = engine_total.succeeded + self.bulk_succeeded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(p: f64, seed: u64) -> ReshapeConfig {
        ReshapeConfig::new(HardwareConfig::new(36, 7, p), 12, 3, seed)
    }

    #[test]
    fn first_logical_layer_forms_quickly_at_high_probability() {
        let mut engine = ReshapeEngine::new(small_config(0.9, 3));
        let report = engine.advance_logical_layer(&LayerRequirement::none());
        assert!(report.formed);
        assert!(report.merged_layers <= 4, "took {} layers", report.merged_layers);
        assert_eq!(engine.stats().logical_layers, 1);
        assert!(engine.last_logical_lattice().is_some());
    }

    #[test]
    fn temporal_edges_increase_layer_cost() {
        let no_edges = {
            let mut engine = ReshapeEngine::new(small_config(0.72, 5));
            let mut total = 0;
            for _ in 0..6 {
                total += engine.advance_logical_layer(&LayerRequirement::none()).merged_layers;
            }
            total
        };
        let with_edges = {
            let mut engine = ReshapeEngine::new(small_config(0.72, 5));
            let req = LayerRequirement {
                temporal_edges: (0..3)
                    .flat_map(|i| {
                        (0..3).map(move |j| TemporalRequirement { coord: (i, j), back_distance: 1 })
                    })
                    .collect(),
                stores: 0,
                retrieves: 0,
            };
            let mut total = 0;
            for _ in 0..6 {
                total += engine.advance_logical_layer(&req).merged_layers;
            }
            total
        };
        assert!(
            with_edges >= no_edges,
            "temporal obligations should not make layers cheaper ({with_edges} vs {no_edges})"
        );
    }

    #[test]
    fn pl_ratio_is_reported() {
        let mut engine = ReshapeEngine::new(small_config(0.75, 7));
        for _ in 0..5 {
            let report = engine.advance_logical_layer(&LayerRequirement::none());
            assert!(report.formed);
        }
        let stats = engine.stats();
        assert_eq!(stats.logical_layers, 5);
        assert!(stats.pl_ratio() >= 1.0);
        assert_eq!(stats.merged_layers, stats.logical_layers + stats.routing_layers);
        assert!(stats.raw_rsl >= stats.merged_layers);
    }

    #[test]
    fn raw_rsl_scales_with_merging_factor() {
        // 4-qubit resource states merge 3 raw RSLs per layer.
        let hw = HardwareConfig::new(36, 4, 0.9);
        let mut engine = ReshapeEngine::new(ReshapeConfig::new(hw, 12, 3, 2));
        let report = engine.advance_logical_layer(&LayerRequirement::none());
        assert!(report.formed);
        assert_eq!(report.raw_rsl, 3 * report.merged_layers as u64);
    }

    #[test]
    fn stores_and_retrieves_tracked_in_delay_lines() {
        let mut engine = ReshapeEngine::new(small_config(0.85, 9));
        let store_req = LayerRequirement { temporal_edges: vec![], stores: 2, retrieves: 0 };
        let retrieve_req = LayerRequirement { temporal_edges: vec![], stores: 0, retrieves: 2 };
        engine.advance_logical_layer(&store_req);
        assert_eq!(engine.stats().delay_line_peak, 2);
        engine.advance_logical_layer(&retrieve_req);
        assert_eq!(engine.delay.len(), 0);
    }

    #[test]
    fn impossible_target_hits_safety_cap() {
        // Target size equal to the RSL side with node size 1 cannot be
        // renormalized from a random layer at p = 0.66.
        let hw = HardwareConfig::new(12, 7, 0.66);
        let mut config = ReshapeConfig::new(hw, 1, 12, 4);
        config.max_layers_per_logical = 10;
        let mut engine = ReshapeEngine::new(config);
        let report = engine.advance_logical_layer(&LayerRequirement::none());
        assert!(!report.formed);
        assert_eq!(report.merged_layers, 10);
        assert_eq!(engine.stats().logical_layers, 0);
    }

    #[test]
    fn fusion_accounting_grows_with_layers() {
        let mut engine = ReshapeEngine::new(small_config(0.75, 11));
        engine.advance_logical_layer(&LayerRequirement::none());
        let after_one = engine.stats().fusions_attempted;
        engine.advance_logical_layer(&LayerRequirement::none());
        let after_two = engine.stats().fusions_attempted;
        assert!(after_one > 0);
        assert!(after_two > after_one);
    }

    #[test]
    #[should_panic(expected = "exceeds the RSL size")]
    fn oversized_target_panics() {
        let hw = HardwareConfig::new(20, 7, 0.75);
        let _ = ReshapeConfig::new(hw, 12, 3, 0);
    }
}
