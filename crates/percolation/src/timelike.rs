//! Flexible time-like connections and the (2+1)-D reshaping driver
//! (Section 5.2).
//!
//! The [`ReshapeEngine`] consumes resource-state layers from the hardware
//! simulator one after another. Each layer is renormalized; layers whose
//! renormalization reaches the target size *and* that can establish every
//! time-like connection requested by the IR program become **logical
//! layers**, all other layers become **routing layers** whose qubits are
//! simply fused forward to the next RSL. Cross-layer connections park the
//! photons of the source node in delay lines until the target layer exists.
//!
//! # The pipelined layer stream
//!
//! The per-layer loop is a two-stage pipeline: *generate* (the fusion
//! strategy samples the next random layer) and *renormalize + connect*
//! (the percolation pass classifies it). With
//! [`ReshapeConfig::with_pipelining`], generation moves to a dedicated
//! thread that owns the [`FusionEngine`] and runs one layer ahead, so
//! `generate_layer_into` for layer `t + 1` overlaps the renormalization of
//! layer `t` on a second core. Layers travel to the consumer through a
//! bounded depth-1 channel (the double buffer) and the spent
//! [`PhysicalLayer`] allocations cycle back to the generator over a
//! recycle channel, keeping the steady state allocation-free exactly like
//! the serial path.
//!
//! Determinism is preserved by construction: the generator thread draws
//! from the same seeded sampler in the same order as the serial path, the
//! channel is FIFO, and time-like fusion outcomes come from a *separate*
//! sampler seeded from the configuration (in both modes), so prefetching a
//! layer never reorders RNG draws. With a fixed seed the pipelined engine
//! therefore produces byte-identical [`RenormalizedLattice`]s and
//! identical [`LogicalLayerReport`]s to the serial engine — the contract
//! enforced by `tests/pipeline_determinism.rs`.

use std::collections::VecDeque;
use crate::sync::mpsc::{channel, sync_channel, Receiver, Sender};
use crate::sync::thread::{self, JoinHandle};
use crate::sync::Arc;

use graphstate::FusionOutcome;
use oneperc_hardware::{DelayLine, FusionEngine, FusionSampler, HardwareConfig, PhysicalLayer};

use crate::cancel::CancelToken;
use crate::pool::{ModuleRegion, PoolClient, WorkerPool};
use crate::renormalize::{RenormalizedLattice, Renormalizer};

/// One time-like edge requested by the IR program for the layer currently
/// being formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalRequirement {
    /// Coarse coordinate of the node on the layer being formed.
    pub coord: (usize, usize),
    /// How many logical layers back the partner node lives (`1` means the
    /// immediately preceding logical layer, larger values are cross-layer
    /// connections realized through delay lines).
    pub back_distance: usize,
}

/// Everything the online pass must realize for one virtual-hardware layer.
#[derive(Debug, Clone, Default)]
pub struct LayerRequirement {
    /// Time-like edges terminating on this layer.
    pub temporal_edges: Vec<TemporalRequirement>,
    /// Number of nodes of this layer that will be stored into the virtual
    /// memory (delay lines) for later cross-layer edges.
    pub stores: usize,
    /// Number of stored nodes retrieved from the virtual memory at this
    /// layer.
    pub retrieves: usize,
}

impl LayerRequirement {
    /// A layer with no time-like obligations (the first logical layer of a
    /// program).
    pub fn none() -> Self {
        Self::default()
    }
}

/// Configuration of the reshaping engine.
#[derive(Debug, Clone, Copy)]
pub struct ReshapeConfig {
    /// Hardware model to draw resource-state layers from.
    pub hardware: HardwareConfig,
    /// Average node size used by the 2D renormalization.
    pub node_size: usize,
    /// Side of the virtual-hardware layer the renormalization must reach.
    pub target_side: usize,
    /// Number of photons fused in parallel per time-like hop (the "set of
    /// physical qubits around the preceding node").
    pub temporal_redundancy: usize,
    /// Safety cap on the number of merged layers consumed per logical layer.
    pub max_layers_per_logical: usize,
    /// RNG seed.
    pub seed: u64,
    /// Run layer generation on a dedicated pipeline thread, double-buffered
    /// one layer ahead of renormalization. Output is byte-identical to the
    /// serial path for the same seed.
    pub pipelined: bool,
    /// Worker threads renormalizing layers on a persistent pool (`0` =
    /// renormalize in-thread). With workers the engine submits upcoming
    /// layers of the stream to the pool a few layers ahead and consumes the
    /// lattices strictly in stream order, so the output is byte-identical
    /// to the in-thread path for any worker count.
    pub renorm_workers: usize,
}

impl ReshapeConfig {
    /// Creates a configuration with the default redundancy (4) and safety
    /// cap (2048 merged layers per logical layer).
    ///
    /// # Panics
    ///
    /// Panics when the target lattice does not fit in the RSL
    /// (`target_side * node_size > rsl_size`).
    pub fn new(hardware: HardwareConfig, node_size: usize, target_side: usize, seed: u64) -> Self {
        assert!(
            target_side * node_size <= hardware.rsl_size,
            "target {target_side} x node size {node_size} exceeds the RSL size {}",
            hardware.rsl_size
        );
        ReshapeConfig {
            hardware,
            node_size,
            target_side,
            temporal_redundancy: 4,
            max_layers_per_logical: 2048,
            seed,
            pipelined: false,
            renorm_workers: 0,
        }
    }

    /// Overrides the per-hop redundancy.
    #[must_use]
    pub fn with_temporal_redundancy(mut self, redundancy: usize) -> Self {
        assert!(redundancy > 0, "redundancy must be positive");
        self.temporal_redundancy = redundancy;
        self
    }

    /// Enables or disables the double-buffered layer pipeline.
    #[must_use]
    pub fn with_pipelining(mut self, pipelined: bool) -> Self {
        self.pipelined = pipelined;
        self
    }

    /// Sets the renormalization worker count (`0` = in-thread). Results are
    /// independent of the worker count; only the wall-clock changes.
    #[must_use]
    pub fn with_renorm_workers(mut self, workers: usize) -> Self {
        self.renorm_workers = workers;
        self
    }

    /// Overrides the RNG seed (the stochastic stream restarts from it).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Seed of the dedicated time-like fusion sampler. Time-like hops draw
    /// from their own stream (in both the serial and pipelined engines) so
    /// that prefetching layers never reorders the layer-pattern draws.
    fn timelike_seed(&self) -> u64 {
        // Fixed odd multiplier decorrelates the two streams per seed.
        self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x5EED)
    }
}

/// Outcome of forming one logical layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogicalLayerReport {
    /// Whether the logical layer was formed within the safety cap.
    pub formed: bool,
    /// Whether the attempt stopped at a cancellation checkpoint (see
    /// [`ReshapeEngine::advance_logical_layer_cancellable`]). A cancelled
    /// report is never `formed`; its counters cover the merged layers
    /// consumed before the checkpoint fired.
    pub cancelled: bool,
    /// Merged layers consumed (logical + routing) for this logical layer.
    pub merged_layers: usize,
    /// Raw RSLs consumed for this logical layer.
    pub raw_rsl: u64,
    /// Merged layers that failed 2D renormalization.
    pub renorm_failures: usize,
    /// Merged layers that renormalized but failed a time-like connection.
    pub timelike_failures: usize,
}

/// Cumulative statistics of a reshaping run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReshapeStats {
    /// Logical layers formed so far.
    pub logical_layers: u64,
    /// Routing layers consumed so far.
    pub routing_layers: u64,
    /// Merged layers consumed so far (logical + routing).
    pub merged_layers: u64,
    /// Raw RSLs consumed so far (the paper's `#RSL`).
    pub raw_rsl: u64,
    /// Fusions attempted so far (the paper's `#fusion`), including the bulk
    /// forward-fusions of routing layers.
    pub fusions_attempted: u64,
    /// Fusions that succeeded.
    pub fusions_succeeded: u64,
    /// Largest number of node bundles simultaneously parked in delay lines.
    pub delay_line_peak: usize,
    /// Node bundles lost to photon decay in the delay lines.
    pub delay_line_expired: u64,
}

impl ReshapeStats {
    /// The PL ratio — merged layers consumed per logical layer (Fig. 13(b)).
    pub fn pl_ratio(&self) -> f64 {
        if self.logical_layers == 0 {
            0.0
        } else {
            self.merged_layers as f64 / self.logical_layers as f64
        }
    }
}

/// The (2+1)-D reshaping driver.
///
/// # Example
///
/// ```
/// use oneperc_hardware::HardwareConfig;
/// use oneperc_percolation::{LayerRequirement, ReshapeConfig, ReshapeEngine};
///
/// let hw = HardwareConfig::new(36, 7, 0.78);
/// let mut engine = ReshapeEngine::new(ReshapeConfig::new(hw, 12, 3, 1));
/// let report = engine.advance_logical_layer(&LayerRequirement::none());
/// assert!(report.formed);
/// assert!(engine.stats().logical_layers >= 1);
/// ```
#[derive(Debug)]
pub struct ReshapeEngine {
    config: ReshapeConfig,
    /// Where merged layers come from: the in-thread fusion engine (serial)
    /// or the double-buffered generator thread (pipelined).
    source: LayerSource,
    /// Dedicated sampler for time-like fusion outcomes. Kept separate from
    /// the layer-pattern stream so the pipelined generator can run ahead
    /// without reordering any RNG draw; both modes use it identically.
    timelike: FusionSampler,
    delay: DelayLine<(usize, usize)>,
    stats: ReshapeStats,
    routing_since_logical: usize,
    next_store_key: u64,
    stored_keys: Vec<u64>,
    /// Bulk-accounted forward fusions of routing layers (not drawn through
    /// the sampler to keep large-RSL runs fast).
    bulk_attempted: u64,
    bulk_succeeded: u64,
    /// Layer-pattern fusions accumulated from *consumed* layers. Counting
    /// at consumption (not generation) keeps the serial and pipelined
    /// totals identical even while the generator runs one layer ahead.
    layer_attempted: u64,
    layer_succeeded: u64,
    /// Renormalized lattice of the most recent logical layer (if any).
    last_logical: Option<RenormalizedLattice>,
    /// Where lattices come from: the in-thread renormalizer or the worker
    /// pool fed a few layers ahead. Scratch memory (or the pool's workers)
    /// is reused across every RSL this engine consumes — and across
    /// [`ReshapeEngine::reset`]s.
    renorm: RenormBackend,
}

/// A merged layer travelling through the engine: owned when generated
/// in-thread, shared while the worker pool may still hold job clones.
#[derive(Debug)]
enum LayerHolder {
    Owned(PhysicalLayer),
    Shared(Arc<PhysicalLayer>),
}

impl LayerHolder {
    fn layer(&self) -> &PhysicalLayer {
        match self {
            LayerHolder::Owned(layer) => layer,
            LayerHolder::Shared(layer) => layer,
        }
    }

    /// Reclaims the allocation for recycling when nothing else holds it.
    fn into_owned(self) -> Option<PhysicalLayer> {
        match self {
            LayerHolder::Owned(layer) => Some(layer),
            // The pool drops its clones before replying, so by consumption
            // time the engine normally holds the only reference; a shared
            // count > 1 just means the buffer cannot be recycled this time.
            LayerHolder::Shared(layer) => Arc::try_unwrap(layer).ok(),
        }
    }
}

/// Origin of the renormalized-lattice stream.
#[derive(Debug)]
enum RenormBackend {
    /// Renormalize each layer in-thread on one reusable scratch.
    Local(Renormalizer),
    /// Submit upcoming layers to a worker pool and consume the lattices in
    /// stream order. `queue` holds the layers whose jobs are in flight,
    /// oldest first; its length is kept at `lookahead` so the pool always
    /// has work while the engine connects the current layer.
    Pooled {
        client: PoolClient,
        queue: VecDeque<Arc<PhysicalLayer>>,
        lookahead: usize,
        /// The pool owned by this engine, when not shared with other
        /// engines by the caller. Declared after `client` so the client's
        /// channels close first.
        own_pool: Option<WorkerPool>,
    },
}

/// Origin of the merged-layer stream.
#[derive(Debug)]
enum LayerSource {
    /// Generate each layer in-thread, reusing one buffer (the pre-pipeline
    /// behavior). The engine is boxed to keep the variants close in size.
    Serial {
        engine: Box<FusionEngine>,
        /// Reusable layer buffer: each merged layer is generated in place,
        /// so the steady-state per-RSL loop performs no layer allocation.
        buf: Option<PhysicalLayer>,
    },
    /// Pull layers from the generator thread, one layer ahead.
    Pipelined(LayerPipeline),
}

impl LayerSource {
    /// Produces the next merged layer of the stream.
    fn next_layer(&mut self, rsl_size: usize) -> PhysicalLayer {
        match self {
            LayerSource::Serial { engine, buf } => {
                let mut layer = buf
                    .take()
                    .unwrap_or_else(|| PhysicalLayer::blank(rsl_size, rsl_size));
                engine.generate_layer_into(&mut layer);
                layer
            }
            LayerSource::Pipelined(pipeline) => pipeline.recv(),
        }
    }

    /// Returns a spent layer so its allocation is reused for a later layer
    /// (serially in place, or cycled back to the generator thread).
    fn recycle(&mut self, layer: PhysicalLayer) {
        match self {
            LayerSource::Serial { buf, .. } => *buf = Some(layer),
            LayerSource::Pipelined(pipeline) => pipeline.recycle(layer),
        }
    }

    /// Restarts the layer stream from `seed` without tearing the source
    /// down: the serial engine reseeds in place, the pipelined generator
    /// thread is told to reseed and its already-prefetched layers are
    /// discarded on the next receive.
    fn reset(&mut self, seed: u64) {
        match self {
            LayerSource::Serial { engine, .. } => engine.reseed(seed),
            LayerSource::Pipelined(pipeline) => pipeline.reset(seed),
        }
    }
}

/// Command sent to the generator thread between layers.
enum GenCommand {
    /// Reseed the fusion engine and stamp all further layers with `epoch`.
    Reset { seed: u64, epoch: u64 },
}

/// The generator half of the double-buffered pipeline.
///
/// The spawned thread owns the [`FusionEngine`] and keeps exactly one
/// finished layer queued in the bounded channel while generating the next
/// one, i.e. it runs at most one layer ahead of the consumer. Spent layer
/// buffers return through the recycle channel, so after warm-up the
/// pipeline circulates a fixed set of allocations. Dropping the pipeline
/// closes the layer channel, which unblocks and terminates the generator.
///
/// # Warm reseeding
///
/// [`LayerPipeline::reset`] restarts the stochastic stream **without
/// respawning the thread**: every layer is stamped with the epoch it was
/// generated under, the reset bumps the consumer-side epoch and posts a
/// reseed command, and the consumer silently recycles any stale-epoch
/// layers that were already prefetched (at most the channel depth plus the
/// one being generated). The generator applies pending commands between
/// layers, so the first layer of the new epoch comes from a freshly
/// reseeded engine — byte-identical to a cold-started pipeline.
#[derive(Debug)]
struct LayerPipeline {
    /// `Option` so `Drop` can hang up the channel before joining.
    layer_rx: Option<Receiver<(u64, PhysicalLayer)>>,
    recycle_tx: Sender<PhysicalLayer>,
    command_tx: Sender<GenCommand>,
    /// Epoch of the layers the consumer currently accepts.
    epoch: u64,
    handle: Option<JoinHandle<()>>,
}

impl LayerPipeline {
    /// Spawns the generator thread for the given hardware model and seed.
    fn spawn(hardware: HardwareConfig, seed: u64) -> Self {
        let (layer_tx, layer_rx) = sync_channel::<(u64, PhysicalLayer)>(1);
        let (recycle_tx, recycle_rx) = channel::<PhysicalLayer>();
        let (command_tx, command_rx) = channel::<GenCommand>();
        let rsl_size = hardware.rsl_size;
        let handle = thread::Builder::new()
            .name("rsl-generator".into())
            .spawn(move || {
                let mut engine = FusionEngine::new(hardware, seed);
                let mut epoch = 0u64;
                loop {
                    // Apply every pending command; the last reseed wins.
                    while let Ok(command) = command_rx.try_recv() {
                        match command {
                            GenCommand::Reset { seed, epoch: e } => {
                                engine.reseed(seed);
                                epoch = e;
                            }
                        }
                    }
                    // Reuse a recycled buffer when one is back already;
                    // otherwise allocate (only happens during warm-up).
                    let mut layer = recycle_rx
                        .try_recv()
                        .unwrap_or_else(|_| PhysicalLayer::blank(rsl_size, rsl_size));
                    engine.generate_layer_into(&mut layer);
                    if layer_tx.send((epoch, layer)).is_err() {
                        break; // consumer dropped the engine
                    }
                }
            })
            .expect("spawn RSL generator thread");
        LayerPipeline {
            layer_rx: Some(layer_rx),
            recycle_tx,
            command_tx,
            epoch: 0,
            handle: Some(handle),
        }
    }

    /// Receives the next layer of the current epoch in generation order
    /// (FIFO), recycling any stale prefetched layers of earlier epochs.
    fn recv(&mut self) -> PhysicalLayer {
        let rx = self.layer_rx.as_ref().expect("pipeline is live");
        loop {
            let (epoch, layer) = rx.recv().expect("RSL generator thread died");
            if epoch == self.epoch {
                return layer;
            }
            // Prefetched under an earlier seed: only the buffer survives.
            let _ = self.recycle_tx.send(layer);
        }
    }

    /// Cycles a spent buffer back to the generator.
    fn recycle(&mut self, layer: PhysicalLayer) {
        // A send error only means the generator already exited; the buffer
        // is simply dropped then.
        let _ = self.recycle_tx.send(layer);
    }

    /// Restarts the generator's stream from `seed` while keeping the
    /// thread (and its circulating buffers) warm.
    fn reset(&mut self, seed: u64) {
        self.epoch += 1;
        self.command_tx
            .send(GenCommand::Reset { seed, epoch: self.epoch })
            .expect("RSL generator thread died");
    }
}

impl Drop for LayerPipeline {
    fn drop(&mut self) {
        // Hang up the layer channel first: a generator blocked in `send`
        // wakes with an error and exits, making the join safe.
        self.layer_rx = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl ReshapeEngine {
    /// Creates an engine. With [`ReshapeConfig::renorm_workers`] > 0 the
    /// engine owns a private [`WorkerPool`] of that size; use
    /// [`ReshapeEngine::with_renorm_client`] to share one pool between
    /// several engines instead.
    pub fn new(config: ReshapeConfig) -> Self {
        let renorm = if config.renorm_workers > 0 {
            let pool = WorkerPool::new(config.renorm_workers);
            let client = pool.client();
            RenormBackend::Pooled {
                client,
                queue: VecDeque::new(),
                lookahead: Self::lookahead_for(config.renorm_workers),
                own_pool: Some(pool),
            }
        } else {
            RenormBackend::Local(Renormalizer::new())
        };
        Self::with_backend(config, renorm)
    }

    /// Creates an engine whose layer renormalization runs on a **shared**
    /// worker pool through `client` (obtained from
    /// [`WorkerPool::client`]). Several engines — e.g. one per session lane
    /// — can stream through one pool concurrently; results are
    /// byte-identical to [`ReshapeEngine::new`] with any
    /// `renorm_workers` setting, including the in-thread path.
    ///
    /// The pool must outlive this engine.
    pub fn with_renorm_client(config: ReshapeConfig, client: PoolClient) -> Self {
        // Size the in-flight window against the pool actually behind the
        // client — `config.renorm_workers` need not agree with the shared
        // pool's size, and a lookahead below the worker count would
        // silently starve it.
        let lookahead = Self::lookahead_for(client.pool_workers().max(config.renorm_workers));
        let renorm =
            RenormBackend::Pooled { client, queue: VecDeque::new(), lookahead, own_pool: None };
        Self::with_backend(config, renorm)
    }

    /// In-flight depth of the pooled renormalization stage: one job per
    /// worker plus one so a worker never idles while the engine connects
    /// the current layer, capped to keep prefetch memory bounded.
    fn lookahead_for(workers: usize) -> usize {
        (workers.max(1) + 1).min(8)
    }

    fn with_backend(config: ReshapeConfig, renorm: RenormBackend) -> Self {
        let source = if config.pipelined {
            LayerSource::Pipelined(LayerPipeline::spawn(config.hardware, config.seed))
        } else {
            LayerSource::Serial {
                engine: Box::new(FusionEngine::new(config.hardware, config.seed)),
                buf: None,
            }
        };
        ReshapeEngine {
            config,
            source,
            timelike: FusionSampler::new(
                config.hardware.effective_fusion_prob(),
                config.timelike_seed(),
            ),
            delay: DelayLine::new(config.hardware.photon_lifetime_cycles),
            stats: ReshapeStats::default(),
            routing_since_logical: 0,
            next_store_key: 0,
            stored_keys: Vec::new(),
            bulk_attempted: 0,
            bulk_succeeded: 0,
            layer_attempted: 0,
            layer_succeeded: 0,
            last_logical: None,
            renorm,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ReshapeConfig {
        &self.config
    }

    /// Workers of the engine-owned renormalization pool: `None` when the
    /// engine renormalizes in-thread or streams through a shared pool it
    /// does not own.
    pub fn own_pool_workers(&self) -> Option<usize> {
        match &self.renorm {
            RenormBackend::Pooled { own_pool: Some(pool), .. } => Some(pool.worker_count()),
            _ => None,
        }
    }

    /// Restarts the engine's stochastic execution from `seed`, exactly as
    /// if it had been freshly constructed with that seed, while keeping
    /// every warm resource alive: the generator thread (pipelined mode) is
    /// reseeded in place, the renormalization scratch — or the worker pool
    /// and its in-flight lookahead — is retained, and the circulating layer
    /// buffers keep circulating. This is what makes a long-lived session
    /// lane cheap: repeated seeded executions pay no thread or allocation
    /// startup.
    ///
    /// Byte-for-byte equivalence with a cold engine is the contract tested
    /// by `warm_reset_matches_cold_engine` and the session determinism
    /// suite.
    pub fn reset(&mut self, seed: u64) {
        // Drain the pooled lookahead first: in-flight jobs belong to the
        // old stream. Their lattices are discarded, their layer buffers
        // recycled into the (about-to-be-reseeded) source.
        if let RenormBackend::Pooled { client, queue, .. } = &mut self.renorm {
            while let Some(layer) = queue.pop_front() {
                let _ = client.recv_next();
                if let Ok(buf) = Arc::try_unwrap(layer) {
                    self.source.recycle(buf);
                }
            }
        }
        self.config.seed = seed;
        self.source.reset(seed);
        self.timelike = FusionSampler::new(
            self.config.hardware.effective_fusion_prob(),
            self.config.timelike_seed(),
        );
        self.delay = DelayLine::new(self.config.hardware.photon_lifetime_cycles);
        self.stats = ReshapeStats::default();
        self.routing_since_logical = 0;
        self.next_store_key = 0;
        self.stored_keys.clear();
        self.bulk_attempted = 0;
        self.bulk_succeeded = 0;
        self.layer_attempted = 0;
        self.layer_succeeded = 0;
        self.last_logical = None;
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &ReshapeStats {
        &self.stats
    }

    /// The renormalized lattice realizing the most recent logical layer.
    pub fn last_logical_lattice(&self) -> Option<&RenormalizedLattice> {
        self.last_logical.as_ref()
    }

    /// Produces the next merged layer of the stream together with its
    /// renormalized lattice.
    ///
    /// On the pooled backend the engine first tops the lookahead window up
    /// — generating upcoming layers and submitting them as whole-layer
    /// region jobs — then blocks on the oldest job's result. Because every
    /// layer of the stream is consumed in generation order whatever its
    /// logical/routing fate, renormalizing ahead is never speculative
    /// waste, and because region renormalization is a pure per-layer
    /// function collected in submission order, the lattices are
    /// byte-identical to the in-thread path for any worker count.
    fn next_renormalized(&mut self) -> (LayerHolder, RenormalizedLattice) {
        let ReshapeEngine { config, source, renorm, .. } = self;
        match renorm {
            RenormBackend::Local(renormalizer) => {
                let layer = source.next_layer(config.hardware.rsl_size);
                let lattice = renormalizer.renormalize(&layer, config.node_size);
                (LayerHolder::Owned(layer), lattice)
            }
            RenormBackend::Pooled { client, queue, lookahead, .. } => {
                while queue.len() < *lookahead {
                    let layer = Arc::new(source.next_layer(config.hardware.rsl_size));
                    let _ = client.submit(
                        &layer,
                        ModuleRegion::whole_layer(&layer),
                        config.node_size,
                    );
                    queue.push_back(layer);
                }
                let lattice = client.recv_next();
                let layer = queue.pop_front().expect("lookahead queue is non-empty");
                (LayerHolder::Shared(layer), lattice)
            }
        }
    }

    /// Returns a consumed layer's allocation to the source when the engine
    /// holds it exclusively again.
    fn recycle_holder(&mut self, holder: LayerHolder) {
        if let Some(buf) = holder.into_owned() {
            self.source.recycle(buf);
        }
    }

    /// Consumes resource-state layers until one of them becomes a logical
    /// layer satisfying `requirement`, or the safety cap is hit.
    ///
    /// In pipelined mode the next layer was already generated while the
    /// previous one was being renormalized; a layer prefetched but not yet
    /// consumed when a logical layer forms simply waits in the channel and
    /// is the first layer of the next call, so the stream order matches the
    /// serial path exactly.
    pub fn advance_logical_layer(&mut self, requirement: &LayerRequirement) -> LogicalLayerReport {
        self.advance_logical_layer_impl(requirement, None)
    }

    /// [`ReshapeEngine::advance_logical_layer`] with a cooperative
    /// cancellation checkpoint: `cancel` is polled **before each merged
    /// layer is consumed**, and a cancelled token stops the attempt right
    /// there — the returned report has
    /// [`cancelled`](LogicalLayerReport::cancelled) set, is never
    /// `formed`, and its counters cover only the layers consumed before
    /// the checkpoint fired.
    ///
    /// A token that is never cancelled leaves the run byte-identical to
    /// [`ReshapeEngine::advance_logical_layer`]: the checkpoint reads a
    /// flag, it never draws from any stochastic stream.
    pub fn advance_logical_layer_cancellable(
        &mut self,
        requirement: &LayerRequirement,
        cancel: &CancelToken,
    ) -> LogicalLayerReport {
        self.advance_logical_layer_impl(requirement, Some(cancel))
    }

    fn advance_logical_layer_impl(
        &mut self,
        requirement: &LayerRequirement,
        cancel: Option<&CancelToken>,
    ) -> LogicalLayerReport {
        let mut report = LogicalLayerReport::default();
        let merging = self.config.hardware.merging_factor() as u64;

        while report.merged_layers < self.config.max_layers_per_logical {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                report.cancelled = true;
                self.update_fusion_totals();
                return report;
            }
            // Generate + renormalize: in-thread, or collected from the
            // worker pool that was fed this layer a few steps ago.
            let (holder, lattice) = self.next_renormalized();
            let layer = holder.layer();
            report.merged_layers += 1;
            report.raw_rsl += layer.raw_rsl_consumed as u64;
            self.stats.merged_layers += 1;
            self.stats.raw_rsl += layer.raw_rsl_consumed as u64;
            self.layer_attempted += layer.fusions_attempted;
            self.layer_succeeded += layer.fusions_succeeded;
            // Every merged layer advances the delay-line clock by the number
            // of raw RSG cycles it took to produce.
            for _ in 0..layer.raw_rsl_consumed {
                self.stats.delay_line_expired += self.delay.advance_cycle() as u64;
            }

            let target_reached = lattice.node_count()
                >= self.config.target_side * self.config.target_side
                && (0..self.config.target_side).all(|i| {
                    (0..self.config.target_side).all(|j| lattice.node_flat(i, j).is_some())
                });

            if !target_reached {
                report.renorm_failures += 1;
                self.absorb_routing_layer(holder.layer());
                self.recycle_holder(holder);
                self.update_fusion_totals();
                continue;
            }

            // Renormalization succeeded: try to establish every requested
            // time-like connection through the routing layers in between.
            let hops = self.routing_since_logical + 1;
            let mut all_ok = true;
            for edge in &requirement.temporal_edges {
                if !self.establish_connection(edge, hops, merging) {
                    all_ok = false;
                    break;
                }
            }

            if !all_ok {
                report.timelike_failures += 1;
                self.absorb_routing_layer(holder.layer());
                self.recycle_holder(holder);
                self.update_fusion_totals();
                continue;
            }

            // Logical layer formed. Update delay-line bookkeeping for the
            // stores/retrieves the IR schedules at this layer.
            for _ in 0..requirement.retrieves {
                if let Some(key) = self.stored_keys.pop() {
                    let _ = self.delay.retrieve(key);
                }
            }
            for _ in 0..requirement.stores {
                let key = self.next_store_key;
                self.next_store_key += 1;
                self.delay.store(key, (0, 0));
                self.stored_keys.push(key);
            }
            self.stats.delay_line_peak = self.stats.delay_line_peak.max(self.delay.len());

            self.stats.logical_layers += 1;
            self.routing_since_logical = 0;
            self.last_logical = Some(lattice);
            self.recycle_holder(holder);
            self.update_fusion_totals();
            report.formed = true;
            return report;
        }

        self.update_fusion_totals();
        report
    }

    /// Establishes one time-like connection: the photons around the source
    /// node must be fused forward through every intervening layer, each hop
    /// succeeding when at least one of `temporal_redundancy` parallel
    /// fusions succeeds.
    fn establish_connection(
        &mut self,
        edge: &TemporalRequirement,
        hops: usize,
        merging: u64,
    ) -> bool {
        // Cross-layer connections must additionally have survived the delay
        // lines: the stored photons waited `back_distance`-ish logical
        // layers, i.e. roughly pl_ratio * merging RSG cycles per layer.
        if edge.back_distance > 1 {
            let waited = (edge.back_distance as u64)
                * merging
                * self.stats.pl_ratio().max(1.0) as u64;
            if waited > self.config.hardware.photon_lifetime_cycles as u64 {
                return false;
            }
        }
        for _ in 0..hops {
            let mut hop_ok = false;
            for _ in 0..self.config.temporal_redundancy {
                if self.timelike.sample() == FusionOutcome::Success {
                    hop_ok = true;
                    break;
                }
            }
            if !hop_ok {
                return false;
            }
        }
        true
    }

    /// Accounts for a routing layer: all of its qubits with available
    /// temporal ports are fused forward to the next RSL (grey fusions of
    /// Fig. 9(c)). The fusions are accounted in bulk to avoid per-site
    /// sampling cost on large RSLs.
    fn absorb_routing_layer(&mut self, layer: &oneperc_hardware::PhysicalLayer) {
        self.routing_since_logical += 1;
        self.stats.routing_layers += 1;
        let forward = layer.site_count() as u64;
        self.bulk_attempted += forward;
        self.bulk_succeeded +=
            (forward as f64 * self.config.hardware.effective_fusion_prob()).round() as u64;
    }

    /// Recomputes the cumulative fusion totals: the layer-pattern fusions
    /// of every consumed layer, the time-like hop draws, and the
    /// bulk-accounted forward fusions of routing layers.
    fn update_fusion_totals(&mut self) {
        let timelike = self.timelike.stats();
        self.stats.fusions_attempted =
            self.layer_attempted + timelike.attempted + self.bulk_attempted;
        self.stats.fusions_succeeded =
            self.layer_succeeded + timelike.succeeded + self.bulk_succeeded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(p: f64, seed: u64) -> ReshapeConfig {
        ReshapeConfig::new(HardwareConfig::new(36, 7, p), 12, 3, seed)
    }

    #[test]
    fn first_logical_layer_forms_quickly_at_high_probability() {
        let mut engine = ReshapeEngine::new(small_config(0.9, 3));
        let report = engine.advance_logical_layer(&LayerRequirement::none());
        assert!(report.formed);
        assert!(report.merged_layers <= 4, "took {} layers", report.merged_layers);
        assert_eq!(engine.stats().logical_layers, 1);
        assert!(engine.last_logical_lattice().is_some());
    }

    #[test]
    fn cancelled_token_stops_before_consuming_a_layer() {
        let mut engine = ReshapeEngine::new(small_config(0.9, 3));
        let token = CancelToken::new();
        token.cancel();
        let report = engine.advance_logical_layer_cancellable(&LayerRequirement::none(), &token);
        assert!(report.cancelled);
        assert!(!report.formed);
        assert_eq!(report.merged_layers, 0, "checkpoint fires before the first layer");
        assert_eq!(engine.stats().merged_layers, 0, "no stream consumption after cancel");
        // The engine stays serviceable: a live token runs to completion…
        let live = CancelToken::new();
        let next = engine.advance_logical_layer_cancellable(&LayerRequirement::none(), &live);
        assert!(next.formed);
        assert!(!next.cancelled);
        // …and is byte-identical to the plain path on a fresh engine.
        let mut plain = ReshapeEngine::new(small_config(0.9, 3));
        let reference = plain.advance_logical_layer(&LayerRequirement::none());
        assert_eq!(next, reference, "a never-cancelled checkpoint must not perturb the stream");
    }

    #[test]
    fn temporal_edges_increase_layer_cost() {
        let no_edges = {
            let mut engine = ReshapeEngine::new(small_config(0.72, 5));
            let mut total = 0;
            for _ in 0..6 {
                total += engine.advance_logical_layer(&LayerRequirement::none()).merged_layers;
            }
            total
        };
        let with_edges = {
            let mut engine = ReshapeEngine::new(small_config(0.72, 5));
            let req = LayerRequirement {
                temporal_edges: (0..3)
                    .flat_map(|i| {
                        (0..3).map(move |j| TemporalRequirement { coord: (i, j), back_distance: 1 })
                    })
                    .collect(),
                stores: 0,
                retrieves: 0,
            };
            let mut total = 0;
            for _ in 0..6 {
                total += engine.advance_logical_layer(&req).merged_layers;
            }
            total
        };
        assert!(
            with_edges >= no_edges,
            "temporal obligations should not make layers cheaper ({with_edges} vs {no_edges})"
        );
    }

    #[test]
    fn pl_ratio_is_reported() {
        let mut engine = ReshapeEngine::new(small_config(0.75, 7));
        for _ in 0..5 {
            let report = engine.advance_logical_layer(&LayerRequirement::none());
            assert!(report.formed);
        }
        let stats = engine.stats();
        assert_eq!(stats.logical_layers, 5);
        assert!(stats.pl_ratio() >= 1.0);
        assert_eq!(stats.merged_layers, stats.logical_layers + stats.routing_layers);
        assert!(stats.raw_rsl >= stats.merged_layers);
    }

    #[test]
    fn raw_rsl_scales_with_merging_factor() {
        // 4-qubit resource states merge 3 raw RSLs per layer.
        let hw = HardwareConfig::new(36, 4, 0.9);
        let mut engine = ReshapeEngine::new(ReshapeConfig::new(hw, 12, 3, 2));
        let report = engine.advance_logical_layer(&LayerRequirement::none());
        assert!(report.formed);
        assert_eq!(report.raw_rsl, 3 * report.merged_layers as u64);
    }

    #[test]
    fn stores_and_retrieves_tracked_in_delay_lines() {
        let mut engine = ReshapeEngine::new(small_config(0.85, 9));
        let store_req = LayerRequirement { temporal_edges: vec![], stores: 2, retrieves: 0 };
        let retrieve_req = LayerRequirement { temporal_edges: vec![], stores: 0, retrieves: 2 };
        engine.advance_logical_layer(&store_req);
        assert_eq!(engine.stats().delay_line_peak, 2);
        engine.advance_logical_layer(&retrieve_req);
        assert_eq!(engine.delay.len(), 0);
    }

    #[test]
    fn impossible_target_hits_safety_cap() {
        // Target size equal to the RSL side with node size 1 cannot be
        // renormalized from a random layer at p = 0.66.
        let hw = HardwareConfig::new(12, 7, 0.66);
        let mut config = ReshapeConfig::new(hw, 1, 12, 4);
        config.max_layers_per_logical = 10;
        let mut engine = ReshapeEngine::new(config);
        let report = engine.advance_logical_layer(&LayerRequirement::none());
        assert!(!report.formed);
        assert_eq!(report.merged_layers, 10);
        assert_eq!(engine.stats().logical_layers, 0);
    }

    #[test]
    fn fusion_accounting_grows_with_layers() {
        let mut engine = ReshapeEngine::new(small_config(0.75, 11));
        engine.advance_logical_layer(&LayerRequirement::none());
        let after_one = engine.stats().fusions_attempted;
        engine.advance_logical_layer(&LayerRequirement::none());
        let after_two = engine.stats().fusions_attempted;
        assert!(after_one > 0);
        assert!(after_two > after_one);
    }

    #[test]
    #[should_panic(expected = "exceeds the RSL size")]
    fn oversized_target_panics() {
        let hw = HardwareConfig::new(20, 7, 0.75);
        let _ = ReshapeConfig::new(hw, 12, 3, 0);
    }

    #[test]
    fn pipelined_stream_is_byte_identical_to_serial() {
        let config = small_config(0.75, 13);
        let mut serial = ReshapeEngine::new(config);
        let mut piped = ReshapeEngine::new(config.with_pipelining(true));
        let req = LayerRequirement {
            temporal_edges: vec![TemporalRequirement { coord: (1, 1), back_distance: 1 }],
            stores: 1,
            retrieves: 0,
        };
        for step in 0..6 {
            let a = serial.advance_logical_layer(&req);
            let b = piped.advance_logical_layer(&req);
            assert_eq!(a, b, "report diverged at logical layer {step}");
            assert_eq!(
                serial.last_logical_lattice(),
                piped.last_logical_lattice(),
                "lattice diverged at logical layer {step}"
            );
        }
        assert_eq!(serial.stats(), piped.stats());
    }

    #[test]
    fn pipelined_engine_drops_cleanly_with_prefetched_layer() {
        // The generator runs one layer ahead; dropping the engine while a
        // prefetched layer is still queued must join the thread, not hang.
        let mut engine = ReshapeEngine::new(small_config(0.85, 3).with_pipelining(true));
        let report = engine.advance_logical_layer(&LayerRequirement::none());
        assert!(report.formed);
        drop(engine);
    }

    /// Drives an engine through `logical` layers and returns the final
    /// stats plus every formed lattice.
    fn drive(
        engine: &mut ReshapeEngine,
        logical: usize,
    ) -> (ReshapeStats, Vec<Option<RenormalizedLattice>>) {
        let req = LayerRequirement {
            temporal_edges: vec![TemporalRequirement { coord: (1, 1), back_distance: 1 }],
            stores: 1,
            retrieves: 0,
        };
        let lattices = (0..logical)
            .map(|_| {
                let report = engine.advance_logical_layer(&req);
                assert!(report.formed);
                engine.last_logical_lattice().cloned()
            })
            .collect();
        (*engine.stats(), lattices)
    }

    #[test]
    fn warm_reset_matches_cold_engine() {
        for pipelined in [false, true] {
            for workers in [0usize, 2] {
                let config = small_config(0.75, 3)
                    .with_pipelining(pipelined)
                    .with_renorm_workers(workers);
                let mut warm = ReshapeEngine::new(config);
                // Dirty the warm engine with a different-seed run first.
                let _ = drive(&mut warm, 3);
                warm.reset(91);
                assert_eq!(warm.config().seed, 91);
                let mut cold = ReshapeEngine::new(config.with_seed(91));
                let a = drive(&mut warm, 5);
                let b = drive(&mut cold, 5);
                assert_eq!(a, b, "pipelined={pipelined} workers={workers}");
            }
        }
    }

    #[test]
    fn repeated_resets_reproduce_the_same_run() {
        let config = small_config(0.72, 17).with_pipelining(true);
        let mut engine = ReshapeEngine::new(config);
        engine.reset(55);
        let first = drive(&mut engine, 4);
        for _ in 0..3 {
            engine.reset(55);
            assert_eq!(drive(&mut engine, 4), first);
        }
    }

    #[test]
    fn pooled_renormalization_is_byte_identical_to_local() {
        let base = small_config(0.75, 29);
        let mut local = ReshapeEngine::new(base);
        let expected = drive(&mut local, 5);
        // 1 worker, several, and oversubscribed; plus pipelined generation
        // on top — all must match the in-thread lattices exactly.
        for workers in [1usize, 2, 5] {
            let mut pooled = ReshapeEngine::new(base.with_renorm_workers(workers));
            assert_eq!(pooled.own_pool_workers(), Some(workers));
            assert_eq!(drive(&mut pooled, 5), expected, "workers = {workers}");
            let mut both =
                ReshapeEngine::new(base.with_renorm_workers(workers).with_pipelining(true));
            assert_eq!(drive(&mut both, 5), expected, "workers = {workers} + pipeline");
        }
    }

    #[test]
    fn engines_sharing_one_pool_match_private_engines() {
        // Two engines with different seeds stream through one shared pool
        // concurrently; each must reproduce its private-engine run.
        let pool = WorkerPool::new(2);
        let config_a = small_config(0.78, 101);
        let config_b = small_config(0.78, 202);
        let mut shared_a = ReshapeEngine::with_renorm_client(config_a, pool.client());
        let mut shared_b = ReshapeEngine::with_renorm_client(config_b, pool.client());
        assert_eq!(shared_a.own_pool_workers(), None);
        let (got_a, got_b) = std::thread::scope(|scope| {
            let a = scope.spawn(|| drive(&mut shared_a, 4));
            let b = scope.spawn(|| drive(&mut shared_b, 4));
            (a.join().unwrap(), b.join().unwrap())
        });
        assert_eq!(got_a, drive(&mut ReshapeEngine::new(config_a), 4));
        assert_eq!(got_b, drive(&mut ReshapeEngine::new(config_b), 4));
    }

    #[test]
    fn fusion_totals_count_consumed_layers_and_timelike_draws() {
        // Prefetched-but-unconsumed layers must not inflate the totals: a
        // pipelined engine that consumed k layers reports exactly the same
        // attempt count as a serial engine that consumed k layers.
        let config = small_config(0.72, 19);
        let mut serial = ReshapeEngine::new(config);
        let mut piped = ReshapeEngine::new(config.with_pipelining(true));
        for _ in 0..4 {
            serial.advance_logical_layer(&LayerRequirement::none());
            piped.advance_logical_layer(&LayerRequirement::none());
        }
        assert_eq!(serial.stats().fusions_attempted, piped.stats().fusions_attempted);
        assert_eq!(serial.stats().fusions_succeeded, piped.stats().fusions_succeeded);
        assert!(serial.stats().fusions_attempted > 0);
    }
}
