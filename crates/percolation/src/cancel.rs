//! [`CancelToken`]: cooperative cancellation for in-flight online passes.
//!
//! The online pass is a long stream of merged-layer steps; a service
//! shedding load under overload (a dropped job future, an explicit
//! cancellation) needs a way to stop an execution *between* those steps
//! without tearing down the lane that runs it. `CancelToken` is that
//! signal: a shared atomic flag the submitter side flips and the engine
//! side polls at its layer checkpoints
//! ([`ReshapeEngine::advance_logical_layer_cancellable`](crate::ReshapeEngine::advance_logical_layer_cancellable)
//! checks it before consuming each merged layer).
//!
//! Cancellation is strictly cooperative and monotone: once cancelled, a
//! token stays cancelled, and an engine that never observes the flag (the
//! run finished first) is wholly unaffected — determinism of completed
//! runs is untouched.

use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::Arc;

/// A shared, clonable cancellation flag.
///
/// Clones observe the same flag: cancelling any clone cancels them all.
/// The default token is live (not cancelled).
///
/// # Example
///
/// ```
/// use oneperc_percolation::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a live (not cancelled) token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Flips the flag; every clone observes it. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// Exhaustive interleaving checks (see `CONCURRENCY.md`). Run with
/// `RUSTFLAGS="--cfg oneperc_model" cargo test -p oneperc-percolation model_`.
#[cfg(all(test, oneperc_model))]
mod model_tests {
    use super::*;
    use crate::sync::thread;

    /// A cancel on one thread is visible to every clone once the
    /// canceller has been joined — pins the Release/Acquire pairing on
    /// the shared flag under every interleaving.
    #[test]
    fn model_cancel_is_visible_after_join() {
        let report = oneperc_verify::model(|| {
            let token = CancelToken::new();
            let canceller = token.clone();
            let handle = thread::spawn(move || canceller.cancel());
            handle.join().unwrap();
            assert!(token.is_cancelled());
        });
        assert!(report.complete, "exploration must be exhaustive");
    }

    /// Two racing cancellers and a racing observer: cancellation is
    /// idempotent and monotone (a thread that cancelled observes the
    /// flag set immediately), whatever the schedule.
    #[test]
    fn model_concurrent_cancels_are_idempotent() {
        let report = oneperc_verify::model(|| {
            let token = CancelToken::new();
            let a = token.clone();
            let b = token.clone();
            let first = thread::spawn(move || a.cancel());
            let second = thread::spawn(move || {
                b.cancel();
                b.is_cancelled()
            });
            first.join().unwrap();
            assert!(second.join().unwrap(), "own cancel must be visible");
            assert!(token.is_cancelled());
        });
        assert!(report.complete, "exploration must be exhaustive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        // Idempotent.
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled());
    }

    #[test]
    fn observable_across_threads() {
        let token = CancelToken::new();
        let observer = token.clone();
        let handle = std::thread::spawn(move || {
            while !observer.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(handle.join().unwrap());
    }
}
