//! [`CancelToken`]: cooperative cancellation for in-flight online passes.
//!
//! The online pass is a long stream of merged-layer steps; a service
//! shedding load under overload (a dropped job future, an explicit
//! cancellation) needs a way to stop an execution *between* those steps
//! without tearing down the lane that runs it. `CancelToken` is that
//! signal: a shared atomic flag the submitter side flips and the engine
//! side polls at its layer checkpoints
//! ([`ReshapeEngine::advance_logical_layer_cancellable`](crate::ReshapeEngine::advance_logical_layer_cancellable)
//! checks it before consuming each merged layer).
//!
//! Cancellation is strictly cooperative and monotone: once cancelled, a
//! token stays cancelled, and an engine that never observes the flag (the
//! run finished first) is wholly unaffected — determinism of completed
//! runs is untouched.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, clonable cancellation flag.
///
/// Clones observe the same flag: cancelling any clone cancels them all.
/// The default token is live (not cancelled).
///
/// # Example
///
/// ```
/// use oneperc_percolation::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a live (not cancelled) token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Flips the flag; every clone observes it. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        // Idempotent.
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled());
    }

    #[test]
    fn observable_across_threads() {
        let token = CancelToken::new();
        let observer = token.clone();
        let handle = std::thread::spawn(move || {
            while !observer.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(handle.join().unwrap());
    }
}
