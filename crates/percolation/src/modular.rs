//! Modular 2D renormalization (Fig. 10 of the paper).
//!
//! To keep the real-time latency of the online pass within the photon
//! lifetime, the RSL is split into `g × g` modules of side `L_module`
//! separated by joining intervals of width `L_interval` (the *MI ratio* is
//! `L_module / L_interval`). Modules are renormalized independently — in
//! this implementation on a persistent [`WorkerPool`] whose workers each
//! own their flat-grid scratch, amortizing thread startup across the whole
//! RSL stream — and then joined by searching connecting paths across the
//! intervals. An entire coarse row or column of the joined lattice only
//! survives if every inter-module joining path along it is found, which is
//! the resource overhead studied in Fig. 13(c).

use crate::sync::Arc;

use graphstate::DisjointSet;
use oneperc_hardware::PhysicalLayer;

use crate::pool::{ModuleRegion, WorkerPool};
use crate::renormalize::{RenormalizedLattice, Renormalizer};

/// Configuration of the modular renormalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModularConfig {
    /// Modules per side (`g`); the layer is split into `g²` modules.
    pub modules_per_side: usize,
    /// MI ratio `L_module / L_interval`.
    pub mi_ratio: usize,
    /// Average coarse node size inside each module.
    pub node_size: usize,
    /// Process modules on the persistent worker pool.
    pub parallel: bool,
    /// Worker threads of the pool (`0` = one per available core, capped at
    /// one per module). Ignored when `parallel` is off.
    pub workers: usize,
}

impl ModularConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics when any parameter is zero.
    pub fn new(modules_per_side: usize, mi_ratio: usize, node_size: usize) -> Self {
        assert!(modules_per_side > 0, "need at least one module per side");
        assert!(mi_ratio > 0, "MI ratio must be positive");
        assert!(node_size > 0, "node size must be positive");
        ModularConfig {
            modules_per_side,
            mi_ratio,
            node_size,
            parallel: true,
            workers: 0,
        }
    }

    /// Disables thread-level parallelism (useful for deterministic timing
    /// comparisons).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Sets an explicit worker-pool size (`0` = auto). Any count is valid —
    /// results are independent of the worker count, including a single
    /// worker and pools oversubscribed beyond the module count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The pool size this configuration resolves to for `g²` modules.
    fn resolved_workers(&self) -> usize {
        let modules = self.modules_per_side * self.modules_per_side;
        if self.workers > 0 {
            self.workers
        } else {
            let cores = crate::sync::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            cores.min(modules).max(1)
        }
    }

    /// Splits a layer side of `total` sites into the module length and
    /// interval length implied by this configuration:
    /// `g·L_module + (g-1)·L_interval ≤ total` with
    /// `L_module = mi_ratio · L_interval`.
    ///
    /// When the side is too small to afford even a one-site joining
    /// interval at the requested MI ratio (`total < g·mi_ratio + g − 1`),
    /// the layout degrades to `g` equal modules with no interval — modules
    /// touch and the joining step has nothing to check. Only a side smaller
    /// than `g` itself can still overflow (`module_len` is clamped to 1);
    /// consumers clamp such regions to the layer, leaving trailing modules
    /// empty.
    pub fn layout(&self, total: usize) -> ModuleLayout {
        let g = self.modules_per_side;
        if g == 1 {
            return ModuleLayout { module_len: total, interval_len: 0 };
        }
        // total ≈ g·r·L_i + (g-1)·L_i  =>  L_i = total / (g·r + g - 1)
        let denom = g * self.mi_ratio + (g - 1);
        if total >= denom {
            let interval_len = total / denom;
            let module_len = self.mi_ratio * interval_len;
            return ModuleLayout { module_len, interval_len };
        }
        ModuleLayout { module_len: (total / g).max(1), interval_len: 0 }
    }
}

/// Result of [`ModularConfig::layout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleLayout {
    /// Side length of each module in physical sites.
    pub module_len: usize,
    /// Width of the joining interval in physical sites.
    pub interval_len: usize,
}

/// Per-module renormalization plus inter-module joining.
///
/// The renormalizer owns its working state: a host-side [`Renormalizer`]
/// for sequential module runs and the joining union-find, plus a lazily
/// created persistent [`WorkerPool`] for the parallel path. Keep one
/// `ModularRenormalizer` alive across an RSL stream — the pool threads and
/// every worker's scratch memory are reused for all subsequent layers.
#[derive(Debug)]
pub struct ModularRenormalizer {
    config: ModularConfig,
    /// Host-side renormalizer: sequential module runs and the joining
    /// union-find.
    host: Renormalizer,
    /// Persistent module workers, created on the first parallel run.
    pool: Option<WorkerPool>,
}

impl Clone for ModularRenormalizer {
    /// Clones the configuration; the clone lazily builds its own worker
    /// pool and scratch memory (working state is never shared).
    fn clone(&self) -> Self {
        ModularRenormalizer::new(self.config)
    }
}

/// Summary of a modular renormalization run.
#[derive(Debug, Clone, PartialEq)]
pub struct ModularOutcome {
    /// The per-module lattices in row-major module order.
    pub modules: Vec<RenormalizedLattice>,
    /// Coarse nodes surviving after joining (a module's nodes count only if
    /// the joining paths of its coarse rows/columns were found).
    pub joined_nodes: usize,
    /// Coarse nodes found inside modules before joining.
    pub module_nodes: usize,
    /// Number of inter-module joining paths attempted.
    pub joins_attempted: usize,
    /// Number of inter-module joining paths found.
    pub joins_found: usize,
}

impl ModularOutcome {
    /// Fraction of module nodes surviving the joining step.
    pub fn joining_efficiency(&self) -> f64 {
        if self.module_nodes == 0 {
            0.0
        } else {
            self.joined_nodes as f64 / self.module_nodes as f64
        }
    }
}

impl ModularRenormalizer {
    /// Creates a modular renormalizer.
    pub fn new(config: ModularConfig) -> Self {
        ModularRenormalizer { config, host: Renormalizer::new(), pool: None }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ModularConfig {
        &self.config
    }

    /// Runs the modular renormalization on a layer.
    ///
    /// On the parallel path the layer must be shared with the pool workers,
    /// so this convenience wrapper clones it into an [`Arc`] first; callers
    /// streaming layers should hold them in `Arc`s and call
    /// [`ModularRenormalizer::run_shared`] to skip the copy.
    pub fn run(&mut self, layer: &PhysicalLayer) -> ModularOutcome {
        if self.use_pool() {
            self.run_shared(&Arc::new(layer.clone()))
        } else {
            self.run_local(layer)
        }
    }

    /// Runs the modular renormalization on a shared layer without copying
    /// it. This is the streaming entry point: the pool holds its `Arc`
    /// clones only for the duration of the batch, so the caller regains
    /// sole ownership of the allocation when the call returns.
    pub fn run_shared(&mut self, layer: &Arc<PhysicalLayer>) -> ModularOutcome {
        if !self.use_pool() {
            return self.run_local(layer);
        }
        let geometry = Geometry::of(&self.config, layer);
        // The worker count is resolved once, when the pool is first built:
        // the configuration cannot change under a live renormalizer, and
        // re-querying core availability per layer would put a syscall on
        // the latency-critical stream.
        let pool = match &mut self.pool {
            Some(pool) => pool,
            slot => slot.insert(WorkerPool::new(self.config.resolved_workers())),
        };
        let modules = pool.renormalize_modules(layer, &geometry.regions, geometry.node_size);
        self.join(layer, modules, &geometry)
    }

    /// Whether the next run goes through the worker pool.
    fn use_pool(&self) -> bool {
        self.config.parallel && self.config.modules_per_side > 1
    }

    /// Sequential path: every module is renormalized on the host scratch.
    fn run_local(&mut self, layer: &PhysicalLayer) -> ModularOutcome {
        let geometry = Geometry::of(&self.config, layer);
        let modules: Vec<RenormalizedLattice> = geometry
            .regions
            .iter()
            .map(|r| {
                self.host.renormalize_region(
                    layer,
                    r.origin,
                    r.width,
                    r.height,
                    geometry.node_size,
                )
            })
            .collect();
        self.join(layer, modules, &geometry)
    }

    /// Joining step shared by the sequential and pooled paths: for every
    /// pair of horizontally adjacent modules, each coarse row must be
    /// connected across the interval; for vertically adjacent modules, each
    /// coarse column. We check connectivity of the interval strip between
    /// the two facing module edges with a union-find restricted to the
    /// strip (plus one site of each module edge), which mirrors the paper's
    /// connected-path joining. A word-scan precheck over the packed site
    /// bitmap rejects strips with an empty column/row between the endpoints
    /// before any union-find work; surviving strips feed the word-parallel
    /// [`DisjointSet::reset`] path, and the union-find comes from the host
    /// scratch pool and is reset — not reallocated — per join.
    fn join(
        &mut self,
        layer: &PhysicalLayer,
        modules: Vec<RenormalizedLattice>,
        geometry: &Geometry,
    ) -> ModularOutcome {
        let g = self.config.modules_per_side;
        let Geometry { layout, stride, .. } = *geometry;
        let module_nodes: usize = modules.iter().map(RenormalizedLattice::node_count).sum();

        let mut joins_attempted = 0usize;
        let mut joins_found = 0usize;
        let k = modules.first().map_or(0, |m| m.target_side());
        let mut row_ok = vec![true; g * k];
        let mut col_ok = vec![true; g * k];
        let dsu = &mut self.host.scratch_mut().dsu;

        if g > 1 && layout.interval_len > 0 && k > 0 {
            for gy in 0..g {
                for gx in 0..g {
                    let m_idx = gy * g + gx;
                    // Join to the east neighbor.
                    if gx + 1 < g {
                        for row in 0..k {
                            joins_attempted += 1;
                            let ok = Self::join_across(
                                layer,
                                &modules[m_idx],
                                &modules[m_idx + 1],
                                (gx * stride, gy * stride),
                                ((gx + 1) * stride, gy * stride),
                                layout,
                                row,
                                true,
                                dsu,
                            );
                            if ok {
                                joins_found += 1;
                            } else {
                                row_ok[gy * k + row] = false;
                            }
                        }
                    }
                    // Join to the north neighbor.
                    if gy + 1 < g {
                        for col in 0..k {
                            joins_attempted += 1;
                            let ok = Self::join_across(
                                layer,
                                &modules[m_idx],
                                &modules[m_idx + g],
                                (gx * stride, gy * stride),
                                (gx * stride, (gy + 1) * stride),
                                layout,
                                col,
                                false,
                                dsu,
                            );
                            if ok {
                                joins_found += 1;
                            } else {
                                col_ok[gx * k + col] = false;
                            }
                        }
                    }
                }
            }
        }

        // A coarse node survives if its module realized it and both its
        // global coarse row and column kept all their joining paths.
        let mut joined_nodes = 0usize;
        for gy in 0..g {
            for gx in 0..g {
                let m = &modules[gy * g + gx];
                for i in 0..m.target_side() {
                    for j in 0..m.target_side() {
                        if m.node_flat(i, j).is_none() {
                            continue;
                        }
                        let global_row_ok = g == 1 || row_ok.get(gy * k + j).copied().unwrap_or(true);
                        let global_col_ok = g == 1 || col_ok.get(gx * k + i).copied().unwrap_or(true);
                        if global_row_ok && global_col_ok {
                            joined_nodes += 1;
                        }
                    }
                }
            }
        }

        ModularOutcome {
            modules,
            joined_nodes,
            module_nodes,
            joins_attempted,
            joins_found,
        }
    }

    /// Checks whether a connected path exists across the interval between
    /// two adjacent modules for one coarse row (horizontal join) or column
    /// (vertical join), linking the corresponding path endpoints.
    #[allow(clippy::too_many_arguments)]
    fn join_across(
        layer: &PhysicalLayer,
        from: &RenormalizedLattice,
        to: &RenormalizedLattice,
        from_origin: (usize, usize),
        to_origin: (usize, usize),
        layout: ModuleLayout,
        lane: usize,
        horizontal: bool,
        dsu: &mut DisjointSet,
    ) -> bool {
        // Endpoints: the end of `from`'s lane path facing the interval and
        // the start of `to`'s lane path on the other side.
        let from_path = if horizontal { from.h_path(lane) } else { from.v_path(lane) };
        let to_path = if horizontal { to.h_path(lane) } else { to.v_path(lane) };
        let (Some(from_path), Some(to_path)) = (from_path, to_path) else {
            return false;
        };
        let Some(&start) = from_path.last() else { return false };
        let Some(&goal) = to_path.first() else { return false };
        let start = from.site_coords(start);
        let goal = to.site_coords(goal);

        // Strip region covering the interval plus one site on either side.
        let (sx_lo, sx_hi, sy_lo, sy_hi) = if horizontal {
            (
                from_origin.0 + layout.module_len.saturating_sub(1),
                to_origin.0 + 1,
                from_origin.1 + lane * from.node_size(),
                from_origin.1 + (lane + 1) * from.node_size(),
            )
        } else {
            (
                from_origin.0 + lane * from.node_size(),
                from_origin.0 + (lane + 1) * from.node_size(),
                from_origin.1 + layout.module_len.saturating_sub(1),
                to_origin.1 + 1,
            )
        };
        // Strip clamps hoisted once; the closure only validates the two
        // path endpoints, so it no longer re-derives them per call.
        let x_hi_c = sx_hi.min(layer.width - 1);
        let y_hi_c = sy_hi.min(layer.height - 1);
        let lw = layer.width;
        let allowed = |x: usize, y: usize| -> bool {
            (sx_lo..=x_hi_c).contains(&x)
                && (sy_lo..=y_hi_c).contains(&y)
                && layer.site_present(x, y)
        };
        if !allowed(start.0, start.1) || !allowed(goal.0, goal.1) {
            return false;
        }

        // Word-scan precheck on the packed site plane: a 4-connected
        // crossing path visits every column (horizontal join) / every row
        // (vertical join) between its endpoints, so a strip missing all
        // present sites in one of them cannot connect. Checking that is a
        // handful of `u64` OR/compare steps over the site words — far
        // cheaper than seeding the union-find — and skips the whole scan
        // for hopeless lanes.
        let bits = layer.site_bits();
        if horizontal {
            let (span_lo, span_hi) = (start.0.min(goal.0), start.0.max(goal.0));
            let mut x0 = span_lo;
            while x0 <= span_hi {
                let x1 = (x0 + 64).min(span_hi + 1);
                let full = if x1 - x0 == 64 { u64::MAX } else { (1u64 << (x1 - x0)) - 1 };
                let mut cover = 0u64;
                for y in sy_lo..=y_hi_c {
                    cover |= bits.word_at(y * lw + x0) & full;
                    if cover == full {
                        break;
                    }
                }
                if cover != full {
                    return false;
                }
                x0 = x1;
            }
        } else {
            let (span_lo, span_hi) = (start.1.min(goal.1), start.1.max(goal.1));
            for y in span_lo..=span_hi {
                let row = y * lw;
                // The strip width (node_size + 1) can exceed one word, so
                // scan it in 64-bit chunks until a present site shows up.
                let mut any = false;
                let mut x0 = sx_lo;
                while x0 <= x_hi_c {
                    let x1 = (x0 + 64).min(x_hi_c + 1);
                    let m = if x1 - x0 == 64 { u64::MAX } else { (1u64 << (x1 - x0)) - 1 };
                    if bits.word_at(row + x0) & m != 0 {
                        any = true;
                        break;
                    }
                    x0 = x1;
                }
                if !any {
                    return false;
                }
            }
        }

        // Span union-find over the strip, straight off the packed planes.
        // Per row word, `present & bond_east & (present >> 1)` marks every
        // east bond whose both endpoints are present; each maximal run of
        // those bits is a chain of `len + 1` consecutive connected sites,
        // united with a single `union_range` call instead of per-site
        // pairwise unions. Vertical bonds contribute one union per set bit
        // of the inter-row AND word. The resulting partition is identical
        // to the historical per-site scan (union order does not affect the
        // final sets), only the number of union calls shrinks.
        let w = x_hi_c - sx_lo + 1;
        let h = y_hi_c - sy_lo + 1;
        let local = |x: usize, y: usize| (y - sy_lo) * w + (x - sx_lo);
        dsu.reset(w * h);
        let be = layer.bond_east_bits();
        let bn = layer.bond_north_bits();
        for ry in 0..h {
            let row = (sy_lo + ry) * lw;
            let row_local = ry * w;
            let mut x0 = 0usize;
            while x0 < w {
                let take = (w - x0).min(64);
                let mask = if take == 64 { u64::MAX } else { (1u64 << take) - 1 };
                let lo = row + sx_lo + x0;
                let p = bits.word_at(lo) & mask;
                if p != 0 {
                    // A run ending at bit 63 continues into the next
                    // chunk's first site: seeding `present >> 1`'s top bit
                    // from that site makes `union_range` cover it too, and
                    // transitivity links it to the next chunk's own runs.
                    let seam = if x0 + 64 < w { bits.word_at(lo + 64) & 1 } else { 0 };
                    let mut conn = p & ((p >> 1) | (seam << 63)) & be.word_at(lo);
                    while conn != 0 {
                        let start = conn.trailing_zeros() as usize;
                        let ones = (!(conn >> start)).trailing_zeros() as usize;
                        dsu.union_range(row_local + x0 + start, ones + 1);
                        if start + ones >= 64 {
                            break;
                        }
                        conn &= u64::MAX << (start + ones);
                    }
                    if ry + 1 < h {
                        let mut v = p & bn.word_at(lo) & bits.word_at(lo + lw);
                        while v != 0 {
                            let b = v.trailing_zeros() as usize;
                            dsu.union(row_local + x0 + b, row_local + x0 + b + w);
                            v &= v - 1;
                        }
                    }
                }
                x0 += 64;
            }
        }
        dsu.same_set(local(start.0, start.1), local(goal.0, goal.1))
    }
}

/// The per-layer module geometry shared by both execution paths.
struct Geometry {
    layout: ModuleLayout,
    stride: usize,
    node_size: usize,
    /// Module regions in row-major module order, clamped to the layer.
    regions: Vec<ModuleRegion>,
}

impl Geometry {
    fn of(config: &ModularConfig, layer: &PhysicalLayer) -> Self {
        let g = config.modules_per_side;
        let layout = config.layout(layer.width.min(layer.height));
        let stride = layout.module_len + layout.interval_len;
        let node_size = config.node_size.min(layout.module_len.max(1));
        let regions = (0..g)
            .flat_map(|gy| (0..g).map(move |gx| (gx * stride, gy * stride)))
            .map(|(ox, oy)| ModuleRegion {
                origin: (ox, oy),
                width: layout.module_len.min(layer.width.saturating_sub(ox)),
                height: layout.module_len.min(layer.height.saturating_sub(oy)),
            })
            .collect();
        Geometry { layout, stride, node_size, regions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneperc_hardware::{FusionEngine, HardwareConfig};

    #[test]
    fn layout_respects_mi_ratio() {
        let cfg = ModularConfig::new(4, 7, 6);
        let layout = cfg.layout(200);
        assert_eq!(layout.module_len, 7 * layout.interval_len);
        assert!(4 * layout.module_len + 3 * layout.interval_len <= 200);
        let single = ModularConfig::new(1, 7, 6).layout(100);
        assert_eq!(single.module_len, 100);
        assert_eq!(single.interval_len, 0);
    }

    #[test]
    fn layout_single_module_keeps_whole_side() {
        // g = 1 never carves an interval, whatever the MI ratio.
        for total in [1usize, 5, 17, 240] {
            let layout = ModularConfig::new(1, 1, 3).layout(total);
            assert_eq!(layout, ModuleLayout { module_len: total, interval_len: 0 });
        }
    }

    #[test]
    fn layout_mi_ratio_one_fits() {
        // r = 1: modules and intervals are the same width.
        let cfg = ModularConfig::new(2, 1, 2);
        let layout = cfg.layout(20);
        assert_eq!(layout.module_len, layout.interval_len);
        assert!(2 * layout.module_len + layout.interval_len <= 20);
        assert!(layout.interval_len >= 1);
    }

    #[test]
    fn layout_degrades_gracefully_below_denominator() {
        // total < g·r + g − 1: no room for a joining interval; the layout
        // must still fit g modules in the side instead of overflowing it.
        let cfg = ModularConfig::new(3, 7, 4); // denom = 23
        for total in 3..23usize {
            let layout = cfg.layout(total);
            assert_eq!(layout.interval_len, 0, "total {total}");
            assert!(
                3 * layout.module_len <= total,
                "total {total}: 3 × {} overflows",
                layout.module_len
            );
            assert!(layout.module_len >= 1);
        }
    }

    #[test]
    fn layout_never_overflows_when_side_fits_modules() {
        // Sweep: whenever the side has at least one site per module, the
        // laid-out grid fits inside it.
        for g in 1..=5usize {
            for r in 1..=8usize {
                for total in g..=64usize {
                    let layout = ModularConfig::new(g, r, 2).layout(total);
                    let used = g * layout.module_len + (g - 1) * layout.interval_len;
                    assert!(
                        used <= total,
                        "g {g} r {r} total {total}: grid uses {used}"
                    );
                }
            }
        }
    }

    #[test]
    fn tiny_layer_runs_without_panicking() {
        // A layer far below the layout denominator still renormalizes; the
        // degenerate layout just yields adjacent modules.
        let layer = PhysicalLayer::fully_connected(7, 7);
        let mut renorm = ModularRenormalizer::new(ModularConfig::new(3, 7, 2).sequential());
        let outcome = renorm.run(&layer);
        assert_eq!(outcome.joins_attempted, 0, "no interval, nothing to join");
        assert_eq!(outcome.joined_nodes, outcome.module_nodes);
    }

    #[test]
    fn fully_connected_layer_joins_everything() {
        let layer = PhysicalLayer::fully_connected(60, 60);
        let cfg = ModularConfig::new(2, 7, 6).sequential();
        let outcome = ModularRenormalizer::new(cfg).run(&layer);
        assert_eq!(outcome.module_nodes, outcome.joined_nodes);
        assert!(outcome.module_nodes > 0);
        assert_eq!(outcome.joins_attempted, outcome.joins_found);
        assert!((outcome.joining_efficiency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pooled_and_sequential_agree() {
        let mut engine = FusionEngine::new(HardwareConfig::new(60, 7, 0.75), 23);
        let layer = engine.generate_layer();
        let cfg_seq = ModularConfig::new(2, 7, 6).sequential();
        let b = ModularRenormalizer::new(cfg_seq).run(&layer);
        // Pool sizes from a single worker to oversubscribed (workers >
        // modules) all match the sequential outcome exactly.
        for workers in [1usize, 2, 4, 9] {
            let cfg_par = ModularConfig::new(2, 7, 6).with_workers(workers);
            let a = ModularRenormalizer::new(cfg_par).run(&layer);
            assert_eq!(a, b, "workers = {workers}");
        }
    }

    #[test]
    fn pooled_renormalizer_streams_many_layers() {
        // One renormalizer (and its pool) across a stream of layers gives
        // the same answers as a fresh sequential renormalizer per layer.
        let cfg = ModularConfig::new(2, 7, 6).with_workers(2);
        let mut streaming = ModularRenormalizer::new(cfg);
        let mut engine = FusionEngine::new(HardwareConfig::new(48, 7, 0.75), 40);
        for _ in 0..8 {
            let layer = std::sync::Arc::new(engine.generate_layer());
            let pooled = streaming.run_shared(&layer);
            let serial = ModularRenormalizer::new(cfg.sequential()).run(&layer);
            assert_eq!(pooled, serial);
        }
    }

    #[test]
    fn modular_overhead_is_bounded() {
        // Fig. 13(c): the modular approach recovers a large fraction of the
        // nodes the non-modular approach finds.
        let mut engine = FusionEngine::new(HardwareConfig::new(72, 7, 0.75), 3);
        let layer = engine.generate_layer();
        let non_modular = crate::renormalize(&layer, 6);
        let modular =
            ModularRenormalizer::new(ModularConfig::new(3, 7, 6).sequential()).run(&layer);
        assert!(modular.joined_nodes > 0);
        // The modular result cannot beat the non-modular total but should
        // stay within the same order of magnitude.
        assert!(modular.joined_nodes as f64 >= 0.2 * non_modular.node_count() as f64);
    }

    #[test]
    fn wide_node_size_strips_join_without_panicking() {
        // node_size >= 64 makes the joining strip wider than one storage
        // word in the vertical direction; the site-bitmap precheck must
        // chunk its row scans (regression: PR-5 review caught an unchunked
        // range_word panicking at 'bit range wider than one word').
        let layer = PhysicalLayer::fully_connected(154, 154);
        let cfg = ModularConfig::new(2, 5, 65).sequential();
        let outcome = ModularRenormalizer::new(cfg).run(&layer);
        assert!(outcome.joins_attempted > 0, "wide strips must be checked");
        assert_eq!(outcome.joins_attempted, outcome.joins_found);
        assert_eq!(outcome.module_nodes, outcome.joined_nodes);

        // A blank layer through the same wide-strip geometry exercises the
        // no-present-site early-out of the chunked precheck.
        let blank = PhysicalLayer::blank(154, 154);
        let nothing = ModularRenormalizer::new(cfg).run(&blank);
        assert_eq!(nothing.joined_nodes, 0);
    }

    #[test]
    fn blank_layer_yields_nothing() {
        let layer = PhysicalLayer::blank(40, 40);
        let outcome =
            ModularRenormalizer::new(ModularConfig::new(2, 4, 5).sequential()).run(&layer);
        assert_eq!(outcome.module_nodes, 0);
        assert_eq!(outcome.joined_nodes, 0);
        assert_eq!(outcome.joining_efficiency(), 0.0);
    }

    #[test]
    fn clone_starts_with_fresh_working_state() {
        let mut original = ModularRenormalizer::new(ModularConfig::new(2, 7, 6).with_workers(2));
        let layer = PhysicalLayer::fully_connected(30, 30);
        let a = original.run(&layer);
        let mut cloned = original.clone();
        assert_eq!(cloned.config(), original.config());
        let b = cloned.run(&layer);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "MI ratio")]
    fn zero_mi_ratio_panics() {
        let _ = ModularConfig::new(2, 0, 4);
    }
}
