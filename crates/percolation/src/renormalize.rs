//! 2D renormalization of a single resource-state layer (Section 5.1),
//! implemented on the flat site grid.
//!
//! The largest connected component of the random physical graph state is
//! reshaped into a coarse-grained `k × k` square lattice by searching `k`
//! vertical paths (top to bottom) and `k` horizontal paths (left to right).
//! Every path is confined to its own band of width `node_size`, which keeps
//! distinct same-orientation paths separated and guarantees (by planarity)
//! that a vertical and a horizontal path that both exist intersect inside
//! their common block; the intersection site becomes the renormalized node.
//!
//! All state is dense: sites are flat `u32` indices (`y * width + x`), the
//! band-restricted BFS runs over epoch-stamped scratch arrays from a
//! [`ScratchPool`](crate::ScratchPool), and path-intersection tests are
//! stamp lookups instead of hash-set probes. The BFS itself doubles as the
//! connectivity check (an exhausted frontier *is* the proof that the band
//! does not percolate), so no per-band union-find is built. Since the
//! PR-5 bit-packed layer, frontier seeding scans the packed site words
//! (64 sites per step; see the word-layout convention in
//! `oneperc_hardware::layer`) instead of one boolean per site.

use oneperc_hardware::PhysicalLayer;

use crate::scratch::{ScratchPool, NO_SITE};

/// The outcome of renormalizing one RSL.
///
/// Sites are stored as flat `u32` indices into the layer
/// (`y * layer_width + x`); [`RenormalizedLattice::site_coords`] decodes
/// them back to coordinates.
///
/// Equality compares every field — target geometry, node representatives
/// and full path contents — so `a == b` is the byte-identity check used by
/// the pipelined-vs-serial determinism suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenormalizedLattice {
    target_side: usize,
    node_size: usize,
    /// Width of the layer the lattice was extracted from (for decoding flat
    /// site indices).
    layer_width: usize,
    /// Representative physical site of coarse node `(i, j)` at slot
    /// `i * target_side + j`, or [`u32::MAX`] when the node was not
    /// realized.
    nodes: Vec<u32>,
    /// Vertical path (flat site indices) for each coarse column, when found.
    v_paths: Vec<Option<Vec<u32>>>,
    /// Horizontal path for each coarse row, when found.
    h_paths: Vec<Option<Vec<u32>>>,
}

impl RenormalizedLattice {
    /// The requested coarse lattice side `k`.
    pub fn target_side(&self) -> usize {
        self.target_side
    }

    /// The average node size `n` used for the band decomposition.
    pub fn node_size(&self) -> usize {
        self.node_size
    }

    /// Width of the layer this lattice was extracted from; flat site
    /// indices decode as `(idx % width, idx / width)`.
    pub fn layer_width(&self) -> usize {
        self.layer_width
    }

    /// Decodes a flat site index into `(x, y)` coordinates.
    #[inline]
    pub fn site_coords(&self, flat: u32) -> (usize, usize) {
        let w = self.layer_width;
        (flat as usize % w, flat as usize / w)
    }

    /// Returns `true` when every coarse node of the `k × k` target was
    /// realized.
    pub fn is_success(&self) -> bool {
        self.nodes.iter().all(|&s| s != NO_SITE)
    }

    /// Number of coarse nodes realized.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|&&s| s != NO_SITE).count()
    }

    /// Flat physical site of the coarse node `(i, j)`, if it was realized.
    pub fn node_flat(&self, i: usize, j: usize) -> Option<u32> {
        let s = *self.nodes.get(i * self.target_side + j)?;
        if s == NO_SITE {
            None
        } else {
            Some(s)
        }
    }

    /// Representative physical site of the coarse node `(i, j)` in
    /// coordinates, if it was realized.
    pub fn node_site(&self, i: usize, j: usize) -> Option<(usize, usize)> {
        self.node_flat(i, j).map(|s| self.site_coords(s))
    }

    /// The vertical path realizing coarse column `i` as flat site indices,
    /// if found.
    pub fn v_path(&self, i: usize) -> Option<&[u32]> {
        self.v_paths.get(i).and_then(|p| p.as_deref())
    }

    /// The horizontal path realizing coarse row `j` as flat site indices,
    /// if found.
    pub fn h_path(&self, j: usize) -> Option<&[u32]> {
        self.h_paths.get(j).and_then(|p| p.as_deref())
    }

    /// Iterator decoding a path returned by [`RenormalizedLattice::v_path`]
    /// or [`RenormalizedLattice::h_path`] into `(x, y)` coordinates.
    pub fn path_coords<'a>(
        &'a self,
        path: &'a [u32],
    ) -> impl Iterator<Item = (usize, usize)> + 'a {
        path.iter().map(move |&s| self.site_coords(s))
    }

    /// Number of vertical paths found.
    pub fn v_path_count(&self) -> usize {
        self.v_paths.iter().filter(|p| p.is_some()).count()
    }

    /// Number of horizontal paths found.
    pub fn h_path_count(&self) -> usize {
        self.h_paths.iter().filter(|p| p.is_some()).count()
    }

    /// Total physical sites consumed by the coarse structure (paths and
    /// nodes); the remaining qubits would be measured out in the `Z` basis.
    pub fn consumed_sites(&self) -> usize {
        let mut sites: Vec<u32> = self
            .v_paths
            .iter()
            .chain(self.h_paths.iter())
            .flatten()
            .flat_map(|p| p.iter().copied())
            .collect();
        sites.sort_unstable();
        sites.dedup();
        sites.len()
    }
}

/// Reusable renormalizer holding the scratch memory of the flat-grid
/// engine; use [`renormalize`] for one-off calls and keep one
/// `Renormalizer` alive when processing a stream of RSLs (as
/// [`crate::ReshapeEngine`] does) so the per-layer steady state allocates
/// only the output paths.
#[derive(Debug, Clone, Default)]
pub struct Renormalizer {
    scratch: ScratchPool,
}

/// Geometry of one band-restricted search, in flat-grid terms.
struct Band {
    /// Inclusive lower x bound.
    x_lo: usize,
    /// Exclusive upper x bound.
    x_hi: usize,
    /// Inclusive lower y bound.
    y_lo: usize,
    /// Exclusive upper y bound.
    y_hi: usize,
    /// `true` for a vertical (top-to-bottom) crossing.
    vertical: bool,
}

impl Renormalizer {
    /// Creates a renormalizer with an empty scratch pool.
    pub fn new() -> Self {
        Renormalizer::default()
    }

    /// Renormalizes an entire layer with the given average node size; see
    /// [`renormalize`] for the one-off convenience wrapper.
    ///
    /// # Panics
    ///
    /// Panics when `node_size` is zero or larger than the layer.
    pub fn renormalize(&mut self, layer: &PhysicalLayer, node_size: usize) -> RenormalizedLattice {
        assert!(
            node_size > 0 && node_size <= layer.width && node_size <= layer.height,
            "node size must be positive and fit in the layer"
        );
        self.renormalize_region(layer, (0, 0), layer.width, layer.height, node_size)
    }

    /// Renormalizes a sub-rectangle of the layer (used by the modular
    /// variant). `origin` is the top-left corner (x, y) of the region and
    /// `width`/`height` its extent; the coarse lattice targets
    /// `width / node_size` columns and `height / node_size` rows.
    pub fn renormalize_region(
        &mut self,
        layer: &PhysicalLayer,
        origin: (usize, usize),
        width: usize,
        height: usize,
        node_size: usize,
    ) -> RenormalizedLattice {
        assert!(node_size > 0, "node size must be positive");
        let (ox, oy) = origin;
        assert!(
            ox + width <= layer.width && oy + height <= layer.height,
            "region exceeds the layer"
        );
        let k_cols = width / node_size;
        let k_rows = height / node_size;
        let k = k_cols.min(k_rows);

        self.scratch.ensure(layer.width * layer.height);

        let mut v_paths: Vec<Option<Vec<u32>>> = Vec::with_capacity(k);
        let mut h_paths: Vec<Option<Vec<u32>>> = Vec::with_capacity(k);

        // Alternating search order (vertical, horizontal, vertical, ...) as
        // suggested by the paper; with disjoint bands the orders only affect
        // scratch locality, so we simply interleave.
        for band in 0..k {
            let band_lo = band * node_size;
            let band_hi = band_lo + node_size;
            v_paths.push(self.search_path(
                layer,
                Band {
                    x_lo: ox + band_lo,
                    x_hi: ox + band_hi,
                    y_lo: oy,
                    y_hi: oy + height,
                    vertical: true,
                },
            ));
            h_paths.push(self.search_path(
                layer,
                Band {
                    x_lo: ox,
                    x_hi: ox + width,
                    y_lo: oy + band_lo,
                    y_hi: oy + band_hi,
                    vertical: false,
                },
            ));
        }

        // Intersections become coarse nodes: stamp the sites of each
        // vertical path, then take the first stamped site along each
        // horizontal path.
        let w = layer.width;
        let mut nodes = vec![NO_SITE; k * k];
        for (i, vp) in v_paths.iter().enumerate() {
            let Some(vp) = vp else { continue };
            let mark = self.scratch.begin_mark();
            for &s in vp {
                self.scratch.set_mark(s, mark);
            }
            for (j, hp) in h_paths.iter().enumerate() {
                let Some(hp) = hp else { continue };
                if let Some(&site) = hp.iter().find(|&&s| self.scratch.is_marked(s, mark)) {
                    nodes[i * k + j] = site;
                } else if let Some(site) =
                    closest_block_site(vp, hp, w, node_size, origin, i, j)
                {
                    // Paths share no site (possible when a band is wider
                    // than the region actually covered); fall back to the
                    // closest pair of sites in the common block.
                    nodes[i * k + j] = site;
                }
            }
        }

        RenormalizedLattice {
            target_side: k,
            node_size,
            layer_width: w,
            nodes,
            v_paths,
            h_paths,
        }
    }

    /// Searches one band-restricted crossing path with a flat-grid BFS. For
    /// a vertical band the path runs from the top row to the bottom row of
    /// the region; for a horizontal band from the left column to the right
    /// column. Returns the path as flat site indices, or `None` when the
    /// band does not percolate (detected by frontier exhaustion — BFS is
    /// its own connectivity check).
    fn search_path(&mut self, layer: &PhysicalLayer, band: Band) -> Option<Vec<u32>> {
        let w = layer.width;
        let Band { x_lo, x_hi, y_lo, y_hi, vertical } = band;
        debug_assert!(x_hi <= layer.width && y_hi <= layer.height);

        let epoch = self.scratch.begin_search();

        // Seed the frontier with every present start-edge site of the band.
        // A vertical band's start edge is one contiguous row segment, so the
        // present sites come straight off the packed site words (64 sites
        // per scan step); a horizontal band's start edge is a column
        // (stride-`w` reads), which stays per-site.
        if vertical {
            let row = y_lo * w;
            for i in layer.present_in_range(row + x_lo, row + x_hi) {
                self.scratch.visit(i as u32, NO_SITE, epoch);
            }
        } else {
            for y in y_lo..y_hi {
                let i = (y * w + x_lo) as u32;
                if layer.site_present_at(i as usize) {
                    self.scratch.visit(i, NO_SITE, epoch);
                }
            }
        }

        let mut head = 0usize;
        while let Some(idx) = self.scratch.queue_get(head) {
            head += 1;
            let iu = idx as usize;
            let y = iu / w;
            let x = iu - y * w;

            let at_end = if vertical { y == y_hi - 1 } else { x == x_hi - 1 };
            if at_end {
                // Reconstruct from the predecessor chain.
                let mut path = vec![idx];
                let mut cur = idx;
                loop {
                    let p = self.scratch.predecessor(cur);
                    if p == NO_SITE {
                        break;
                    }
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }

            // Neighbor order (east, west, north, south) matches the
            // original hash-based implementation so BFS tie-breaking — and
            // therefore every extracted path — is bit-identical.
            if x + 1 < x_hi && layer.bond_east_at(iu) {
                let n = idx + 1;
                if !self.scratch.is_visited(n, epoch) && layer.site_present_at(n as usize) {
                    self.scratch.visit(n, idx, epoch);
                }
            }
            if x > x_lo && layer.bond_east_at(iu - 1) {
                let n = idx - 1;
                if !self.scratch.is_visited(n, epoch) && layer.site_present_at(n as usize) {
                    self.scratch.visit(n, idx, epoch);
                }
            }
            if y + 1 < y_hi && layer.bond_north_at(iu) {
                let n = idx + w as u32;
                if !self.scratch.is_visited(n, epoch) && layer.site_present_at(n as usize) {
                    self.scratch.visit(n, idx, epoch);
                }
            }
            if y > y_lo && layer.bond_north_at(iu - w) {
                let n = idx - w as u32;
                if !self.scratch.is_visited(n, epoch) && layer.site_present_at(n as usize) {
                    self.scratch.visit(n, idx, epoch);
                }
            }
        }
        None
    }

    /// Hands out the scratch pool (for sibling passes such as the modular
    /// joiner that want to share the union-find).
    pub(crate) fn scratch_mut(&mut self) -> &mut ScratchPool {
        &mut self.scratch
    }
}

/// Fallback coarse-node site when the two paths do not share a site: the
/// site of the vertical path closest (in Manhattan distance) to any site of
/// the horizontal path inside block `(i, j)`.
fn closest_block_site(
    vp: &[u32],
    hp: &[u32],
    layer_width: usize,
    node_size: usize,
    origin: (usize, usize),
    i: usize,
    j: usize,
) -> Option<u32> {
    let (ox, oy) = origin;
    let x_lo = ox + i * node_size;
    let x_hi = x_lo + node_size;
    let y_lo = oy + j * node_size;
    let y_hi = y_lo + node_size;
    let decode = |s: u32| (s as usize % layer_width, s as usize / layer_width);
    let in_block = |(x, y): (usize, usize)| x >= x_lo && x < x_hi && y >= y_lo && y < y_hi;
    let mut best: Option<(u32, usize)> = None;
    for &v in vp {
        let vc = decode(v);
        if !in_block(vc) {
            continue;
        }
        for &h in hp {
            let hc = decode(h);
            if !in_block(hc) {
                continue;
            }
            let d = vc.0.abs_diff(hc.0) + vc.1.abs_diff(hc.1);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((v, d));
            }
        }
    }
    best.map(|(s, _)| s)
}

/// Renormalizes an entire layer with the given average node size, targeting
/// a coarse lattice of side `layer.width / node_size`.
///
/// This is the one-off convenience wrapper; it builds (and drops) a fresh
/// [`Renormalizer`] per call. Streaming callers should hold a
/// `Renormalizer` so the scratch memory is reused across RSLs.
///
/// # Panics
///
/// Panics when `node_size` is zero or larger than the layer.
pub fn renormalize(layer: &PhysicalLayer, node_size: usize) -> RenormalizedLattice {
    Renormalizer::new().renormalize(layer, node_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneperc_hardware::{FusionEngine, HardwareConfig};

    #[test]
    fn full_lattice_renormalizes_perfectly() {
        let layer = PhysicalLayer::fully_connected(24, 24);
        let lattice = renormalize(&layer, 6);
        assert_eq!(lattice.target_side(), 4);
        assert!(lattice.is_success());
        assert_eq!(lattice.node_count(), 16);
        assert_eq!(lattice.v_path_count(), 4);
        assert_eq!(lattice.h_path_count(), 4);
        // The representative of coarse node (i, j) lies inside block (i, j).
        for i in 0..4 {
            for j in 0..4 {
                let (x, y) = lattice.node_site(i, j).unwrap();
                assert!(x >= i * 6 && x < (i + 1) * 6, "x {x} outside band {i}");
                assert!(y >= j * 6 && y < (j + 1) * 6, "y {y} outside band {j}");
            }
        }
    }

    #[test]
    fn empty_lattice_fails() {
        let layer = PhysicalLayer::blank(16, 16); // no bonds at all
        let lattice = renormalize(&layer, 4);
        assert!(!lattice.is_success());
        assert_eq!(lattice.node_count(), 0);
        assert_eq!(lattice.consumed_sites(), 0);
    }

    #[test]
    fn percolating_layer_renormalizes_with_high_probability() {
        let mut engine = FusionEngine::new(HardwareConfig::new(48, 7, 0.78), 5);
        let layer = engine.generate_layer();
        let lattice = renormalize(&layer, 12);
        assert_eq!(lattice.target_side(), 4);
        assert!(
            lattice.node_count() >= 12,
            "expected most nodes realized, got {}",
            lattice.node_count()
        );
    }

    #[test]
    fn coarser_nodes_succeed_more_often() {
        // Fig. 16 behaviour: success probability grows rapidly with the
        // average node size.
        let trials = 12;
        let mut fine = 0;
        let mut coarse = 0;
        for seed in 0..trials {
            let mut engine = FusionEngine::new(HardwareConfig::new(48, 7, 0.68), seed);
            let layer = engine.generate_layer();
            if renormalize(&layer, 4).is_success() {
                fine += 1;
            }
            if renormalize(&layer, 16).is_success() {
                coarse += 1;
            }
        }
        assert!(
            coarse >= fine,
            "coarse-grained renormalization should succeed at least as often (coarse {coarse}, fine {fine})"
        );
        assert!(coarse >= trials * 2 / 3, "coarse renormalization too weak: {coarse}/{trials}");
    }

    #[test]
    fn paths_stay_inside_their_bands() {
        let mut engine = FusionEngine::new(HardwareConfig::new(36, 7, 0.75), 17);
        let layer = engine.generate_layer();
        let lattice = renormalize(&layer, 9);
        for i in 0..lattice.target_side() {
            if let Some(path) = lattice.v_path(i) {
                let coords: Vec<_> = lattice.path_coords(path).collect();
                for &(x, _) in &coords {
                    assert!(x >= i * 9 && x < (i + 1) * 9);
                }
                // A vertical path touches the first and last row.
                assert_eq!(coords.first().unwrap().1, 0);
                assert_eq!(coords.last().unwrap().1, 35);
            }
            if let Some(path) = lattice.h_path(i) {
                let coords: Vec<_> = lattice.path_coords(path).collect();
                for &(_, y) in &coords {
                    assert!(y >= i * 9 && y < (i + 1) * 9);
                }
                assert_eq!(coords.first().unwrap().0, 0);
                assert_eq!(coords.last().unwrap().0, 35);
            }
        }
    }

    #[test]
    fn paths_are_connected_walks() {
        let mut engine = FusionEngine::new(HardwareConfig::new(36, 7, 0.8), 29);
        let layer = engine.generate_layer();
        let lattice = renormalize(&layer, 12);
        for i in 0..lattice.target_side() {
            for path in [lattice.v_path(i), lattice.h_path(i)].into_iter().flatten() {
                let coords: Vec<_> = lattice.path_coords(path).collect();
                for pair in coords.windows(2) {
                    let d = pair[0].0.abs_diff(pair[1].0) + pair[0].1.abs_diff(pair[1].1);
                    assert_eq!(d, 1, "non-adjacent consecutive path sites {pair:?}");
                    assert!(layer.connected_neighbors(pair[0], pair[1]));
                }
            }
        }
    }

    #[test]
    fn region_renormalization_respects_origin() {
        let layer = PhysicalLayer::fully_connected(20, 20);
        let mut r = Renormalizer::new();
        let lattice = r.renormalize_region(&layer, (10, 10), 10, 10, 5);
        assert_eq!(lattice.target_side(), 2);
        assert!(lattice.is_success());
        for i in 0..2 {
            for j in 0..2 {
                let (x, y) = lattice.node_site(i, j).unwrap();
                assert!(x >= 10 && y >= 10, "node site ({x},{y}) outside region");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_stateless_across_calls() {
        // The same Renormalizer must give identical results to a fresh one
        // on every call, whatever it processed before.
        let mut shared = Renormalizer::new();
        for seed in [3u64, 11, 3, 27, 11] {
            let mut engine = FusionEngine::new(HardwareConfig::new(32, 7, 0.74), seed);
            let layer = engine.generate_layer();
            let a = shared.renormalize(&layer, 8);
            let b = Renormalizer::new().renormalize(&layer, 8);
            assert_eq!(a.node_count(), b.node_count(), "seed {seed}");
            for i in 0..a.target_side() {
                assert_eq!(a.v_path(i), b.v_path(i), "seed {seed} v{i}");
                assert_eq!(a.h_path(i), b.h_path(i), "seed {seed} h{i}");
                for j in 0..a.target_side() {
                    assert_eq!(a.node_site(i, j), b.node_site(i, j), "seed {seed} ({i},{j})");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "node size")]
    fn zero_node_size_panics() {
        let layer = PhysicalLayer::fully_connected(8, 8);
        let _ = renormalize(&layer, 0);
    }

    #[test]
    fn consumed_sites_bounded_by_layer() {
        let layer = PhysicalLayer::fully_connected(16, 16);
        let lattice = renormalize(&layer, 4);
        assert!(lattice.consumed_sites() <= 256);
        assert!(lattice.consumed_sites() >= 16);
    }
}
