//! 2D renormalization of a single resource-state layer (Section 5.1),
//! implemented on the flat site grid.
//!
//! The largest connected component of the random physical graph state is
//! reshaped into a coarse-grained `k × k` square lattice by searching `k`
//! vertical paths (top to bottom) and `k` horizontal paths (left to right).
//! Every path is confined to its own band of width `node_size`, which keeps
//! distinct same-orientation paths separated and guarantees (by planarity)
//! that a vertical and a horizontal path that both exist intersect inside
//! their common block; the intersection site becomes the renormalized node.
//!
//! All state is dense: sites are flat `u32` indices (`y * width + x`), the
//! band-restricted BFS runs over epoch-stamped scratch arrays from a
//! [`ScratchPool`](crate::ScratchPool), and path-intersection tests are
//! stamp lookups instead of hash-set probes. Since the PR-5 bit-packed
//! layer, frontier seeding scans the packed site words (64 sites per step;
//! see the word-layout convention in `oneperc_hardware::layer`) instead of
//! one boolean per site.
//!
//! # Word-parallel reachability gate (PR 6)
//!
//! Each band search runs in two stages. A **word-parallel reachability
//! fixpoint** first answers *whether* the band percolates, on row-aligned
//! `u64` bitmaps held in the scratch pool: the band's present sites,
//! east-run connectivity and both-present vertical bonds are loaded as
//! `ceil(band_width / 64)` words per band row, east/west propagation
//! within a row is a Kogge–Stone run fill over the connectivity words, and
//! north/south propagation is a whole-row AND against the vertical bond
//! plane. The fixpoint exits as soon as the end edge lights up; running
//! dry without lighting it is the proof that the band does not percolate,
//! and the per-site stage is skipped entirely.
//!
//! Only when the gate passes does the **scalar parent-tracking BFS** run,
//! solely to extract the path: its neighbor order (east, west, north,
//! south) is the tie-break that pins every extracted path bit-for-bit to
//! the historical implementation, which word-level frontier expansion
//! cannot reproduce. The BFS queue carries `(flat index, x, y)` packed
//! into one `u64` (see `scratch::pack_site`), so the hot dequeue path
//! never divides by the layer width, and all site/bond tests read the
//! packed planes' raw words directly.

use oneperc_hardware::PhysicalLayer;

use crate::scratch::{pack_site, ScratchPool, NO_SITE};

/// The outcome of renormalizing one RSL.
///
/// Sites are stored as flat `u32` indices into the layer
/// (`y * layer_width + x`); [`RenormalizedLattice::site_coords`] decodes
/// them back to coordinates.
///
/// Equality compares every field — target geometry, node representatives
/// and full path contents — so `a == b` is the byte-identity check used by
/// the pipelined-vs-serial determinism suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenormalizedLattice {
    target_side: usize,
    node_size: usize,
    /// Width of the layer the lattice was extracted from (for decoding flat
    /// site indices).
    layer_width: usize,
    /// Representative physical site of coarse node `(i, j)` at slot
    /// `i * target_side + j`, or [`u32::MAX`] when the node was not
    /// realized.
    nodes: Vec<u32>,
    /// Vertical path (flat site indices) for each coarse column, when found.
    v_paths: Vec<Option<Vec<u32>>>,
    /// Horizontal path for each coarse row, when found.
    h_paths: Vec<Option<Vec<u32>>>,
}

impl RenormalizedLattice {
    /// The requested coarse lattice side `k`.
    pub fn target_side(&self) -> usize {
        self.target_side
    }

    /// The average node size `n` used for the band decomposition.
    pub fn node_size(&self) -> usize {
        self.node_size
    }

    /// Width of the layer this lattice was extracted from; flat site
    /// indices decode as `(idx % width, idx / width)`.
    pub fn layer_width(&self) -> usize {
        self.layer_width
    }

    /// Decodes a flat site index into `(x, y)` coordinates.
    #[inline]
    pub fn site_coords(&self, flat: u32) -> (usize, usize) {
        let w = self.layer_width;
        (flat as usize % w, flat as usize / w)
    }

    /// Returns `true` when every coarse node of the `k × k` target was
    /// realized.
    pub fn is_success(&self) -> bool {
        self.nodes.iter().all(|&s| s != NO_SITE)
    }

    /// Number of coarse nodes realized.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|&&s| s != NO_SITE).count()
    }

    /// Flat physical site of the coarse node `(i, j)`, if it was realized.
    pub fn node_flat(&self, i: usize, j: usize) -> Option<u32> {
        let s = *self.nodes.get(i * self.target_side + j)?;
        if s == NO_SITE {
            None
        } else {
            Some(s)
        }
    }

    /// Representative physical site of the coarse node `(i, j)` in
    /// coordinates, if it was realized.
    pub fn node_site(&self, i: usize, j: usize) -> Option<(usize, usize)> {
        self.node_flat(i, j).map(|s| self.site_coords(s))
    }

    /// The vertical path realizing coarse column `i` as flat site indices,
    /// if found.
    pub fn v_path(&self, i: usize) -> Option<&[u32]> {
        self.v_paths.get(i).and_then(|p| p.as_deref())
    }

    /// The horizontal path realizing coarse row `j` as flat site indices,
    /// if found.
    pub fn h_path(&self, j: usize) -> Option<&[u32]> {
        self.h_paths.get(j).and_then(|p| p.as_deref())
    }

    /// Iterator decoding a path returned by [`RenormalizedLattice::v_path`]
    /// or [`RenormalizedLattice::h_path`] into `(x, y)` coordinates.
    pub fn path_coords<'a>(
        &'a self,
        path: &'a [u32],
    ) -> impl Iterator<Item = (usize, usize)> + 'a {
        path.iter().map(move |&s| self.site_coords(s))
    }

    /// Number of vertical paths found.
    pub fn v_path_count(&self) -> usize {
        self.v_paths.iter().filter(|p| p.is_some()).count()
    }

    /// Number of horizontal paths found.
    pub fn h_path_count(&self) -> usize {
        self.h_paths.iter().filter(|p| p.is_some()).count()
    }

    /// Total physical sites consumed by the coarse structure (paths and
    /// nodes); the remaining qubits would be measured out in the `Z` basis.
    pub fn consumed_sites(&self) -> usize {
        let mut sites: Vec<u32> = self
            .v_paths
            .iter()
            .chain(self.h_paths.iter())
            .flatten()
            .flat_map(|p| p.iter().copied())
            .collect();
        sites.sort_unstable();
        sites.dedup();
        sites.len()
    }
}

/// Reusable renormalizer holding the scratch memory of the flat-grid
/// engine; use [`renormalize`] for one-off calls and keep one
/// `Renormalizer` alive when processing a stream of RSLs (as
/// [`crate::ReshapeEngine`] does) so the per-layer steady state allocates
/// only the output paths.
#[derive(Debug, Clone, Default)]
pub struct Renormalizer {
    scratch: ScratchPool,
}

/// Geometry of one band-restricted search, in flat-grid terms.
struct Band {
    /// Inclusive lower x bound.
    x_lo: usize,
    /// Exclusive upper x bound.
    x_hi: usize,
    /// Inclusive lower y bound.
    y_lo: usize,
    /// Exclusive upper y bound.
    y_hi: usize,
    /// `true` for a vertical (top-to-bottom) crossing.
    vertical: bool,
}

impl Renormalizer {
    /// Creates a renormalizer with an empty scratch pool.
    pub fn new() -> Self {
        Renormalizer::default()
    }

    /// Renormalizes an entire layer with the given average node size; see
    /// [`renormalize`] for the one-off convenience wrapper.
    ///
    /// # Panics
    ///
    /// Panics when `node_size` is zero or larger than the layer.
    pub fn renormalize(&mut self, layer: &PhysicalLayer, node_size: usize) -> RenormalizedLattice {
        assert!(
            node_size > 0 && node_size <= layer.width && node_size <= layer.height,
            "node size must be positive and fit in the layer"
        );
        self.renormalize_region(layer, (0, 0), layer.width, layer.height, node_size)
    }

    /// Renormalizes a sub-rectangle of the layer (used by the modular
    /// variant). `origin` is the top-left corner (x, y) of the region and
    /// `width`/`height` its extent; the coarse lattice targets
    /// `width / node_size` columns and `height / node_size` rows.
    pub fn renormalize_region(
        &mut self,
        layer: &PhysicalLayer,
        origin: (usize, usize),
        width: usize,
        height: usize,
        node_size: usize,
    ) -> RenormalizedLattice {
        assert!(node_size > 0, "node size must be positive");
        let (ox, oy) = origin;
        assert!(
            ox + width <= layer.width && oy + height <= layer.height,
            "region exceeds the layer"
        );
        assert!(
            layer.width <= 1 << 16 && layer.height <= 1 << 16,
            "layer side exceeds the packed-queue coordinate range"
        );
        let k_cols = width / node_size;
        let k_rows = height / node_size;
        let k = k_cols.min(k_rows);

        self.scratch.ensure(layer.width * layer.height);

        let mut v_paths: Vec<Option<Vec<u32>>> = Vec::with_capacity(k);
        let mut h_paths: Vec<Option<Vec<u32>>> = Vec::with_capacity(k);

        // Alternating search order (vertical, horizontal, vertical, ...) as
        // suggested by the paper; with disjoint bands the orders only affect
        // scratch locality, so we simply interleave.
        for band in 0..k {
            let band_lo = band * node_size;
            let band_hi = band_lo + node_size;
            v_paths.push(self.search_path(
                layer,
                Band {
                    x_lo: ox + band_lo,
                    x_hi: ox + band_hi,
                    y_lo: oy,
                    y_hi: oy + height,
                    vertical: true,
                },
            ));
            h_paths.push(self.search_path(
                layer,
                Band {
                    x_lo: ox,
                    x_hi: ox + width,
                    y_lo: oy + band_lo,
                    y_hi: oy + band_hi,
                    vertical: false,
                },
            ));
        }

        // Intersections become coarse nodes: stamp the sites of each
        // vertical path, then take the first stamped site along each
        // horizontal path.
        let w = layer.width;
        let mut nodes = vec![NO_SITE; k * k];
        for (i, vp) in v_paths.iter().enumerate() {
            let Some(vp) = vp else { continue };
            let mark = self.scratch.begin_mark();
            for &s in vp {
                self.scratch.set_mark(s, mark);
            }
            for (j, hp) in h_paths.iter().enumerate() {
                let Some(hp) = hp else { continue };
                if let Some(&site) = hp.iter().find(|&&s| self.scratch.is_marked(s, mark)) {
                    nodes[i * k + j] = site;
                } else if let Some(site) =
                    closest_block_site(vp, hp, w, node_size, origin, i, j)
                {
                    // Paths share no site (possible when a band is wider
                    // than the region actually covered); fall back to the
                    // closest pair of sites in the common block.
                    nodes[i * k + j] = site;
                }
            }
        }

        RenormalizedLattice {
            target_side: k,
            node_size,
            layer_width: w,
            nodes,
            v_paths,
            h_paths,
        }
    }

    /// Searches one band-restricted crossing path. For a vertical band the
    /// path runs from the top row to the bottom row of the region; for a
    /// horizontal band from the left column to the right column. Returns
    /// the path as flat site indices, or `None` when the band does not
    /// percolate.
    ///
    /// The word-parallel reachability fixpoint decides percolation first;
    /// the per-site parent-tracking BFS runs only when a path is known to
    /// exist, purely to extract it (see the module docs).
    fn search_path(&mut self, layer: &PhysicalLayer, band: Band) -> Option<Vec<u32>> {
        debug_assert!(band.x_hi <= layer.width && band.y_hi <= layer.height);
        if !self.band_percolates(layer, &band) {
            return None;
        }
        self.extract_path(layer, band)
    }

    /// Word-parallel reachability fixpoint over one band: answers whether
    /// any present start-edge site connects to the end edge, on row-aligned
    /// `u64` bitmaps and without touching the per-site scratch. Returns as
    /// soon as the end edge lights up; a fixpoint that runs dry without
    /// lighting it is the proof the band does not percolate.
    fn band_percolates(&mut self, layer: &PhysicalLayer, band: &Band) -> bool {
        let Band { x_lo, x_hi, y_lo, y_hi, vertical } = *band;
        let bw = x_hi - x_lo;
        let bh = y_hi - y_lo;
        if bw == 0 || bh == 0 {
            return false;
        }
        let nc = bw.div_ceil(64);
        let w = layer.width;
        let n = nc * bh;

        let scratch = &mut self.scratch;
        // Every `band_pres` / `band_conn` word and every `band_vert` row but
        // the last are overwritten below, so those planes only grow; the
        // frontier needs a true clear, and `band_vert`'s last row (no bond
        // leaves the band) is zeroed explicitly.
        if scratch.band_pres.len() < n {
            scratch.band_pres.resize(n, 0);
            scratch.band_conn.resize(n, 0);
            scratch.band_vert.resize(n, 0);
        }
        scratch.band_vert[(bh - 1) * nc..n].fill(0);
        scratch.band_reach.clear();
        scratch.band_reach.resize(n, 0);

        let site = layer.site_bits();
        let be = layer.bond_east_bits();
        let bn = layer.bond_north_bits();

        // Single pass per band row: the present plane masked to the band
        // width, then the east-run connectivity of the same row (bit x =
        // sites x and x+1 present and east-bonded; chunk seams inject the
        // next chunk's bit 0 at position 63 so runs crossing a word
        // boundary stay connected — the band mask on `band_pres` already
        // zeroes any east bond leaving the band), then the both-present
        // vertical bonds from the row above, whose two present rows are now
        // loaded.
        for r in 0..bh {
            let base = (y_lo + r) * w + x_lo;
            for c in 0..nc {
                let take = (bw - c * 64).min(64);
                let m = if take == 64 { u64::MAX } else { (1u64 << take) - 1 };
                scratch.band_pres[r * nc + c] = site.word_at(base + c * 64) & m;
            }
            for c in 0..nc {
                let i = r * nc + c;
                let p = scratch.band_pres[i];
                let seam = if c + 1 < nc { scratch.band_pres[i + 1] & 1 } else { 0 };
                let p_east = (p >> 1) | (seam << 63);
                scratch.band_conn[i] = p & p_east & be.word_at(base + c * 64);
            }
            if r > 0 {
                let above = (y_lo + r - 1) * w + x_lo;
                for c in 0..nc {
                    let j = (r - 1) * nc + c;
                    scratch.band_vert[j] =
                        scratch.band_pres[j] & scratch.band_pres[j + nc] & bn.word_at(above + c * 64);
                }
            }
        }

        let end_bit = 1u64 << ((bw - 1) & 63);
        let end_lit = |reach: &[u64], r: usize| -> bool {
            if vertical {
                r == bh - 1 && reach[r * nc..(r + 1) * nc].iter().any(|&m| m != 0)
            } else {
                reach[r * nc + (nc - 1)] & end_bit != 0
            }
        };

        // Seed the start edge and fill the seeded rows to their horizontal
        // closure. A vertical band starts from every present top-row site;
        // a horizontal band from the present left-column sites.
        if vertical {
            for c in 0..nc {
                scratch.band_reach[c] = scratch.band_pres[c];
            }
            fill_row(&mut scratch.band_reach[..nc], &scratch.band_conn[..nc]);
            if end_lit(&scratch.band_reach, 0) {
                return true;
            }
        } else {
            for r in 0..bh {
                let s = scratch.band_pres[r * nc] & 1;
                if s != 0 {
                    scratch.band_reach[r * nc] = s;
                    fill_row(
                        &mut scratch.band_reach[r * nc..(r + 1) * nc],
                        &scratch.band_conn[r * nc..(r + 1) * nc],
                    );
                    if end_lit(&scratch.band_reach, r) {
                        return true;
                    }
                }
            }
        }

        // Alternate down/up sweeps to the fixpoint: each sweep pushes the
        // frontier through the vertical bond plane one row at a time and
        // re-closes the receiving row horizontally. Reachability is
        // monotone, so the loop terminates; for percolating bands the end
        // edge usually lights within the first down sweep.
        loop {
            let mut changed = false;
            for r in 0..bh.saturating_sub(1) {
                let mut dirty = false;
                for c in 0..nc {
                    let add = scratch.band_reach[r * nc + c]
                        & scratch.band_vert[r * nc + c]
                        & !scratch.band_reach[(r + 1) * nc + c];
                    if add != 0 {
                        scratch.band_reach[(r + 1) * nc + c] |= add;
                        dirty = true;
                    }
                }
                if dirty {
                    fill_row(
                        &mut scratch.band_reach[(r + 1) * nc..(r + 2) * nc],
                        &scratch.band_conn[(r + 1) * nc..(r + 2) * nc],
                    );
                    changed = true;
                    if end_lit(&scratch.band_reach, r + 1) {
                        return true;
                    }
                }
            }
            for r in (1..bh).rev() {
                let mut dirty = false;
                for c in 0..nc {
                    let add = scratch.band_reach[r * nc + c]
                        & scratch.band_vert[(r - 1) * nc + c]
                        & !scratch.band_reach[(r - 1) * nc + c];
                    if add != 0 {
                        scratch.band_reach[(r - 1) * nc + c] |= add;
                        dirty = true;
                    }
                }
                if dirty {
                    fill_row(
                        &mut scratch.band_reach[(r - 1) * nc..r * nc],
                        &scratch.band_conn[(r - 1) * nc..r * nc],
                    );
                    changed = true;
                    if end_lit(&scratch.band_reach, r - 1) {
                        return true;
                    }
                }
            }
            if !changed {
                return false;
            }
        }
    }

    /// Per-site parent-tracking BFS extracting the crossing path of a band
    /// the reachability gate has already proven to percolate. The traversal
    /// is identical to the historical implementation — same seeds in the
    /// same order, same east/west/north/south neighbor order, end test at
    /// dequeue — so every extracted path is bit-for-bit unchanged. Only the
    /// bookkeeping is faster: discoverability reads come from the gate's
    /// band-local connectivity planes (one bit instead of a bond test plus
    /// a presence test on `width × height` arrays), the visited set is a
    /// band-local bitmap, and queue entries carry their band coordinates
    /// packed so the dequeue path never divides by the layer width.
    fn extract_path(&mut self, layer: &PhysicalLayer, band: Band) -> Option<Vec<u32>> {
        let w = layer.width;
        let Band { x_lo, x_hi, y_lo, y_hi, vertical } = band;
        let bw = x_hi - x_lo;
        let bh = y_hi - y_lo;
        let nc = bw.div_ceil(64);
        // One slot per possible band coordinate, so a row's offset is a
        // single multiply by `stride` and no entry ever aliases.
        let stride = nc * 64;
        /// Predecessor sentinel marking a seed; `pack_site` cannot produce
        /// it because flat indices stay below `u32::MAX`.
        const SEED: u64 = u64::MAX;

        let scratch = &mut self.scratch;
        scratch.band_visited.clear();
        // Band row `r`'s visited word lives at row `r + 1`: the leading and
        // trailing zero rows let the branchless fast path read the visited
        // words of the rows above and below unconditionally (the matching
        // vertical bond words are zero at the band bounds, masking the
        // padding reads out of the result).
        scratch.band_visited.resize(nc * (bh + 2), 0);
        if scratch.band_prev.len() < stride * bh {
            scratch.band_prev.resize(stride * bh, 0);
        }
        // The queue is a grow-only buffer indexed by a `tail` cursor, never
        // cleared: every band site is enqueued at most once, so one slot
        // per band coordinate suffices, the hot enqueue is a plain indexed
        // store, and the zero-fill is paid once per pool growth instead of
        // once per band. Slots past `tail` are stale from earlier bands and
        // never read.
        if scratch.queue.len() < stride * bh {
            scratch.queue.resize(stride * bh, 0);
        }
        let mut tail = 0usize;

        // Seed the frontier with every present start-edge site of the band,
        // in ascending order, straight off the band-local present plane. A
        // vertical band's start edge is its top row; a horizontal band's is
        // its left column.
        if vertical {
            for c in 0..nc {
                let mut m = scratch.band_pres[c];
                scratch.band_visited[nc + c] = m;
                let base = (y_lo * w + x_lo + c * 64) as u32;
                while m != 0 {
                    let b = m.trailing_zeros();
                    let bx = c * 64 + b as usize;
                    scratch.band_prev[bx] = SEED;
                    scratch.queue[tail] = pack_site(base + b, bx, 0);
                    tail += 1;
                    m &= m - 1;
                }
            }
        } else {
            for r in 0..bh {
                if scratch.band_pres[r * nc] & 1 != 0 {
                    scratch.band_visited[(r + 1) * nc] |= 1;
                    scratch.band_prev[r * stride] = SEED;
                    scratch.queue[tail] = pack_site(((y_lo + r) * w + x_lo) as u32, 0, r);
                    tail += 1;
                }
            }
        }

        /// Walks the packed predecessor chain back to a seed; every entry
        /// carries its global flat index for the output and its band
        /// coordinates for indexing the chain.
        fn reconstruct(band_prev: &[u64], stride: usize, end: u64) -> Vec<u32> {
            let slot =
                |e: u64| ((e >> 48) as usize) * stride + ((e >> 32) as u16 as usize);
            // Walk the chain twice — once to size the path, once to fill it
            // back to front — so the output vector is allocated exactly once
            // at its final length.
            let mut len = 1usize;
            let mut cur = end;
            loop {
                let p = band_prev[slot(cur)];
                if p == SEED {
                    break;
                }
                len += 1;
                cur = p;
            }
            let mut path = vec![0u32; len];
            let mut cur = end;
            for i in (0..len).rev() {
                path[i] = cur as u32;
                cur = band_prev[slot(cur)];
            }
            path
        }

        // Neighbor order (east, west, north, south) matches the original
        // implementation so BFS tie-breaking — and therefore every extracted
        // path — is bit-identical. The connectivity planes already encode
        // bond presence, both endpoints' site presence and the band mask, so
        // each direction is one bit: bit `bw - 1` of `band_conn` and the
        // whole last row of `band_vert` are zero, which is the east/north
        // band bound.
        if nc == 1 {
            // Single-word rows: build a branchless 4-bit mask of
            // discoverable neighbors (bond present AND target unvisited),
            // ordered east, west, north, south in its low bits, then visit
            // its set bits. Per-bond branches on random percolation data are
            // ~50% mispredicted; the mask trades them for straight-line ALU
            // work plus one well-predicted loop whose trip count is the
            // number of *discoveries* (amortised one per site) rather than
            // the number of bond tests (four per site).
            //
            // Each direction's packed queue entry differs from the parent's
            // by a constant, and no field ever borrows past its boundary
            // (west/south discoveries imply `bx >= 1` / `br >= 1`, and flat
            // indices stay inside the layer), so the neighbor entry is one
            // wrapping add against a per-direction delta instead of a
            // re-pack.
            let deltas: [u64; 4] = [
                1 | 1 << 32,                          // east: idx + 1, bx + 1
                (1u64 | 1 << 32).wrapping_neg(),      // west: idx - 1, bx - 1
                w as u64 | 1 << 48,                   // north: idx + w, br + 1
                (w as u64 | 1 << 48).wrapping_neg(),  // south: idx - w, br - 1
            ];
            // Degenerate bands — one row for a vertical crossing, one
            // column for a horizontal one — seed directly on the end edge;
            // the historical BFS dequeues the first seed and returns it as
            // a single-site path. (The other thin shape, e.g. a one-column
            // vertical band, is *not* degenerate: its path still has to
            // descend the column, so it takes the regular loop below.)
            if if vertical { bh == 1 } else { bw == 1 } {
                return (tail > 0).then(|| vec![scratch.queue[0] as u32]);
            }
            // Non-degenerate bands never seed on the end edge, so the first
            // end site *discovered* is also the first dequeued (the queue is
            // FIFO) and the predecessor chain is already final at discovery.
            // Returning right there extracts the identical path while
            // skipping the expansion of everything queued behind the end —
            // typically the whole final BFS wavefront.
            // Interleave each row's three connectivity words (east runs,
            // vertical bonds down, vertical bonds up — pre-zeroed for row
            // zero) into one padded quadruple, so the hot loop fetches them
            // with a single bounds check from a single cache line instead
            // of three checked loads from three arrays.
            let ScratchPool { queue, band_conn, band_vert, band_visited, band_prev, band_cv, .. } =
                scratch;
            band_cv.clear();
            band_cv.resize(4 * bh, 0);
            for r in 0..bh {
                band_cv[4 * r] = band_conn[r];
                band_cv[4 * r + 1] = band_vert[r];
                if r > 0 {
                    band_cv[4 * r + 2] = band_vert[r - 1];
                }
            }
            let mut head = 0usize;
            while head < tail {
                let packed = queue[head];
                head += 1;
                let bx = (packed >> 32) as u16 as u32;
                let br = (packed >> 48) as usize;

                let Some(&[conn, vert, vert_up, _]) = band_cv[4 * br..].first_chunk() else {
                    unreachable!("queue entries stay inside the band");
                };
                // `band_vert` row `bh - 1` is all zeros, so `vd` (the
                // visited row below, only meaningful when the north bond
                // bit is set) may read the trailing padding row; the south
                // direction likewise reads the leading padding row and a
                // zero `vert_up` word for `br == 0`.
                let Some(&[vu, vis, vd]) = band_visited[br..].first_chunk() else {
                    unreachable!("visited rows are padded on both sides");
                };
                // East bond is `conn` bit `bx`, west bond is bit `bx - 1`
                // (shifted up first so `bx == 0` reads a hardwired zero);
                // the same shifts fetch the target sites' visited bits.
                let east = (conn >> bx) & !(vis >> 1 >> bx);
                let west = (conn << 1 >> bx) & !(vis << 1 >> bx);
                let north = (vert >> bx) & !(vd >> bx);
                let south = (vert_up >> bx) & !(vu >> bx);
                let mut m =
                    east & 1 | (west & 1) << 1 | (north & 1) << 2 | (south & 1) << 3;
                while m != 0 {
                    let d = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let entry = packed.wrapping_add(deltas[d]);
                    let nbx = (entry >> 32) as u16 as usize;
                    let nbr = (entry >> 48) as usize;
                    band_prev[nbr * stride + nbx] = packed;
                    let at_end = if vertical { nbr == bh - 1 } else { nbx == bw - 1 };
                    if at_end {
                        return Some(reconstruct(band_prev, stride, entry));
                    }
                    // The mask already excluded visited targets, and the up
                    // to four targets of one parent are distinct, so this
                    // never double-visits.
                    band_visited[nbr + 1] |= 1 << nbx;
                    queue[tail] = entry;
                    tail += 1;
                }
            }
            return None;
        }

        /// Discovers a neighbor if it was not visited yet: marks it, records
        /// the packed parent entry and enqueues it.
        #[inline]
        fn try_visit(
            scratch: &mut ScratchPool,
            tail: &mut usize,
            packed: u64,
            from: u64,
            nc: usize,
            stride: usize,
        ) {
            let bx = (packed >> 32) as u16 as usize;
            let br = (packed >> 48) as usize;
            let wi = (br + 1) * nc + (bx >> 6);
            let bit = 1u64 << (bx & 63);
            if scratch.band_visited[wi] & bit == 0 {
                scratch.band_visited[wi] |= bit;
                scratch.band_prev[br * stride + bx] = from;
                scratch.queue[*tail] = packed;
                *tail += 1;
            }
        }

        let mut head = 0usize;
        while head < tail {
            let packed = scratch.queue[head];
            head += 1;
            let bx = (packed >> 32) as u16 as usize;
            let br = (packed >> 48) as usize;

            let at_end = if vertical { br == bh - 1 } else { bx == bw - 1 };
            if at_end {
                return Some(reconstruct(&scratch.band_prev, stride, packed));
            }

            let idx = packed as u32;
            let row = br * nc;
            let (wc, wb) = (bx >> 6, bx & 63);
            if scratch.band_conn[row + wc] >> wb & 1 != 0 {
                try_visit(scratch, &mut tail, pack_site(idx + 1, bx + 1, br), packed, nc, stride);
            }
            if bx > 0 && scratch.band_conn[row + ((bx - 1) >> 6)] >> ((bx - 1) & 63) & 1 != 0 {
                try_visit(scratch, &mut tail, pack_site(idx - 1, bx - 1, br), packed, nc, stride);
            }
            if scratch.band_vert[row + wc] >> wb & 1 != 0 {
                try_visit(scratch, &mut tail, pack_site(idx + w as u32, bx, br + 1), packed, nc, stride);
            }
            if br > 0 && scratch.band_vert[row - nc + wc] >> wb & 1 != 0 {
                try_visit(scratch, &mut tail, pack_site(idx - w as u32, bx, br - 1), packed, nc, stride);
            }
        }
        None
    }

    /// Hands out the scratch pool (for sibling passes such as the modular
    /// joiner that want to share the union-find).
    pub(crate) fn scratch_mut(&mut self) -> &mut ScratchPool {
        &mut self.scratch
    }

}

/// Closes a 64-bit row chunk of the reachability frontier under its
/// east-connectivity word: every run of `conn` bits (bit `x` = edge
/// between sites `x` and `x+1`) containing a set `s` bit becomes fully
/// set. Kogge–Stone doubling: `e` holds the spans of length `k` (all `k`
/// edges starting at the bit present), so one `k`-shift per direction per
/// step closes runs of any length in log₂ 64 steps.
#[inline]
fn close_word(mut s: u64, conn: u64) -> u64 {
    if conn == 0 || s == 0 {
        return s;
    }
    let mut e = conn;
    let mut k = 1u32;
    while k < 64 {
        s |= (s & e) << k;
        s |= (s >> k) & e;
        e &= e >> k;
        if e == 0 {
            break;
        }
        k <<= 1;
    }
    s
}

/// Fills one band row of the reachability frontier to its horizontal
/// closure. `reach` and `conn` are the row's chunk words; a left-to-right
/// pass closes each chunk and carries reachability east across chunk seams
/// (seam edges live at bit 63 of the west chunk's connectivity word), then
/// a right-to-left pass carries it west. Connectivity along a row is a
/// union of intervals, so one pass per direction reaches the closure.
#[inline]
fn fill_row(reach: &mut [u64], conn: &[u64]) {
    let nc = reach.len();
    if nc == 1 {
        reach[0] = close_word(reach[0], conn[0]);
        return;
    }
    let mut carry = 0u64;
    for c in 0..nc {
        let s = close_word(reach[c] | carry, conn[c]);
        carry = (s >> 63) & (conn[c] >> 63);
        reach[c] = s;
    }
    for c in (0..nc - 1).rev() {
        let west = (reach[c + 1] & conn[c] >> 63 & 1) << 63;
        if west != 0 && reach[c] & (1 << 63) == 0 {
            reach[c] = close_word(reach[c] | west, conn[c]);
        }
    }
}

/// Fallback coarse-node site when the two paths do not share a site: the
/// site of the vertical path closest (in Manhattan distance) to any site of
/// the horizontal path inside block `(i, j)`.
fn closest_block_site(
    vp: &[u32],
    hp: &[u32],
    layer_width: usize,
    node_size: usize,
    origin: (usize, usize),
    i: usize,
    j: usize,
) -> Option<u32> {
    let (ox, oy) = origin;
    let x_lo = ox + i * node_size;
    let x_hi = x_lo + node_size;
    let y_lo = oy + j * node_size;
    let y_hi = y_lo + node_size;
    let decode = |s: u32| (s as usize % layer_width, s as usize / layer_width);
    let in_block = |(x, y): (usize, usize)| x >= x_lo && x < x_hi && y >= y_lo && y < y_hi;
    let mut best: Option<(u32, usize)> = None;
    for &v in vp {
        let vc = decode(v);
        if !in_block(vc) {
            continue;
        }
        for &h in hp {
            let hc = decode(h);
            if !in_block(hc) {
                continue;
            }
            let d = vc.0.abs_diff(hc.0) + vc.1.abs_diff(hc.1);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((v, d));
            }
        }
    }
    best.map(|(s, _)| s)
}

/// Renormalizes an entire layer with the given average node size, targeting
/// a coarse lattice of side `layer.width / node_size`.
///
/// This is the one-off convenience wrapper; it builds (and drops) a fresh
/// [`Renormalizer`] per call. Streaming callers should hold a
/// `Renormalizer` so the scratch memory is reused across RSLs.
///
/// # Panics
///
/// Panics when `node_size` is zero or larger than the layer.
pub fn renormalize(layer: &PhysicalLayer, node_size: usize) -> RenormalizedLattice {
    Renormalizer::new().renormalize(layer, node_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneperc_hardware::{FusionEngine, HardwareConfig};

    #[test]
    fn full_lattice_renormalizes_perfectly() {
        let layer = PhysicalLayer::fully_connected(24, 24);
        let lattice = renormalize(&layer, 6);
        assert_eq!(lattice.target_side(), 4);
        assert!(lattice.is_success());
        assert_eq!(lattice.node_count(), 16);
        assert_eq!(lattice.v_path_count(), 4);
        assert_eq!(lattice.h_path_count(), 4);
        // The representative of coarse node (i, j) lies inside block (i, j).
        for i in 0..4 {
            for j in 0..4 {
                let (x, y) = lattice.node_site(i, j).unwrap();
                assert!(x >= i * 6 && x < (i + 1) * 6, "x {x} outside band {i}");
                assert!(y >= j * 6 && y < (j + 1) * 6, "y {y} outside band {j}");
            }
        }
    }

    #[test]
    fn empty_lattice_fails() {
        let layer = PhysicalLayer::blank(16, 16); // no bonds at all
        let lattice = renormalize(&layer, 4);
        assert!(!lattice.is_success());
        assert_eq!(lattice.node_count(), 0);
        assert_eq!(lattice.consumed_sites(), 0);
    }

    #[test]
    fn percolating_layer_renormalizes_with_high_probability() {
        let mut engine = FusionEngine::new(HardwareConfig::new(48, 7, 0.78), 5);
        let layer = engine.generate_layer();
        let lattice = renormalize(&layer, 12);
        assert_eq!(lattice.target_side(), 4);
        assert!(
            lattice.node_count() >= 12,
            "expected most nodes realized, got {}",
            lattice.node_count()
        );
    }

    #[test]
    fn coarser_nodes_succeed_more_often() {
        // Fig. 16 behaviour: success probability grows rapidly with the
        // average node size.
        let trials = 12;
        let mut fine = 0;
        let mut coarse = 0;
        for seed in 0..trials {
            let mut engine = FusionEngine::new(HardwareConfig::new(48, 7, 0.68), seed);
            let layer = engine.generate_layer();
            if renormalize(&layer, 4).is_success() {
                fine += 1;
            }
            if renormalize(&layer, 16).is_success() {
                coarse += 1;
            }
        }
        assert!(
            coarse >= fine,
            "coarse-grained renormalization should succeed at least as often (coarse {coarse}, fine {fine})"
        );
        assert!(coarse >= trials * 2 / 3, "coarse renormalization too weak: {coarse}/{trials}");
    }

    #[test]
    fn paths_stay_inside_their_bands() {
        let mut engine = FusionEngine::new(HardwareConfig::new(36, 7, 0.75), 17);
        let layer = engine.generate_layer();
        let lattice = renormalize(&layer, 9);
        for i in 0..lattice.target_side() {
            if let Some(path) = lattice.v_path(i) {
                let coords: Vec<_> = lattice.path_coords(path).collect();
                for &(x, _) in &coords {
                    assert!(x >= i * 9 && x < (i + 1) * 9);
                }
                // A vertical path touches the first and last row.
                assert_eq!(coords.first().unwrap().1, 0);
                assert_eq!(coords.last().unwrap().1, 35);
            }
            if let Some(path) = lattice.h_path(i) {
                let coords: Vec<_> = lattice.path_coords(path).collect();
                for &(_, y) in &coords {
                    assert!(y >= i * 9 && y < (i + 1) * 9);
                }
                assert_eq!(coords.first().unwrap().0, 0);
                assert_eq!(coords.last().unwrap().0, 35);
            }
        }
    }

    #[test]
    fn paths_are_connected_walks() {
        let mut engine = FusionEngine::new(HardwareConfig::new(36, 7, 0.8), 29);
        let layer = engine.generate_layer();
        let lattice = renormalize(&layer, 12);
        for i in 0..lattice.target_side() {
            for path in [lattice.v_path(i), lattice.h_path(i)].into_iter().flatten() {
                let coords: Vec<_> = lattice.path_coords(path).collect();
                for pair in coords.windows(2) {
                    let d = pair[0].0.abs_diff(pair[1].0) + pair[0].1.abs_diff(pair[1].1);
                    assert_eq!(d, 1, "non-adjacent consecutive path sites {pair:?}");
                    assert!(layer.connected_neighbors(pair[0], pair[1]));
                }
            }
        }
    }

    #[test]
    fn region_renormalization_respects_origin() {
        let layer = PhysicalLayer::fully_connected(20, 20);
        let mut r = Renormalizer::new();
        let lattice = r.renormalize_region(&layer, (10, 10), 10, 10, 5);
        assert_eq!(lattice.target_side(), 2);
        assert!(lattice.is_success());
        for i in 0..2 {
            for j in 0..2 {
                let (x, y) = lattice.node_site(i, j).unwrap();
                assert!(x >= 10 && y >= 10, "node site ({x},{y}) outside region");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_stateless_across_calls() {
        // The same Renormalizer must give identical results to a fresh one
        // on every call, whatever it processed before.
        let mut shared = Renormalizer::new();
        for seed in [3u64, 11, 3, 27, 11] {
            let mut engine = FusionEngine::new(HardwareConfig::new(32, 7, 0.74), seed);
            let layer = engine.generate_layer();
            let a = shared.renormalize(&layer, 8);
            let b = Renormalizer::new().renormalize(&layer, 8);
            assert_eq!(a.node_count(), b.node_count(), "seed {seed}");
            for i in 0..a.target_side() {
                assert_eq!(a.v_path(i), b.v_path(i), "seed {seed} v{i}");
                assert_eq!(a.h_path(i), b.h_path(i), "seed {seed} h{i}");
                for j in 0..a.target_side() {
                    assert_eq!(a.node_site(i, j), b.node_site(i, j), "seed {seed} ({i},{j})");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "node size")]
    fn zero_node_size_panics() {
        let layer = PhysicalLayer::fully_connected(8, 8);
        let _ = renormalize(&layer, 0);
    }

    #[test]
    fn consumed_sites_bounded_by_layer() {
        let layer = PhysicalLayer::fully_connected(16, 16);
        let lattice = renormalize(&layer, 4);
        assert!(lattice.consumed_sites() <= 256);
        assert!(lattice.consumed_sites() >= 16);
    }
}
