//! 2D renormalization of a single resource-state layer (Section 5.1).
//!
//! The largest connected component of the random physical graph state is
//! reshaped into a coarse-grained `k × k` square lattice by searching `k`
//! vertical paths (top to bottom) and `k` horizontal paths (left to right).
//! Every path is confined to its own band of width `node_size`, which keeps
//! distinct same-orientation paths separated and guarantees (by planarity)
//! that a vertical and a horizontal path that both exist intersect inside
//! their common block; the intersection site becomes the renormalized node.
//! Connectivity is pre-checked with a disjoint-set structure before the BFS
//! shortest-path search, exactly as prescribed by the paper.

use std::collections::{HashMap, VecDeque};

use graphstate::DisjointSet;
use oneperc_hardware::PhysicalLayer;

/// The outcome of renormalizing one RSL.
#[derive(Debug, Clone)]
pub struct RenormalizedLattice {
    target_side: usize,
    node_size: usize,
    /// Representative physical site of each coarse node, keyed by coarse
    /// coordinate `(i, j)`.
    nodes: HashMap<(usize, usize), (usize, usize)>,
    /// Vertical path (site coordinates) for each coarse column, when found.
    v_paths: Vec<Option<Vec<(usize, usize)>>>,
    /// Horizontal path for each coarse row, when found.
    h_paths: Vec<Option<Vec<(usize, usize)>>>,
}

impl RenormalizedLattice {
    /// The requested coarse lattice side `k`.
    pub fn target_side(&self) -> usize {
        self.target_side
    }

    /// The average node size `n` used for the band decomposition.
    pub fn node_size(&self) -> usize {
        self.node_size
    }

    /// Returns `true` when every coarse node of the `k × k` target was
    /// realized.
    pub fn is_success(&self) -> bool {
        self.nodes.len() == self.target_side * self.target_side
    }

    /// Number of coarse nodes realized.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Representative physical site of the coarse node `(i, j)`, if it was
    /// realized.
    pub fn node_site(&self, i: usize, j: usize) -> Option<(usize, usize)> {
        self.nodes.get(&(i, j)).copied()
    }

    /// The vertical path realizing coarse column `i`, if found.
    pub fn v_path(&self, i: usize) -> Option<&[(usize, usize)]> {
        self.v_paths.get(i).and_then(|p| p.as_deref())
    }

    /// The horizontal path realizing coarse row `j`, if found.
    pub fn h_path(&self, j: usize) -> Option<&[(usize, usize)]> {
        self.h_paths.get(j).and_then(|p| p.as_deref())
    }

    /// Number of vertical paths found.
    pub fn v_path_count(&self) -> usize {
        self.v_paths.iter().filter(|p| p.is_some()).count()
    }

    /// Number of horizontal paths found.
    pub fn h_path_count(&self) -> usize {
        self.h_paths.iter().filter(|p| p.is_some()).count()
    }

    /// Total physical sites consumed by the coarse structure (paths and
    /// nodes); the remaining qubits would be measured out in the `Z` basis.
    pub fn consumed_sites(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for p in self.v_paths.iter().chain(self.h_paths.iter()).flatten() {
            seen.extend(p.iter().copied());
        }
        seen.len()
    }
}

/// Reusable renormalizer holding scratch buffers; use [`renormalize`] for
/// one-off calls.
#[derive(Debug, Clone, Default)]
pub struct Renormalizer {
    _private: (),
}

impl Renormalizer {
    /// Creates a renormalizer.
    pub fn new() -> Self {
        Renormalizer { _private: () }
    }

    /// Renormalizes a sub-rectangle of the layer (used by the modular
    /// variant). `origin` is the top-left corner (x, y) of the region and
    /// `width`/`height` its extent; the coarse lattice targets
    /// `width / node_size` columns and `height / node_size` rows.
    pub fn renormalize_region(
        &self,
        layer: &PhysicalLayer,
        origin: (usize, usize),
        width: usize,
        height: usize,
        node_size: usize,
    ) -> RenormalizedLattice {
        assert!(node_size > 0, "node size must be positive");
        let (ox, oy) = origin;
        assert!(
            ox + width <= layer.width && oy + height <= layer.height,
            "region exceeds the layer"
        );
        let k_cols = width / node_size;
        let k_rows = height / node_size;
        let k = k_cols.min(k_rows);

        let mut v_paths: Vec<Option<Vec<(usize, usize)>>> = Vec::with_capacity(k);
        let mut h_paths: Vec<Option<Vec<(usize, usize)>>> = Vec::with_capacity(k);

        // Alternating search order (vertical, horizontal, vertical, ...) as
        // suggested by the paper; with disjoint bands the orders only affect
        // scratch locality, so we simply interleave.
        for band in 0..k {
            v_paths.push(self.search_path(layer, origin, node_size, band, height, true));
            h_paths.push(self.search_path(layer, origin, node_size, band, width, false));
        }

        // Intersections become coarse nodes.
        let mut nodes = HashMap::new();
        for (i, vp) in v_paths.iter().enumerate() {
            let Some(vp) = vp else { continue };
            let v_sites: std::collections::HashSet<(usize, usize)> = vp.iter().copied().collect();
            for (j, hp) in h_paths.iter().enumerate() {
                let Some(hp) = hp else { continue };
                if let Some(&site) = hp.iter().find(|s| v_sites.contains(s)) {
                    nodes.insert((i, j), site);
                } else {
                    // Paths share no site (possible when a band is wider
                    // than the region actually covered); fall back to the
                    // closest pair of sites in the common block.
                    if let Some(site) = closest_block_site(vp, hp, node_size, origin, i, j) {
                        nodes.insert((i, j), site);
                    }
                }
            }
        }

        RenormalizedLattice {
            target_side: k,
            node_size,
            nodes,
            v_paths,
            h_paths,
        }
    }

    /// Searches one band-restricted crossing path. For `vertical == true`
    /// the path runs from the top row to the bottom row of the region inside
    /// column band `band`; otherwise from the left column to the right
    /// column inside row band `band`. Returns the path as site coordinates,
    /// or `None` when the band does not percolate.
    fn search_path(
        &self,
        layer: &PhysicalLayer,
        origin: (usize, usize),
        node_size: usize,
        band: usize,
        span: usize,
        vertical: bool,
    ) -> Option<Vec<(usize, usize)>> {
        let (ox, oy) = origin;
        let band_lo = band * node_size;
        let band_hi = band_lo + node_size;

        // The set of allowed sites: present sites inside the band.
        let in_band = |x: usize, y: usize| -> bool {
            if vertical {
                x >= ox + band_lo && x < ox + band_hi && y >= oy && y < oy + span
            } else {
                y >= oy + band_lo && y < oy + band_hi && x >= ox && x < ox + span
            }
        };
        let allowed = |x: usize, y: usize| -> bool {
            x < layer.width && y < layer.height && in_band(x, y) && layer.site_present(x, y)
        };

        // Fast connectivity pre-check with a union-find over the band,
        // joining all start-edge sites to a virtual source and all end-edge
        // sites to a virtual sink.
        let band_w = if vertical { node_size } else { span };
        let band_h = if vertical { span } else { node_size };
        let local = |x: usize, y: usize| -> usize {
            let lx = x - (ox + if vertical { band_lo } else { 0 });
            let ly = y - (oy + if vertical { 0 } else { band_lo });
            ly * band_w + lx
        };
        let n_local = band_w * band_h;
        let source = n_local;
        let sink = n_local + 1;
        let mut dsu = DisjointSet::new(n_local + 2);
        let (gx0, gy0) = (
            ox + if vertical { band_lo } else { 0 },
            oy + if vertical { 0 } else { band_lo },
        );
        for ly in 0..band_h {
            for lx in 0..band_w {
                let (x, y) = (gx0 + lx, gy0 + ly);
                if !allowed(x, y) {
                    continue;
                }
                let here = local(x, y);
                let at_start = if vertical { y == oy } else { x == ox };
                let at_end = if vertical { y == oy + span - 1 } else { x == ox + span - 1 };
                if at_start {
                    dsu.union(here, source);
                }
                if at_end {
                    dsu.union(here, sink);
                }
                if x + 1 < layer.width && allowed(x + 1, y) && layer.bond_east(x, y) {
                    dsu.union(here, local(x + 1, y));
                }
                if y + 1 < layer.height && allowed(x, y + 1) && layer.bond_north(x, y) {
                    dsu.union(here, local(x, y + 1));
                }
            }
        }
        if !dsu.same_set(source, sink) {
            return None;
        }

        // BFS for the shortest crossing path (self-tangling free by
        // construction of BFS trees).
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; n_local];
        let mut seen = vec![false; n_local];
        let mut queue = VecDeque::new();
        for t in 0..node_size {
            // Seed the frontier with every allowed start-edge site of the band.
            let (x, y) = if vertical { (gx0 + t, oy) } else { (ox, gy0 + t) };
            if allowed(x, y) {
                seen[local(x, y)] = true;
                queue.push_back((x, y));
            }
        }
        while let Some((x, y)) = queue.pop_front() {
            let at_end = if vertical { y == oy + span - 1 } else { x == ox + span - 1 };
            if at_end {
                // Reconstruct.
                let mut path = vec![(x, y)];
                let mut cur = (x, y);
                while let Some(p) = prev[local(cur.0, cur.1)] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            let neighbors = [
                (x.wrapping_add(1), y, layer.bond_east(x, y)),
                (x.wrapping_sub(1), y, x > 0 && layer.bond_east(x.wrapping_sub(1), y)),
                (x, y.wrapping_add(1), layer.bond_north(x, y)),
                (x, y.wrapping_sub(1), y > 0 && layer.bond_north(x, y.wrapping_sub(1))),
            ];
            for (nx, ny, bonded) in neighbors {
                if !bonded || !allowed(nx, ny) {
                    continue;
                }
                let li = local(nx, ny);
                if !seen[li] {
                    seen[li] = true;
                    prev[li] = Some((x, y));
                    queue.push_back((nx, ny));
                }
            }
        }
        None
    }
}

/// Fallback coarse-node site when the two paths do not share a site: the
/// site of the vertical path closest (in Manhattan distance) to any site of
/// the horizontal path inside block `(i, j)`.
fn closest_block_site(
    vp: &[(usize, usize)],
    hp: &[(usize, usize)],
    node_size: usize,
    origin: (usize, usize),
    i: usize,
    j: usize,
) -> Option<(usize, usize)> {
    let (ox, oy) = origin;
    let x_lo = ox + i * node_size;
    let x_hi = x_lo + node_size;
    let y_lo = oy + j * node_size;
    let y_hi = y_lo + node_size;
    let in_block =
        |&(x, y): &(usize, usize)| x >= x_lo && x < x_hi && y >= y_lo && y < y_hi;
    let v_block: Vec<(usize, usize)> = vp.iter().copied().filter(|s| in_block(s)).collect();
    let h_block: Vec<(usize, usize)> = hp.iter().copied().filter(|s| in_block(s)).collect();
    let mut best: Option<((usize, usize), usize)> = None;
    for &v in &v_block {
        for &h in &h_block {
            let d = v.0.abs_diff(h.0) + v.1.abs_diff(h.1);
            if best.map_or(true, |(_, bd)| d < bd) {
                best = Some((v, d));
            }
        }
    }
    best.map(|(s, _)| s)
}

/// Renormalizes an entire layer with the given average node size, targeting
/// a coarse lattice of side `layer.width / node_size`.
///
/// # Panics
///
/// Panics when `node_size` is zero or larger than the layer.
pub fn renormalize(layer: &PhysicalLayer, node_size: usize) -> RenormalizedLattice {
    assert!(
        node_size > 0 && node_size <= layer.width && node_size <= layer.height,
        "node size must be positive and fit in the layer"
    );
    Renormalizer::new().renormalize_region(layer, (0, 0), layer.width, layer.height, node_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneperc_hardware::{FusionEngine, HardwareConfig};

    #[test]
    fn full_lattice_renormalizes_perfectly() {
        let layer = PhysicalLayer::fully_connected(24, 24);
        let lattice = renormalize(&layer, 6);
        assert_eq!(lattice.target_side(), 4);
        assert!(lattice.is_success());
        assert_eq!(lattice.node_count(), 16);
        assert_eq!(lattice.v_path_count(), 4);
        assert_eq!(lattice.h_path_count(), 4);
        // The representative of coarse node (i, j) lies inside block (i, j).
        for i in 0..4 {
            for j in 0..4 {
                let (x, y) = lattice.node_site(i, j).unwrap();
                assert!(x >= i * 6 && x < (i + 1) * 6, "x {x} outside band {i}");
                assert!(y >= j * 6 && y < (j + 1) * 6, "y {y} outside band {j}");
            }
        }
    }

    #[test]
    fn empty_lattice_fails() {
        let layer = PhysicalLayer::blank(16, 16); // no bonds at all
        let lattice = renormalize(&layer, 4);
        assert!(!lattice.is_success());
        assert_eq!(lattice.node_count(), 0);
        assert_eq!(lattice.consumed_sites(), 0);
    }

    #[test]
    fn percolating_layer_renormalizes_with_high_probability() {
        let mut engine = FusionEngine::new(HardwareConfig::new(48, 7, 0.78), 5);
        let layer = engine.generate_layer();
        let lattice = renormalize(&layer, 12);
        assert_eq!(lattice.target_side(), 4);
        assert!(
            lattice.node_count() >= 12,
            "expected most nodes realized, got {}",
            lattice.node_count()
        );
    }

    #[test]
    fn coarser_nodes_succeed_more_often() {
        // Fig. 16 behaviour: success probability grows rapidly with the
        // average node size.
        let trials = 12;
        let mut fine = 0;
        let mut coarse = 0;
        for seed in 0..trials {
            let mut engine = FusionEngine::new(HardwareConfig::new(48, 7, 0.68), seed);
            let layer = engine.generate_layer();
            if renormalize(&layer, 4).is_success() {
                fine += 1;
            }
            if renormalize(&layer, 16).is_success() {
                coarse += 1;
            }
        }
        assert!(
            coarse >= fine,
            "coarse-grained renormalization should succeed at least as often (coarse {coarse}, fine {fine})"
        );
        assert!(coarse >= trials * 2 / 3, "coarse renormalization too weak: {coarse}/{trials}");
    }

    #[test]
    fn paths_stay_inside_their_bands() {
        let mut engine = FusionEngine::new(HardwareConfig::new(36, 7, 0.75), 17);
        let layer = engine.generate_layer();
        let lattice = renormalize(&layer, 9);
        for i in 0..lattice.target_side() {
            if let Some(path) = lattice.v_path(i) {
                for &(x, _) in path {
                    assert!(x >= i * 9 && x < (i + 1) * 9);
                }
                // A vertical path touches the first and last row.
                assert_eq!(path.first().unwrap().1, 0);
                assert_eq!(path.last().unwrap().1, 35);
            }
            if let Some(path) = lattice.h_path(i) {
                for &(_, y) in path {
                    assert!(y >= i * 9 && y < (i + 1) * 9);
                }
                assert_eq!(path.first().unwrap().0, 0);
                assert_eq!(path.last().unwrap().0, 35);
            }
        }
    }

    #[test]
    fn region_renormalization_respects_origin() {
        let layer = PhysicalLayer::fully_connected(20, 20);
        let r = Renormalizer::new();
        let lattice = r.renormalize_region(&layer, (10, 10), 10, 10, 5);
        assert_eq!(lattice.target_side(), 2);
        assert!(lattice.is_success());
        for i in 0..2 {
            for j in 0..2 {
                let (x, y) = lattice.node_site(i, j).unwrap();
                assert!(x >= 10 && y >= 10, "node site ({x},{y}) outside region");
            }
        }
    }

    #[test]
    #[should_panic(expected = "node size")]
    fn zero_node_size_panics() {
        let layer = PhysicalLayer::fully_connected(8, 8);
        let _ = renormalize(&layer, 0);
    }

    #[test]
    fn consumed_sites_bounded_by_layer() {
        let layer = PhysicalLayer::fully_connected(16, 16);
        let lattice = renormalize(&layer, 4);
        assert!(lattice.consumed_sites() <= 256);
        assert!(lattice.consumed_sites() >= 16);
    }
}
