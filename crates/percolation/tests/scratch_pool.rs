//! Property tests for `ScratchPool` epoch-stamping under cross-layer (and
//! cross-thread) reuse, exercised through the public renormalizer APIs.
//!
//! The worker pool keeps one `Renormalizer` — and thus one `ScratchPool` —
//! alive per worker for the lifetime of the RSL stream, and `Renormalizer`
//! values may be moved between threads (a pool teardown/rebuild migrates
//! the work to freshly owned pools). These tests pin down the contract that
//! makes all of that safe: a scratch pool's history is unobservable, no
//! matter how many layers it has seen or which thread drives it.

use std::sync::Arc;

use oneperc_hardware::{FusionEngine, HardwareConfig, PhysicalLayer};
use oneperc_percolation::{
    ModularConfig, ModularRenormalizer, ModuleRegion, Renormalizer, WorkerPool,
};

fn random_layer(side: usize, p: f64, seed: u64) -> PhysicalLayer {
    let mut engine = FusionEngine::new(HardwareConfig::new(side, 7, p), seed);
    engine.generate_layer()
}

/// Reference output from a renormalizer that has never seen another layer.
fn fresh(layer: &PhysicalLayer, node_size: usize) -> oneperc_percolation::RenormalizedLattice {
    Renormalizer::new().renormalize(layer, node_size)
}

#[test]
fn heavily_reused_pool_matches_fresh_pool_after_thousands_of_layers() {
    // Reset-free reuse: one Renormalizer across thousands of layers of
    // varying geometry must keep producing exactly what a fresh pool
    // produces — the epoch stamps stand in for a full clear per layer.
    let mut veteran = Renormalizer::new();
    for round in 0..1500u64 {
        // Alternate geometries so stale stamps from a larger layer overlap
        // the sites of a smaller one.
        let (side, node) = if round % 3 == 0 { (24, 6) } else { (16, 4) };
        let layer = random_layer(side, 0.72, round);
        let a = veteran.renormalize(&layer, node);
        if round % 250 == 0 || round < 5 {
            assert_eq!(a, fresh(&layer, node), "round {round} diverged");
        }
    }
}

#[test]
fn renormalizer_migrated_across_threads_never_leaks_marks() {
    // Regression: a pool that renormalized layer A on one thread, then
    // moves to another thread and renormalizes layer B, must not carry
    // visitation marks over. (Stamps are per-pool state, not per-thread,
    // so a move is invisible — this pins that down.)
    let layer_a = random_layer(32, 0.75, 11);
    let layer_b = random_layer(32, 0.70, 99);

    let expected_b = fresh(&layer_b, 8);
    let mut migrant = Renormalizer::new();
    let on_a = migrant.renormalize(&layer_a, 8);
    assert_eq!(on_a, fresh(&layer_a, 8));

    // Move the renormalizer (with its warm scratch) into a worker thread.
    let (migrant, on_b) = std::thread::spawn(move || {
        let mut migrant = migrant;
        let on_b = migrant.renormalize(&layer_b, 8);
        (migrant, on_b)
    })
    .join()
    .expect("worker thread");
    assert_eq!(on_b, expected_b, "marks leaked into the migrated pool");

    // And back to the original thread, onto the first layer again.
    let mut migrant = migrant;
    assert_eq!(migrant.renormalize(&layer_a, 8), on_a, "round trip diverged");
}

#[test]
fn pool_workers_reusing_scratch_across_layers_match_sequential() {
    // A 1-worker pool funnels every module of every layer through the same
    // scratch pool, in whatever order the batches arrive — the harshest
    // reuse pattern. It must match a sequential renormalizer layer for
    // layer.
    let config = ModularConfig::new(2, 7, 6).with_workers(1);
    let mut pooled = ModularRenormalizer::new(config);
    let mut sequential = ModularRenormalizer::new(config.sequential());
    for seed in 0..12u64 {
        let layer = Arc::new(random_layer(48, 0.74, seed));
        let a = pooled.run_shared(&layer);
        let b = sequential.run(&layer);
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn overlapping_regions_on_one_worker_stay_independent() {
    // Overlapping module regions of the same layer visit the same flat
    // sites back to back on one worker; each batch result must equal a
    // fresh renormalizer's answer for its region.
    let layer = Arc::new(random_layer(40, 0.75, 7));
    let regions = [
        ModuleRegion { origin: (0, 0), width: 24, height: 24 },
        ModuleRegion { origin: (8, 8), width: 24, height: 24 },
        ModuleRegion { origin: (16, 16), width: 24, height: 24 },
        ModuleRegion { origin: (0, 0), width: 24, height: 24 },
    ];
    let pool = WorkerPool::new(1);
    let lattices = pool.renormalize_modules(&layer, &regions, 6);
    for (region, lattice) in regions.iter().zip(&lattices) {
        let expected = Renormalizer::new().renormalize_region(
            &layer,
            region.origin,
            region.width,
            region.height,
            6,
        );
        assert_eq!(lattice, &expected, "region {region:?}");
    }
    assert_eq!(lattices[0], lattices[3], "identical regions must agree");
}
