//! Repo automation driven through `cargo xtask <command>` (the alias lives
//! in `.cargo/config.toml`). Dependency-free on purpose: the tasks here run
//! in CI before anything else, so they must build instantly from a cold
//! cache.
//!
//! Commands:
//!
//! * `lint-sync` — the synchronization wall described in `CONCURRENCY.md`:
//!   production code in the sync-bearing crates must reach `Mutex`,
//!   `Condvar`, `std::thread`, mpsc channels and atomics through the
//!   crate-local `sync` façade (routable through `oneperc-verify`'s model
//!   scheduler under `--cfg oneperc_model`), never through `std` directly,
//!   and may not use the `.lock().unwrap()` idiom (poison recovery is
//!   `unwrap_or_else(PoisonError::into_inner)` or an `expect` with an
//!   invariant message).
//! * `fuzz-determinism` — builds the `oneperc-corpus` fuzzer in release
//!   mode and forwards the remaining flags to it verbatim (see
//!   `crates/corpus/README.md` for the flags and the
//!   `ONEPERC_FUZZ_REPLAY` workflow).

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod lint_sync;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint-sync") => lint_sync::run(&repo_root()),
        Some("fuzz-determinism") => fuzz_determinism(args),
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: cargo xtask <command>\n\ncommands:\n    lint-sync            reject raw std synchronization outside the sync façades\n    fuzz-determinism     sweep random corpus circuits across all execution paths\n                         (flags are forwarded to the fuzzer; try --help)";

/// Runs the corpus determinism fuzzer in release mode, forwarding every
/// remaining argument. xtask stays dependency-free, so this shells out to
/// cargo rather than linking the corpus crate.
fn fuzz_determinism(args: impl Iterator<Item = String>) -> ExitCode {
    let status = std::process::Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
        .current_dir(repo_root())
        .args(["run", "--release", "-q", "-p", "oneperc-corpus", "--bin", "fuzz-determinism", "--"])
        .args(args)
        .status();
    match status {
        Ok(status) if status.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(error) => {
            eprintln!("xtask: failed to launch cargo: {error}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: `cargo xtask` runs with the xtask crate as cwd or
/// the workspace root depending on invocation, so walk up to the directory
/// holding the workspace manifest.
fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd is readable");
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            panic!("xtask must run inside the workspace");
        }
    }
}

/// One lint hit, printed in the compiler's `path:line: message` shape so
/// editors and CI annotations pick it up.
pub(crate) struct Finding {
    pub(crate) file: PathBuf,
    pub(crate) line: usize,
    pub(crate) message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file.display(), self.line, self.message)
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
pub(crate) fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}
