//! `cargo xtask lint-sync`: the static wall in front of the model checker.
//!
//! The bounded model checker (`oneperc-verify`) can only explore
//! synchronization it can see — an operation that reaches `std::sync`
//! directly bypasses the scheduler and silently shrinks the verified
//! surface. This pass keeps that surface closed:
//!
//! * In the **façade crates** (`percolation`, `oneperc` — crates with a
//!   `src/sync.rs`), production code must import `Mutex`, `Condvar`,
//!   `thread`, `mpsc` and `atomic` from `crate::sync`, never from `std`.
//! * In **every other workspace crate**, introducing `std::sync::Mutex`,
//!   `std::sync::Condvar` or `std::thread` at all is rejected — new
//!   synchronization belongs behind a façade so it stays model-checkable.
//! * `.lock().unwrap()` is rejected everywhere in production code: the
//!   workspace idiom is `unwrap_or_else(PoisonError::into_inner)` where
//!   poisoning is recoverable, or `.expect("…invariant…")` where it is a
//!   bug — a bare `unwrap` documents neither.
//!
//! Test modules are out of scope (they may use raw `std` freely: they run
//! only under the real scheduler). The scan relies on the repo convention
//! that `#[cfg(test)]` / `#[cfg(all(test, …))]` modules are the tail of a
//! file: scanning stops at the first such attribute. Doc comments and `//`
//! comments are skipped, and a line carrying `lint-sync: allow` is exempt
//! (use sparingly, with a reason on the same line).

use std::path::Path;
use std::process::ExitCode;

use crate::{rust_sources, Finding};

/// Crates whose production code is scanned, and whether they carry a
/// `crate::sync` façade (which tightens the rule set).
const CRATES: &[(&str, bool)] = &[
    ("circuit", false),
    ("corpus", false),
    ("graphstate", false),
    ("hardware", false),
    ("ir", false),
    ("mapper", false),
    ("oneperc", true),
    ("oneq", false),
    ("percolation", true),
    ("tune", false),
];

// Not scanned: `verify` (the shim itself — the one place raw `std::sync`
// is the point), `bench` (perf harness; never runs under the model),
// `shims` (vendored stand-ins for crates.io deps), `xtask` (this tool).

pub(crate) fn run(root: &Path) -> ExitCode {
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for &(krate, has_facade) in CRATES {
        let src = root.join("crates").join(krate).join("src");
        for file in rust_sources(&src) {
            // The façade itself is where the std names are re-exported.
            if has_facade && file.ends_with("sync.rs") && file.parent() == Some(src.as_path()) {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(&file) else { continue };
            scanned += 1;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            scan_file(&rel, &text, has_facade, &mut findings);
        }
    }

    if findings.is_empty() {
        println!("lint-sync: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        for finding in &findings {
            eprintln!("{finding}");
        }
        eprintln!(
            "lint-sync: {} violation(s) in {scanned} scanned files \
             (see CONCURRENCY.md for the routing rules)",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

fn scan_file(rel: &Path, text: &str, has_facade: bool, findings: &mut Vec<Finding>) {
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim_start();
        // Test modules are the tail of a file by repo convention; raw std
        // primitives are fine there (tests run under the real scheduler).
        if line.starts_with("#[cfg(test)]") || line.starts_with("#[cfg(all(test") {
            break;
        }
        if line.starts_with("//") || line.contains("lint-sync: allow") {
            continue;
        }
        let lineno = idx + 1;
        let mut report = |message: String| {
            findings.push(Finding { file: rel.to_path_buf(), line: lineno, message });
        };

        if line.contains(".lock().unwrap()") {
            report(
                "`.lock().unwrap()`: recover poisoning with \
                 `unwrap_or_else(PoisonError::into_inner)` or state the invariant \
                 with `.expect(\"…\")`"
                    .into(),
            );
        }

        if has_facade {
            // Façade crates: every schedulable primitive must route through
            // `crate::sync` so the model checker sees it.
            for primitive in ["Mutex", "Condvar", "mpsc", "atomic"] {
                if mentions_std_sync_item(line, primitive) {
                    report(format!(
                        "raw `std::sync::{primitive}`: import it from `crate::sync` so \
                         `--cfg oneperc_model` builds route it through the model scheduler"
                    ));
                }
            }
            if line.contains("std::thread") {
                report(
                    "raw `std::thread`: use `crate::sync::thread` so spawn/join/park \
                     are visible to the model scheduler"
                        .into(),
                );
            }
        } else {
            // Crates without a façade must not grow ad-hoc synchronization:
            // a new concurrent subsystem starts by adding a façade.
            for primitive in ["Mutex", "Condvar"] {
                if mentions_std_sync_item(line, primitive) {
                    report(format!(
                        "`std::sync::{primitive}` in a crate without a `sync` façade: \
                         add one (see percolation/src/sync.rs) so the code stays \
                         model-checkable"
                    ));
                }
            }
            if line.contains("std::thread") {
                report(
                    "`std::thread` in a crate without a `sync` façade: add one \
                     (see percolation/src/sync.rs) so the code stays model-checkable"
                        .into(),
                );
            }
        }
    }
}

/// Whether `line` references `item` out of `std::sync` — either as an
/// inline path (`std::sync::Mutex<T>`) or inside a grouped import
/// (`use std::sync::{Arc, Mutex}`).
fn mentions_std_sync_item(line: &str, item: &str) -> bool {
    if line.contains(&format!("std::sync::{item}")) {
        return true;
    }
    if let Some(rest) = line.split("std::sync::{").nth(1) {
        let group = rest.split('}').next().unwrap_or(rest);
        return group
            .split(',')
            .any(|entry| entry.split_whitespace().next() == Some(item));
    }
    false
}

#[cfg(test)]
mod tests {
    use super::mentions_std_sync_item;

    #[test]
    fn inline_path_is_detected() {
        assert!(mentions_std_sync_item("let m: std::sync::Mutex<u8> = x;", "Mutex"));
        assert!(!mentions_std_sync_item("let m: std::sync::Arc<u8> = x;", "Mutex"));
    }

    #[test]
    fn grouped_import_is_detected() {
        assert!(mentions_std_sync_item("use std::sync::{Arc, Mutex};", "Mutex"));
        assert!(mentions_std_sync_item("use std::sync::{Condvar, Arc};", "Condvar"));
        assert!(!mentions_std_sync_item("use std::sync::{Arc, OnceLock};", "Mutex"));
    }

    #[test]
    fn renamed_import_is_detected() {
        assert!(mentions_std_sync_item("use std::sync::{Mutex as StdMutex};", "Mutex"));
    }
}
