//! Equivalence and micro-benchmark tests for the flat-grid renormalizer
//! against the preserved hash-based baseline.
//!
//! The flat-index rewrite is a pure representation change: on every input
//! the two engines must produce the *same* renormalized lattice — same
//! realized nodes at the same physical sites, same vertical/horizontal
//! paths site by site, same success verdict, same consumed-site count.
//! These tests check that over a family of seeded random layers spanning
//! sizes, fusion probabilities, node sizes and region origins.

use std::time::Instant;

use oneperc_bench::baseline::{hash_renormalize, HashRenormalizedLattice, HashRenormalizer};
use oneperc_hardware::{FusionEngine, HardwareConfig, PhysicalLayer};
use oneperc_percolation::{renormalize, RenormalizedLattice, Renormalizer};

/// Asserts the two lattices are identical in every observable.
fn assert_equivalent(flat: &RenormalizedLattice, hash: &HashRenormalizedLattice, ctx: &str) {
    assert_eq!(flat.target_side(), hash.target_side(), "{ctx}: target side");
    assert_eq!(flat.node_size(), hash.node_size(), "{ctx}: node size");
    assert_eq!(flat.is_success(), hash.is_success(), "{ctx}: success");
    assert_eq!(flat.node_count(), hash.node_count(), "{ctx}: node count");
    assert_eq!(flat.v_path_count(), hash.v_path_count(), "{ctx}: v paths");
    assert_eq!(flat.h_path_count(), hash.h_path_count(), "{ctx}: h paths");
    assert_eq!(flat.consumed_sites(), hash.consumed_sites(), "{ctx}: consumed");
    let k = flat.target_side();
    for i in 0..k {
        for j in 0..k {
            assert_eq!(
                flat.node_site(i, j),
                hash.node_site(i, j),
                "{ctx}: node ({i}, {j})"
            );
        }
        let fv: Option<Vec<(usize, usize)>> =
            flat.v_path(i).map(|p| flat.path_coords(p).collect());
        let hv: Option<Vec<(usize, usize)>> = hash.v_path(i).map(<[(usize, usize)]>::to_vec);
        assert_eq!(fv, hv, "{ctx}: v path {i}");
        let fh: Option<Vec<(usize, usize)>> =
            flat.h_path(i).map(|p| flat.path_coords(p).collect());
        let hh: Option<Vec<(usize, usize)>> = hash.h_path(i).map(<[(usize, usize)]>::to_vec);
        assert_eq!(fh, hh, "{ctx}: h path {i}");
    }
}

#[test]
fn identical_on_seeded_random_layers() {
    for (rsl, node_size) in [(24usize, 6usize), (36, 9), (40, 10), (48, 12)] {
        for p in [0.66, 0.75, 0.9] {
            for seed in 0..4u64 {
                let mut engine = FusionEngine::new(HardwareConfig::new(rsl, 7, p), seed);
                let layer = engine.generate_layer();
                let flat = renormalize(&layer, node_size);
                let hash = hash_renormalize(&layer, node_size);
                assert_equivalent(&flat, &hash, &format!("rsl {rsl} p {p} seed {seed}"));
            }
        }
    }
}

#[test]
fn identical_on_merged_low_degree_layers() {
    // 4-qubit resource states exercise the merging phase and produce
    // sparser site patterns (missing sites stress the BFS gating).
    for seed in 0..6u64 {
        let mut engine = FusionEngine::new(HardwareConfig::new(32, 4, 0.7), seed);
        let layer = engine.generate_layer();
        let flat = renormalize(&layer, 8);
        let hash = hash_renormalize(&layer, 8);
        assert_equivalent(&flat, &hash, &format!("merged seed {seed}"));
    }
}

#[test]
fn identical_on_degenerate_layers() {
    let full = PhysicalLayer::fully_connected(30, 30);
    assert_equivalent(
        &renormalize(&full, 6),
        &hash_renormalize(&full, 6),
        "fully connected",
    );
    let blank = PhysicalLayer::blank(20, 20);
    assert_equivalent(&renormalize(&blank, 5), &hash_renormalize(&blank, 5), "blank");
}

#[test]
fn identical_on_offset_regions() {
    for seed in 0..4u64 {
        let mut engine = FusionEngine::new(HardwareConfig::new(48, 7, 0.78), seed);
        let layer = engine.generate_layer();
        let mut flat_engine = Renormalizer::new();
        let hash_engine = HashRenormalizer::new();
        for (origin, w, h, ns) in
            [((0usize, 0usize), 24usize, 24usize, 6usize), ((12, 12), 24, 24, 8), ((20, 8), 20, 30, 5)]
        {
            let flat = flat_engine.renormalize_region(&layer, origin, w, h, ns);
            let hash = hash_engine.renormalize_region(&layer, origin, w, h, ns);
            assert_eq!(flat.target_side(), hash.target_side());
            assert_eq!(flat.node_count(), hash.node_count(), "seed {seed} origin {origin:?}");
            for i in 0..flat.target_side() {
                for j in 0..flat.target_side() {
                    assert_eq!(
                        flat.node_site(i, j),
                        hash.node_site(i, j),
                        "seed {seed} origin {origin:?} node ({i}, {j})"
                    );
                }
            }
        }
    }
}

/// Deterministic micro-benchmark (test-gated twin of the criterion
/// `flat_vs_hash` group): renormalize the same pre-generated L=40 layers
/// with both engines and print the per-RSL latencies. The assertion is
/// deliberately loose — unoptimized builds distort relative costs — the
/// release-mode ≥ 2x claim is enforced by `bench_pr1` (see
/// `BENCH_PR1.json`).
#[test]
fn micro_bench_flat_not_slower_than_hash() {
    let layers: Vec<PhysicalLayer> = (0..8u64)
        .map(|seed| {
            let mut engine = FusionEngine::new(HardwareConfig::new(40, 7, 0.75), seed);
            engine.generate_layer()
        })
        .collect();
    let node_size = 10;
    let reps = 6;

    // Warm both paths once so first-touch page faults hit neither timing.
    let mut flat_engine = Renormalizer::new();
    for layer in &layers {
        std::hint::black_box(flat_engine.renormalize(layer, node_size).node_count());
        std::hint::black_box(hash_renormalize(layer, node_size).node_count());
    }

    let t0 = Instant::now();
    for _ in 0..reps {
        for layer in &layers {
            std::hint::black_box(flat_engine.renormalize(layer, node_size).node_count());
        }
    }
    let flat_per_rsl = t0.elapsed().as_secs_f64() / (reps * layers.len()) as f64;

    let t1 = Instant::now();
    for _ in 0..reps {
        for layer in &layers {
            std::hint::black_box(hash_renormalize(layer, node_size).node_count());
        }
    }
    let hash_per_rsl = t1.elapsed().as_secs_f64() / (reps * layers.len()) as f64;

    println!(
        "L=40 per-RSL renormalization: flat {:.1} us, hash {:.1} us, speedup {:.2}x",
        flat_per_rsl * 1e6,
        hash_per_rsl * 1e6,
        hash_per_rsl / flat_per_rsl
    );
    assert!(
        flat_per_rsl <= hash_per_rsl * 1.10,
        "flat-grid engine regressed below the hash baseline: flat {:.1} us vs hash {:.1} us",
        flat_per_rsl * 1e6,
        hash_per_rsl * 1e6
    );
}
