//! Equivalence harness for the word-parallel hot paths: the bit-packed
//! `PhysicalLayer` generation must be site-for-site identical to the dense
//! `Vec<bool>` reference, and (since PR 6) the word-frontier BFS
//! renormalizer and span-scan modular joiner must be outcome-identical to
//! the preserved scalar implementations — across lattice sizes (including
//! word-boundary-hostile ones), merging factors, probability sweeps,
//! degenerate one-site bands, and `reset_blank` buffer reuse.
//!
//! This is the pin that lets the word-parallel hot path evolve: any
//! indexing, trailing-mask or draw-ordering bug in the packed
//! representation shows up as a coordinate-addressed mismatch here, and
//! any frontier-expansion or tie-break divergence in the renormalizer
//! shows up as the first differing node or path.

use oneperc_bench::dense::{
    scalar_modular_outcome, DenseBoolLayer, DenseReferenceEngine, ScalarRenormalizer,
};
use oneperc_hardware::{FusionEngine, HardwareConfig, PhysicalLayer};
use oneperc_percolation::{ModularConfig, ModularRenormalizer, Renormalizer};

/// Lattice sides straddling the 64-bit word geometry: sub-word, exact
/// power-of-two, a side whose square (1089) is word-unaligned, an exact
/// one-word row, and a row that spills a single column into a second word.
const SIDES: [usize; 7] = [1, 2, 7, 16, 33, 64, 65];

/// Resource-state sizes covering merging factors 3, 2 and 1.
const DEGREES: [usize; 3] = [4, 5, 7];

/// Fusion probabilities: dyadic (exact short bit-sliced expansion),
/// non-dyadic (full-depth expansion), and the certain edge case.
const PROBS: [f64; 5] = [0.5, 0.66, 0.75, 0.9, 1.0];

fn assert_equivalent(dense: &DenseBoolLayer, packed: &PhysicalLayer, context: &str) {
    if let Some(msg) = dense.mismatch(packed) {
        panic!("{context}: {msg}");
    }
    // The popcount counters must agree with the naive byte walks.
    assert_eq!(dense.bond_count(), packed.bond_count(), "{context}: bond_count");
    assert_eq!(
        dense.present_site_count(),
        packed.present_site_count(),
        "{context}: present_site_count"
    );
}

#[test]
fn packed_generation_matches_dense_reference_across_configs() {
    for &side in &SIDES {
        for &degree in &DEGREES {
            for &p in &PROBS {
                for seed in [1u64, 42] {
                    let cfg = HardwareConfig::new(side, degree, p);
                    let mut packed_engine = FusionEngine::new(cfg, seed);
                    let mut dense_engine = DenseReferenceEngine::new(cfg, seed);
                    let mut packed = PhysicalLayer::blank(1, 1);
                    let mut dense = DenseBoolLayer::blank(1, 1);
                    for layer_no in 0..2 {
                        packed_engine.generate_layer_into(&mut packed);
                        dense_engine.generate_layer_into(&mut dense);
                        assert_equivalent(
                            &dense,
                            &packed,
                            &format!("L={side} d={degree} p={p} seed={seed} layer={layer_no}"),
                        );
                    }
                    assert_eq!(
                        packed_engine.fusion_stats(),
                        dense_engine.fusion_stats(),
                        "L={side} d={degree} p={p} seed={seed}: cumulative stats"
                    );
                    assert_eq!(
                        packed_engine.raw_rsl_consumed(),
                        dense_engine.raw_rsl_consumed(),
                        "L={side} d={degree} p={p} seed={seed}: raw RSLs"
                    );
                }
            }
        }
    }
}

#[test]
fn equivalence_survives_reset_blank_reuse_across_geometries() {
    // One packed buffer and one dense buffer are reused across every
    // configuration in sequence, so each generation inherits the previous
    // geometry's allocations (shrinking and regrowing through word
    // boundaries) and must still match a reference generated the same way.
    let mut packed = PhysicalLayer::blank(1, 1);
    let mut dense = DenseBoolLayer::blank(1, 1);
    for (round, &side) in SIDES.iter().chain(SIDES.iter().rev()).enumerate() {
        let cfg = HardwareConfig::new(side, 4, 0.75);
        let seed = 7 + round as u64;
        let mut packed_engine = FusionEngine::new(cfg, seed);
        let mut dense_engine = DenseReferenceEngine::new(cfg, seed);
        packed_engine.generate_layer_into(&mut packed);
        dense_engine.generate_layer_into(&mut dense);
        assert_equivalent(&dense, &packed, &format!("round {round} L={side}"));
    }
}

/// Fusion probabilities straddling the percolation threshold of the
/// renormalized lattice: the BFS suite wants layers where bands both do
/// and do not percolate, so near-critical values exercise the found /
/// not-found boundary instead of the trivially-connected regime.
const CRITICAL_PROBS: [f64; 3] = [0.62, 0.7, 0.75];

/// Band widths for the BFS suite: the degenerate one-site band (single
/// column for vertical searches, single row for horizontal ones), a
/// width that tiles the small sides unevenly, and the production size.
const NODE_SIZES: [usize; 3] = [1, 3, 6];

#[test]
fn word_frontier_bfs_matches_scalar_reference_across_configs() {
    // The word-parallel renormalizer (bitmap reachability gate + packed
    // extraction BFS, including the single-word fast path) must produce
    // exactly the lattice of the preserved scalar BFS: same nodes, same
    // paths site for site, for every side / merging factor / probability
    // / band width combination. Scratch pools are reused across all
    // configurations, as a streaming caller would.
    let mut word = Renormalizer::new();
    let mut scalar = ScalarRenormalizer::new();
    for &side in &SIDES {
        for &degree in &DEGREES {
            for &p in &CRITICAL_PROBS {
                let cfg = HardwareConfig::new(side, degree, p);
                let mut engine = FusionEngine::new(cfg, 2024);
                for layer_no in 0..2 {
                    let layer = engine.generate_layer();
                    for &node_size in &NODE_SIZES {
                        if node_size > side {
                            continue;
                        }
                        let w = word.renormalize(&layer, node_size);
                        let s = scalar.renormalize(&layer, node_size);
                        if let Some(msg) = s.mismatch(&w) {
                            panic!(
                                "L={side} d={degree} p={p} layer={layer_no} \
                                 node_size={node_size}: {msg}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn word_frontier_region_bfs_matches_scalar_reference_off_origin() {
    // Regions whose origin is not word-aligned shift every band against
    // the 64-bit grid, so the band-local plane construction (sub-word
    // extraction, trailing masks, cross-word carries at L=65) is
    // exercised at offsets the whole-layer test never sees.
    let mut word = Renormalizer::new();
    let mut scalar = ScalarRenormalizer::new();
    for &side in &[16usize, 33, 64, 65] {
        for &degree in &DEGREES {
            let cfg = HardwareConfig::new(side, degree, 0.7);
            let mut engine = FusionEngine::new(cfg, 7);
            let layer = engine.generate_layer();
            for &(ox, oy) in &[(1usize, 0usize), (5, 3), (7, 7)] {
                let w = side - ox - 1;
                let h = side - oy - 2;
                for &node_size in &[1usize, 4] {
                    if node_size > w.min(h) {
                        continue;
                    }
                    let got = word.renormalize_region(&layer, (ox, oy), w, h, node_size);
                    let want = scalar.renormalize_region(&layer, (ox, oy), w, h, node_size);
                    if let Some(msg) = want.mismatch(&got) {
                        panic!(
                            "L={side} d={degree} origin=({ox},{oy}) {w}x{h} \
                             node_size={node_size}: {msg}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn modular_pipeline_matches_scalar_reference() {
    // Full modular runs: word-frontier module BFS plus the span-scan
    // `join_across` against the scalar BFS plus the per-pair union scan.
    // Every module lattice, every joining verdict and every counter must
    // agree, across merging factors, near-critical probabilities and
    // module grids — including node size 1, where joining bands degrade
    // to single rows/columns.
    let mut scalar = ScalarRenormalizer::new();
    for &side in &[33usize, 64, 65] {
        for &degree in &DEGREES {
            for &p in &CRITICAL_PROBS {
                let cfg = HardwareConfig::new(side, degree, p);
                let mut engine = FusionEngine::new(cfg, 99);
                let layer = engine.generate_layer();
                for &(g, r, node) in &[(2usize, 7usize, 6usize), (2, 7, 1), (3, 4, 3)] {
                    let mcfg = ModularConfig::new(g, r, node).sequential();
                    let mut word = ModularRenormalizer::new(mcfg);
                    let got = word.run(&layer);
                    let want = scalar_modular_outcome(&layer, &mcfg, &mut scalar);
                    if let Some(msg) = want.mismatch(&got) {
                        panic!("L={side} d={degree} p={p} g={g} r={r} node={node}: {msg}");
                    }
                }
            }
        }
    }
}

#[test]
fn fresh_and_reused_packed_buffers_agree() {
    // generate_layer (fresh allocation) and generate_layer_into (reused
    // buffer) walk the same stream: the layers must be equal even when the
    // reused buffer previously held a larger, fully connected lattice.
    let cfg = HardwareConfig::new(33, 7, 0.75);
    let mut a = FusionEngine::new(cfg, 5);
    let mut b = FusionEngine::new(cfg, 5);
    let mut reused = PhysicalLayer::fully_connected(70, 70);
    for _ in 0..3 {
        let fresh = a.generate_layer();
        b.generate_layer_into(&mut reused);
        assert_eq!(fresh, reused);
    }
}
