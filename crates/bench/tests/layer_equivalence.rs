//! PR-5 equivalence harness: the bit-packed `PhysicalLayer` generation
//! path must be site-for-site identical to the dense `Vec<bool>` reference
//! implementation across lattice sizes (including word-boundary-hostile
//! ones), merging factors, probability sweeps, and `reset_blank` buffer
//! reuse.
//!
//! This is the pin that lets the word-parallel hot path evolve: any
//! indexing, trailing-mask or draw-ordering bug in the packed
//! representation shows up as a coordinate-addressed mismatch here.

use oneperc_bench::dense::{DenseBoolLayer, DenseReferenceEngine};
use oneperc_hardware::{FusionEngine, HardwareConfig, PhysicalLayer};

/// Lattice sides straddling the 64-bit word geometry: sub-word, exact
/// power-of-two, and a side whose square (1089) is word-unaligned.
const SIDES: [usize; 5] = [1, 2, 7, 16, 33];

/// Resource-state sizes covering merging factors 3, 2 and 1.
const DEGREES: [usize; 3] = [4, 5, 7];

/// Fusion probabilities: dyadic (exact short bit-sliced expansion),
/// non-dyadic (full-depth expansion), and the certain edge case.
const PROBS: [f64; 5] = [0.5, 0.66, 0.75, 0.9, 1.0];

fn assert_equivalent(dense: &DenseBoolLayer, packed: &PhysicalLayer, context: &str) {
    if let Some(msg) = dense.mismatch(packed) {
        panic!("{context}: {msg}");
    }
    // The popcount counters must agree with the naive byte walks.
    assert_eq!(dense.bond_count(), packed.bond_count(), "{context}: bond_count");
    assert_eq!(
        dense.present_site_count(),
        packed.present_site_count(),
        "{context}: present_site_count"
    );
}

#[test]
fn packed_generation_matches_dense_reference_across_configs() {
    for &side in &SIDES {
        for &degree in &DEGREES {
            for &p in &PROBS {
                for seed in [1u64, 42] {
                    let cfg = HardwareConfig::new(side, degree, p);
                    let mut packed_engine = FusionEngine::new(cfg, seed);
                    let mut dense_engine = DenseReferenceEngine::new(cfg, seed);
                    let mut packed = PhysicalLayer::blank(1, 1);
                    let mut dense = DenseBoolLayer::blank(1, 1);
                    for layer_no in 0..2 {
                        packed_engine.generate_layer_into(&mut packed);
                        dense_engine.generate_layer_into(&mut dense);
                        assert_equivalent(
                            &dense,
                            &packed,
                            &format!("L={side} d={degree} p={p} seed={seed} layer={layer_no}"),
                        );
                    }
                    assert_eq!(
                        packed_engine.fusion_stats(),
                        dense_engine.fusion_stats(),
                        "L={side} d={degree} p={p} seed={seed}: cumulative stats"
                    );
                    assert_eq!(
                        packed_engine.raw_rsl_consumed(),
                        dense_engine.raw_rsl_consumed(),
                        "L={side} d={degree} p={p} seed={seed}: raw RSLs"
                    );
                }
            }
        }
    }
}

#[test]
fn equivalence_survives_reset_blank_reuse_across_geometries() {
    // One packed buffer and one dense buffer are reused across every
    // configuration in sequence, so each generation inherits the previous
    // geometry's allocations (shrinking and regrowing through word
    // boundaries) and must still match a reference generated the same way.
    let mut packed = PhysicalLayer::blank(1, 1);
    let mut dense = DenseBoolLayer::blank(1, 1);
    for (round, &side) in SIDES.iter().chain(SIDES.iter().rev()).enumerate() {
        let cfg = HardwareConfig::new(side, 4, 0.75);
        let seed = 7 + round as u64;
        let mut packed_engine = FusionEngine::new(cfg, seed);
        let mut dense_engine = DenseReferenceEngine::new(cfg, seed);
        packed_engine.generate_layer_into(&mut packed);
        dense_engine.generate_layer_into(&mut dense);
        assert_equivalent(&dense, &packed, &format!("round {round} L={side}"));
    }
}

#[test]
fn fresh_and_reused_packed_buffers_agree() {
    // generate_layer (fresh allocation) and generate_layer_into (reused
    // buffer) walk the same stream: the layers must be equal even when the
    // reused buffer previously held a larger, fully connected lattice.
    let cfg = HardwareConfig::new(33, 7, 0.75);
    let mut a = FusionEngine::new(cfg, 5);
    let mut b = FusionEngine::new(cfg, 5);
    let mut reused = PhysicalLayer::fully_connected(70, 70);
    for _ in 0..3 {
        let fresh = a.generate_layer();
        b.generate_layer_into(&mut reused);
        assert_eq!(fresh, reused);
    }
}
