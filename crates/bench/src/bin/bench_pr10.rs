//! Measures gate-count → wall-clock scaling of the offline and online
//! passes over the PR-10 corpus families and writes `BENCH_PR10.json`
//! (the PR-10 acceptance artifact).
//!
//! Three scaling series, every circuit a pure function of its
//! [`CorpusSpec`] + seed:
//!
//! * **`layered`** — brickwork CNOT+T layers: a geometric depth sweep at
//!   width 9 up to the mapper's 100 000-IR-layer safety cap, then a width
//!   sweep (16/25/36 qubits) that crosses 10^5 gates — wider layers pack
//!   more gates per IR layer, so width is how a program gets big under
//!   the cap. The curve shows where the unoptimized mapper /
//!   `FlexLattice` offline pass stops being "free" relative to the
//!   online pass.
//! * **`rcachain`** — repeated 9-qubit ripple-carry adder passes, the
//!   arithmetic-shaped version of the same sweep (Toffoli-dense, ~300 IR
//!   layers per 24-gate round, swept to the same layer budget).
//! * **`qftadder`** — the Draper QFT adder swept by operand width. Gate
//!   count is O(bits²) but every extra bit is two more *qubits*, so this
//!   curve scales hardware footprint rather than program length and stays
//!   small by design.
//!
//! Per point: raw gate count, IR layers, mapped program nodes, offline
//! wall-clock, online wall-clock per seed, RSL consumed, completion.
//!
//! Run with `--release`; debug timings are meaningless.
//!
//! Usage: `bench_pr10 [--out <path>] [--smoke]`

use std::time::Instant;

use oneperc::{CompilerConfig, Session};
use oneperc_corpus::CorpusSpec;

const P: f64 = 0.9;
const EXEC_SEEDS: [u64; 2] = [1000, 1001];
const CIRCUIT_SEED: u64 = 2024;

struct Args {
    out: String,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args { out: "BENCH_PR10.json".to_string(), smoke: false };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                args.out = iter.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "bench_pr10: offline/online wall-clock scaling curves over the \
                     corpus families (layered and rcachain to >= 1e5 gates, qftadder \
                     by qubit footprint); writes BENCH_PR10.json"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The sweep grid: geometric in the size knob so the curves are straight
/// lines on a log axis.
///
/// The mapper carries a hard 100 000-IR-layer safety cap
/// (`MapperConfig::max_layers`) and packs ~0.5 gates per IR layer at
/// width 9 (the incomplete-node occupancy cap is 0.25 × nodes/layer), so
/// no width-9 program can reach 10^5 gates. The depth sweeps therefore
/// stop near the cap, and the final 10^5-gate point is reached by
/// *widening* the brickwork instead — wider layers pack more gates per IR
/// layer, which is itself a scaling fact the curve should show.
fn grid(smoke: bool) -> Vec<CorpusSpec> {
    let layered =
        |width, depth| CorpusSpec::Layered { width, depth, entanglement_permille: 400 };
    let rcachain = |rounds| CorpusSpec::RcaChain { qubits: 9, rounds };
    let qftadder = |bits| CorpusSpec::QftAdder { bits };
    if smoke {
        return vec![
            layered(9, 8),
            layered(9, 32),
            rcachain(2),
            rcachain(8),
            qftadder(2),
            qftadder(3),
        ];
    }
    let mut specs = Vec::new();
    // Depth sweep at fixed width 9, up to the mapper's layer budget.
    for depth in [16, 64, 256, 1024, 4096] {
        specs.push(layered(9, depth));
    }
    // Width sweep at ~constant IR-layer load, crossing 1e5 gates.
    specs.push(layered(16, 2048));
    specs.push(layered(25, 2885));
    specs.push(layered(36, 3500));
    // Toffoli-dense arithmetic; ~300 IR layers per round caps the sweep.
    for rounds in [2, 8, 32, 128, 300] {
        specs.push(rcachain(rounds));
    }
    for bits in [2, 3, 4, 5, 6] {
        specs.push(qftadder(bits));
    }
    specs
}

struct Row {
    spec: CorpusSpec,
    qubits: usize,
    gates: usize,
    ir_layers: usize,
    program_nodes: usize,
    offline_ms: f64,
    online_ms_per_seed: f64,
    rsl_consumed: u64,
    complete: bool,
}

/// One point: compile once (offline timing), then a warm two-seed batch
/// (online timing per seed).
fn measure(spec: CorpusSpec) -> Row {
    let circuit = spec.circuit(CIRCUIT_SEED);
    let gates = circuit.gates().len();
    let config = CompilerConfig::for_qubits(spec.qubits().max(2), P, 0);
    let session = Session::new(config);
    let start = Instant::now();
    let compiled = session.compile(&circuit).expect("offline pass succeeds");
    let offline_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let outcomes = session.execute_batch(&compiled, &EXEC_SEEDS);
    let online_ms_per_seed = start.elapsed().as_secs_f64() * 1e3 / EXEC_SEEDS.len() as f64;
    let reports: Vec<_> = outcomes.into_iter().map(|o| o.into_report()).collect();
    Row {
        spec,
        qubits: spec.qubits(),
        gates,
        ir_layers: reports[0].ir_layers,
        program_nodes: reports[0].program_nodes,
        offline_ms,
        online_ms_per_seed,
        rsl_consumed: reports.iter().map(|r| r.rsl_consumed).sum::<u64>()
            / reports.len() as u64,
        complete: reports.iter().all(|r| r.complete),
    }
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut rows = Vec::new();
    let mut max_gates = 0usize;
    for spec in grid(args.smoke) {
        let row = measure(spec);
        println!(
            "{:<22} {:>7} gates | offline {:>9.2} ms | online {:>9.2} ms/seed | \
             {:>6} IR layers | RSL {:>8} | complete {}",
            row.spec.to_token(),
            row.gates,
            row.offline_ms,
            row.online_ms_per_seed,
            row.ir_layers,
            row.rsl_consumed,
            row.complete,
        );
        max_gates = max_gates.max(row.gates);
        rows.push(row);
    }
    assert!(
        args.smoke || max_gates >= 100_000,
        "full grid must reach 1e5 gates (got {max_gates})"
    );

    let series: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"spec\": \"{}\", \"qubits\": {}, \"gates\": {}, \"ir_layers\": {}, \
                 \"program_nodes\": {}, \"offline_ms\": {:.3}, \"online_ms_per_seed\": {:.3}, \
                 \"rsl_consumed\": {}, \"complete\": {} }}",
                r.spec.to_token(),
                r.qubits,
                r.gates,
                r.ir_layers,
                r.program_nodes,
                r.offline_ms,
                r.online_ms_per_seed,
                r.rsl_consumed,
                r.complete,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"corpus gate-count scaling of the offline and online passes \
         (PR 10)\",\n  \
         \"host_cores\": {cores},\n  \
         \"smoke\": {},\n  \
         \"fusion_success_prob\": {P},\n  \
         \"circuit_seed\": {CIRCUIT_SEED},\n  \
         \"exec_seeds\": {:?},\n  \
         \"max_gates\": {max_gates},\n  \
         \"series\": [\n{}\n  ],\n  \
         \"basis\": \"one fresh single-lane serial Session per point; offline_ms is one \
         compile of the corpus circuit, online_ms_per_seed averages a two-seed warm batch; \
         layered sweeps depth at width 9 up to the mapper's 100k-IR-layer budget and then \
         width 16/25/36 across 1e5 gates, rcachain sweeps Toffoli-dense rounds to the same \
         layer budget, qftadder sweeps qubit footprint at O(bits^2) gates\"\n}}\n",
        args.smoke,
        EXEC_SEEDS,
        series.join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write BENCH_PR10.json");
    println!("{json}");
    println!("wrote {}", args.out);
}
