//! Fig. 12: sensitivity of `#RSL` to (a) resource-state size, (b) hardware
//! (RSL) size and (c) fusion success probability.
//!
//! The paper runs 36-qubit benchmarks with 7-qubit resource states on an
//! 84x84 RSL (p = 0.75 unless swept). The reduced default uses 16-qubit
//! benchmarks on a 48x48 RSL; `--full` restores the paper's sizes.

use oneperc::CompilerConfig;
use oneperc_bench::{run_oneperc_with_config, ExperimentArgs};
use oneperc_circuit::benchmarks::Benchmark;

fn main() {
    let args = ExperimentArgs::from_env("fig12");
    let qubits: usize = if args.full { 36 } else { 16 };
    let virtual_side = (qubits as f64).sqrt().ceil() as usize;
    let base_rsl: usize = if args.full { 84 } else { 64 };
    let base_p = 0.75;

    let mut rows = Vec::new();

    // (a) Resource-state size sweep: 4 .. 7 qubits per star.
    println!("Fig 12(a): #RSL vs resource-state size ({qubits}-qubit benchmarks, {base_rsl}x{base_rsl} RSL, p = {base_p})");
    println!("{:<12} {:>6} {:>10}", "benchmark", "size", "#RSL");
    for bench in Benchmark::all() {
        for size in 4..=7usize {
            let config = CompilerConfig::for_sensitivity(base_rsl, virtual_side, base_p, args.seed)
                .with_resource_state_size(size);
            let report = run_oneperc_with_config(bench, qubits, config, args.seed);
            let marker = if report.complete { "" } else { "*" };
            println!("{:<12} {:>6} {:>10}{marker}", bench.name(), size, report.rsl_consumed);
            rows.push(format!(
                "a,{bench},{size},,{},{},{}",
                base_p, report.rsl_consumed, report.complete
            ));
        }
    }

    // (b) Hardware (RSL) size sweep with 7-qubit resource states.
    let rsl_sizes: Vec<usize> = if args.full {
        vec![48, 60, 72, 84, 96, 108, 120]
    } else {
        vec![48, 64, 80, 96]
    };
    println!("\nFig 12(b): #RSL vs RSL size (7-qubit resource states, p = {base_p})");
    println!("{:<12} {:>6} {:>10}", "benchmark", "N", "#RSL");
    for bench in Benchmark::all() {
        for &n in &rsl_sizes {
            let config = CompilerConfig::for_sensitivity(n, virtual_side, base_p, args.seed);
            let report = run_oneperc_with_config(bench, qubits, config, args.seed);
            let marker = if report.complete { "" } else { "*" };
            println!("{:<12} {:>6} {:>10}{marker}", bench.name(), n, report.rsl_consumed);
            rows.push(format!(
                "b,{bench},7,{n},{},{},{}",
                base_p, report.rsl_consumed, report.complete
            ));
        }
    }

    // (c) Fusion success probability sweep.
    let probabilities = [0.66, 0.69, 0.72, 0.75, 0.78];
    println!("\nFig 12(c): #RSL vs fusion success probability (7-qubit resource states, {base_rsl}x{base_rsl} RSL)");
    println!("{:<12} {:>6} {:>10}", "benchmark", "p", "#RSL");
    for bench in Benchmark::all() {
        for &p in &probabilities {
            let config = CompilerConfig::for_sensitivity(base_rsl, virtual_side, p, args.seed);
            let report = run_oneperc_with_config(bench, qubits, config, args.seed);
            let marker = if report.complete { "" } else { "*" };
            println!("{:<12} {:>6.2} {:>10}{marker}", bench.name(), p, report.rsl_consumed);
            rows.push(format!(
                "c,{bench},7,{base_rsl},{p},{},{}",
                report.rsl_consumed, report.complete
            ));
        }
    }

    let path = args.write_csv(
        "fig12.csv",
        "panel,benchmark,resource_state_size,rsl_size,fusion_success_prob,rsl,complete",
        &rows,
    );
    println!("\nwrote {}", path.display());
}
