//! Fig. 14: online processing time per RSL — (a) vs program size, (b) vs
//! RSL size for modular / non-modular renormalization.
//!
//! The paper's settings: 7-qubit resource states, 96x96 RSL and average
//! node size 24 for (a); p = 0.75 and MI ratio 7 for both panels. Reduced
//! defaults shrink the RSL sweep of panel (b).

use std::time::Instant;

use oneperc::CompilerConfig;
use oneperc_bench::{run_oneperc_with_config, ExperimentArgs};
use oneperc_circuit::benchmarks::Benchmark;
use oneperc_hardware::{FusionEngine, HardwareConfig};
use oneperc_percolation::{ModularConfig, ModularRenormalizer, Renormalizer};

fn main() {
    let args = ExperimentArgs::from_env("fig14");
    let mut rows = Vec::new();

    // ---- (a) online seconds per RSL vs program size ----
    let rsl = if args.full { 96 } else { 48 };
    let node_size = rsl / 4; // 24 in the paper's setting
    let program_sizes: Vec<usize> = if args.full { vec![4, 9, 16, 25, 36] } else { vec![4, 9, 16] };
    println!("Fig 14(a): online seconds per RSL vs program size ({rsl}x{rsl} RSL, node size {node_size}, p = 0.75)");
    println!("{:<12} {:>8} {:>14}", "benchmark", "qubits", "s / RSL");
    for bench in Benchmark::all() {
        for &qubits in &program_sizes {
            let side = (qubits as f64).sqrt().ceil() as usize;
            let config = CompilerConfig::for_sensitivity(rsl, side.min(rsl / node_size).max(1), 0.75, args.seed);
            let report = run_oneperc_with_config(bench, qubits, config, args.seed);
            let per_rsl = report.online_seconds_per_layer();
            println!("{:<12} {:>8} {:>14.5}", bench.name(), qubits, per_rsl);
            rows.push(format!("a,{bench},{qubits},{rsl},1,{per_rsl:.6}"));
        }
    }

    // ---- (b) seconds per RSL vs RSL size, modular vs non-modular ----
    let rsl_sizes: Vec<usize> = if args.full {
        vec![96, 144, 192, 240]
    } else {
        vec![64, 96, 128]
    };
    let node_size = 24usize.min(rsl_sizes[0] / 2);
    let mi_ratio = 7;
    println!("\nFig 14(b): renormalization seconds per RSL vs RSL size (node size {node_size}, MI ratio {mi_ratio}, p = 0.75)");
    println!("{:>6} {:>12} {:>12} {:>12} {:>12}", "N", "non-modular", "4 modules", "9 modules", "16 modules");
    for &n in &rsl_sizes {
        let mut engine = FusionEngine::new(HardwareConfig::new(n, 7, 0.75), args.seed);
        let layer = std::sync::Arc::new(engine.generate_layer());

        // Both sides are warmed outside the timed window: the online pass
        // keeps its renormalizer (scratch and worker pool) alive across
        // the RSL stream, so per-layer latency excludes scratch allocation
        // and pool startup on either path.
        let mut plain = Renormalizer::new();
        let _ = plain.renormalize(&layer, node_size);
        let start = Instant::now();
        let _ = plain.renormalize(&layer, node_size);
        let non_modular = start.elapsed().as_secs_f64();
        rows.push(format!("b,,,{n},1,{non_modular:.6}"));

        let mut timings = Vec::new();
        for &g in &[2usize, 3, 4] {
            let config = ModularConfig::new(g, mi_ratio, node_size.min(n / (g * 2).max(1)).max(2));
            let mut renormalizer = ModularRenormalizer::new(config);
            let _ = renormalizer.run_shared(&layer);
            let start = Instant::now();
            let _ = renormalizer.run_shared(&layer);
            let t = start.elapsed().as_secs_f64();
            timings.push(t);
            rows.push(format!("b,,,{n},{},{t:.6}", g * g));
        }
        println!(
            "{:>6} {:>12.5} {:>12.5} {:>12.5} {:>12.5}",
            n, non_modular, timings[0], timings[1], timings[2]
        );
    }

    let path = args.write_csv(
        "fig14.csv",
        "panel,benchmark,qubits,rsl_size,modules,seconds_per_rsl",
        &rows,
    );
    println!("\nwrote {}", path.display());
}
