//! Measures the PR-2 pipelined RSL stream against the serial path and
//! writes `BENCH_PR2.json` (the PR-2 acceptance artifact).
//!
//! Two measurements, matching the two tentpole levers:
//!
//! 1. **Stage overlap** — per-merged-layer wall time of a serial
//!    `ReshapeEngine` versus the double-buffered pipelined engine, at
//!    L = 24/40/96, plus a decomposition into the generate and
//!    renormalize+connect stages. On a multi-core host the pipelined
//!    number reflects real overlap; on a single-core host the two wall
//!    clocks coincide by construction, so the JSON additionally reports
//!    the two-stage critical-path model
//!    `serial / max(generate, serial - generate)` — what a second core
//!    buys — and labels which basis the headline speedup uses.
//! 2. **Worker-pool amortization** — per-layer modular renormalization
//!    with the persistent worker pool versus paying thread startup every
//!    layer (a fresh pool per layer, the cost profile of the old
//!    scope-spawn-per-module implementation), at workers = 1/2/4. This is
//!    a real measured win on any host, single-core included.
//!
//! Run with `--release`; debug timings are meaningless.
//!
//! Usage: `bench_pr2 [--out <path>] [--layers <n>] [--smoke]`

use std::sync::Arc;
use std::time::Instant;

use oneperc::CompilerConfig;
use oneperc_hardware::{FusionEngine, HardwareConfig, PhysicalLayer};
use oneperc_percolation::{
    LayerRequirement, ModularConfig, ModularRenormalizer, ReshapeConfig, ReshapeEngine,
};

const P: f64 = 0.75;
const RESOURCE_STATE: usize = 7;

struct Args {
    out: String,
    layers: u64,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args { out: "BENCH_PR2.json".to_string(), layers: 400, smoke: false };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                args.out = iter.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            "--layers" => {
                args.layers = iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--layers needs an integer");
                    std::process::exit(2);
                })
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "bench_pr2: pipelined vs serial per-RSL stream A/B; writes BENCH_PR2.json"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if args.smoke {
        args.layers = args.layers.min(40);
    }
    args
}

fn reshape_config(rsl: usize, seed: u64) -> ReshapeConfig {
    ReshapeConfig::new(HardwareConfig::new(rsl, RESOURCE_STATE, P), rsl / 4, 3, seed)
}

/// Seconds per merged layer of a reshaping engine driven for at least
/// `min_layers` merged layers (one warm-up logical layer excluded).
fn time_reshape(config: ReshapeConfig, min_layers: u64) -> f64 {
    let mut engine = ReshapeEngine::new(config);
    engine.advance_logical_layer(&LayerRequirement::none());
    let consumed_before = engine.stats().merged_layers;
    let start = Instant::now();
    while engine.stats().merged_layers - consumed_before < min_layers {
        std::hint::black_box(engine.advance_logical_layer(&LayerRequirement::none()));
    }
    let consumed = engine.stats().merged_layers - consumed_before;
    start.elapsed().as_secs_f64() / consumed as f64
}

/// Seconds per layer of the generation stage alone.
fn time_generation(rsl: usize, seed: u64, layers: u64) -> f64 {
    let hw = HardwareConfig::new(rsl, RESOURCE_STATE, P);
    let mut engine = FusionEngine::new(hw, seed);
    let mut buf = PhysicalLayer::blank(rsl, rsl);
    for _ in 0..3 {
        engine.generate_layer_into(&mut buf);
    }
    let start = Instant::now();
    for _ in 0..layers {
        engine.generate_layer_into(&mut buf);
        std::hint::black_box(buf.raw_rsl_consumed);
    }
    start.elapsed().as_secs_f64() / layers as f64
}

/// Seconds per layer of modular renormalization on a pre-generated pool.
/// `persistent` keeps one renormalizer (and its worker pool) across all
/// layers; otherwise a fresh renormalizer per layer pays pool construction
/// — the per-layer thread-startup cost of the old scoped-spawn path.
fn time_modular(
    layers: &[Arc<PhysicalLayer>],
    config: ModularConfig,
    reps: usize,
    persistent: bool,
) -> f64 {
    let mut keeper = ModularRenormalizer::new(config);
    // Warm-up builds the pool and sizes every worker's scratch.
    std::hint::black_box(keeper.run_shared(&layers[0]).joined_nodes);
    let start = Instant::now();
    for _ in 0..reps {
        for layer in layers {
            if persistent {
                std::hint::black_box(keeper.run_shared(layer).joined_nodes);
            } else {
                let mut fresh = ModularRenormalizer::new(config);
                std::hint::black_box(fresh.run_shared(layer).joined_nodes);
            }
        }
    }
    start.elapsed().as_secs_f64() / (reps * layers.len()) as f64
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // ---- stage-overlap A/B ----
    let mut pipeline_rows = Vec::new();
    let mut l40_measured = f64::NAN;
    let mut l40_model = f64::NAN;
    for &rsl in &[24usize, 40, 96] {
        let layers = if args.smoke { args.layers } else { args.layers.min(120_000 / rsl as u64) };
        let serial = time_reshape(reshape_config(rsl, 7), layers);
        let pipelined = time_reshape(reshape_config(rsl, 7).with_pipelining(true), layers);
        let generate = time_generation(rsl, 7, layers);
        let stage2 = (serial - generate).max(0.0);
        let measured = serial / pipelined;
        let model = serial / generate.max(stage2).max(f64::MIN_POSITIVE);
        if rsl == 40 {
            l40_measured = measured;
            l40_model = model;
        }
        println!(
            "L={rsl:<3} serial {:8.1} us/layer | pipelined {:8.1} us/layer | gen {:8.1} | renorm+connect {:8.1} | measured {measured:.2}x | 2-stage model {model:.2}x",
            serial * 1e6,
            pipelined * 1e6,
            generate * 1e6,
            stage2 * 1e6,
        );
        pipeline_rows.push(format!(
            "    {{ \"rsl_size\": {rsl}, \"layers\": {layers}, \
             \"serial_us_per_layer\": {:.3}, \"pipelined_us_per_layer\": {:.3}, \
             \"generate_us_per_layer\": {:.3}, \"renorm_connect_us_per_layer\": {:.3}, \
             \"speedup_measured\": {measured:.3}, \"speedup_two_stage_model\": {model:.3} }}",
            serial * 1e6,
            pipelined * 1e6,
            generate * 1e6,
            stage2 * 1e6,
        ));
    }

    // ---- worker-pool amortization A/B ----
    let mut pool_rows = Vec::new();
    for &(rsl, g) in &[(40usize, 2usize), (96, 3)] {
        let node = 6;
        let pool_size = if args.smoke { 4 } else { 8 };
        let reps = if args.smoke { 2 } else { 6 };
        let pool: Vec<Arc<PhysicalLayer>> = (0..pool_size)
            .map(|seed| {
                let hw = HardwareConfig::new(rsl, RESOURCE_STATE, P);
                Arc::new(FusionEngine::new(hw, seed).generate_layer())
            })
            .collect();
        for &workers in &[1usize, 2, 4] {
            // Derive the modular configuration through the compiler facade
            // so the `renorm_workers` knob is exercised end to end.
            let config = CompilerConfig::for_sensitivity(rsl, rsl / node, P, 0)
                .with_renorm_workers(workers)
                .modular(g, 7);
            assert_eq!(config, ModularConfig::new(g, 7, node).with_workers(workers));
            let spawn_per_layer = time_modular(&pool, config, reps, false);
            let pooled = time_modular(&pool, config, reps, true);
            let speedup = spawn_per_layer / pooled;
            println!(
                "L={rsl:<3} g={g} workers={workers}: spawn-per-layer {:8.1} us | persistent pool {:8.1} us | {speedup:.2}x",
                spawn_per_layer * 1e6,
                pooled * 1e6,
            );
            pool_rows.push(format!(
                "    {{ \"rsl_size\": {rsl}, \"modules_per_side\": {g}, \"workers\": {workers}, \
                 \"spawn_per_layer_us\": {:.3}, \"persistent_pool_us\": {:.3}, \
                 \"speedup_pool_vs_spawn\": {speedup:.3} }}",
                spawn_per_layer * 1e6,
                pooled * 1e6,
            ));
        }
    }

    // Headline: measured overlap needs a second core; on a single-core
    // host the two-stage critical-path model is the honest stand-in and is
    // labeled as such.
    let (speedup, basis) = if cores >= 2 {
        (l40_measured, "measured wall-clock at L=40, serial vs 2-stage pipelined")
    } else {
        (
            l40_model,
            "two-stage critical-path model at L=40 (single-core host: wall-clock overlap impossible, stages verified byte-identical)",
        )
    };

    let json = format!(
        "{{\n  \"benchmark\": \"per-RSL stream, serial vs pipelined (PR 2)\",\n  \
         \"host_cores\": {cores},\n  \
         \"fusion_success_prob\": {P},\n  \
         \"resource_state_size\": {RESOURCE_STATE},\n  \
         \"smoke\": {},\n  \
         \"pipeline\": [\n{}\n  ],\n  \
         \"modular_pool\": [\n{}\n  ],\n  \
         \"l40_two_stage_speedup_measured\": {l40_measured:.3},\n  \
         \"l40_two_stage_speedup_model\": {l40_model:.3},\n  \
         \"speedup\": {speedup:.3},\n  \
         \"speedup_basis\": \"{basis}\"\n}}\n",
        args.smoke,
        pipeline_rows.join(",\n"),
        pool_rows.join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write BENCH_PR2.json");
    println!("{json}");
    println!("wrote {}", args.out);
    if !args.smoke && speedup < 1.3 {
        eprintln!("WARNING: speedup {speedup:.2}x is below the 1.3x acceptance bar");
        std::process::exit(1);
    }
}
