//! Measures the PR-6 word-parallel percolation core and writes
//! `BENCH_PR6.json` (the PR-6 acceptance artifact).
//!
//! Four measurements:
//!
//! * **Word-BFS vs scalar-BFS per-RSL renormalization** (L = 24 / 40 /
//!   96). The word-frontier `ModularRenormalizer` (bitmap reachability
//!   gates, packed-entry extraction BFS with the single-word fast path,
//!   span-union joining) against the preserved scalar reference of
//!   `oneperc-bench::dense` — the pre-PR-6 implementation with its
//!   faithful pooled scratch handling, so the ratio measures the word
//!   frontier, not allocator traffic. The two implementations alternate
//!   within every repetition on the same layer stream in one process, so
//!   host drift hits both sides of the ratio equally; the first layers of
//!   every size are also checked outcome-identical before timing.
//! * **Region-BFS microbench.** Standalone `renormalize_region` calls
//!   over the module grid the modular configuration induces, word vs
//!   scalar. This is a component view, not a decomposition of the
//!   pipeline total: the pipeline's own module stage shares pooled
//!   outputs across layers, so its stage costs are not recoverable by
//!   subtracting standalone timings.
//! * **Span vs pair union microbench.** The joining-scan primitive in
//!   isolation: for every maximal run of present sites in the packed site
//!   rows of real sampled layers, one `DisjointSet::union_range` call
//!   (what `join_across` does since PR 6) against the per-adjacent-pair
//!   `union` loop it replaced.
//! * **End-to-end session throughput.** A warm `Session` batch-executing
//!   a seed sweep of the 4-qubit QAOA benchmark — the service-tier shape
//!   whose per-RSL critical path the word core feeds.
//!
//! Run with `--release`; debug timings are meaningless.
//!
//! Usage: `bench_pr6 [--out <path>] [--layers <n>] [--reps <n>] [--smoke]`

use std::sync::Arc;
use std::time::Instant;

use graphstate::DisjointSet;
use oneperc::{CompilerConfig, Session};
use oneperc_bench::dense::{scalar_modular_outcome, ScalarRenormalizer};
use oneperc_circuit::benchmarks;
use oneperc_hardware::{FusionEngine, HardwareConfig, PhysicalLayer};
use oneperc_percolation::{ModularConfig, ModularRenormalizer, Renormalizer};

const P: f64 = 0.75;
const DEGREE: usize = 7;
const SEED: u64 = 2024;

/// The PR-5 artifact's recorded per-RSL renormalization time at L = 40,
/// quoted in the JSON so readers can line the in-run ratio up with the
/// historical series (recorded on a different host load than this run).
const PR5_RENORM_US_AT_L40: f64 = 37.309;

struct Args {
    out: String,
    layers: usize,
    reps: usize,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args { out: "BENCH_PR6.json".to_string(), layers: 256, reps: 9, smoke: false };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                args.out = iter.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            "--layers" => {
                args.layers = iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--layers needs an integer");
                    std::process::exit(2);
                })
            }
            "--reps" => {
                args.reps = iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--reps needs an integer");
                    std::process::exit(2);
                })
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "bench_pr6: word-BFS vs scalar-BFS per-RSL renormalization, \
                     span-vs-pair union microbench and session throughput; \
                     writes BENCH_PR6.json"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if args.smoke {
        args.layers = args.layers.min(8);
        args.reps = 1;
    }
    args
}

fn min_time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Minimum over `reps` of each closure's wall-clock, with the two
/// closures alternating within every repetition so slow host phases
/// (single-core machines under load) bias neither side of a ratio.
fn min_time_pair(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let (mut best_a, mut best_b) = (f64::MAX, f64::MAX);
    for _ in 0..reps {
        let start = Instant::now();
        a();
        best_a = best_a.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        b();
        best_b = best_b.min(start.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

/// Per-module callback of the region-BFS microbench: layer, band origin
/// and clamped band width/height.
type RegionVisit<'a> = dyn FnMut(&PhysicalLayer, (usize, usize), usize, usize) + 'a;

struct SizeRow {
    rsl: usize,
    layers: usize,
    word_total_us: f64,
    scalar_total_us: f64,
    ratio: f64,
    word_region_us: f64,
    scalar_region_us: f64,
    joined_nodes: usize,
}

fn generate_stream(rsl: usize, layers: usize) -> Vec<Arc<PhysicalLayer>> {
    let cfg = HardwareConfig::new(rsl, DEGREE, P);
    let mut engine = FusionEngine::new(cfg, SEED);
    (0..layers).map(|_| Arc::new(engine.generate_layer())).collect()
}

fn measure_size(rsl: usize, layers: usize, reps: usize) -> SizeRow {
    let stream = generate_stream(rsl, layers);

    let mcfg = ModularConfig::new(2, 7, 6).sequential();
    let mut word = ModularRenormalizer::new(mcfg);
    let mut scalar = ScalarRenormalizer::new();

    // Equivalence gate (doubles as warm-up): the word pipeline must produce
    // exactly the scalar outcome before the timings mean anything.
    for layer in stream.iter().take(4.min(layers)) {
        let got = word.run_shared(layer);
        let want = scalar_modular_outcome(layer, &mcfg, &mut scalar);
        if let Some(msg) = want.mismatch(&got) {
            panic!("L={rsl}: word and scalar renormalization diverged: {msg}");
        }
    }

    let mut joined = 0usize;
    let mut scalar_joined = 0usize;
    let (word_total, scalar_total) = min_time_pair(
        reps,
        || {
            joined = 0;
            for layer in &stream {
                joined += word.run_shared(layer).joined_nodes;
            }
        },
        || {
            scalar_joined = 0;
            for layer in &stream {
                scalar_joined += scalar_modular_outcome(layer, &mcfg, &mut scalar).joined_nodes;
            }
        },
    );
    assert_eq!(joined, scalar_joined, "L={rsl}: joined-node totals diverged under timing");
    let (word_total, scalar_total) = (word_total / layers as f64, scalar_total / layers as f64);

    // Region-BFS microbench: standalone per-band searches over the module
    // grid the modular configuration induces.
    let layout = mcfg.layout(rsl);
    let stride = layout.module_len + layout.interval_len;
    let node_size = mcfg.node_size.min(layout.module_len.max(1));
    let mut word_renorm = Renormalizer::new();
    let modules_pass = |r: &mut RegionVisit| {
        for layer in &stream {
            for gy in 0..mcfg.modules_per_side {
                for gx in 0..mcfg.modules_per_side {
                    let (ox, oy) = (gx * stride, gy * stride);
                    let w = layout.module_len.min(rsl.saturating_sub(ox));
                    let h = layout.module_len.min(rsl.saturating_sub(oy));
                    r(layer, (ox, oy), w, h);
                }
            }
        }
    };
    let (word_region, scalar_region) = min_time_pair(
        reps,
        || {
            modules_pass(&mut |layer, origin, w, h| {
                std::hint::black_box(
                    word_renorm.renormalize_region(layer, origin, w, h, node_size).node_count(),
                );
            });
        },
        || {
            modules_pass(&mut |layer, origin, w, h| {
                std::hint::black_box(
                    scalar.renormalize_region(layer, origin, w, h, node_size).node_count(),
                );
            });
        },
    );

    SizeRow {
        rsl,
        layers,
        word_total_us: word_total * 1e6,
        scalar_total_us: scalar_total * 1e6,
        ratio: scalar_total / word_total,
        word_region_us: word_region / layers as f64 * 1e6,
        scalar_region_us: scalar_region / layers as f64 * 1e6,
        joined_nodes: joined,
    }
}

struct UnionRow {
    rsl: usize,
    layers: usize,
    span_us_per_layer: f64,
    pair_us_per_layer: f64,
    ratio: f64,
}

/// Times the joining-scan primitive in isolation: every maximal run of
/// present sites in the packed site rows of real layers is united either
/// with one `union_range` call (the PR-6 `join_across` strip scan) or
/// with the per-adjacent-pair `union` loop it replaced. Both variants
/// walk the same words and reset the same union-find, so the ratio is
/// the span-union win alone.
fn measure_span_union(rsl: usize, layers: usize, reps: usize) -> UnionRow {
    let stream = generate_stream(rsl, layers);
    let mut dsu = DisjointSet::new(rsl * rsl);
    let words_per_row = rsl.div_ceil(64);
    let tail_bits = rsl - (words_per_row - 1) * 64;

    let mut runs_pass = |unite: &mut dyn FnMut(&mut DisjointSet, usize, usize)| {
        for layer in &stream {
            dsu.reset(rsl * rsl);
            for y in 0..rsl {
                for c in 0..words_per_row {
                    let width = if c + 1 == words_per_row { tail_bits } else { 64 };
                    let mut w = layer.site_row_word(y, c * 64);
                    if width < 64 {
                        w &= (1u64 << width) - 1;
                    }
                    let base = y * rsl + c * 64;
                    while w != 0 {
                        let b = w.trailing_zeros() as usize;
                        let run = (w >> b).trailing_ones() as usize;
                        unite(&mut dsu, base + b, run);
                        if b + run >= 64 {
                            break;
                        }
                        w &= !(((1u64 << run) - 1) << b);
                    }
                }
            }
            std::hint::black_box(dsu.find(0));
        }
    };

    let span = min_time(reps, || {
        runs_pass(&mut |dsu, start, len| dsu.union_range(start, len));
    });
    let pair = min_time(reps, || {
        runs_pass(&mut |dsu, start, len| {
            for k in 0..len.saturating_sub(1) {
                dsu.union(start + k, start + k + 1);
            }
        });
    });
    UnionRow {
        rsl,
        layers,
        span_us_per_layer: span / layers as f64 * 1e6,
        pair_us_per_layer: pair / layers as f64 * 1e6,
        ratio: pair / span,
    }
}

/// Seconds per seed of a warm session batch-executing the 4-qubit QAOA
/// benchmark, plus the mean RSL consumption per seed.
fn measure_session(smoke: bool) -> (f64, f64) {
    let circuit = benchmarks::qaoa(4, 42);
    let session = Session::new(CompilerConfig::for_qubits(4, P, 42));
    let compiled = session.compile(&circuit).expect("offline pass succeeds");
    let seeds: Vec<u64> = if smoke { (42..46).collect() } else { (42..74).collect() };
    // Warm the lane engine before timing.
    let _ = session.execute(&compiled, 41);
    let start = Instant::now();
    let outcomes = session.execute_batch(&compiled, &seeds);
    let elapsed = start.elapsed().as_secs_f64();
    let rsl: u64 = outcomes.iter().map(|o| o.report().rsl_consumed).sum();
    (elapsed / seeds.len() as f64, rsl as f64 / seeds.len() as f64)
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut rows = Vec::new();
    let mut headline = f64::NAN;
    for &rsl in &[24usize, 40, 96] {
        // Large lattices get a shorter stream so the bench stays quick.
        let layers = if rsl >= 96 { args.layers.div_ceil(4) } else { args.layers };
        let row = measure_size(rsl, layers, args.reps);
        if rsl == 40 {
            headline = row.ratio;
        }
        println!(
            "L={rsl:<3} word {:>7.2} us/RSL | scalar {:>7.2} us/RSL | {:.2}x word-vs-scalar",
            row.word_total_us, row.scalar_total_us, row.ratio,
        );
        println!(
            "L={rsl:<3} region BFS word {:>7.2} us | scalar {:>7.2} us | {:.2}x",
            row.word_region_us,
            row.scalar_region_us,
            row.scalar_region_us / row.word_region_us,
        );
        rows.push(format!(
            "    {{ \"rsl_size\": {}, \"layers\": {}, \
             \"word_us_per_rsl\": {:.3}, \"scalar_us_per_rsl\": {:.3}, \
             \"word_vs_scalar_ratio\": {:.3}, \
             \"word_region_bfs_us_per_rsl\": {:.3}, \"scalar_region_bfs_us_per_rsl\": {:.3}, \
             \"joined_nodes\": {}, \"outcome_identical\": true }}",
            row.rsl,
            row.layers,
            row.word_total_us,
            row.scalar_total_us,
            row.ratio,
            row.word_region_us,
            row.scalar_region_us,
            row.joined_nodes,
        ));
    }

    let union = measure_span_union(40, if args.smoke { 8 } else { 128 }, args.reps);
    println!(
        "span-union L={} span {:.2} us/layer | pair {:.2} us/layer | {:.2}x",
        union.rsl, union.span_us_per_layer, union.pair_us_per_layer, union.ratio,
    );

    let (session_s, rsl_per_seed) = measure_session(args.smoke);
    println!(
        "session: {:.2} ms/seed ({:.0} RSL/seed, {:.0} RSL/s end-to-end)",
        session_s * 1e3,
        rsl_per_seed,
        rsl_per_seed / session_s,
    );

    let json = format!(
        "{{\n  \"benchmark\": \"word-parallel percolation core: bitmap BFS frontiers and span union-find (PR 6)\",\n  \
         \"host_cores\": {cores},\n  \
         \"fusion_success_prob\": {P},\n  \
         \"resource_state_size\": {DEGREE},\n  \
         \"smoke\": {},\n  \
         \"sizes\": [\n{}\n  ],\n  \
         \"speedup\": {headline:.3},\n  \
         \"speedup_basis\": \"same-run wall-clock at L=40: word-frontier modular renormalizer \
         (bitmap reachability gates, packed extraction BFS with single-word fast path, \
         span-union joining) vs the preserved pre-PR6 scalar implementation with its faithful \
         pooled scratch handling, the two alternating within every repetition on one layer \
         stream in one process so host drift cancels out of the ratio; outcomes checked \
         identical before timing; region-BFS columns are a standalone component microbench, \
         not a decomposition of the totals; PR5's artifact recorded {PR5_RENORM_US_AT_L40} \
         us/RSL at L=40 on its own host load\",\n  \
         \"span_union\": {{ \"rsl_size\": {}, \"layers\": {}, \
         \"span_us_per_layer\": {:.3}, \"pair_us_per_layer\": {:.3}, \
         \"span_vs_pair_ratio\": {:.3} }},\n  \
         \"session\": {{ \"circuit\": \"qaoa-4\", \"ms_per_seed\": {:.3}, \
         \"rsl_per_seed\": {:.1}, \"rsl_per_s\": {:.0} }}\n}}\n",
        args.smoke,
        rows.join(",\n"),
        union.rsl,
        union.layers,
        union.span_us_per_layer,
        union.pair_us_per_layer,
        union.ratio,
        session_s * 1e3,
        rsl_per_seed,
        rsl_per_seed / session_s,
    );
    std::fs::write(&args.out, &json).expect("write BENCH_PR6.json");
    println!("{json}");
    println!("wrote {}", args.out);
    if !args.smoke && headline < 1.3 {
        eprintln!(
            "WARNING: word renormalizer below the 1.3x acceptance ratio at L=40 \
             ({headline:.2}x)"
        );
        std::process::exit(1);
    }
}
