//! Table 2: `#RSL` and `#fusion` of OnePerc versus the OneQ baseline.
//!
//! Reduced run (default): 4- and 9-qubit benchmarks, OneQ capped at 10^5
//! RSLs. `--full` switches to the paper's benchmark sizes (4/9/25 qubits at
//! p = 0.90, 4/25/64 at p = 0.75) and the 10^6 cap; expect hours of CPU
//! time, as with the original artifact.

use oneperc_bench::{format_capped, run_oneperc, run_oneq, ExperimentArgs};
use oneperc_circuit::benchmarks::Benchmark;

fn main() {
    let args = ExperimentArgs::from_env("table2");
    let cap: u64 = if args.full { 1_000_000 } else { 100_000 };

    let settings: Vec<(f64, Vec<usize>)> = if args.full {
        vec![(0.90, vec![4, 9, 25]), (0.75, vec![4, 25, 64])]
    } else {
        vec![(0.90, vec![4, 9]), (0.75, vec![4, 9])]
    };

    println!("Table 2: OnePerc vs OneQ (repeat-until-success), OneQ capped at {cap} RSLs");
    println!(
        "{:<6} {:<10} {:>12} {:>12} {:>10} {:>14} {:>14} {:>10}",
        "p", "benchmark", "OneQ #RSL", "OnePerc#RSL", "improv", "OneQ #fusion", "OnePerc#fus", "improv"
    );

    let mut rows = Vec::new();
    for (p, qubit_list) in &settings {
        for &qubits in qubit_list {
            for bench in Benchmark::all() {
                let baseline = run_oneq(bench, qubits, *p, cap, args.seed);
                let ours = run_oneperc(bench, qubits, *p, None, args.seed);
                let rsl_improv = baseline.rsl_consumed as f64 / ours.rsl_consumed.max(1) as f64;
                let fusion_improv = baseline.fusions as f64 / ours.fusions.max(1) as f64;
                println!(
                    "{:<6.2} {:<10} {:>12} {:>12} {:>10.2} {:>14} {:>14} {:>10.2}",
                    p,
                    format!("{bench}-{qubits}"),
                    format_capped(baseline.rsl_consumed, baseline.saturated, cap),
                    ours.rsl_consumed,
                    rsl_improv,
                    format_capped(baseline.fusions, baseline.saturated, cap),
                    ours.fusions,
                    fusion_improv,
                );
                rows.push(format!(
                    "{p},{bench},{qubits},{},{},{},{:.4},{},{},{:.4}",
                    baseline.rsl_consumed,
                    baseline.saturated,
                    ours.rsl_consumed,
                    rsl_improv,
                    baseline.fusions,
                    ours.fusions,
                    fusion_improv
                ));
            }
        }
    }

    let path = args.write_csv(
        "table2.csv",
        "p,benchmark,qubits,oneq_rsl,oneq_saturated,oneperc_rsl,rsl_improvement,oneq_fusions,oneperc_fusions,fusion_improvement",
        &rows,
    );
    println!("\nwrote {}", path.display());
}
