//! Measures the PR-3 session API against the one-shot facade and writes
//! `BENCH_PR3.json` (the PR-3 acceptance artifact).
//!
//! The measurement is the experiment shape the session API was built for:
//! a 16-seed sweep of the same compiled program. Two contestants per
//! `(L, mode)` point:
//!
//! * **Cold per-call** — a fresh `Compiler::execute` per seed: every run
//!   constructs (and tears down) the reshaping engine, and in the
//!   pipelined/pooled modes also the generator thread and the worker
//!   pool. This is what PR-2-era callers paid per experiment point.
//! * **Warm session** — one `Session::execute_batch` over the same seeds:
//!   the engine is `reset` between runs, threads and scratch survive.
//!
//! Both paths are verified byte-identical per seed (wall-clock aside)
//! before any timing is recorded; the speedup is pure amortization, not a
//! different computation. Run with `--release`; debug timings are
//! meaningless.
//!
//! Usage: `bench_pr3 [--out <path>] [--seeds <n>] [--reps <n>] [--smoke]`

use std::time::Instant;

use oneperc::{CompilerConfig, ExecutionReport, Session};
use oneperc_circuit::benchmarks;

const P: f64 = 0.75;

struct Args {
    out: String,
    seeds: u64,
    reps: usize,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args { out: "BENCH_PR3.json".to_string(), seeds: 16, reps: 6, smoke: false };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                args.out = iter.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            "--seeds" => {
                args.seeds = iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seeds needs an integer");
                    std::process::exit(2);
                })
            }
            "--reps" => {
                args.reps = iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--reps needs an integer");
                    std::process::exit(2);
                })
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "bench_pr3: warm session vs cold per-call seed-sweep A/B; \
                     writes BENCH_PR3.json"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if args.smoke {
        args.seeds = args.seeds.min(4);
        args.reps = 1;
    }
    args
}

/// One execution mode of the online pass.
#[derive(Clone, Copy)]
struct Mode {
    name: &'static str,
    pipelined: bool,
    renorm_workers: usize,
}

const MODES: [Mode; 3] = [
    Mode { name: "serial", pipelined: false, renorm_workers: 0 },
    Mode { name: "pipelined", pipelined: true, renorm_workers: 0 },
    Mode { name: "pipelined+pool2", pipelined: true, renorm_workers: 2 },
];

fn config_for(rsl: usize, mode: Mode) -> CompilerConfig {
    CompilerConfig::for_sensitivity(rsl, 3, P, 0)
        .with_pipelining(mode.pipelined)
        .with_renorm_workers(mode.renorm_workers)
}

/// One timed cold sweep: a fresh one-shot facade per seed, paying engine
/// (and thread/pool) construction on every call.
#[allow(deprecated)]
fn cold_sweep(config: CompilerConfig, compiled: &oneperc::CompiledProgram, seeds: &[u64]) -> f64 {
    let start = Instant::now();
    for &seed in seeds {
        let compiler = oneperc::Compiler::new(config.with_seed(seed));
        std::hint::black_box(compiler.execute(compiled).rsl_consumed);
    }
    start.elapsed().as_secs_f64() / seeds.len() as f64
}

/// One timed warm sweep through an already-running session.
fn warm_sweep(session: &Session, compiled: &oneperc::CompiledProgram, seeds: &[u64]) -> f64 {
    let start = Instant::now();
    for outcome in session.execute_batch(compiled, seeds) {
        std::hint::black_box(outcome.report().rsl_consumed);
    }
    start.elapsed().as_secs_f64() / seeds.len() as f64
}

/// Interleaved A/B measurement: `reps` alternating cold/warm sweeps, best
/// round kept for each side (the minimum is the standard noise filter when
/// the quantity of interest — per-call setup cost — is a constant offset
/// under multi-millisecond executions). Also verifies byte-identity of the
/// two paths per seed before anything is timed.
#[allow(deprecated)]
fn measure_mode(
    config: CompilerConfig,
    compiled: &oneperc::CompiledProgram,
    seeds: &[u64],
    reps: usize,
) -> (f64, f64) {
    let session = Session::new(config);
    // Verification pass (doubles as warm-up for both paths).
    let warm_reports: Vec<ExecutionReport> = session
        .execute_batch(compiled, seeds)
        .into_iter()
        .map(|o| o.into_report().deterministic())
        .collect();
    let cold_reports: Vec<ExecutionReport> = seeds
        .iter()
        .map(|&seed| {
            oneperc::Compiler::new(config.with_seed(seed)).execute(compiled).deterministic()
        })
        .collect();
    assert_eq!(warm_reports, cold_reports, "warm and cold sweeps diverged");

    let mut cold = f64::INFINITY;
    let mut warm = f64::INFINITY;
    for _ in 0..reps {
        cold = cold.min(cold_sweep(config, compiled, seeds));
        warm = warm.min(warm_sweep(&session, compiled, seeds));
    }
    (cold, warm)
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let seeds: Vec<u64> = (1..=args.seeds).collect();

    let mut rows = Vec::new();
    let mut headline = f64::NAN;
    for &rsl in &[24usize, 40] {
        for mode in MODES {
            let config = config_for(rsl, mode);
            // Offline pass only — no execution context needed for it.
            let compiled = oneperc::Compiler::new(config)
                .compile(&benchmarks::qaoa(4, 2))
                .expect("offline pass succeeds");

            let (cold, warm) = measure_mode(config, &compiled, &seeds, args.reps);
            let speedup = cold / warm;
            // The absolute per-execution setup cost the session amortizes
            // away: engine + generator thread + pool construction.
            let recovered_us = (cold - warm) * 1e6;
            if rsl == 40 && mode.name == "pipelined+pool2" {
                headline = speedup;
            }
            println!(
                "L={rsl:<3} {:<16} cold {:>9.1} us/exec | warm {:>9.1} us/exec | {speedup:.2}x ({recovered_us:+.0} us/exec)",
                mode.name,
                cold * 1e6,
                warm * 1e6,
            );
            rows.push(format!(
                "    {{ \"rsl_size\": {rsl}, \"mode\": \"{}\", \"seeds\": {}, \
                 \"cold_us_per_exec\": {:.3}, \"warm_us_per_exec\": {:.3}, \
                 \"speedup_warm_vs_cold\": {speedup:.3}, \
                 \"startup_recovered_us_per_exec\": {recovered_us:.3}, \
                 \"byte_identical\": true }}",
                mode.name,
                seeds.len(),
                cold * 1e6,
                warm * 1e6,
            ));
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"16-seed sweep, warm session vs cold per-call (PR 3)\",\n  \
         \"host_cores\": {cores},\n  \
         \"fusion_success_prob\": {P},\n  \
         \"resource_state_size\": 7,\n  \
         \"circuit\": \"qaoa-4\",\n  \
         \"smoke\": {},\n  \
         \"sweeps\": [\n{}\n  ],\n  \
         \"speedup\": {headline:.3},\n  \
         \"speedup_basis\": \"measured wall-clock at L=40, pipelined+pool2: cold per-call \
         (engine+generator thread+pool per execution) vs one warm session, byte-identical \
         reports verified per seed\"\n}}\n",
        args.smoke,
        rows.join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write BENCH_PR3.json");
    println!("{json}");
    println!("wrote {}", args.out);
    if !args.smoke && headline < 1.0 {
        eprintln!("WARNING: warm session slower than cold calls ({headline:.2}x)");
        std::process::exit(1);
    }
}
