//! Measures the per-RSL online renormalization latency of the flat-grid
//! engine against the preserved hash-based baseline and writes
//! `BENCH_PR1.json` (the PR-1 acceptance artifact).
//!
//! Methodology: pre-generate a fixed pool of seeded L=40 layers (p = 0.75,
//! 7-qubit resource states, node size 10 → 4×4 coarse target — the Table 1
//! shape class), warm both engines, then time `reps` full passes over the
//! pool per sample and keep the median of `samples` samples. Run with
//! `--release`; debug timings are meaningless.
//!
//! Usage: `bench_pr1 [--out <path>] [--rsl <n>] [--samples <n>]`

use std::time::Instant;

use oneperc_bench::baseline::hash_renormalize;
use oneperc_hardware::{FusionEngine, HardwareConfig, PhysicalLayer};
use oneperc_percolation::Renormalizer;

struct Args {
    out: String,
    rsl: usize,
    samples: usize,
}

fn parse_args() -> Args {
    let mut args = Args { out: "BENCH_PR1.json".to_string(), rsl: 40, samples: 15 };
    fn required<T>(value: Option<T>, what: &str) -> T {
        value.unwrap_or_else(|| {
            eprintln!("{what}");
            std::process::exit(2);
        })
    }
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => args.out = required(iter.next(), "--out needs a path"),
            "--rsl" => {
                args.rsl = required(
                    iter.next().and_then(|s| s.parse().ok()),
                    "--rsl needs an integer",
                )
            }
            "--samples" => {
                args.samples = required(
                    iter.next().and_then(|s| s.parse().ok()),
                    "--samples needs an integer",
                )
            }
            "--help" | "-h" => {
                println!("bench_pr1: flat vs hash per-RSL renormalization A/B; writes BENCH_PR1.json");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Times `reps` passes over the layer pool, returning seconds per RSL.
fn sample<F: FnMut(&PhysicalLayer)>(layers: &[PhysicalLayer], reps: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        for layer in layers {
            f(layer);
        }
    }
    start.elapsed().as_secs_f64() / (reps * layers.len()) as f64
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

fn main() {
    let args = parse_args();
    let rsl = args.rsl;
    let node_size = rsl / 4;
    let pool = 16u64;
    let reps = 8;

    let layers: Vec<PhysicalLayer> = (0..pool)
        .map(|seed| {
            let mut engine = FusionEngine::new(HardwareConfig::new(rsl, 7, 0.75), seed);
            engine.generate_layer()
        })
        .collect();

    // Correctness gate: the A/B is only meaningful while the two engines
    // agree on every pooled layer.
    let mut renormalizer = Renormalizer::new();
    for (i, layer) in layers.iter().enumerate() {
        let flat = renormalizer.renormalize(layer, node_size);
        let hash = hash_renormalize(layer, node_size);
        assert_eq!(flat.node_count(), hash.node_count(), "layer {i}: node count diverged");
        assert_eq!(flat.is_success(), hash.is_success(), "layer {i}: success diverged");
    }

    // Warm-up pass for both engines.
    for layer in &layers {
        std::hint::black_box(renormalizer.renormalize(layer, node_size).node_count());
        std::hint::black_box(hash_renormalize(layer, node_size).node_count());
    }

    // Interleave samples so frequency scaling hits both engines equally.
    let mut flat_samples = Vec::with_capacity(args.samples);
    let mut hash_samples = Vec::with_capacity(args.samples);
    for _ in 0..args.samples {
        flat_samples.push(sample(&layers, reps, |layer| {
            std::hint::black_box(renormalizer.renormalize(layer, node_size).node_count());
        }));
        hash_samples.push(sample(&layers, reps, |layer| {
            std::hint::black_box(hash_renormalize(layer, node_size).node_count());
        }));
    }

    let flat_us = median(flat_samples) * 1e6;
    let hash_us = median(hash_samples) * 1e6;
    let speedup = hash_us / flat_us;

    let json = format!(
        "{{\n  \
         \"benchmark\": \"online_per_rsl renormalization, flat vs hash\",\n  \
         \"rsl_size\": {rsl},\n  \
         \"node_size\": {node_size},\n  \
         \"fusion_success_prob\": 0.75,\n  \
         \"resource_state_size\": 7,\n  \
         \"layer_pool\": {pool},\n  \
         \"reps_per_sample\": {reps},\n  \
         \"samples\": {samples},\n  \
         \"statistic\": \"median\",\n  \
         \"before_hash_us_per_rsl\": {hash_us:.3},\n  \
         \"after_flat_us_per_rsl\": {flat_us:.3},\n  \
         \"speedup\": {speedup:.3}\n}}\n",
        samples = args.samples,
    );
    std::fs::write(&args.out, &json).expect("write BENCH_PR1.json");
    println!("{json}");
    println!("wrote {}", args.out);
    if speedup < 2.0 {
        eprintln!("WARNING: speedup {speedup:.2}x is below the 2x acceptance bar");
        std::process::exit(1);
    }
}
