//! Measures the PR-9 auto-tuner and writes `BENCH_PR9.json` (the PR-9
//! acceptance artifact).
//!
//! Three measurements:
//!
//! * **Tuner wall-clock at 1 / 2 / 4 lanes.** One fresh [`Tuner`] per
//!   lane count sweeps the same 3-knob, 8-point lattice around the
//!   4-qubit QAOA preset. Fleet shape parallelizes evaluation but must
//!   not touch the answer, so the run *asserts* the frontier artifacts
//!   are byte-identical across lane counts before quoting any timing.
//! * **Cached re-tune.** A second `tune` of the same circuit on the warm
//!   tuner must come back from the artifact cache without executing
//!   anything; its wall-clock is the price of a cache hit.
//! * **Tuned vs default per-RSL latency.** The tuner's recommended
//!   configuration against the untouched `for_qubits` preset, both run
//!   as warm `Session` seed sweeps on qaoa-4: wall-clock microseconds
//!   per RSL consumed, plus the deterministic RSL-per-logical-layer
//!   resource metric the cost model optimizes.
//!
//! Run with `--release`; debug timings are meaningless.
//!
//! Usage: `bench_pr9 [--out <path>] [--smoke]`

use std::time::Instant;

use oneperc::{CompilerConfig, Session};
use oneperc_circuit::benchmarks;
use oneperc_tune::{ConfigLattice, TuneSource, Tuner};

const P: f64 = 0.75;
const SEED: u64 = 2024;

struct Args {
    out: String,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args { out: "BENCH_PR9.json".to_string(), smoke: false };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                args.out = iter.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "bench_pr9: tuner wall-clock at 1/2/4 lanes (byte-identical \
                     frontier asserted), cached re-tune cost, and tuned-vs-default \
                     per-RSL latency on qaoa-4; writes BENCH_PR9.json"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The lattice every tuner in this bench sweeps: three knobs, eight
/// points, around the 4-qubit Table 1 preset.
fn lattice(tune_seed: u64) -> ConfigLattice {
    ConfigLattice::new(CompilerConfig::for_qubits(4, P, tune_seed))
        .with_temporal_redundancies(&[2, 3])
        .with_pipelining(&[false, true])
        .with_refresh_periods(&[None, Some(6)])
}

struct LaneRow {
    lanes: usize,
    wall_s: f64,
    points_evaluated: usize,
    points_skipped: usize,
    jobs_cancelled: usize,
}

/// Warm-session seed sweep of one configuration: (us of wall-clock per
/// RSL consumed, deterministic RSL per logical layer, completion rate).
fn measure_config(config: CompilerConfig, seeds: &[u64]) -> (f64, f64, f64) {
    let circuit = benchmarks::qaoa(4, 42);
    let session = Session::new(config);
    let compiled = session.compile(&circuit).expect("offline pass succeeds");
    // Warm the lane engine before timing.
    let _ = session.execute(&compiled, 41);
    let start = Instant::now();
    let outcomes = session.execute_batch(&compiled, seeds);
    let elapsed = start.elapsed().as_secs_f64();
    let reports: Vec<_> = outcomes.into_iter().map(|o| o.into_report()).collect();
    let rsl: u64 = reports.iter().map(|r| r.rsl_consumed).sum();
    let rsl_per_layer = reports.iter().map(|r| r.rsl_per_logical_layer()).sum::<f64>()
        / reports.len() as f64;
    let complete = reports.iter().filter(|r| r.complete).count();
    (elapsed / rsl.max(1) as f64 * 1e6, rsl_per_layer, complete as f64 / reports.len() as f64)
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let circuit = benchmarks::qaoa(4, 42);
    let tune_seeds: &[u64] = if args.smoke { &[1, 2] } else { &[1, 2, 3, 4] };

    // Tuner wall-clock across fleet shapes, with the byte-identity gate.
    let mut rows: Vec<LaneRow> = Vec::new();
    let mut baseline_json: Option<String> = None;
    let mut warm: Option<Tuner> = None;
    for &lanes in &[1usize, 2, 4] {
        let mut tuner = Tuner::builder(lattice(SEED))
            .seeds(tune_seeds)
            .lanes(lanes)
            .concurrent_points(lanes.max(2))
            .refinement(1, 2)
            .build();
        let start = Instant::now();
        let outcome = tuner.tune(&circuit).expect("tune succeeds");
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(outcome.source, TuneSource::Evaluated);
        match &baseline_json {
            None => baseline_json = Some(outcome.json.clone()),
            Some(json) => assert_eq!(
                &outcome.json, json,
                "lane count {lanes} changed the frontier artifact bytes"
            ),
        }
        println!(
            "lanes={lanes} tune {:>7.1} ms | {} evaluated, {} skipped, {} jobs cancelled",
            wall * 1e3,
            outcome.stats.points_evaluated,
            outcome.stats.points_pruned_static + outcome.stats.points_shed_inflight,
            outcome.stats.jobs_cancelled,
        );
        rows.push(LaneRow {
            lanes,
            wall_s: wall,
            points_evaluated: outcome.stats.points_evaluated,
            points_skipped: outcome.stats.points_pruned_static
                + outcome.stats.points_shed_inflight,
            jobs_cancelled: outcome.stats.jobs_cancelled,
        });
        if lanes == 1 {
            warm = Some(tuner);
        }
    }

    // Cached re-tune: answered from the stored artifact, nothing executed.
    let mut warm = warm.expect("lanes=1 tuner kept");
    let start = Instant::now();
    let cached = warm.tune(&circuit).expect("cached tune succeeds");
    let cached_wall = start.elapsed().as_secs_f64();
    assert_eq!(cached.source, TuneSource::MemoryCache);
    assert_eq!(cached.stats.points_evaluated, 0, "a cache hit executes nothing");
    assert_eq!(Some(&cached.json), baseline_json.as_ref());
    println!("cached re-tune {:>7.3} ms (evaluation skipped)", cached_wall * 1e3);

    // Tuned vs default per-RSL latency on the same circuit.
    let recommended = cached.artifact.recommended;
    let exec_seeds: Vec<u64> = if args.smoke { (42..46).collect() } else { (42..74).collect() };
    let default_config = CompilerConfig::for_qubits(4, P, 42);
    let tuned_config = recommended.to_config(42);
    let (default_us, default_rsl_layer, default_success) =
        measure_config(default_config, &exec_seeds);
    let (tuned_us, tuned_rsl_layer, tuned_success) = measure_config(tuned_config, &exec_seeds);
    println!(
        "default {:.3} us/RSL ({:.1} RSL/layer, {:.0}% complete) | \
         tuned {:.3} us/RSL ({:.1} RSL/layer, {:.0}% complete) | {:.2}x wall",
        default_us,
        default_rsl_layer,
        default_success * 100.0,
        tuned_us,
        tuned_rsl_layer,
        tuned_success * 100.0,
        default_us / tuned_us,
    );

    let lane_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"lanes\": {}, \"tune_wall_ms\": {:.3}, \"points_evaluated\": {}, \
                 \"points_skipped\": {}, \"jobs_cancelled\": {}, \"artifact_identical\": true }}",
                r.lanes,
                r.wall_s * 1e3,
                r.points_evaluated,
                r.points_skipped,
                r.jobs_cancelled,
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"benchmark\": \"auto-tuner: cost-model-driven config search with a cached \
         Pareto frontier (PR 9)\",\n  \
         \"host_cores\": {cores},\n  \
         \"fusion_success_prob\": {P},\n  \
         \"smoke\": {},\n  \
         \"circuit\": \"qaoa-4\",\n  \
         \"lattice_points\": 8,\n  \
         \"lattice_knobs\": [\"temporal_redundancy\", \"pipelined\", \"refresh_period\"],\n  \
         \"tune_seeds\": {},\n  \
         \"lanes\": [\n{}\n  ],\n  \
         \"cached_retune_ms\": {:.3},\n  \
         \"frontier_size\": {},\n  \
         \"recommended\": {{ \"temporal_redundancy\": {}, \"pipelined\": {}, \
         \"refresh_period\": {} }},\n  \
         \"latency\": {{ \"default_us_per_rsl\": {:.3}, \"tuned_us_per_rsl\": {:.3}, \
         \"default_rsl_per_logical_layer\": {:.3}, \"tuned_rsl_per_logical_layer\": {:.3}, \
         \"default_success\": {:.3}, \"tuned_success\": {:.3}, \
         \"wall_speedup\": {:.3} }},\n  \
         \"latency_basis\": \"warm Session seed sweeps of qaoa-4 in one process, wall-clock \
         microseconds per RSL consumed; the deterministic RSL-per-logical-layer column is the \
         resource metric the cost model actually optimizes; artifacts asserted byte-identical \
         across 1/2/4 lanes before any timing is quoted\"\n}}\n",
        args.smoke,
        tune_seeds.len(),
        lane_rows.join(",\n"),
        cached_wall * 1e3,
        cached.artifact.frontier.len(),
        recommended.temporal_redundancy,
        recommended.pipelined,
        match recommended.refresh_period {
            Some(r) => r.to_string(),
            None => "null".to_string(),
        },
        default_us,
        tuned_us,
        default_rsl_layer,
        tuned_rsl_layer,
        default_success,
        tuned_success,
        default_us / tuned_us,
    );
    std::fs::write(&args.out, &json).expect("write BENCH_PR9.json");
    println!("{json}");
    println!("wrote {}", args.out);
}
