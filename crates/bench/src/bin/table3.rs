//! Table 3: effect of the refresh mechanism on `#RSL` under a 32 GB RAM
//! budget (p = 0.75, 4-qubit resource states, refresh every 50 logical
//! layers in the paper).
//!
//! Reduced run (default): 4- and 9-qubit benchmarks with a refresh period
//! of 10 layers so the mechanism actually triggers at small scale. `--full`
//! uses the paper's 25/64/100-qubit benchmarks and 50-layer period.

use oneperc_bench::{run_oneperc, ExperimentArgs};
use oneperc_circuit::benchmarks::Benchmark;

const RAM_BUDGET_GIB: f64 = 32.0;

fn main() {
    let args = ExperimentArgs::from_env("table3");
    let p = 0.75;
    let (qubit_list, refresh_period) =
        if args.full { (vec![25usize, 64, 100], 50usize) } else { (vec![4usize, 9], 10usize) };

    println!(
        "Table 3: effect of refresh (p = {p}, refresh every {refresh_period} logical layers, {RAM_BUDGET_GIB} GiB budget)"
    );
    println!(
        "{:<10} {:>7} {:>16} {:>16} {:>14} {:>14}",
        "benchmark", "qubits", "no-refresh #RSL", "refreshed #RSL", "no-refresh GiB", "refreshed GiB"
    );

    let mut rows = Vec::new();
    for bench in Benchmark::all() {
        for &qubits in &qubit_list {
            let plain = run_oneperc(bench, qubits, p, None, args.seed);
            let refreshed = run_oneperc(bench, qubits, p, Some(refresh_period), args.seed);
            let plain_fits = plain.peak_memory_gib() <= RAM_BUDGET_GIB;
            let plain_rsl = if plain_fits { plain.rsl_consumed.to_string() } else { "-".to_string() };
            println!(
                "{:<10} {:>7} {:>16} {:>16} {:>14.2} {:>14.2}",
                bench.name(),
                qubits,
                plain_rsl,
                refreshed.rsl_consumed,
                plain.peak_memory_gib(),
                refreshed.peak_memory_gib(),
            );
            rows.push(format!(
                "{bench},{qubits},{},{},{},{:.3},{:.3}",
                plain.rsl_consumed,
                plain_fits,
                refreshed.rsl_consumed,
                plain.peak_memory_gib(),
                refreshed.peak_memory_gib()
            ));
        }
    }

    let path = args.write_csv(
        "table3.csv",
        "benchmark,qubits,no_refresh_rsl,no_refresh_fits_32gib,refreshed_rsl,no_refresh_gib,refreshed_gib",
        &rows,
    );
    println!("\nwrote {}", path.display());
}
