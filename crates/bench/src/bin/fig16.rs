//! Fig. 16: 2D renormalization success rate vs average node size, for fusion
//! success probabilities 0.66–0.78 (200x200 RSL in the paper).

use oneperc_bench::ExperimentArgs;
use oneperc_hardware::{FusionEngine, HardwareConfig};
use oneperc_percolation::renormalize;

fn main() {
    let args = ExperimentArgs::from_env("fig16");
    let rsl = if args.full { 200 } else { 96 };
    let trials: u64 = if args.full { 30 } else { 10 };
    let node_sizes: Vec<usize> = if args.full {
        vec![2, 4, 6, 8, 10, 14, 18, 24, 32, 40, 50, 60]
    } else {
        vec![2, 4, 6, 8, 12, 16, 24, 32]
    };
    let probabilities = [0.66, 0.69, 0.72, 0.75, 0.78];

    println!("Fig 16: renormalization success rate vs average node size ({rsl}x{rsl} RSL, {trials} trials)");
    print!("{:>10}", "node size");
    for p in probabilities {
        print!(" {:>8.2}", p);
    }
    println!();

    let mut rows = Vec::new();
    for &node_size in &node_sizes {
        print!("{:>10}", node_size);
        for &p in &probabilities {
            let mut ok = 0;
            for t in 0..trials {
                let mut engine = FusionEngine::new(HardwareConfig::new(rsl, 7, p), args.seed + t);
                let layer = engine.generate_layer();
                if renormalize(&layer, node_size).is_success() {
                    ok += 1;
                }
            }
            let rate = ok as f64 / trials as f64;
            print!(" {:>8.2}", rate);
            rows.push(format!("{p},{rsl},{node_size},{rate:.4}"));
        }
        println!();
    }

    let path = args.write_csv(
        "fig16.csv",
        "fusion_success_prob,rsl_size,node_size,renormalization_success_rate",
        &rows,
    );
    println!("\nwrote {}", path.display());
}
