//! Measures the PR-5 bit-packed layer representation and writes
//! `BENCH_PR5.json` (the PR-5 acceptance artifact).
//!
//! Two measurements per RSL size (L = 24 / 40 / 96):
//!
//! * **Words-vs-bytes layer generation.** The word-parallel
//!   `FusionEngine::generate_layer_into` (bit-packed planes, word-batched
//!   bit-sliced Bernoulli draws) against `DenseScalarEngine`, the verbatim
//!   pre-PR-5 generator (one byte per site, one scalar RNG word plus an
//!   f64 compare per attempt). Before timing, the packed engine is
//!   verified site-for-site identical against the same-stream
//!   `DenseReferenceEngine`, so the ratio is measured on a representation
//!   known to be correct.
//! * **Per-RSL renormalization throughput.** The modular renormalizer on
//!   a stream of freshly generated packed layers — the online-pass shape —
//!   now running word-scan frontier seeding, the strip-scan site-bitmap
//!   precheck and the word-parallel union-find reset.
//!
//! Run with `--release`; debug timings are meaningless.
//!
//! Usage: `bench_pr5 [--out <path>] [--layers <n>] [--reps <n>] [--smoke]`

use std::sync::Arc;
use std::time::Instant;

use oneperc_bench::dense::{DenseBoolLayer, DenseReferenceEngine, DenseScalarEngine};
use oneperc_hardware::{FusionEngine, HardwareConfig, PhysicalLayer};
use oneperc_percolation::{ModularConfig, ModularRenormalizer};

const P: f64 = 0.75;
const DEGREE: usize = 7;
const SEED: u64 = 2024;

struct Args {
    out: String,
    layers: usize,
    reps: usize,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args { out: "BENCH_PR5.json".to_string(), layers: 64, reps: 5, smoke: false };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                args.out = iter.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            "--layers" => {
                args.layers = iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--layers needs an integer");
                    std::process::exit(2);
                })
            }
            "--reps" => {
                args.reps = iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--reps needs an integer");
                    std::process::exit(2);
                })
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "bench_pr5: words-vs-bytes layer generation and per-RSL renorm \
                     throughput; writes BENCH_PR5.json"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if args.smoke {
        args.layers = args.layers.min(8);
        args.reps = 1;
    }
    args
}

/// Seconds per layer for the bit-packed generator.
fn time_packed(rsl: usize, layers: usize) -> f64 {
    let mut engine = FusionEngine::new(HardwareConfig::new(rsl, DEGREE, P), SEED);
    let mut buf = PhysicalLayer::blank(rsl, rsl);
    let start = Instant::now();
    for _ in 0..layers {
        engine.generate_layer_into(&mut buf);
        std::hint::black_box(buf.fusions_attempted);
    }
    start.elapsed().as_secs_f64() / layers as f64
}

/// Seconds per layer for the pre-PR-5 generator: dense one-byte-per-site
/// planes, scalar per-attempt draws.
fn time_dense(rsl: usize, layers: usize) -> f64 {
    let mut engine = DenseScalarEngine::new(HardwareConfig::new(rsl, DEGREE, P), SEED);
    let mut buf = DenseBoolLayer::blank(1, 1);
    let start = Instant::now();
    for _ in 0..layers {
        engine.generate_layer_into(&mut buf);
        std::hint::black_box(buf.fusions_attempted);
    }
    start.elapsed().as_secs_f64() / layers as f64
}

/// Seconds per RSL for the modular renormalization of a generated stream.
fn time_renorm(rsl: usize, layers: usize) -> (f64, usize) {
    let mut engine = FusionEngine::new(HardwareConfig::new(rsl, DEGREE, P), SEED);
    let mut renorm = ModularRenormalizer::new(ModularConfig::new(2, 7, 6).sequential());
    let stream: Vec<Arc<PhysicalLayer>> =
        (0..layers).map(|_| Arc::new(engine.generate_layer())).collect();
    let mut joined = 0usize;
    let start = Instant::now();
    for layer in &stream {
        joined += renorm.run_shared(layer).joined_nodes;
    }
    (start.elapsed().as_secs_f64() / layers as f64, joined)
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut rows = Vec::new();
    let mut headline = f64::NAN;
    for &rsl in &[24usize, 40, 96] {
        // Equivalence gate (doubles as warm-up): the two generators must
        // agree site for site before their timings mean anything.
        let cfg = HardwareConfig::new(rsl, DEGREE, P);
        let mut packed_engine = FusionEngine::new(cfg, SEED);
        let mut dense_engine = DenseReferenceEngine::new(cfg, SEED);
        let mut packed = PhysicalLayer::blank(1, 1);
        let mut dense = DenseBoolLayer::blank(1, 1);
        for _ in 0..4 {
            packed_engine.generate_layer_into(&mut packed);
            dense_engine.generate_layer_into(&mut dense);
            if let Some(msg) = dense.mismatch(&packed) {
                panic!("L={rsl}: packed and dense generators diverged: {msg}");
            }
        }

        let mut packed_s = f64::INFINITY;
        let mut dense_s = f64::INFINITY;
        let mut renorm_s = f64::INFINITY;
        let mut joined = 0usize;
        for _ in 0..args.reps {
            packed_s = packed_s.min(time_packed(rsl, args.layers));
            dense_s = dense_s.min(time_dense(rsl, args.layers));
            let (r, j) = time_renorm(rsl, args.layers);
            renorm_s = renorm_s.min(r);
            joined = j;
        }

        let ratio = dense_s / packed_s;
        if rsl == 40 {
            headline = ratio;
        }
        println!(
            "L={rsl:<3} dense {:>8.1} us/layer | packed {:>8.1} us/layer | {ratio:.2}x words-vs-bytes",
            dense_s * 1e6,
            packed_s * 1e6,
        );
        println!(
            "L={rsl:<3} renorm {:>7.1} us/RSL ({:.0} RSL/s, {joined} joined nodes over {} layers)",
            renorm_s * 1e6,
            1.0 / renorm_s,
            args.layers,
        );
        rows.push(format!(
            "    {{ \"rsl_size\": {rsl}, \"layers\": {}, \
             \"dense_us_per_layer\": {:.3}, \"packed_us_per_layer\": {:.3}, \
             \"words_vs_bytes_ratio\": {ratio:.3}, \
             \"renorm_us_per_rsl\": {:.3}, \"renorm_rsl_per_s\": {:.1}, \
             \"site_identical\": true }}",
            args.layers,
            dense_s * 1e6,
            packed_s * 1e6,
            renorm_s * 1e6,
            1.0 / renorm_s,
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"bit-packed physical layers: word-parallel generation and strip scans (PR 5)\",\n  \
         \"host_cores\": {cores},\n  \
         \"fusion_success_prob\": {P},\n  \
         \"resource_state_size\": {DEGREE},\n  \
         \"smoke\": {},\n  \
         \"sizes\": [\n{}\n  ],\n  \
         \"speedup\": {headline:.3},\n  \
         \"speedup_basis\": \"measured wall-clock at L=40: verbatim pre-PR5 generator (dense \
         Vec<bool> planes, one scalar RNG word + f64 compare per attempt) vs bit-packed \
         word-parallel generate_layer_into (bit-sliced batched draws); packed output \
         verified site-for-site against the same-stream dense reference before timing; \
         renorm rows record the modular per-RSL throughput on the packed layers (word-scan \
         seeding + strip precheck)\"\n}}\n",
        args.smoke,
        rows.join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write BENCH_PR5.json");
    println!("{json}");
    println!("wrote {}", args.out);
    if !args.smoke && headline < 1.0 {
        eprintln!("WARNING: packed generation slower than dense baseline ({headline:.2}x)");
        std::process::exit(1);
    }
}
