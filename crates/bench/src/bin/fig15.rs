//! Fig. 15: offline compilation time — (a) vs program size on a 4x4 virtual
//! hardware, (b) vs virtual-hardware size for a fixed program.

use std::time::Instant;

use oneperc_bench::ExperimentArgs;
use oneperc_circuit::benchmarks::Benchmark;
use oneperc_circuit::ProgramGraph;
use oneperc_ir::VirtualHardware;
use oneperc_mapper::{Mapper, MapperConfig};

fn offline_seconds(bench: Benchmark, qubits: usize, side: usize, seed: u64) -> f64 {
    let program = ProgramGraph::from_circuit(&bench.circuit(qubits, seed));
    let mapper = Mapper::new(MapperConfig::new(VirtualHardware::square(side)));
    let start = Instant::now();
    mapper.map(&program).expect("offline mapping failed");
    start.elapsed().as_secs_f64()
}

fn main() {
    let args = ExperimentArgs::from_env("fig15");
    let mut rows = Vec::new();

    // ---- (a) offline compile time vs program size (4x4 virtual hardware) ----
    let program_sizes: Vec<usize> =
        if args.full { vec![4, 9, 16, 25, 36, 49] } else { vec![4, 9, 16, 25] };
    println!("Fig 15(a): offline compilation time vs program size (4x4 virtual hardware)");
    println!("{:<12} {:>8} {:>12}", "benchmark", "qubits", "seconds");
    for bench in Benchmark::all() {
        for &qubits in &program_sizes {
            let secs = offline_seconds(bench, qubits, 4, args.seed);
            println!("{:<12} {:>8} {:>12.4}", bench.name(), qubits, secs);
            rows.push(format!("a,{bench},{qubits},4,{secs:.6}"));
        }
    }

    // ---- (b) offline compile time vs virtual-hardware size ----
    let qubits = if args.full { 36 } else { 16 };
    let sides: Vec<usize> = if args.full { (3..=10).collect() } else { (3..=7).collect() };
    println!("\nFig 15(b): offline compilation time vs virtual-hardware side ({qubits}-qubit benchmarks)");
    println!("{:<12} {:>6} {:>12}", "benchmark", "side", "seconds");
    for bench in Benchmark::all() {
        for &side in &sides {
            let secs = offline_seconds(bench, qubits, side, args.seed);
            println!("{:<12} {:>6} {:>12.4}", bench.name(), side, secs);
            rows.push(format!("b,{bench},{qubits},{side},{secs:.6}"));
        }
    }

    let path = args.write_csv(
        "fig15.csv",
        "panel,benchmark,qubits,virtual_side,offline_seconds",
        &rows,
    );
    println!("\nwrote {}", path.display());
}
