//! Measures the PR-4 service layer — content-addressed compile cache and
//! async front-end — and writes `BENCH_PR4.json` (the PR-4 acceptance
//! artifact).
//!
//! Two A/B measurements per RSL size, both on the service's natural
//! workload (a 16-seed sweep of one circuit):
//!
//! * **Cold-compile vs cache-hit.** The per-call service shape: each
//!   request arrives as `(circuit, seed)`. The uncached contestant runs
//!   the offline pass per call (what `Session::compile` + execute cost
//!   before PR 4); the cached contestant serves every call after the
//!   first from the content-addressed `ProgramCache`.
//! * **Async vs sync submission.** The same sweep through
//!   `Session::execute_batch` (channel handshakes) and through
//!   `AsyncSession::sweep` + `block_on` (admission window, `JobFuture`
//!   waker wiring), quantifying the overhead the async front-end adds.
//!
//! Both pairs are verified byte-identical (wall-clock and cache telemetry
//! aside) before anything is timed. Run with `--release`; debug timings
//! are meaningless.
//!
//! Usage: `bench_pr4 [--out <path>] [--seeds <n>] [--reps <n>] [--smoke]`

use std::sync::Arc;
use std::time::Instant;

use oneperc::service::{block_on, AsyncSession};
use oneperc::{CompilerConfig, ExecutionReport, Session};
use oneperc_circuit::benchmarks;
use oneperc_circuit::Circuit;

const P: f64 = 0.75;

struct Args {
    out: String,
    seeds: u64,
    reps: usize,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args { out: "BENCH_PR4.json".to_string(), seeds: 16, reps: 6, smoke: false };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                args.out = iter.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            "--seeds" => {
                args.seeds = iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seeds needs an integer");
                    std::process::exit(2);
                })
            }
            "--reps" => {
                args.reps = iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--reps needs an integer");
                    std::process::exit(2);
                })
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "bench_pr4: compile-cache and async-front-end A/B on a seed sweep; \
                     writes BENCH_PR4.json"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if args.smoke {
        args.seeds = args.seeds.min(4);
        args.reps = 1;
    }
    args
}

fn deterministic(outcomes: &[oneperc::ExecuteOutcome]) -> Vec<ExecutionReport> {
    outcomes.iter().map(|o| o.report().deterministic()).collect()
}

/// Per-call service shape without the cache: every `(circuit, seed)` call
/// pays the offline pass before executing on the warm session. Execution
/// goes through `execute_shared` exactly like the cached contestant, so
/// the A/B difference is the offline pass alone (no per-call program
/// clone on either side).
fn compile_per_call_sweep(session: &Session, circuit: &Circuit, seeds: &[u64]) -> f64 {
    let start = Instant::now();
    for &seed in seeds {
        let compiled = Arc::new(session.compile(circuit).expect("offline pass succeeds"));
        std::hint::black_box(session.execute_shared(compiled, seed).report().rsl_consumed);
    }
    start.elapsed().as_secs_f64() / seeds.len() as f64
}

/// The same shape through the content-addressed cache: the first call of a
/// session compiles, every other is a hit.
fn cached_sweep(session: &Session, circuit: &Circuit, seeds: &[u64]) -> f64 {
    let start = Instant::now();
    for &seed in seeds {
        let compiled = session.compile_cached(circuit).expect("offline pass succeeds");
        std::hint::black_box(session.execute_shared(compiled, seed).report().rsl_consumed);
    }
    start.elapsed().as_secs_f64() / seeds.len() as f64
}

/// Synchronous batch submission (channel handshakes per job).
fn sync_batch(session: &Session, circuit: &Circuit, seeds: &[u64]) -> f64 {
    let compiled = session.compile_cached(circuit).expect("offline pass succeeds");
    let start = Instant::now();
    for outcome in session.execute_batch_shared(compiled, seeds) {
        std::hint::black_box(outcome.report().rsl_consumed);
    }
    start.elapsed().as_secs_f64() / seeds.len() as f64
}

/// Async submission: admission window + `JobFuture`s drained under the
/// hand-rolled `block_on`.
fn async_sweep(service: &AsyncSession, circuit: &Circuit, seeds: &[u64]) -> f64 {
    let start = Instant::now();
    let futures = service.sweep(circuit, seeds).expect("offline pass succeeds");
    for future in futures {
        std::hint::black_box(block_on(future).report().rsl_consumed);
    }
    start.elapsed().as_secs_f64() / seeds.len() as f64
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let seeds: Vec<u64> = (1..=args.seeds).collect();
    let circuit = benchmarks::qaoa(4, 2);

    let mut rows = Vec::new();
    let mut headline = f64::NAN;
    for &rsl in &[24usize, 40] {
        let config = CompilerConfig::for_sensitivity(rsl, 3, P, 0);
        let session = Session::new(config);
        let service = AsyncSession::builder(config).queue_depth(8).build();

        // Byte-identity of every contestant before timing (doubles as
        // warm-up; the service sweep also proves compile-once via its
        // counters).
        let reference = deterministic(&session.execute_batch(
            &session.compile(&circuit).expect("offline pass succeeds"),
            &seeds,
        ));
        let cached = deterministic(&session.sweep(&circuit, &seeds).expect("sweep"));
        let futures = service.sweep(&circuit, &seeds).expect("sweep");
        let asynced: Vec<_> = futures.into_iter().map(block_on).collect();
        assert_eq!(reference, cached, "cached sweep diverged");
        assert_eq!(reference, deterministic(&asynced), "async sweep diverged");
        assert_eq!(service.cache_stats().misses, 1, "async sweep must compile once");

        let mut cold_compile = f64::INFINITY;
        let mut cache_hit = f64::INFINITY;
        let mut sync_submit = f64::INFINITY;
        let mut async_submit = f64::INFINITY;
        for _ in 0..args.reps {
            cold_compile = cold_compile.min(compile_per_call_sweep(&session, &circuit, &seeds));
            cache_hit = cache_hit.min(cached_sweep(&session, &circuit, &seeds));
            sync_submit = sync_submit.min(sync_batch(&session, &circuit, &seeds));
            async_submit = async_submit.min(async_sweep(&service, &circuit, &seeds));
        }

        let cache_speedup = cold_compile / cache_hit;
        let recovered_us = (cold_compile - cache_hit) * 1e6;
        let async_overhead_us = (async_submit - sync_submit) * 1e6;
        if rsl == 40 {
            headline = cache_speedup;
        }
        println!(
            "L={rsl:<3} compile-per-call {:>9.1} us/exec | cache-hit {:>9.1} us/exec | {cache_speedup:.2}x ({recovered_us:+.0} us/exec)",
            cold_compile * 1e6,
            cache_hit * 1e6,
        );
        println!(
            "L={rsl:<3} sync submit     {:>9.1} us/exec | async     {:>9.1} us/exec | overhead {async_overhead_us:+.1} us/exec",
            sync_submit * 1e6,
            async_submit * 1e6,
        );
        rows.push(format!(
            "    {{ \"rsl_size\": {rsl}, \"seeds\": {}, \
             \"compile_per_call_us_per_exec\": {:.3}, \"cache_hit_us_per_exec\": {:.3}, \
             \"cache_speedup\": {cache_speedup:.3}, \
             \"offline_recovered_us_per_exec\": {recovered_us:.3}, \
             \"sync_submit_us_per_exec\": {:.3}, \"async_submit_us_per_exec\": {:.3}, \
             \"async_overhead_us_per_exec\": {async_overhead_us:.3}, \
             \"compiled_once\": true, \"byte_identical\": true }}",
            seeds.len(),
            cold_compile * 1e6,
            cache_hit * 1e6,
            sync_submit * 1e6,
            async_submit * 1e6,
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"16-seed sweep: content-addressed compile cache and async front-end (PR 4)\",\n  \
         \"host_cores\": {cores},\n  \
         \"fusion_success_prob\": {P},\n  \
         \"resource_state_size\": 7,\n  \
         \"circuit\": \"qaoa-4\",\n  \
         \"smoke\": {},\n  \
         \"sweeps\": [\n{}\n  ],\n  \
         \"speedup\": {headline:.3},\n  \
         \"speedup_basis\": \"measured wall-clock at L=40: offline pass per call vs \
         content-addressed cache hit per call, one warm session, byte-identical reports \
         verified per seed; async rows quantify JobFuture+admission overhead vs the \
         synchronous channel path\"\n}}\n",
        args.smoke,
        rows.join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write BENCH_PR4.json");
    println!("{json}");
    println!("wrote {}", args.out);
    if !args.smoke && headline < 1.0 {
        eprintln!("WARNING: cache hit slower than compile-per-call ({headline:.2}x)");
        std::process::exit(1);
    }
}
