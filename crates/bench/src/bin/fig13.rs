//! Fig. 13: scalability and parallelism of OnePerc with 7-qubit resource
//! states — (a) suitable average node size vs RSL size, (b) PL ratio vs
//! program size, (c) renormalized size vs number of modules / MI ratio.

use std::time::Instant;

use oneperc::CompilerConfig;
use oneperc_bench::{run_oneperc_with_config, ExperimentArgs};
use oneperc_circuit::benchmarks::Benchmark;
use oneperc_hardware::{FusionEngine, HardwareConfig};
use oneperc_percolation::{renormalize, ModularConfig, ModularRenormalizer, Renormalizer};

/// Success-rate estimate of renormalizing an `n x n` RSL at probability `p`
/// to the given average node size, over `trials` independent layers.
fn renorm_success_rate(n: usize, p: f64, node_size: usize, trials: u64, seed: u64) -> f64 {
    let mut ok = 0;
    for t in 0..trials {
        let mut engine = FusionEngine::new(HardwareConfig::new(n, 7, p), seed + t);
        let layer = engine.generate_layer();
        if renormalize(&layer, node_size).is_success() {
            ok += 1;
        }
    }
    ok as f64 / trials as f64
}

/// Smallest average node size whose renormalization success rate reaches
/// (approximately) one — the quantity plotted in Fig. 13(a).
fn suitable_node_size(n: usize, p: f64, trials: u64, seed: u64) -> usize {
    let mut candidate = 2;
    while candidate <= n / 2 {
        if renorm_success_rate(n, p, candidate, trials, seed) >= 0.99 {
            return candidate;
        }
        candidate += 2;
    }
    n / 2
}

fn main() {
    let args = ExperimentArgs::from_env("fig13");
    let mut rows = Vec::new();

    // ---- (a) suitable average node size vs RSL size ----
    let rsl_sizes: Vec<usize> = if args.full {
        vec![50, 100, 150, 200, 250, 300]
    } else {
        vec![48, 96, 144]
    };
    let trials: u64 = if args.full { 20 } else { 8 };
    println!("Fig 13(a): suitable average node size vs RSL size");
    println!("{:>6} {:>6} {:>12}", "p", "N", "node size");
    for &p in &[0.66, 0.72, 0.78] {
        for &n in &rsl_sizes {
            let node = suitable_node_size(n, p, trials, args.seed);
            println!("{:>6.2} {:>6} {:>12}", p, n, node);
            rows.push(format!("a,{p},{n},,,,suitable_node_size,{node}"));
        }
    }

    // ---- (b) PL ratio vs program size ----
    let program_sizes: Vec<usize> = if args.full { vec![4, 9, 16, 25, 36] } else { vec![4, 9, 16] };
    println!("\nFig 13(b): PL ratio (merged layers per logical layer) vs program size");
    println!("{:<12} {:>8} {:>10}", "benchmark", "qubits", "PL ratio");
    for bench in Benchmark::all() {
        for &qubits in &program_sizes {
            let side = (qubits as f64).sqrt().ceil() as usize;
            let rsl = side * 12;
            let config = CompilerConfig::for_sensitivity(rsl, side, 0.75, args.seed);
            let report = run_oneperc_with_config(bench, qubits, config, args.seed);
            println!("{:<12} {:>8} {:>10.2}", bench.name(), qubits, report.pl_ratio());
            rows.push(format!("b,0.75,{rsl},12,{bench}-{qubits},,pl_ratio,{:.4}", report.pl_ratio()));
        }
    }

    // ---- (c) renormalized size vs number of modules and MI ratio ----
    let rsl = if args.full { 200 } else { 144 };
    let node_size = 6;
    let mut engine = FusionEngine::new(HardwareConfig::new(rsl, 7, 0.75), args.seed);
    let layer = engine.generate_layer();
    let shared = std::sync::Arc::new(layer.clone());
    println!("\nFig 13(c): renormalized size vs number of modules ({rsl}x{rsl} RSL, p = 0.75)");

    let unlimited = renormalize(&layer, node_size).node_count();
    println!("{:<28} {:>10}", "non-modular (unlimited time)", unlimited);
    rows.push(format!("c,0.75,{rsl},{node_size},,,unlimited,{unlimited}"));

    for &modules_per_side in &[2usize, 3, 4] {
        let modules = modules_per_side * modules_per_side;
        // Non-modular renormalization restricted to the time budget of the
        // modular run: it can only process a 1/sqrt(modules) portion of the
        // layer side in the same time (complexity O(area)).
        let restricted_side = rsl / modules_per_side;
        let restricted = Renormalizer::new()
            .renormalize_region(&layer, (0, 0), restricted_side, restricted_side, node_size)
            .node_count();
        println!("{:<28} {:>10}  (modules = {modules})", "non-modular (restricted time)", restricted);
        rows.push(format!("c,0.75,{rsl},{node_size},{modules},,restricted,{restricted}"));

        for &mi_ratio in &[2usize, 4, 7, 14, 19] {
            let config = ModularConfig::new(modules_per_side, mi_ratio, node_size);
            let outcome = ModularRenormalizer::new(config).run_shared(&shared);
            println!(
                "modules = {modules:>2}, MI ratio = {mi_ratio:>2}      {:>10}",
                outcome.joined_nodes
            );
            rows.push(format!(
                "c,0.75,{rsl},{node_size},{modules},{mi_ratio},modular,{}",
                outcome.joined_nodes
            ));
        }
    }

    // Also report the wall-clock advantage of the modular approach, which is
    // the motivation for accepting the joining overhead. Both sides are
    // warmed outside the timed window — the online pass keeps its
    // renormalizer (scratch and worker pool) alive across the RSL stream,
    // so per-layer latency excludes scratch allocation and pool startup on
    // either path.
    let mut plain = Renormalizer::new();
    let _ = plain.renormalize(&layer, node_size);
    let start = Instant::now();
    let _ = plain.renormalize(&layer, node_size);
    let non_modular_time = start.elapsed();
    let mut modular_renorm = ModularRenormalizer::new(ModularConfig::new(3, 7, node_size));
    let _ = modular_renorm.run_shared(&shared);
    let start = Instant::now();
    let _ = modular_renorm.run_shared(&shared);
    let modular_time = start.elapsed();
    println!(
        "\nnon-modular {:.1} ms vs modular (9 modules, parallel) {:.1} ms",
        non_modular_time.as_secs_f64() * 1e3,
        modular_time.as_secs_f64() * 1e3
    );

    let path = args.write_csv(
        "fig13.csv",
        "panel,p,rsl_size,node_size,modules_or_benchmark,mi_ratio,mode,value",
        &rows,
    );
    println!("wrote {}", path.display());
}
