//! Shared utilities for the experiment harness.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary
//! in `src/bin/` (see DESIGN.md for the experiment index). This library
//! holds the pieces they share: command-line handling, CSV output and the
//! standard way of running OnePerc and the OneQ baseline on a benchmark.
//!
//! Default experiment sizes are reduced so every binary finishes on a
//! laptop in seconds to a couple of minutes; pass `--full` to use the
//! paper's sizes (hours of CPU time, exactly like the original artifact).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod dense;

use std::fs;
use std::path::PathBuf;

use oneperc::{CompilerConfig, ExecutionReport, Session};
use oneperc_circuit::benchmarks::Benchmark;
use oneperc_oneq::{OneqCompiler, OneqConfig, OneqReport};

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// Use the paper's full experiment sizes instead of the reduced
    /// defaults.
    pub full: bool,
    /// Directory CSV results are written to.
    pub out_dir: PathBuf,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs { full: false, out_dir: PathBuf::from("results"), seed: 2024 }
    }
}

impl ExperimentArgs {
    /// Parses `--full`, `--out <dir>` and `--seed <n>` from the process
    /// arguments. Unknown arguments cause a help message and exit.
    pub fn from_env(experiment: &str) -> Self {
        let mut args = ExperimentArgs::default();
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" => args.full = true,
                "--out" => {
                    args.out_dir = PathBuf::from(iter.next().unwrap_or_else(|| {
                        eprintln!("--out needs a directory");
                        std::process::exit(2);
                    }));
                }
                "--seed" => {
                    args.seed = iter
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--seed needs an integer");
                            std::process::exit(2);
                        });
                }
                "--help" | "-h" => {
                    println!(
                        "{experiment}: reproduces the corresponding table/figure of the OnePerc paper.\n\
                         options: --full (paper-sized run), --out <dir> (default: results/), --seed <n>"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument: {other} (try --help)");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// Writes a CSV file (header plus rows) into the output directory and
    /// returns its path.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) -> PathBuf {
        fs::create_dir_all(&self.out_dir).expect("create results directory");
        let path = self.out_dir.join(name);
        let mut contents = String::from(header);
        contents.push('\n');
        for row in rows {
            contents.push_str(row);
            contents.push('\n');
        }
        fs::write(&path, contents).expect("write csv");
        path
    }
}

/// Runs OnePerc end to end on a benchmark with the Table 1 sizing for the
/// given qubit count and fusion success probability.
pub fn run_oneperc(
    bench: Benchmark,
    qubits: usize,
    fusion_success_prob: f64,
    refresh: Option<usize>,
    seed: u64,
) -> ExecutionReport {
    let config = CompilerConfig::for_qubits(qubits, fusion_success_prob, seed)
        .with_refresh_period(refresh);
    run_oneperc_with_config(bench, qubits, config, seed)
}

/// Runs OnePerc end to end with an explicit configuration.
pub fn run_oneperc_with_config(
    bench: Benchmark,
    qubits: usize,
    config: CompilerConfig,
    seed: u64,
) -> ExecutionReport {
    let circuit = bench.circuit(qubits, seed);
    let session = Session::new(config);
    let compiled = session
        .compile(&circuit)
        .unwrap_or_else(|e| panic!("OnePerc failed on {bench}-{qubits}: {e}"));
    session.execute_report(&compiled)
}

/// Runs the OneQ baseline on a benchmark with the paper's repeat-until-
/// success strategy and `10^6`-RSL cap (a smaller cap is used for reduced
/// runs).
pub fn run_oneq(
    bench: Benchmark,
    qubits: usize,
    fusion_success_prob: f64,
    rsl_cap: u64,
    seed: u64,
) -> OneqReport {
    let circuit = bench.circuit(qubits, seed);
    // OneQ maps each program slice onto the physical RSL directly, so its
    // per-layer lattice is considerably larger than OnePerc's virtual
    // hardware; twice the program side keeps the plan shallow while the
    // repeat-until-success execution stays the bottleneck.
    let side = 2 * (qubits as f64).sqrt().ceil() as usize;
    let config = OneqConfig::new(side.max(2), fusion_success_prob, seed).with_rsl_cap(rsl_cap);
    OneqCompiler::new(config)
        .run(&circuit)
        .unwrap_or_else(|e| panic!("OneQ failed on {bench}-{qubits}: {e}"))
}

/// Formats a count the way the paper's Table 2 does: plain numbers below the
/// saturation cap, `"> cap"` once the cap is hit.
pub fn format_capped(value: u64, saturated: bool, cap: u64) -> String {
    if saturated {
        format!("> {cap}")
    } else {
        value.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_formatting() {
        assert_eq!(format_capped(123, false, 1_000_000), "123");
        assert_eq!(format_capped(1_000_000, true, 1_000_000), "> 1000000");
    }

    #[test]
    fn csv_writing_roundtrip() {
        let args = ExperimentArgs {
            out_dir: std::env::temp_dir().join("oneperc-bench-test"),
            ..ExperimentArgs::default()
        };
        let path = args.write_csv("t.csv", "a,b", &["1,2".to_string()]);
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.starts_with("a,b\n1,2\n"));
    }

    #[test]
    fn oneperc_and_oneq_run_on_a_tiny_benchmark() {
        let report = run_oneperc(Benchmark::Vqe, 4, 0.9, None, 3);
        assert!(report.rsl_consumed > 0);
        let baseline = run_oneq(Benchmark::Vqe, 4, 0.9, 50_000, 3);
        assert!(baseline.rsl_consumed > 0);
    }
}
