//! The pre-bit-packed, `Vec<bool>` layer representation plus a reference
//! layer generator, preserved as the A/B baseline for the PR-5 word
//! refactor (next to the hash-lattice baseline in [`crate::baseline`]).
//!
//! [`DenseBoolLayer`] stores the four per-site planes exactly as
//! `PhysicalLayer` did before PR 5: one byte per site. The
//! [`DenseReferenceEngine`] replays the fusion strategy of
//! `FusionEngine::generate_layer_into` — the same `FusionSampler` calls in
//! the same order, including the word-batched in-plane draws and the
//! end-of-phase flush — but writes through per-site boolean stores. It
//! exists for two purposes:
//!
//! * the `layer_equivalence` property tests assert the bit-packed engine
//!   produces **identical** layers site for site (and counter for counter)
//!   across lattice sizes, merging factors, probability sweeps and
//!   `reset_blank` reuse;
//! * the `bench_pr5` binary measures the words-vs-bytes layer-generation
//!   ratio recorded in `BENCH_PR5.json`. Its "bytes" contestant is
//!   [`DenseScalarEngine`], the *verbatim pre-PR-5 generator* — per-site
//!   boolean planes **and** one scalar per-attempt `sample()` draw (one
//!   RNG word plus an f64 compare per attempt) — so the ratio captures
//!   everything PR 5 replaced, bit-sliced draw batching included.
//!
//! Do not "optimize" this module — matching the old representation is the
//! point.

use oneperc_hardware::{FusionSampler, HardwareConfig, PhysicalLayer};

/// One random physical layer in the dense one-`bool`-per-site
/// representation (the pre-PR-5 `PhysicalLayer` storage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseBoolLayer {
    /// Sites along the x axis.
    pub width: usize,
    /// Sites along the y axis.
    pub height: usize,
    site_present: Vec<bool>,
    bond_east: Vec<bool>,
    bond_north: Vec<bool>,
    temporal_port: Vec<bool>,
    /// Raw RSLs consumed to produce this merged layer.
    pub raw_rsl_consumed: usize,
    /// Fusions attempted while producing this layer.
    pub fusions_attempted: u64,
    /// Fusions that succeeded while producing this layer.
    pub fusions_succeeded: u64,
}

impl DenseBoolLayer {
    /// Creates an empty layer (all sites present, no bonds, all ports
    /// available).
    pub fn blank(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "layer dimensions must be positive");
        DenseBoolLayer {
            width,
            height,
            site_present: vec![true; width * height],
            bond_east: vec![false; width * height],
            bond_north: vec![false; width * height],
            temporal_port: vec![true; width * height],
            raw_rsl_consumed: 1,
            fusions_attempted: 0,
            fusions_succeeded: 0,
        }
    }

    /// Resets to the blank state of the given dimensions, reusing the
    /// allocations (the dense twin of `PhysicalLayer::reset_blank`).
    pub fn reset_blank(&mut self, width: usize, height: usize) {
        assert!(width > 0 && height > 0, "layer dimensions must be positive");
        let n = width * height;
        self.width = width;
        self.height = height;
        self.site_present.clear();
        self.site_present.resize(n, true);
        self.bond_east.clear();
        self.bond_east.resize(n, false);
        self.bond_north.clear();
        self.bond_north.resize(n, false);
        self.temporal_port.clear();
        self.temporal_port.resize(n, true);
        self.raw_rsl_consumed = 1;
        self.fusions_attempted = 0;
        self.fusions_succeeded = 0;
    }

    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        y * self.width + x
    }

    /// Whether the site at `(x, y)` holds a usable resource state.
    pub fn site_present(&self, x: usize, y: usize) -> bool {
        self.site_present[self.idx(x, y)]
    }

    /// Whether the bond from `(x, y)` to `(x + 1, y)` is present.
    pub fn bond_east(&self, x: usize, y: usize) -> bool {
        x + 1 < self.width && self.bond_east[self.idx(x, y)]
    }

    /// Whether the bond from `(x, y)` to `(x, y + 1)` is present.
    pub fn bond_north(&self, x: usize, y: usize) -> bool {
        y + 1 < self.height && self.bond_north[self.idx(x, y)]
    }

    /// Whether the site at `(x, y)` retains a time-like fusion photon.
    pub fn temporal_port(&self, x: usize, y: usize) -> bool {
        self.temporal_port[self.idx(x, y)]
    }

    /// Number of present bonds, counted the naive byte-walk way.
    pub fn bond_count(&self) -> usize {
        let mut count = 0;
        for y in 0..self.height {
            for x in 0..self.width {
                if self.bond_east(x, y) {
                    count += 1;
                }
                if self.bond_north(x, y) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Number of present sites, counted the naive byte-walk way.
    pub fn present_site_count(&self) -> usize {
        self.site_present.iter().filter(|&&b| b).count()
    }

    /// Compares this dense layer against a bit-packed layer site for site
    /// (all four planes) and counter for counter, returning the first
    /// mismatch as a message.
    pub fn mismatch(&self, packed: &PhysicalLayer) -> Option<String> {
        if self.width != packed.width || self.height != packed.height {
            return Some(format!(
                "dimensions differ: dense {}x{}, packed {}x{}",
                self.width, self.height, packed.width, packed.height
            ));
        }
        for y in 0..self.height {
            for x in 0..self.width {
                let checks = [
                    ("site", self.site_present(x, y), packed.site_present(x, y)),
                    ("east", self.bond_east(x, y), packed.bond_east(x, y)),
                    ("north", self.bond_north(x, y), packed.bond_north(x, y)),
                    ("port", self.temporal_port(x, y), packed.temporal_port(x, y)),
                ];
                for (plane, dense, bits) in checks {
                    if dense != bits {
                        return Some(format!(
                            "{plane} plane differs at ({x}, {y}): dense {dense}, packed {bits}"
                        ));
                    }
                }
            }
        }
        if self.raw_rsl_consumed != packed.raw_rsl_consumed {
            return Some(format!(
                "raw_rsl_consumed differs: dense {}, packed {}",
                self.raw_rsl_consumed, packed.raw_rsl_consumed
            ));
        }
        if self.fusions_attempted != packed.fusions_attempted
            || self.fusions_succeeded != packed.fusions_succeeded
        {
            return Some(format!(
                "fusion counters differ: dense {}/{}, packed {}/{}",
                self.fusions_attempted,
                self.fusions_succeeded,
                packed.fusions_attempted,
                packed.fusions_succeeded
            ));
        }
        None
    }
}

/// Reference layer generator: the fusion strategy of
/// `FusionEngine::generate_layer_into`, transcribed onto the dense
/// representation. Draw-for-draw identical sampler usage — merging phase
/// and retries on the per-attempt stream, in-plane bonds on the
/// word-batched stream, one `flush_batch` at the end of the bond phase —
/// so a given seed must yield exactly the layer the bit-packed engine
/// yields.
#[derive(Debug, Clone)]
pub struct DenseReferenceEngine {
    config: HardwareConfig,
    sampler: FusionSampler,
    raw_rsl_consumed: u64,
    site_leaves: Vec<usize>,
    inplane_budget: Vec<usize>,
}

impl DenseReferenceEngine {
    /// Creates a reference engine for the given configuration and seed
    /// (mirrors `FusionEngine::new`).
    pub fn new(config: HardwareConfig, seed: u64) -> Self {
        DenseReferenceEngine {
            config,
            sampler: FusionSampler::new(config.effective_fusion_prob(), seed),
            raw_rsl_consumed: 0,
            site_leaves: Vec::new(),
            inplane_budget: Vec::new(),
        }
    }

    /// Total raw RSLs consumed so far.
    pub fn raw_rsl_consumed(&self) -> u64 {
        self.raw_rsl_consumed
    }

    /// Accumulated fusion-attempt statistics.
    pub fn fusion_stats(&self) -> oneperc_hardware::FusionStats {
        self.sampler.stats()
    }

    /// Executes the fusion strategy for one effective layer into `layer`.
    pub fn generate_layer_into(&mut self, layer: &mut DenseBoolLayer) {
        let cfg = self.config;
        let n = cfg.rsl_size;
        let m = cfg.merging_factor();
        let base_degree = cfg.resource_state_degree();
        let stats_before = self.sampler.stats();

        layer.reset_blank(n, n);
        layer.raw_rsl_consumed = m;
        self.raw_rsl_consumed += m as u64;

        // Phase 1: root-leaf merging on the per-attempt stream.
        self.site_leaves.clear();
        for _ in 0..(n * n) {
            let mut cluster = base_degree;
            for _ in 0..(m - 1) {
                let mut incoming = base_degree;
                loop {
                    if cluster == 0 || incoming == 0 {
                        break;
                    }
                    if self.sampler.sample().is_success() {
                        cluster = cluster - 1 + incoming;
                        break;
                    }
                    cluster -= 1;
                    incoming -= 1;
                }
            }
            self.site_leaves.push(cluster);
        }

        // Temporal-port reservation and presence, one boolean store each.
        self.inplane_budget.clear();
        for (i, &leaves) in self.site_leaves.iter().enumerate() {
            let forward = leaves >= 1;
            layer.temporal_port[i] = forward;
            layer.site_present[i] = leaves >= 2;
            self.inplane_budget.push(leaves - usize::from(forward));
        }

        // Phase 2: in-plane bonds on the word-batched stream, stored one
        // boolean at a time.
        let idx = |x: usize, y: usize| y * n + x;
        let remaining_bonds = |x: usize, y: usize| -> usize {
            let mut c = 0;
            if x + 1 < n {
                c += 1;
            }
            if y + 1 < n {
                c += 1;
            }
            c
        };
        for y in 0..n {
            for x in 0..n {
                for east in [true, false] {
                    let (bx, by) = if east { (x + 1, y) } else { (x, y + 1) };
                    if bx >= n || by >= n {
                        continue;
                    }
                    let a = idx(x, y);
                    let b = idx(bx, by);
                    if !layer.site_present[a] || !layer.site_present[b] {
                        continue;
                    }
                    if self.inplane_budget[a] == 0 || self.inplane_budget[b] == 0 {
                        continue;
                    }
                    self.inplane_budget[a] -= 1;
                    self.inplane_budget[b] -= 1;
                    let mut ok = self.sampler.sample_batched().is_success();
                    if !ok {
                        let spare_a = self.inplane_budget[a] > remaining_bonds(x, y);
                        let spare_b = self.inplane_budget[b] > remaining_bonds(bx, by);
                        if spare_a && spare_b {
                            self.inplane_budget[a] -= 1;
                            self.inplane_budget[b] -= 1;
                            ok = self.sampler.sample_batched().is_success();
                        }
                    }
                    if ok {
                        if east {
                            layer.bond_east[a] = true;
                        } else {
                            layer.bond_north[a] = true;
                        }
                    }
                }
            }
        }
        self.sampler.flush_batch();

        let stats_after = self.sampler.stats();
        layer.fusions_attempted = stats_after.attempted - stats_before.attempted;
        layer.fusions_succeeded = stats_after.succeeded - stats_before.succeeded;
    }
}

/// The *verbatim pre-PR-5 layer generator*: dense boolean planes and one
/// scalar per-attempt [`FusionSampler::sample`] draw per fusion, exactly
/// as `FusionEngine::generate_layer_into` worked before the word refactor
/// (including the in-plane presence checks the budget test has since
/// subsumed). Its stochastic stream therefore differs from the batched
/// engines — it is the timing baseline for `bench_pr5`, not an
/// equivalence reference.
#[derive(Debug, Clone)]
pub struct DenseScalarEngine {
    config: HardwareConfig,
    sampler: FusionSampler,
    site_leaves: Vec<usize>,
    inplane_budget: Vec<usize>,
}

impl DenseScalarEngine {
    /// Creates a pre-PR-5-style engine for the given configuration and
    /// seed.
    pub fn new(config: HardwareConfig, seed: u64) -> Self {
        DenseScalarEngine {
            config,
            sampler: FusionSampler::new(config.effective_fusion_prob(), seed),
            site_leaves: Vec::new(),
            inplane_budget: Vec::new(),
        }
    }

    /// Accumulated fusion-attempt statistics.
    pub fn fusion_stats(&self) -> oneperc_hardware::FusionStats {
        self.sampler.stats()
    }

    /// Executes the pre-PR-5 fusion strategy for one effective layer.
    pub fn generate_layer_into(&mut self, layer: &mut DenseBoolLayer) {
        let cfg = self.config;
        let n = cfg.rsl_size;
        let m = cfg.merging_factor();
        let base_degree = cfg.resource_state_degree();
        let stats_before = self.sampler.stats();

        layer.reset_blank(n, n);
        layer.raw_rsl_consumed = m;

        self.site_leaves.clear();
        for _ in 0..(n * n) {
            let mut cluster = base_degree;
            for _ in 0..(m - 1) {
                let mut incoming = base_degree;
                loop {
                    if cluster == 0 || incoming == 0 {
                        break;
                    }
                    if self.sampler.sample().is_success() {
                        cluster = cluster - 1 + incoming;
                        break;
                    }
                    cluster -= 1;
                    incoming -= 1;
                }
            }
            self.site_leaves.push(cluster);
        }

        self.inplane_budget.clear();
        for (i, &leaves) in self.site_leaves.iter().enumerate() {
            let mut remaining = leaves;
            let forward = remaining >= 1;
            if forward {
                remaining -= 1;
            }
            layer.temporal_port[i] = forward;
            layer.site_present[i] = leaves >= 2;
            self.inplane_budget.push(remaining);
        }

        let idx = |x: usize, y: usize| y * n + x;
        let remaining_bonds = |x: usize, y: usize| -> usize {
            let mut c = 0;
            if x + 1 < n {
                c += 1;
            }
            if y + 1 < n {
                c += 1;
            }
            c
        };
        for y in 0..n {
            for x in 0..n {
                for east in [true, false] {
                    let (bx, by) = if east { (x + 1, y) } else { (x, y + 1) };
                    if bx >= n || by >= n {
                        continue;
                    }
                    let a = idx(x, y);
                    let b = idx(bx, by);
                    if !layer.site_present[a] || !layer.site_present[b] {
                        continue;
                    }
                    if self.inplane_budget[a] == 0 || self.inplane_budget[b] == 0 {
                        continue;
                    }
                    self.inplane_budget[a] -= 1;
                    self.inplane_budget[b] -= 1;
                    let mut ok = self.sampler.sample().is_success();
                    if !ok {
                        let spare_a = self.inplane_budget[a] > remaining_bonds(x, y);
                        let spare_b = self.inplane_budget[b] > remaining_bonds(bx, by);
                        if spare_a && spare_b {
                            self.inplane_budget[a] -= 1;
                            self.inplane_budget[b] -= 1;
                            ok = self.sampler.sample().is_success();
                        }
                    }
                    if ok {
                        if east {
                            layer.bond_east[a] = true;
                        } else {
                            layer.bond_north[a] = true;
                        }
                    }
                }
            }
        }

        let stats_after = self.sampler.stats();
        layer.fusions_attempted = stats_after.attempted - stats_before.attempted;
        layer.fusions_succeeded = stats_after.succeeded - stats_before.succeeded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_blank_matches_packed_blank() {
        let dense = DenseBoolLayer::blank(5, 3);
        let packed = PhysicalLayer::blank(5, 3);
        assert!(dense.mismatch(&packed).is_none());
        assert_eq!(dense.bond_count(), 0);
        assert_eq!(dense.present_site_count(), 15);
    }

    #[test]
    fn mismatch_reports_differing_plane() {
        let dense = DenseBoolLayer::blank(4, 4);
        let mut packed = PhysicalLayer::blank(4, 4);
        packed.set_bond_east(1, 1, true);
        let msg = dense.mismatch(&packed).expect("must differ");
        assert!(msg.contains("east"), "unexpected message: {msg}");
    }

    #[test]
    fn scalar_engine_matches_batched_engines_statistically() {
        // The scalar pre-PR-5 stream differs draw for draw from the batched
        // one, but the physics must agree: comparable bond densities at the
        // same probability.
        let cfg = HardwareConfig::new(40, 7, 0.75);
        let mut scalar = DenseScalarEngine::new(cfg, 3);
        let mut batched = DenseReferenceEngine::new(cfg, 3);
        let mut a = DenseBoolLayer::blank(1, 1);
        let mut b = DenseBoolLayer::blank(1, 1);
        let (mut bonds_a, mut bonds_b) = (0usize, 0usize);
        for _ in 0..8 {
            scalar.generate_layer_into(&mut a);
            batched.generate_layer_into(&mut b);
            bonds_a += a.bond_count();
            bonds_b += b.bond_count();
        }
        let (da, db) = (bonds_a as f64, bonds_b as f64);
        assert!((da - db).abs() / da < 0.05, "bond densities diverge: {da} vs {db}");
    }

    #[test]
    fn reference_engine_is_deterministic_per_seed() {
        let cfg = HardwareConfig::new(10, 4, 0.75);
        let mut a = DenseReferenceEngine::new(cfg, 9);
        let mut b = DenseReferenceEngine::new(cfg, 9);
        let mut la = DenseBoolLayer::blank(1, 1);
        let mut lb = DenseBoolLayer::blank(1, 1);
        a.generate_layer_into(&mut la);
        b.generate_layer_into(&mut lb);
        assert_eq!(la, lb);
        assert_eq!(a.fusion_stats(), b.fusion_stats());
    }
}
