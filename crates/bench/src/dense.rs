//! The pre-bit-packed, `Vec<bool>` layer representation plus a reference
//! layer generator, preserved as the A/B baseline for the PR-5 word
//! refactor (next to the hash-lattice baseline in [`crate::baseline`]).
//!
//! [`DenseBoolLayer`] stores the four per-site planes exactly as
//! `PhysicalLayer` did before PR 5: one byte per site. The
//! [`DenseReferenceEngine`] replays the fusion strategy of
//! `FusionEngine::generate_layer_into` — the same `FusionSampler` calls in
//! the same order, including the word-batched in-plane draws and the
//! end-of-phase flush — but writes through per-site boolean stores. It
//! exists for two purposes:
//!
//! * the `layer_equivalence` property tests assert the bit-packed engine
//!   produces **identical** layers site for site (and counter for counter)
//!   across lattice sizes, merging factors, probability sweeps and
//!   `reset_blank` reuse;
//! * the `bench_pr5` binary measures the words-vs-bytes layer-generation
//!   ratio recorded in `BENCH_PR5.json`. Its "bytes" contestant is
//!   [`DenseScalarEngine`], the *verbatim pre-PR-5 generator* — per-site
//!   boolean planes **and** one scalar per-attempt `sample()` draw (one
//!   RNG word plus an f64 compare per attempt) — so the ratio captures
//!   everything PR 5 replaced, bit-sliced draw batching included.
//!
//! Since PR 6 this module also preserves the **scalar percolation
//! reference**: [`ScalarRenormalizer`], the pre-word-frontier band BFS of
//! `oneperc_percolation::Renormalizer` ported faithfully — the same
//! epoch-stamped visited/predecessor arrays, reused queue, pooled
//! intersection marks and per-site bit reads the PR-5 renormalizer used —
//! and [`scalar_modular_outcome`], the modular pipeline with the pre-span
//! per-pair joining scan (word prechecks and resettable union-find
//! included). The `layer_equivalence` BFS suite asserts the word-frontier
//! implementations stay site-for-site identical to these across the full
//! matrix, and `bench_pr6` times them as the scalar-BFS baseline; keeping
//! the port allocation-for-allocation faithful is what makes that a fair
//! fight rather than a strawman.
//!
//! Do not "optimize" this module — matching the old representation is the
//! point.

use graphstate::DisjointSet;
use oneperc_hardware::{FusionSampler, HardwareConfig, PhysicalLayer};
use oneperc_percolation::{ModularConfig, ModularOutcome, RenormalizedLattice};

/// One random physical layer in the dense one-`bool`-per-site
/// representation (the pre-PR-5 `PhysicalLayer` storage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseBoolLayer {
    /// Sites along the x axis.
    pub width: usize,
    /// Sites along the y axis.
    pub height: usize,
    site_present: Vec<bool>,
    bond_east: Vec<bool>,
    bond_north: Vec<bool>,
    temporal_port: Vec<bool>,
    /// Raw RSLs consumed to produce this merged layer.
    pub raw_rsl_consumed: usize,
    /// Fusions attempted while producing this layer.
    pub fusions_attempted: u64,
    /// Fusions that succeeded while producing this layer.
    pub fusions_succeeded: u64,
}

impl DenseBoolLayer {
    /// Creates an empty layer (all sites present, no bonds, all ports
    /// available).
    pub fn blank(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "layer dimensions must be positive");
        DenseBoolLayer {
            width,
            height,
            site_present: vec![true; width * height],
            bond_east: vec![false; width * height],
            bond_north: vec![false; width * height],
            temporal_port: vec![true; width * height],
            raw_rsl_consumed: 1,
            fusions_attempted: 0,
            fusions_succeeded: 0,
        }
    }

    /// Resets to the blank state of the given dimensions, reusing the
    /// allocations (the dense twin of `PhysicalLayer::reset_blank`).
    pub fn reset_blank(&mut self, width: usize, height: usize) {
        assert!(width > 0 && height > 0, "layer dimensions must be positive");
        let n = width * height;
        self.width = width;
        self.height = height;
        self.site_present.clear();
        self.site_present.resize(n, true);
        self.bond_east.clear();
        self.bond_east.resize(n, false);
        self.bond_north.clear();
        self.bond_north.resize(n, false);
        self.temporal_port.clear();
        self.temporal_port.resize(n, true);
        self.raw_rsl_consumed = 1;
        self.fusions_attempted = 0;
        self.fusions_succeeded = 0;
    }

    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        y * self.width + x
    }

    /// Whether the site at `(x, y)` holds a usable resource state.
    pub fn site_present(&self, x: usize, y: usize) -> bool {
        self.site_present[self.idx(x, y)]
    }

    /// Whether the bond from `(x, y)` to `(x + 1, y)` is present.
    pub fn bond_east(&self, x: usize, y: usize) -> bool {
        x + 1 < self.width && self.bond_east[self.idx(x, y)]
    }

    /// Whether the bond from `(x, y)` to `(x, y + 1)` is present.
    pub fn bond_north(&self, x: usize, y: usize) -> bool {
        y + 1 < self.height && self.bond_north[self.idx(x, y)]
    }

    /// Whether the site at `(x, y)` retains a time-like fusion photon.
    pub fn temporal_port(&self, x: usize, y: usize) -> bool {
        self.temporal_port[self.idx(x, y)]
    }

    /// Number of present bonds, counted the naive byte-walk way.
    pub fn bond_count(&self) -> usize {
        let mut count = 0;
        for y in 0..self.height {
            for x in 0..self.width {
                if self.bond_east(x, y) {
                    count += 1;
                }
                if self.bond_north(x, y) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Number of present sites, counted the naive byte-walk way.
    pub fn present_site_count(&self) -> usize {
        self.site_present.iter().filter(|&&b| b).count()
    }

    /// Compares this dense layer against a bit-packed layer site for site
    /// (all four planes) and counter for counter, returning the first
    /// mismatch as a message.
    pub fn mismatch(&self, packed: &PhysicalLayer) -> Option<String> {
        if self.width != packed.width || self.height != packed.height {
            return Some(format!(
                "dimensions differ: dense {}x{}, packed {}x{}",
                self.width, self.height, packed.width, packed.height
            ));
        }
        for y in 0..self.height {
            for x in 0..self.width {
                let checks = [
                    ("site", self.site_present(x, y), packed.site_present(x, y)),
                    ("east", self.bond_east(x, y), packed.bond_east(x, y)),
                    ("north", self.bond_north(x, y), packed.bond_north(x, y)),
                    ("port", self.temporal_port(x, y), packed.temporal_port(x, y)),
                ];
                for (plane, dense, bits) in checks {
                    if dense != bits {
                        return Some(format!(
                            "{plane} plane differs at ({x}, {y}): dense {dense}, packed {bits}"
                        ));
                    }
                }
            }
        }
        if self.raw_rsl_consumed != packed.raw_rsl_consumed {
            return Some(format!(
                "raw_rsl_consumed differs: dense {}, packed {}",
                self.raw_rsl_consumed, packed.raw_rsl_consumed
            ));
        }
        if self.fusions_attempted != packed.fusions_attempted
            || self.fusions_succeeded != packed.fusions_succeeded
        {
            return Some(format!(
                "fusion counters differ: dense {}/{}, packed {}/{}",
                self.fusions_attempted,
                self.fusions_succeeded,
                packed.fusions_attempted,
                packed.fusions_succeeded
            ));
        }
        None
    }
}

/// Reference layer generator: the fusion strategy of
/// `FusionEngine::generate_layer_into`, transcribed onto the dense
/// representation. Draw-for-draw identical sampler usage — merging phase
/// and retries on the per-attempt stream, in-plane bonds on the
/// word-batched stream (including the whole-row first-attempt words of
/// the never-exhausting fast path), one `flush_batch` at the end of the
/// bond phase — so a given seed must yield exactly the layer the
/// bit-packed engine yields.
#[derive(Debug, Clone)]
pub struct DenseReferenceEngine {
    config: HardwareConfig,
    sampler: FusionSampler,
    raw_rsl_consumed: u64,
    site_leaves: Vec<usize>,
    inplane_budget: Vec<usize>,
    /// Pre-drawn first-attempt words for one row of east/north bonds
    /// (mirrors the engine's whole-row fast path draw order).
    row_east: Vec<u64>,
    row_north: Vec<u64>,
}

impl DenseReferenceEngine {
    /// Creates a reference engine for the given configuration and seed
    /// (mirrors `FusionEngine::new`).
    pub fn new(config: HardwareConfig, seed: u64) -> Self {
        DenseReferenceEngine {
            config,
            sampler: FusionSampler::new(config.effective_fusion_prob(), seed),
            raw_rsl_consumed: 0,
            site_leaves: Vec::new(),
            inplane_budget: Vec::new(),
            row_east: Vec::new(),
            row_north: Vec::new(),
        }
    }

    /// Total raw RSLs consumed so far.
    pub fn raw_rsl_consumed(&self) -> u64 {
        self.raw_rsl_consumed
    }

    /// Accumulated fusion-attempt statistics.
    pub fn fusion_stats(&self) -> oneperc_hardware::FusionStats {
        self.sampler.stats()
    }

    /// Executes the fusion strategy for one effective layer into `layer`.
    pub fn generate_layer_into(&mut self, layer: &mut DenseBoolLayer) {
        let cfg = self.config;
        let n = cfg.rsl_size;
        let m = cfg.merging_factor();
        let base_degree = cfg.resource_state_degree();
        let stats_before = self.sampler.stats();

        layer.reset_blank(n, n);
        layer.raw_rsl_consumed = m;
        self.raw_rsl_consumed += m as u64;

        // Phase 1: root-leaf merging on the per-attempt stream.
        self.site_leaves.clear();
        for _ in 0..(n * n) {
            let mut cluster = base_degree;
            for _ in 0..(m - 1) {
                let mut incoming = base_degree;
                loop {
                    if cluster == 0 || incoming == 0 {
                        break;
                    }
                    if self.sampler.sample().is_success() {
                        cluster = cluster - 1 + incoming;
                        break;
                    }
                    cluster -= 1;
                    incoming -= 1;
                }
            }
            self.site_leaves.push(cluster);
        }

        // Temporal-port reservation and presence, one boolean store each.
        self.inplane_budget.clear();
        for (i, &leaves) in self.site_leaves.iter().enumerate() {
            let forward = leaves >= 1;
            layer.temporal_port[i] = forward;
            layer.site_present[i] = leaves >= 2;
            self.inplane_budget.push(leaves - usize::from(forward));
        }

        // Phase 2: in-plane bonds on the word-batched stream, stored one
        // boolean at a time. The draw *order* must match the bit-packed
        // engine exactly, including its whole-row first-attempt fast path
        // for never-exhausting configurations (merging factor 1, degree
        // >= 6): a row's east then north first attempts are pre-drawn as
        // packed words, and only the data-dependent retries consume the
        // stream bit by bit during the sweep.
        let idx = |x: usize, y: usize| y * n + x;
        let remaining_bonds = |x: usize, y: usize| -> usize {
            let mut c = 0;
            if x + 1 < n {
                c += 1;
            }
            if y + 1 < n {
                c += 1;
            }
            c
        };
        let whole_row = m == 1 && base_degree >= 6;
        for y in 0..n {
            if whole_row {
                self.row_east.clear();
                for cx in 0..(n - 1).div_ceil(64) {
                    let cnt = 64.min(n - 1 - cx * 64) as u32;
                    self.row_east.push(self.sampler.sample_batched_word(cnt));
                }
                self.row_north.clear();
                if y + 1 < n {
                    for cx in 0..n.div_ceil(64) {
                        let cnt = 64.min(n - cx * 64) as u32;
                        self.row_north.push(self.sampler.sample_batched_word(cnt));
                    }
                }
            }
            for x in 0..n {
                for east in [true, false] {
                    let (bx, by) = if east { (x + 1, y) } else { (x, y + 1) };
                    if bx >= n || by >= n {
                        continue;
                    }
                    let a = idx(x, y);
                    let b = idx(bx, by);
                    if !whole_row {
                        if !layer.site_present[a] || !layer.site_present[b] {
                            continue;
                        }
                        if self.inplane_budget[a] == 0 || self.inplane_budget[b] == 0 {
                            continue;
                        }
                    }
                    self.inplane_budget[a] -= 1;
                    self.inplane_budget[b] -= 1;
                    let mut ok = if whole_row {
                        let row = if east { &self.row_east } else { &self.row_north };
                        row[x / 64] >> (x % 64) & 1 == 1
                    } else {
                        self.sampler.sample_batched().is_success()
                    };
                    if !ok {
                        let spare_a = self.inplane_budget[a] > remaining_bonds(x, y);
                        let spare_b = self.inplane_budget[b] > remaining_bonds(bx, by);
                        if spare_a && spare_b {
                            self.inplane_budget[a] -= 1;
                            self.inplane_budget[b] -= 1;
                            ok = self.sampler.sample_batched().is_success();
                        }
                    }
                    if ok {
                        if east {
                            layer.bond_east[a] = true;
                        } else {
                            layer.bond_north[a] = true;
                        }
                    }
                }
            }
        }
        self.sampler.flush_batch();

        let stats_after = self.sampler.stats();
        layer.fusions_attempted = stats_after.attempted - stats_before.attempted;
        layer.fusions_succeeded = stats_after.succeeded - stats_before.succeeded;
    }
}

/// The *verbatim pre-PR-5 layer generator*: dense boolean planes and one
/// scalar per-attempt [`FusionSampler::sample`] draw per fusion, exactly
/// as `FusionEngine::generate_layer_into` worked before the word refactor
/// (including the in-plane presence checks the budget test has since
/// subsumed). Its stochastic stream therefore differs from the batched
/// engines — it is the timing baseline for `bench_pr5`, not an
/// equivalence reference.
#[derive(Debug, Clone)]
pub struct DenseScalarEngine {
    config: HardwareConfig,
    sampler: FusionSampler,
    site_leaves: Vec<usize>,
    inplane_budget: Vec<usize>,
}

impl DenseScalarEngine {
    /// Creates a pre-PR-5-style engine for the given configuration and
    /// seed.
    pub fn new(config: HardwareConfig, seed: u64) -> Self {
        DenseScalarEngine {
            config,
            sampler: FusionSampler::new(config.effective_fusion_prob(), seed),
            site_leaves: Vec::new(),
            inplane_budget: Vec::new(),
        }
    }

    /// Accumulated fusion-attempt statistics.
    pub fn fusion_stats(&self) -> oneperc_hardware::FusionStats {
        self.sampler.stats()
    }

    /// Executes the pre-PR-5 fusion strategy for one effective layer.
    pub fn generate_layer_into(&mut self, layer: &mut DenseBoolLayer) {
        let cfg = self.config;
        let n = cfg.rsl_size;
        let m = cfg.merging_factor();
        let base_degree = cfg.resource_state_degree();
        let stats_before = self.sampler.stats();

        layer.reset_blank(n, n);
        layer.raw_rsl_consumed = m;

        self.site_leaves.clear();
        for _ in 0..(n * n) {
            let mut cluster = base_degree;
            for _ in 0..(m - 1) {
                let mut incoming = base_degree;
                loop {
                    if cluster == 0 || incoming == 0 {
                        break;
                    }
                    if self.sampler.sample().is_success() {
                        cluster = cluster - 1 + incoming;
                        break;
                    }
                    cluster -= 1;
                    incoming -= 1;
                }
            }
            self.site_leaves.push(cluster);
        }

        self.inplane_budget.clear();
        for (i, &leaves) in self.site_leaves.iter().enumerate() {
            let mut remaining = leaves;
            let forward = remaining >= 1;
            if forward {
                remaining -= 1;
            }
            layer.temporal_port[i] = forward;
            layer.site_present[i] = leaves >= 2;
            self.inplane_budget.push(remaining);
        }

        let idx = |x: usize, y: usize| y * n + x;
        let remaining_bonds = |x: usize, y: usize| -> usize {
            let mut c = 0;
            if x + 1 < n {
                c += 1;
            }
            if y + 1 < n {
                c += 1;
            }
            c
        };
        for y in 0..n {
            for x in 0..n {
                for east in [true, false] {
                    let (bx, by) = if east { (x + 1, y) } else { (x, y + 1) };
                    if bx >= n || by >= n {
                        continue;
                    }
                    let a = idx(x, y);
                    let b = idx(bx, by);
                    if !layer.site_present[a] || !layer.site_present[b] {
                        continue;
                    }
                    if self.inplane_budget[a] == 0 || self.inplane_budget[b] == 0 {
                        continue;
                    }
                    self.inplane_budget[a] -= 1;
                    self.inplane_budget[b] -= 1;
                    let mut ok = self.sampler.sample().is_success();
                    if !ok {
                        let spare_a = self.inplane_budget[a] > remaining_bonds(x, y);
                        let spare_b = self.inplane_budget[b] > remaining_bonds(bx, by);
                        if spare_a && spare_b {
                            self.inplane_budget[a] -= 1;
                            self.inplane_budget[b] -= 1;
                            ok = self.sampler.sample().is_success();
                        }
                    }
                    if ok {
                        if east {
                            layer.bond_east[a] = true;
                        } else {
                            layer.bond_north[a] = true;
                        }
                    }
                }
            }
        }

        let stats_after = self.sampler.stats();
        layer.fusions_attempted = stats_after.attempted - stats_before.attempted;
        layer.fusions_succeeded = stats_after.succeeded - stats_before.succeeded;
    }
}

/// Sentinel flat index meaning "no site" (the scalar twin of the
/// percolation crate's internal sentinel).
const NO_SITE: u32 = u32::MAX;

/// The outcome of the scalar reference renormalization; field-for-field
/// the pre-PR-6 `RenormalizedLattice`, with public fields so the
/// equivalence suite can poke at it directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarLattice {
    /// The coarse lattice side `k`.
    pub target_side: usize,
    /// Band width used for the decomposition.
    pub node_size: usize,
    /// Width of the source layer (for decoding flat indices).
    pub layer_width: usize,
    /// Representative site per coarse node, `u32::MAX` when unrealized.
    pub nodes: Vec<u32>,
    /// Vertical path per coarse column.
    pub v_paths: Vec<Option<Vec<u32>>>,
    /// Horizontal path per coarse row.
    pub h_paths: Vec<Option<Vec<u32>>>,
}

impl ScalarLattice {
    /// Number of coarse nodes realized.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|&&s| s != NO_SITE).count()
    }

    /// Compares this scalar-reference lattice against a word-frontier
    /// [`RenormalizedLattice`] through its public accessors — target
    /// geometry, every node representative and the full contents of every
    /// path — returning the first difference as a message.
    pub fn mismatch(&self, word: &RenormalizedLattice) -> Option<String> {
        if self.target_side != word.target_side() {
            return Some(format!(
                "target side differs: scalar {}, word {}",
                self.target_side,
                word.target_side()
            ));
        }
        if self.node_size != word.node_size() || self.layer_width != word.layer_width() {
            return Some("band geometry differs".to_string());
        }
        let k = self.target_side;
        for i in 0..k {
            for j in 0..k {
                let scalar = self.nodes[i * k + j];
                let scalar = if scalar == NO_SITE { None } else { Some(scalar) };
                if scalar != word.node_flat(i, j) {
                    return Some(format!(
                        "node ({i}, {j}) differs: scalar {scalar:?}, word {:?}",
                        word.node_flat(i, j)
                    ));
                }
            }
        }
        for i in 0..k {
            if self.v_paths[i].as_deref() != word.v_path(i) {
                return Some(format!("vertical path {i} differs"));
            }
            if self.h_paths[i].as_deref() != word.h_path(i) {
                return Some(format!("horizontal path {i} differs"));
            }
        }
        None
    }
}

/// The pre-PR-6 band-restricted scalar BFS renormalizer, preserved as the
/// reference for the word-frontier implementation: one queue BFS per band
/// over per-site bit reads, neighbor order east/west/north/south, the
/// first end-edge site dequeued terminating the search.
///
/// The scratch handling is the *faithful* PR-5 pool, not a simplified
/// per-call transcription: epoch-stamped `u32` visited/predecessor arrays
/// sized to the layer, a reused queue buffer, pooled intersection marks
/// and a resettable union-find for the joining scan. The steady state
/// therefore allocates only the output paths — exactly what the pre-word
/// renormalizer did — so benchmarking against it measures the word
/// frontier, not allocator traffic the old code never paid.
#[derive(Debug, Clone, Default)]
pub struct ScalarRenormalizer {
    /// Epoch stamp per flat site: `visited[i] == epoch` means visited.
    visited: Vec<u32>,
    /// BFS predecessor per flat site (valid only where `visited` is
    /// current).
    prev: Vec<u32>,
    /// BFS queue, head-indexed so the buffer is reused.
    queue: Vec<u32>,
    /// Epoch stamp per flat site marking vertical-path membership during
    /// intersection tests.
    mark: Vec<u32>,
    epoch: u32,
    mark_epoch: u32,
    /// Resettable union-find for the per-pair joining scan.
    dsu: DisjointSet,
}

impl ScalarRenormalizer {
    /// Creates a renormalizer with an empty scratch pool.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
            self.prev.resize(n, NO_SITE);
            self.mark.resize(n, 0);
        }
    }

    fn begin_search(&mut self) -> u32 {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.visited.fill(0);
                1
            }
        };
        self.queue.clear();
        self.epoch
    }

    fn begin_mark(&mut self) -> u32 {
        self.mark_epoch = match self.mark_epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.mark.fill(0);
                1
            }
        };
        self.mark_epoch
    }

    /// Renormalizes an entire layer (scalar twin of
    /// `Renormalizer::renormalize`).
    pub fn renormalize(&mut self, layer: &PhysicalLayer, node_size: usize) -> ScalarLattice {
        self.renormalize_region(layer, (0, 0), layer.width, layer.height, node_size)
    }

    /// Renormalizes a sub-rectangle of the layer (scalar twin of
    /// `Renormalizer::renormalize_region`).
    pub fn renormalize_region(
        &mut self,
        layer: &PhysicalLayer,
        origin: (usize, usize),
        width: usize,
        height: usize,
        node_size: usize,
    ) -> ScalarLattice {
        assert!(node_size > 0, "node size must be positive");
        let (ox, oy) = origin;
        let k = (width / node_size).min(height / node_size);

        self.ensure(layer.width * layer.height);

        let mut v_paths: Vec<Option<Vec<u32>>> = Vec::with_capacity(k);
        let mut h_paths: Vec<Option<Vec<u32>>> = Vec::with_capacity(k);
        for band in 0..k {
            let band_lo = band * node_size;
            let band_hi = band_lo + node_size;
            v_paths.push(self.search_path(
                layer,
                (ox + band_lo, ox + band_hi, oy, oy + height),
                true,
            ));
            h_paths.push(self.search_path(
                layer,
                (ox, ox + width, oy + band_lo, oy + band_hi),
                false,
            ));
        }

        let w = layer.width;
        let mut nodes = vec![NO_SITE; k * k];
        for (i, vp) in v_paths.iter().enumerate() {
            let Some(vp) = vp else { continue };
            let mark = self.begin_mark();
            for &s in vp {
                self.mark[s as usize] = mark;
            }
            for (j, hp) in h_paths.iter().enumerate() {
                let Some(hp) = hp else { continue };
                if let Some(&site) = hp.iter().find(|&&s| self.mark[s as usize] == mark) {
                    nodes[i * k + j] = site;
                } else if let Some(site) = scalar_closest_block_site(vp, hp, w, node_size, origin, i, j)
                {
                    nodes[i * k + j] = site;
                }
            }
        }

        ScalarLattice { target_side: k, node_size, layer_width: w, nodes, v_paths, h_paths }
    }

    /// One band-restricted scalar BFS: `bounds` is `(x_lo, x_hi, y_lo,
    /// y_hi)` with exclusive upper bounds. Seeds come off the packed site
    /// words for vertical bands (one contiguous row segment) and per-site
    /// reads for horizontal ones — the same split PR 5 used.
    fn search_path(
        &mut self,
        layer: &PhysicalLayer,
        bounds: (usize, usize, usize, usize),
        vertical: bool,
    ) -> Option<Vec<u32>> {
        let w = layer.width;
        let (x_lo, x_hi, y_lo, y_hi) = bounds;

        let epoch = self.begin_search();

        if vertical {
            let row = y_lo * w;
            for i in layer.present_in_range(row + x_lo, row + x_hi) {
                self.visited[i] = epoch;
                self.prev[i] = NO_SITE;
                self.queue.push(i as u32);
            }
        } else {
            for y in y_lo..y_hi {
                let i = y * w + x_lo;
                if layer.site_present_at(i) {
                    self.visited[i] = epoch;
                    self.prev[i] = NO_SITE;
                    self.queue.push(i as u32);
                }
            }
        }

        let mut head = 0usize;
        while head < self.queue.len() {
            let idx = self.queue[head];
            head += 1;
            let iu = idx as usize;
            let y = iu / w;
            let x = iu - y * w;

            let at_end = if vertical { y == y_hi - 1 } else { x == x_hi - 1 };
            if at_end {
                let mut path = vec![idx];
                let mut cur = idx;
                while self.prev[cur as usize] != NO_SITE {
                    cur = self.prev[cur as usize];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }

            // Neighbor order east, west, north, south — the tie-break the
            // word implementation must reproduce path for path.
            if x + 1 < x_hi && layer.bond_east_at(iu) {
                let n = iu + 1;
                if self.visited[n] != epoch && layer.site_present_at(n) {
                    self.visited[n] = epoch;
                    self.prev[n] = idx;
                    self.queue.push(n as u32);
                }
            }
            if x > x_lo && layer.bond_east_at(iu - 1) {
                let n = iu - 1;
                if self.visited[n] != epoch && layer.site_present_at(n) {
                    self.visited[n] = epoch;
                    self.prev[n] = idx;
                    self.queue.push(n as u32);
                }
            }
            if y + 1 < y_hi && layer.bond_north_at(iu) {
                let n = iu + w;
                if self.visited[n] != epoch && layer.site_present_at(n) {
                    self.visited[n] = epoch;
                    self.prev[n] = idx;
                    self.queue.push(n as u32);
                }
            }
            if y > y_lo && layer.bond_north_at(iu - w) {
                let n = iu - w;
                if self.visited[n] != epoch && layer.site_present_at(n) {
                    self.visited[n] = epoch;
                    self.prev[n] = idx;
                    self.queue.push(n as u32);
                }
            }
        }
        None
    }
}

/// Fallback coarse-node site when the two paths share no site (copied from
/// the percolation crate so the reference stays self-contained).
fn scalar_closest_block_site(
    vp: &[u32],
    hp: &[u32],
    layer_width: usize,
    node_size: usize,
    origin: (usize, usize),
    i: usize,
    j: usize,
) -> Option<u32> {
    let (ox, oy) = origin;
    let x_lo = ox + i * node_size;
    let x_hi = x_lo + node_size;
    let y_lo = oy + j * node_size;
    let y_hi = y_lo + node_size;
    let decode = |s: u32| (s as usize % layer_width, s as usize / layer_width);
    let in_block = |(x, y): (usize, usize)| x >= x_lo && x < x_hi && y >= y_lo && y < y_hi;
    let mut best: Option<(u32, usize)> = None;
    for &v in vp {
        let vc = decode(v);
        if !in_block(vc) {
            continue;
        }
        for &h in hp {
            let hc = decode(h);
            if !in_block(hc) {
                continue;
            }
            let d = vc.0.abs_diff(hc.0) + vc.1.abs_diff(hc.1);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((v, d));
            }
        }
    }
    best.map(|(s, _)| s)
}

/// Outcome of the scalar reference modular pipeline; the counter subset of
/// `ModularOutcome` plus the per-module scalar lattices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarModularOutcome {
    /// Per-module lattices in row-major module order.
    pub modules: Vec<ScalarLattice>,
    /// Coarse nodes surviving the joining step.
    pub joined_nodes: usize,
    /// Coarse nodes found inside modules before joining.
    pub module_nodes: usize,
    /// Joining paths attempted.
    pub joins_attempted: usize,
    /// Joining paths found.
    pub joins_found: usize,
}

impl ScalarModularOutcome {
    /// Compares against a word-implementation [`ModularOutcome`], modules
    /// included, returning the first difference.
    pub fn mismatch(&self, word: &ModularOutcome) -> Option<String> {
        for (m, (scalar, wide)) in self.modules.iter().zip(word.modules.iter()).enumerate() {
            if let Some(msg) = scalar.mismatch(wide) {
                return Some(format!("module {m}: {msg}"));
            }
        }
        if self.modules.len() != word.modules.len() {
            return Some("module count differs".to_string());
        }
        let counters = [
            ("joined_nodes", self.joined_nodes, word.joined_nodes),
            ("module_nodes", self.module_nodes, word.module_nodes),
            ("joins_attempted", self.joins_attempted, word.joins_attempted),
            ("joins_found", self.joins_found, word.joins_found),
        ];
        for (name, scalar, wide) in counters {
            if scalar != wide {
                return Some(format!("{name} differs: scalar {scalar}, word {wide}"));
            }
        }
        None
    }
}

/// The scalar reference modular pipeline: scalar per-module BFS plus the
/// pre-span **per-pair** joining scan (one `union` per present bond of the
/// strip), preserved as the baseline the span-union `join_across` must
/// match join for join. Takes the renormalizer by reference so a streaming
/// caller (the bench, the equivalence suite) reuses the scratch pool
/// across RSLs, exactly as `ModularRenormalizer` held one `Renormalizer`
/// before PR 6.
pub fn scalar_modular_outcome(
    layer: &PhysicalLayer,
    config: &ModularConfig,
    renorm: &mut ScalarRenormalizer,
) -> ScalarModularOutcome {
    let g = config.modules_per_side;
    let layout = config.layout(layer.width.min(layer.height));
    let stride = layout.module_len + layout.interval_len;
    let node_size = config.node_size.min(layout.module_len.max(1));

    let mut modules = Vec::with_capacity(g * g);
    for gy in 0..g {
        for gx in 0..g {
            let (ox, oy) = (gx * stride, gy * stride);
            let width = layout.module_len.min(layer.width.saturating_sub(ox));
            let height = layout.module_len.min(layer.height.saturating_sub(oy));
            modules.push(renorm.renormalize_region(layer, (ox, oy), width, height, node_size));
        }
    }
    let module_nodes: usize = modules.iter().map(ScalarLattice::node_count).sum();

    let mut joins_attempted = 0usize;
    let mut joins_found = 0usize;
    let k = modules.first().map_or(0, |m| m.target_side);
    let mut row_ok = vec![true; g * k];
    let mut col_ok = vec![true; g * k];

    if g > 1 && layout.interval_len > 0 && k > 0 {
        for gy in 0..g {
            for gx in 0..g {
                let m_idx = gy * g + gx;
                if gx + 1 < g {
                    for row in 0..k {
                        joins_attempted += 1;
                        let ok = scalar_join_across(
                            layer,
                            &modules[m_idx],
                            &modules[m_idx + 1],
                            (gx * stride, gy * stride),
                            ((gx + 1) * stride, gy * stride),
                            layout.module_len,
                            row,
                            true,
                            &mut renorm.dsu,
                        );
                        if ok {
                            joins_found += 1;
                        } else {
                            row_ok[gy * k + row] = false;
                        }
                    }
                }
                if gy + 1 < g {
                    for col in 0..k {
                        joins_attempted += 1;
                        let ok = scalar_join_across(
                            layer,
                            &modules[m_idx],
                            &modules[m_idx + g],
                            (gx * stride, gy * stride),
                            (gx * stride, (gy + 1) * stride),
                            layout.module_len,
                            col,
                            false,
                            &mut renorm.dsu,
                        );
                        if ok {
                            joins_found += 1;
                        } else {
                            col_ok[gx * k + col] = false;
                        }
                    }
                }
            }
        }
    }

    let mut joined_nodes = 0usize;
    for gy in 0..g {
        for gx in 0..g {
            let m = &modules[gy * g + gx];
            for i in 0..m.target_side {
                for j in 0..m.target_side {
                    if m.nodes[i * m.target_side + j] == NO_SITE {
                        continue;
                    }
                    let global_row_ok = g == 1 || row_ok.get(gy * k + j).copied().unwrap_or(true);
                    let global_col_ok = g == 1 || col_ok.get(gx * k + i).copied().unwrap_or(true);
                    if global_row_ok && global_col_ok {
                        joined_nodes += 1;
                    }
                }
            }
        }
    }

    ScalarModularOutcome { modules, joined_nodes, module_nodes, joins_attempted, joins_found }
}

/// The pre-span joining scan, ported faithfully from the PR-5
/// `join_across`: the word-scan precheck over the packed site plane, then
/// a resettable union-find over the strip with one `union` per present
/// bond, scanning the present sites of each strip row off the packed site
/// words.
#[allow(clippy::too_many_arguments)]
fn scalar_join_across(
    layer: &PhysicalLayer,
    from: &ScalarLattice,
    to: &ScalarLattice,
    from_origin: (usize, usize),
    to_origin: (usize, usize),
    module_len: usize,
    lane: usize,
    horizontal: bool,
    dsu: &mut DisjointSet,
) -> bool {
    let from_path = if horizontal { from.h_paths[lane].as_deref() } else { from.v_paths[lane].as_deref() };
    let to_path = if horizontal { to.h_paths[lane].as_deref() } else { to.v_paths[lane].as_deref() };
    let (Some(from_path), Some(to_path)) = (from_path, to_path) else {
        return false;
    };
    let Some(&start) = from_path.last() else { return false };
    let Some(&goal) = to_path.first() else { return false };
    let decode = |s: u32| (s as usize % layer.width, s as usize / layer.width);
    let start = decode(start);
    let goal = decode(goal);

    let (sx_lo, sx_hi, sy_lo, sy_hi) = if horizontal {
        (
            from_origin.0 + module_len.saturating_sub(1),
            to_origin.0 + 1,
            from_origin.1 + lane * from.node_size,
            from_origin.1 + (lane + 1) * from.node_size,
        )
    } else {
        (
            from_origin.0 + lane * from.node_size,
            from_origin.0 + (lane + 1) * from.node_size,
            from_origin.1 + module_len.saturating_sub(1),
            to_origin.1 + 1,
        )
    };
    let allowed = |x: usize, y: usize| -> bool {
        x < layer.width
            && y < layer.height
            && x >= sx_lo
            && x <= sx_hi.min(layer.width - 1)
            && y >= sy_lo
            && y <= sy_hi.min(layer.height - 1)
            && layer.site_present(x, y)
    };
    if !allowed(start.0, start.1) || !allowed(goal.0, goal.1) {
        return false;
    }

    let x_hi_c = sx_hi.min(layer.width - 1);
    let y_hi_c = sy_hi.min(layer.height - 1);
    let lw = layer.width;

    // Word-scan precheck on the packed site plane: a crossing path visits
    // every column (horizontal join) / every row (vertical join) between
    // its endpoints, so a strip missing all present sites in one of them
    // cannot connect.
    let bits = layer.site_bits();
    if horizontal {
        let (span_lo, span_hi) = (start.0.min(goal.0), start.0.max(goal.0));
        let mut x0 = span_lo;
        while x0 <= span_hi {
            let x1 = (x0 + 64).min(span_hi + 1);
            let full = if x1 - x0 == 64 { u64::MAX } else { (1u64 << (x1 - x0)) - 1 };
            let mut cover = 0u64;
            for y in sy_lo..=y_hi_c {
                cover |= bits.range_word(y * lw + x0, y * lw + x1);
                if cover == full {
                    break;
                }
            }
            if cover != full {
                return false;
            }
            x0 = x1;
        }
    } else {
        let (span_lo, span_hi) = (start.1.min(goal.1), start.1.max(goal.1));
        for y in span_lo..=span_hi {
            let row = y * lw;
            let mut any = false;
            let mut x0 = sx_lo;
            while x0 <= x_hi_c {
                let x1 = (x0 + 64).min(x_hi_c + 1);
                if bits.range_word(row + x0, row + x1) != 0 {
                    any = true;
                    break;
                }
                x0 = x1;
            }
            if !any {
                return false;
            }
        }
    }

    let w = x_hi_c - sx_lo + 1;
    let h = y_hi_c - sy_lo + 1;
    let local = |x: usize, y: usize| (y - sy_lo) * w + (x - sx_lo);
    dsu.reset(w * h);
    for y in sy_lo..sy_lo + h {
        let row = y * lw;
        for i in layer.present_in_range(row + sx_lo, row + sx_lo + w) {
            let x = i - row;
            if x + 1 < layer.width && allowed(x + 1, y) && layer.bond_east(x, y) {
                dsu.union(local(x, y), local(x + 1, y));
            }
            if y + 1 < layer.height && allowed(x, y + 1) && layer.bond_north(x, y) {
                dsu.union(local(x, y), local(x, y + 1));
            }
        }
    }
    dsu.same_set(local(start.0, start.1), local(goal.0, goal.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_blank_matches_packed_blank() {
        let dense = DenseBoolLayer::blank(5, 3);
        let packed = PhysicalLayer::blank(5, 3);
        assert!(dense.mismatch(&packed).is_none());
        assert_eq!(dense.bond_count(), 0);
        assert_eq!(dense.present_site_count(), 15);
    }

    #[test]
    fn mismatch_reports_differing_plane() {
        let dense = DenseBoolLayer::blank(4, 4);
        let mut packed = PhysicalLayer::blank(4, 4);
        packed.set_bond_east(1, 1, true);
        let msg = dense.mismatch(&packed).expect("must differ");
        assert!(msg.contains("east"), "unexpected message: {msg}");
    }

    #[test]
    fn scalar_engine_matches_batched_engines_statistically() {
        // The scalar pre-PR-5 stream differs draw for draw from the batched
        // one, but the physics must agree: comparable bond densities at the
        // same probability.
        let cfg = HardwareConfig::new(40, 7, 0.75);
        let mut scalar = DenseScalarEngine::new(cfg, 3);
        let mut batched = DenseReferenceEngine::new(cfg, 3);
        let mut a = DenseBoolLayer::blank(1, 1);
        let mut b = DenseBoolLayer::blank(1, 1);
        let (mut bonds_a, mut bonds_b) = (0usize, 0usize);
        for _ in 0..8 {
            scalar.generate_layer_into(&mut a);
            batched.generate_layer_into(&mut b);
            bonds_a += a.bond_count();
            bonds_b += b.bond_count();
        }
        let (da, db) = (bonds_a as f64, bonds_b as f64);
        assert!((da - db).abs() / da < 0.05, "bond densities diverge: {da} vs {db}");
    }

    #[test]
    fn reference_engine_is_deterministic_per_seed() {
        let cfg = HardwareConfig::new(10, 4, 0.75);
        let mut a = DenseReferenceEngine::new(cfg, 9);
        let mut b = DenseReferenceEngine::new(cfg, 9);
        let mut la = DenseBoolLayer::blank(1, 1);
        let mut lb = DenseBoolLayer::blank(1, 1);
        a.generate_layer_into(&mut la);
        b.generate_layer_into(&mut lb);
        assert_eq!(la, lb);
        assert_eq!(a.fusion_stats(), b.fusion_stats());
    }

    #[test]
    fn scalar_renormalizer_matches_word_implementation() {
        use oneperc_hardware::FusionEngine;
        use oneperc_percolation::Renormalizer;

        let mut engine = FusionEngine::new(HardwareConfig::new(36, 7, 0.75), 17);
        let mut scalar = ScalarRenormalizer::new();
        let mut word = Renormalizer::new();
        for _ in 0..3 {
            let layer = engine.generate_layer();
            let a = scalar.renormalize(&layer, 9);
            let b = word.renormalize(&layer, 9);
            assert!(a.mismatch(&b).is_none(), "{:?}", a.mismatch(&b));
        }
    }

    #[test]
    fn scalar_modular_outcome_matches_word_implementation() {
        use oneperc_hardware::FusionEngine;
        use oneperc_percolation::ModularRenormalizer;

        let cfg = ModularConfig::new(2, 7, 6).sequential();
        let mut engine = FusionEngine::new(HardwareConfig::new(40, 7, 0.75), 23);
        let mut scalar = ScalarRenormalizer::new();
        let mut word = ModularRenormalizer::new(cfg);
        for _ in 0..3 {
            let layer = engine.generate_layer();
            let a = scalar_modular_outcome(&layer, &cfg, &mut scalar);
            let b = word.run(&layer);
            assert!(a.mismatch(&b).is_none(), "{:?}", a.mismatch(&b));
        }
    }
}
