//! The pre-flat-grid, hash-based 2D renormalizer, preserved verbatim as the
//! A/B baseline.
//!
//! This is the implementation the percolation crate shipped before the
//! flat-index rewrite: sites are `(x, y)` tuples, coarse nodes live in a
//! `HashMap<(usize, usize), (usize, usize)>`, path-intersection tests build
//! a `HashSet` per vertical path, every band search allocates fresh
//! BFS/union-find scratch, and a union-find connectivity pre-check runs
//! before each BFS. It exists for two purposes:
//!
//! * the `flat_vs_hash` property tests assert the flat-grid engine produces
//!   **identical** lattices (node sites, paths, success) on seeded layers;
//! * the `flat_vs_hash` criterion group and the `bench_pr1` binary measure
//!   the speedup recorded in `BENCH_PR1.json`.
//!
//! Do not "optimize" this module — its slowness is the point.

use std::collections::{HashMap, HashSet, VecDeque};

use graphstate::DisjointSet;
use oneperc_hardware::PhysicalLayer;

/// The outcome of renormalizing one RSL with the hash-based engine.
#[derive(Debug, Clone)]
pub struct HashRenormalizedLattice {
    target_side: usize,
    node_size: usize,
    /// Representative physical site of each coarse node, keyed by coarse
    /// coordinate `(i, j)`.
    nodes: HashMap<(usize, usize), (usize, usize)>,
    /// Vertical path (site coordinates) for each coarse column, when found.
    v_paths: Vec<Option<Vec<(usize, usize)>>>,
    /// Horizontal path for each coarse row, when found.
    h_paths: Vec<Option<Vec<(usize, usize)>>>,
}

impl HashRenormalizedLattice {
    /// The requested coarse lattice side `k`.
    pub fn target_side(&self) -> usize {
        self.target_side
    }

    /// The average node size used for the band decomposition.
    pub fn node_size(&self) -> usize {
        self.node_size
    }

    /// Returns `true` when every coarse node of the `k × k` target was
    /// realized.
    pub fn is_success(&self) -> bool {
        self.nodes.len() == self.target_side * self.target_side
    }

    /// Number of coarse nodes realized.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Representative physical site of the coarse node `(i, j)`, if
    /// realized.
    pub fn node_site(&self, i: usize, j: usize) -> Option<(usize, usize)> {
        self.nodes.get(&(i, j)).copied()
    }

    /// The vertical path realizing coarse column `i`, if found.
    pub fn v_path(&self, i: usize) -> Option<&[(usize, usize)]> {
        self.v_paths.get(i).and_then(|p| p.as_deref())
    }

    /// The horizontal path realizing coarse row `j`, if found.
    pub fn h_path(&self, j: usize) -> Option<&[(usize, usize)]> {
        self.h_paths.get(j).and_then(|p| p.as_deref())
    }

    /// Number of vertical paths found.
    pub fn v_path_count(&self) -> usize {
        self.v_paths.iter().filter(|p| p.is_some()).count()
    }

    /// Number of horizontal paths found.
    pub fn h_path_count(&self) -> usize {
        self.h_paths.iter().filter(|p| p.is_some()).count()
    }

    /// Total physical sites consumed by the coarse structure.
    pub fn consumed_sites(&self) -> usize {
        let mut seen = HashSet::new();
        for p in self.v_paths.iter().chain(self.h_paths.iter()).flatten() {
            seen.extend(p.iter().copied());
        }
        seen.len()
    }
}

/// The hash-based renormalizer (stateless; every call allocates its own
/// scratch, exactly as the original did).
#[derive(Debug, Clone, Default)]
pub struct HashRenormalizer {
    _private: (),
}

impl HashRenormalizer {
    /// Creates a renormalizer.
    pub fn new() -> Self {
        HashRenormalizer { _private: () }
    }

    /// Renormalizes a sub-rectangle of the layer.
    pub fn renormalize_region(
        &self,
        layer: &PhysicalLayer,
        origin: (usize, usize),
        width: usize,
        height: usize,
        node_size: usize,
    ) -> HashRenormalizedLattice {
        assert!(node_size > 0, "node size must be positive");
        let (ox, oy) = origin;
        assert!(
            ox + width <= layer.width && oy + height <= layer.height,
            "region exceeds the layer"
        );
        let k_cols = width / node_size;
        let k_rows = height / node_size;
        let k = k_cols.min(k_rows);

        let mut v_paths: Vec<Option<Vec<(usize, usize)>>> = Vec::with_capacity(k);
        let mut h_paths: Vec<Option<Vec<(usize, usize)>>> = Vec::with_capacity(k);

        for band in 0..k {
            v_paths.push(self.search_path(layer, origin, node_size, band, height, true));
            h_paths.push(self.search_path(layer, origin, node_size, band, width, false));
        }

        // Intersections become coarse nodes.
        let mut nodes = HashMap::new();
        for (i, vp) in v_paths.iter().enumerate() {
            let Some(vp) = vp else { continue };
            let v_sites: HashSet<(usize, usize)> = vp.iter().copied().collect();
            for (j, hp) in h_paths.iter().enumerate() {
                let Some(hp) = hp else { continue };
                if let Some(&site) = hp.iter().find(|s| v_sites.contains(s)) {
                    nodes.insert((i, j), site);
                } else if let Some(site) = closest_block_site(vp, hp, node_size, origin, i, j) {
                    nodes.insert((i, j), site);
                }
            }
        }

        HashRenormalizedLattice {
            target_side: k,
            node_size,
            nodes,
            v_paths,
            h_paths,
        }
    }

    /// Searches one band-restricted crossing path (union-find pre-check
    /// followed by a BFS over freshly allocated scratch).
    fn search_path(
        &self,
        layer: &PhysicalLayer,
        origin: (usize, usize),
        node_size: usize,
        band: usize,
        span: usize,
        vertical: bool,
    ) -> Option<Vec<(usize, usize)>> {
        let (ox, oy) = origin;
        let band_lo = band * node_size;
        let band_hi = band_lo + node_size;

        let in_band = |x: usize, y: usize| -> bool {
            if vertical {
                x >= ox + band_lo && x < ox + band_hi && y >= oy && y < oy + span
            } else {
                y >= oy + band_lo && y < oy + band_hi && x >= ox && x < ox + span
            }
        };
        let allowed = |x: usize, y: usize| -> bool {
            x < layer.width && y < layer.height && in_band(x, y) && layer.site_present(x, y)
        };

        // Union-find connectivity pre-check with virtual source and sink.
        let band_w = if vertical { node_size } else { span };
        let band_h = if vertical { span } else { node_size };
        let local = |x: usize, y: usize| -> usize {
            let lx = x - (ox + if vertical { band_lo } else { 0 });
            let ly = y - (oy + if vertical { 0 } else { band_lo });
            ly * band_w + lx
        };
        let n_local = band_w * band_h;
        let source = n_local;
        let sink = n_local + 1;
        let mut dsu = DisjointSet::new(n_local + 2);
        let (gx0, gy0) = (
            ox + if vertical { band_lo } else { 0 },
            oy + if vertical { 0 } else { band_lo },
        );
        for ly in 0..band_h {
            for lx in 0..band_w {
                let (x, y) = (gx0 + lx, gy0 + ly);
                if !allowed(x, y) {
                    continue;
                }
                let here = local(x, y);
                let at_start = if vertical { y == oy } else { x == ox };
                let at_end = if vertical { y == oy + span - 1 } else { x == ox + span - 1 };
                if at_start {
                    dsu.union(here, source);
                }
                if at_end {
                    dsu.union(here, sink);
                }
                if x + 1 < layer.width && allowed(x + 1, y) && layer.bond_east(x, y) {
                    dsu.union(here, local(x + 1, y));
                }
                if y + 1 < layer.height && allowed(x, y + 1) && layer.bond_north(x, y) {
                    dsu.union(here, local(x, y + 1));
                }
            }
        }
        if !dsu.same_set(source, sink) {
            return None;
        }

        // BFS for the shortest crossing path.
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; n_local];
        let mut seen = vec![false; n_local];
        let mut queue = VecDeque::new();
        for t in 0..node_size {
            let (x, y) = if vertical { (gx0 + t, oy) } else { (ox, gy0 + t) };
            if allowed(x, y) {
                seen[local(x, y)] = true;
                queue.push_back((x, y));
            }
        }
        while let Some((x, y)) = queue.pop_front() {
            let at_end = if vertical { y == oy + span - 1 } else { x == ox + span - 1 };
            if at_end {
                let mut path = vec![(x, y)];
                let mut cur = (x, y);
                while let Some(p) = prev[local(cur.0, cur.1)] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            let neighbors = [
                (x.wrapping_add(1), y, layer.bond_east(x, y)),
                (x.wrapping_sub(1), y, x > 0 && layer.bond_east(x.wrapping_sub(1), y)),
                (x, y.wrapping_add(1), layer.bond_north(x, y)),
                (x, y.wrapping_sub(1), y > 0 && layer.bond_north(x, y.wrapping_sub(1))),
            ];
            for (nx, ny, bonded) in neighbors {
                if !bonded || !allowed(nx, ny) {
                    continue;
                }
                let li = local(nx, ny);
                if !seen[li] {
                    seen[li] = true;
                    prev[li] = Some((x, y));
                    queue.push_back((nx, ny));
                }
            }
        }
        None
    }
}

/// Fallback coarse-node site when the two paths do not share a site.
fn closest_block_site(
    vp: &[(usize, usize)],
    hp: &[(usize, usize)],
    node_size: usize,
    origin: (usize, usize),
    i: usize,
    j: usize,
) -> Option<(usize, usize)> {
    let (ox, oy) = origin;
    let x_lo = ox + i * node_size;
    let x_hi = x_lo + node_size;
    let y_lo = oy + j * node_size;
    let y_hi = y_lo + node_size;
    let in_block = |&(x, y): &(usize, usize)| x >= x_lo && x < x_hi && y >= y_lo && y < y_hi;
    let v_block: Vec<(usize, usize)> = vp.iter().copied().filter(|s| in_block(s)).collect();
    let h_block: Vec<(usize, usize)> = hp.iter().copied().filter(|s| in_block(s)).collect();
    let mut best: Option<((usize, usize), usize)> = None;
    for &v in &v_block {
        for &h in &h_block {
            let d = v.0.abs_diff(h.0) + v.1.abs_diff(h.1);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((v, d));
            }
        }
    }
    best.map(|(s, _)| s)
}

/// Renormalizes an entire layer with the hash-based baseline engine.
///
/// # Panics
///
/// Panics when `node_size` is zero or larger than the layer.
pub fn hash_renormalize(layer: &PhysicalLayer, node_size: usize) -> HashRenormalizedLattice {
    assert!(
        node_size > 0 && node_size <= layer.width && node_size <= layer.height,
        "node size must be positive and fit in the layer"
    );
    HashRenormalizer::new().renormalize_region(layer, (0, 0), layer.width, layer.height, node_size)
}
