//! Criterion bench behind Fig. 15: offline mapping time as a function of
//! program size and virtual-hardware size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oneperc_circuit::benchmarks;
use oneperc_circuit::ProgramGraph;
use oneperc_ir::VirtualHardware;
use oneperc_mapper::{Mapper, MapperConfig};

fn bench_program_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_mapping_program_size");
    group.sample_size(10);
    for &qubits in &[4usize, 9, 16] {
        let program = ProgramGraph::from_circuit(&benchmarks::qft(qubits));
        group.bench_with_input(BenchmarkId::new("qft", qubits), &program, |b, program| {
            let mapper = Mapper::new(MapperConfig::new(VirtualHardware::square(4)));
            b.iter(|| std::hint::black_box(mapper.map(program).unwrap().stats.layers));
        });
    }
    group.finish();
}

fn bench_hardware_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_mapping_hardware_size");
    group.sample_size(10);
    let program = ProgramGraph::from_circuit(&benchmarks::qaoa(16, 3));
    for &side in &[4usize, 6, 8] {
        group.bench_with_input(BenchmarkId::new("qaoa16", side), &side, |b, &side| {
            let mapper = Mapper::new(MapperConfig::new(VirtualHardware::square(side)));
            b.iter(|| std::hint::black_box(mapper.map(&program).unwrap().stats.layers));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_program_size, bench_hardware_size);
criterion_main!(benches);
