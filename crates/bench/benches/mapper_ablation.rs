//! Ablation benches for the offline-mapping design choices called out in
//! DESIGN.md: dynamic versus static scheduling and the incomplete-node
//! occupancy limit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oneperc_circuit::{benchmarks, ProgramGraph};
use oneperc_ir::VirtualHardware;
use oneperc_mapper::{Mapper, MapperConfig};

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapper_scheduling");
    group.sample_size(10);
    let program = ProgramGraph::from_circuit(&benchmarks::qft(9));
    for (label, dynamic) in [("dynamic", true), ("static", false)] {
        group.bench_with_input(BenchmarkId::new(label, 9), &dynamic, |b, &dynamic| {
            let config = MapperConfig::new(VirtualHardware::square(3))
                .with_dynamic_scheduling(dynamic);
            let mapper = Mapper::new(config);
            b.iter(|| std::hint::black_box(mapper.map(&program).unwrap().stats.layers));
        });
    }
    group.finish();
}

fn bench_occupancy(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapper_occupancy");
    group.sample_size(10);
    let program = ProgramGraph::from_circuit(&benchmarks::vqe(9, 2));
    for &limit in &[0.25f64, 0.5, 0.75] {
        group.bench_with_input(
            BenchmarkId::new("vqe9", format!("{limit:.2}")),
            &limit,
            |b, &limit| {
                let config =
                    MapperConfig::new(VirtualHardware::square(4)).with_occupancy_limit(limit);
                let mapper = Mapper::new(config);
                b.iter(|| std::hint::black_box(mapper.map(&program).unwrap().stats.layers));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scheduling, bench_occupancy);
criterion_main!(benches);
