//! Criterion bench behind Fig. 14(b) and the Fig. 13(c) ablation: modular
//! versus non-modular 2D renormalization of the same random layer.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oneperc_hardware::{FusionEngine, HardwareConfig};
use oneperc_percolation::{renormalize, ModularConfig, ModularRenormalizer};

fn bench_modular_renorm(c: &mut Criterion) {
    let rsl = 96;
    let node_size = 6;
    let mut engine = FusionEngine::new(HardwareConfig::new(rsl, 7, 0.75), 11);
    let layer = engine.generate_layer();
    // The pooled path shares the layer with its workers; holding the Arc
    // outside the timing loop keeps the A/B free of per-iteration copies.
    let shared = Arc::new(layer.clone());

    let mut group = c.benchmark_group("modular_renorm");
    group.sample_size(10);
    group.bench_function("non_modular", |b| {
        b.iter(|| std::hint::black_box(renormalize(&layer, node_size).node_count()))
    });
    for &modules_per_side in &[2usize, 3, 4] {
        group.bench_with_input(
            BenchmarkId::new("modular_parallel", modules_per_side * modules_per_side),
            &modules_per_side,
            |b, &g| {
                let mut renormalizer =
                    ModularRenormalizer::new(ModularConfig::new(g, 7, node_size));
                b.iter(|| std::hint::black_box(renormalizer.run_shared(&shared).joined_nodes));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("modular_sequential", modules_per_side * modules_per_side),
            &modules_per_side,
            |b, &g| {
                let mut renormalizer =
                    ModularRenormalizer::new(ModularConfig::new(g, 7, node_size).sequential());
                b.iter(|| std::hint::black_box(renormalizer.run(&layer).joined_nodes));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_modular_renorm);
criterion_main!(benches);
