//! Criterion bench behind Table 2's baseline column: cost of simulating the
//! OneQ repeat-until-success execution at different fusion success
//! probabilities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oneperc_circuit::{benchmarks, ProgramGraph};
use oneperc_oneq::{OneqCompiler, OneqConfig, OneqPlan};

fn bench_baseline_retry(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_retry");
    group.sample_size(10);
    let program = ProgramGraph::from_circuit(&benchmarks::qaoa(4, 1));
    let plan = OneqPlan::derive(&program, 2).unwrap();
    for &p in &[0.9f64, 0.8, 0.75] {
        group.bench_with_input(BenchmarkId::new("qaoa4", format!("p{p}")), &p, |b, &p| {
            let compiler = OneqCompiler::new(OneqConfig::new(2, p, 5).with_rsl_cap(100_000));
            b.iter(|| std::hint::black_box(compiler.execute_plan(&plan).rsl_consumed));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baseline_retry);
criterion_main!(benches);
