//! Criterion bench behind Fig. 14(a): online processing cost of a single
//! resource-state layer (fusion sampling + 2D renormalization) as the RSL
//! grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oneperc_hardware::{FusionEngine, HardwareConfig};
use oneperc_percolation::renormalize;

fn bench_online_per_rsl(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_per_rsl");
    group.sample_size(10);
    for &rsl in &[24usize, 48, 96] {
        let node_size = rsl / 4;
        group.bench_with_input(BenchmarkId::new("generate_and_renormalize", rsl), &rsl, |b, &rsl| {
            let mut engine = FusionEngine::new(HardwareConfig::new(rsl, 7, 0.75), 7);
            b.iter(|| {
                let layer = engine.generate_layer();
                std::hint::black_box(renormalize(&layer, node_size).node_count())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_online_per_rsl);
criterion_main!(benches);
