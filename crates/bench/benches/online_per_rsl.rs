//! Criterion bench behind Fig. 14(a): online processing cost of a single
//! resource-state layer as the RSL grows, plus the `flat_vs_hash` A/B group
//! comparing the flat-grid renormalizer against the preserved hash-based
//! baseline (the numbers recorded in `BENCH_PR1.json` come from the
//! `bench_pr1` binary, which measures the same pair).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oneperc_bench::baseline::hash_renormalize;
use oneperc_hardware::{FusionEngine, HardwareConfig, PhysicalLayer};
use oneperc_percolation::{renormalize, Renormalizer};

fn layers_for(rsl: usize, count: u64) -> Vec<PhysicalLayer> {
    (0..count)
        .map(|seed| {
            let mut engine = FusionEngine::new(HardwareConfig::new(rsl, 7, 0.75), seed);
            engine.generate_layer()
        })
        .collect()
}

/// Per-RSL online renormalization latency (pre-generated layers, scratch
/// reused across calls — the steady state of the online loop).
fn bench_online_per_rsl(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_per_rsl");
    group.sample_size(10);
    for &rsl in &[24usize, 40, 48, 96] {
        let node_size = rsl / 4;
        let layers = layers_for(rsl, 8);
        group.bench_with_input(BenchmarkId::new("renormalize", rsl), &rsl, |b, _| {
            let mut renormalizer = Renormalizer::new();
            let mut i = 0usize;
            b.iter(|| {
                let layer = &layers[i % layers.len()];
                i += 1;
                std::hint::black_box(renormalizer.renormalize(layer, node_size).node_count())
            });
        });
        group.bench_with_input(
            BenchmarkId::new("generate_and_renormalize", rsl),
            &rsl,
            |b, &rsl| {
                let mut engine = FusionEngine::new(HardwareConfig::new(rsl, 7, 0.75), 7);
                let mut renormalizer = Renormalizer::new();
                let mut layer = PhysicalLayer::blank(rsl, rsl);
                b.iter(|| {
                    engine.generate_layer_into(&mut layer);
                    std::hint::black_box(renormalizer.renormalize(&layer, node_size).node_count())
                });
            },
        );
    }
    group.finish();
}

/// A/B: dense flat-index engine vs. the hash-based baseline it replaced.
fn bench_flat_vs_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_vs_hash");
    group.sample_size(10);
    for &rsl in &[24usize, 40, 96] {
        let node_size = rsl / 4;
        let layers = layers_for(rsl, 8);
        group.bench_with_input(BenchmarkId::new("flat", rsl), &rsl, |b, _| {
            let mut renormalizer = Renormalizer::new();
            let mut i = 0usize;
            b.iter(|| {
                let layer = &layers[i % layers.len()];
                i += 1;
                std::hint::black_box(renormalizer.renormalize(layer, node_size).node_count())
            });
        });
        group.bench_with_input(BenchmarkId::new("flat_oneoff", rsl), &rsl, |b, _| {
            // One-off calls pay the scratch allocation per layer; this is
            // what `renormalize()` free-function users get.
            let mut i = 0usize;
            b.iter(|| {
                let layer = &layers[i % layers.len()];
                i += 1;
                std::hint::black_box(renormalize(layer, node_size).node_count())
            });
        });
        group.bench_with_input(BenchmarkId::new("hash", rsl), &rsl, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let layer = &layers[i % layers.len()];
                i += 1;
                std::hint::black_box(hash_renormalize(layer, node_size).node_count())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_online_per_rsl, bench_flat_vs_hash);
criterion_main!(benches);
