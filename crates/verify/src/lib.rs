//! # oneperc-verify — in-tree bounded model checker
//!
//! A dependency-free, loom-style checker for the workspace's hand-rolled
//! concurrency: the admission semaphore, the single-flight compilation
//! cache, `CancelToken`, and the `WorkerPool` channels. Production code
//! imports its primitives from a `sync` shim module; in ordinary builds
//! that shim is a plain re-export of `std::sync` (zero overhead, nothing
//! of this crate in release artifacts), while under
//! `RUSTFLAGS="--cfg oneperc_model"` it resolves to [`sync`] here and
//! every operation becomes a scheduling point of a deterministic
//! controlled scheduler.
//!
//! [`model`] (or [`Builder`] for custom bounds) then runs a closure under
//! *every* thread interleaving up to a context-switch bound, with
//! sleep-set (DPOR-lite) pruning to skip provably equivalent schedules:
//!
//! ```
//! use oneperc_verify::sync::atomic::{AtomicUsize, Ordering};
//! use oneperc_verify::sync::{thread, Arc};
//!
//! oneperc_verify::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = thread::spawn(move || n2.fetch_add(1, Ordering::SeqCst));
//!     n.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! ```
//!
//! A failing schedule — an assertion panic, a deadlock (how lost wakeups
//! and missed notifies surface), a livelock that blows the step budget —
//! panics with a report containing the decision vector, one thread id
//! per scheduling point. Re-run that exact interleaving with
//! `ONEPERC_MODEL_REPLAY="0,1,0,..."` (see [`REPLAY_ENV`]) or
//! `Builder::replay`; no seeds, no flakes.
//!
//! What the model covers and what it deliberately does not (weak memory,
//! spurious wakeups, timeouts) is documented in [`sync`] and, per
//! primitive, in the workspace-level `CONCURRENCY.md`.

mod explore;
mod rt;
pub mod sync;

pub use explore::{model, Builder, Report, DEFAULT_PREEMPTION_BOUND, REPLAY_ENV};
