//! Execution runtime: the controlled scheduler that serializes model
//! threads and the bookkeeping that decides which of them may run.
//!
//! One *execution* is a single deterministic run of the test closure in
//! which at most one model thread executes user code at any instant.
//! Every synchronization operation is a **yield point**: the thread
//! announces the operation it is about to perform ([`Op`]), stops, and the
//! scheduler — driven by the exploration path in
//! [`ExecState::path`] — picks the next thread among those whose pending
//! operation is *enabled*. Acquire-side operations (lock, condvar
//! reacquire, atomics, channel ops, join, park) are yield points;
//! release-side effects (unlock, notify, unpark, sender drop, spawn) are
//! applied eagerly without a context switch — switching immediately after
//! a release is observationally equivalent to switching at the releasing
//! thread's *next* yield point, so collapsing the two keeps the state
//! space small without losing interleavings.
//!
//! Model threads are real OS threads, parked on a condvar between their
//! turns; determinism comes from the handoff protocol, not from the OS
//! scheduler. A failed execution (panic, deadlock, step-budget blowout)
//! leaks its still-blocked threads — the process is about to report a
//! model failure and exit the test anyway, and leaking is the only safe
//! teardown that cannot double-panic inside a destructor.

use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Index of a model thread within one execution. Thread 0 is the root.
pub(crate) type Tid = usize;

/// Index of a registered synchronization object within one execution.
pub(crate) type ObjId = usize;

/// Monotone generation counter: one per execution, process-wide, so shim
/// objects that accidentally outlive an execution (statics) re-register
/// instead of aliasing a stale id.
static GENERATION: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_generation() -> u64 {
    GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// What a stopped thread is about to do. The scheduler grants the
/// operation by (a) checking it is enabled and (b) applying its abstract
/// effect before waking the thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// First scheduling of a freshly spawned thread.
    Begin,
    /// `Mutex::lock`; enabled while the mutex is unowned.
    LockAcquire(ObjId),
    /// Second half of `Condvar::wait`: reacquire after a notify; enabled
    /// once notified *and* the mutex is free.
    CvReacquire { cv: ObjId, mutex: ObjId },
    /// Atomic read (`load`).
    AtomicLoad(ObjId),
    /// Atomic write (`store`).
    AtomicStore(ObjId),
    /// Atomic read-modify-write (`fetch_*`, `swap`, `compare_exchange`).
    AtomicRmw(ObjId),
    /// Blocking channel receive; enabled when a message is queued or all
    /// senders are gone.
    ChanRecv(ObjId),
    /// Non-blocking channel receive; always enabled.
    ChanTryRecv(ObjId),
    /// Channel send; enabled while the queue has room (bounded senders)
    /// or the receiver is gone (the send then fails without blocking).
    ChanSend(ObjId),
    /// `JoinHandle::join`; enabled once the target thread finished.
    Join(Tid),
    /// `thread::park`; enabled while the park token is set.
    Park,
    /// `thread::yield_now` — a pure scheduling point.
    Yield,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Begin => write!(f, "begin"),
            Op::LockAcquire(m) => write!(f, "lock(m{m})"),
            Op::CvReacquire { cv, mutex } => write!(f, "cv-wait(c{cv}, m{mutex})"),
            Op::AtomicLoad(a) => write!(f, "load(a{a})"),
            Op::AtomicStore(a) => write!(f, "store(a{a})"),
            Op::AtomicRmw(a) => write!(f, "rmw(a{a})"),
            Op::ChanRecv(c) => write!(f, "recv(ch{c})"),
            Op::ChanTryRecv(c) => write!(f, "try-recv(ch{c})"),
            Op::ChanSend(c) => write!(f, "send(ch{c})"),
            Op::Join(t) => write!(f, "join(t{t})"),
            Op::Park => write!(f, "park"),
            Op::Yield => write!(f, "yield"),
        }
    }
}

/// One entry of a step's effect footprint: which location it touched and
/// whether it wrote. Dependence between a completed step and a pending
/// operation is judged on these (see [`footprint_hits`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Loc {
    Obj(ObjId),
    Thread(Tid),
    ParkToken(Tid),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Touch {
    pub(crate) loc: Loc,
    pub(crate) write: bool,
}

/// Locations a pending operation will touch (at most two: a condvar
/// reacquire touches both the condvar and the mutex).
pub(crate) fn op_locs(op: Op, me: Tid) -> [Option<Touch>; 2] {
    let w = |loc| Some(Touch { loc, write: true });
    let r = |loc| Some(Touch { loc, write: false });
    match op {
        Op::Begin => [w(Loc::Thread(me)), None],
        Op::LockAcquire(m) => [w(Loc::Obj(m)), None],
        Op::CvReacquire { cv, mutex } => [w(Loc::Obj(cv)), w(Loc::Obj(mutex))],
        Op::AtomicLoad(a) => [r(Loc::Obj(a)), None],
        Op::AtomicStore(a) | Op::AtomicRmw(a) => [w(Loc::Obj(a)), None],
        Op::ChanRecv(c) | Op::ChanTryRecv(c) | Op::ChanSend(c) => [w(Loc::Obj(c)), None],
        Op::Join(t) => [r(Loc::Thread(t)), None],
        Op::Park => [w(Loc::ParkToken(me)), None],
        Op::Yield => [None, None],
    }
}

/// Whether a completed step (its footprint) is dependent with a pending
/// operation: they touch a common location and at least one side writes.
pub(crate) fn footprint_hits(footprint: &[Touch], op: Op, owner: Tid) -> bool {
    op_locs(op, owner).into_iter().flatten().any(|pending| {
        footprint
            .iter()
            .any(|done| done.loc == pending.loc && (done.write || pending.write))
    })
}

/// Scheduler-side state of one model thread.
#[derive(Debug)]
pub(crate) enum TState {
    /// Currently executing user code (at most one thread at a time).
    Active,
    /// Stopped at a yield point, `op` pending.
    Ready(Op),
    /// Parked in the first half of `Condvar::wait`, waiting for a notify.
    CvWait { cv: ObjId, mutex: ObjId, notified: bool },
    Done { panicked: bool },
}

#[derive(Debug)]
pub(crate) struct ThreadRec {
    pub(crate) state: TState,
    /// `thread::park` token (set by `unpark`, consumed by `park`).
    pub(crate) park_token: bool,
    /// Effect footprint of the step currently executing (granted op plus
    /// every eager release-side effect until the next yield point).
    pub(crate) footprint: Vec<Touch>,
    /// Panic payload of a finished thread, until a `join` claims it.
    pub(crate) panic_payload: Option<Box<dyn Any + Send>>,
    /// Set when the thread's `ChanRecv`/`ChanTryRecv` grant found the
    /// channel drained and disconnected (the receive must return `Err`).
    pub(crate) recv_disconnected: bool,
    /// Set when a granted `ChanTryRecv` found the queue empty (but still
    /// connected): the receive returns `Err(TryRecvError::Empty)`.
    pub(crate) recv_empty: bool,
    /// Set when a granted `ChanSend` found the receiver gone: the send
    /// must return its message as an error instead of queueing it.
    pub(crate) send_disconnected: bool,
}

impl ThreadRec {
    pub(crate) fn new() -> Self {
        ThreadRec {
            state: TState::Ready(Op::Begin),
            park_token: false,
            footprint: Vec::new(),
            panic_payload: None,
            recv_disconnected: false,
            recv_empty: false,
            send_disconnected: false,
        }
    }
}

/// Abstract state of one registered synchronization object. The *data*
/// (mutex contents, queued messages) stays in the shim objects; the
/// scheduler only tracks what it needs for enabledness.
#[derive(Debug)]
pub(crate) enum ObjState {
    Mutex { owner: Option<Tid>, poisoned: bool },
    Condvar,
    Atomic,
    Channel { len: usize, cap: Option<usize>, senders: usize, recv_alive: bool },
}

/// One explored scheduling decision (see `explore.rs` for the search).
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Threads enabled at this point, ascending tid (determinism check on
    /// replay).
    pub(crate) enabled: Vec<Tid>,
    /// Pending op of every enabled thread at this point.
    pub(crate) pending: Vec<(Tid, Op)>,
    /// Branchable choices at this node after sleep-set and
    /// preemption-bound filtering. Empty means the node is forced
    /// (single successor, nothing to backtrack into).
    pub(crate) candidates: Vec<Tid>,
    /// Candidates already fully explored (sleep-set bookkeeping).
    pub(crate) explored: Vec<Tid>,
    /// Sleep set on entry to this node: threads whose exploration here is
    /// provably redundant.
    pub(crate) sleep: Vec<Tid>,
    /// The choice the current execution takes at this node.
    pub(crate) chosen: Tid,
    /// Preemptions consumed on the path up to *and including* this choice.
    pub(crate) preemptions: u32,
}

/// Why an execution failed. Carried to the controller, formatted by
/// `explore.rs`.
pub(crate) enum Failure {
    /// A model thread panicked (root immediately, children when the
    /// execution ends with an unclaimed payload).
    Panic { tid: Tid, message: String },
    /// No thread is enabled but not all have finished: a deadlock — which
    /// is also how lost wakeups and missed notifies surface.
    Deadlock { stuck: Vec<(Tid, String)> },
    /// The per-execution step budget ran out (livelock or unbounded spin).
    StepBudget { limit: usize },
    /// A replayed/recorded schedule diverged: the test closure is not
    /// deterministic between executions.
    Nondeterminism { detail: String },
}

pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadRec>,
    pub(crate) objects: Vec<ObjState>,
    /// The thread currently allowed to run user code.
    pub(crate) active: Option<Tid>,
    /// Exploration path: decisions taken so far. The prefix below
    /// `cursor` is replayed; past it, new nodes are appended.
    pub(crate) path: Vec<Node>,
    pub(crate) cursor: usize,
    /// Forced replay schedule (failure reproduction): chosen tids.
    pub(crate) replay: Option<Vec<Tid>>,
    /// Maximum preemptions per execution (context-switch bound).
    pub(crate) preemption_bound: Option<u32>,
    /// Per-execution step budget.
    pub(crate) max_steps: usize,
    pub(crate) steps: usize,
    pub(crate) failure: Option<Failure>,
    /// Execution is over (all threads done, or failed). The controller
    /// waits for this.
    pub(crate) finished: bool,
    /// Tid whose step produced the previous scheduling point (for
    /// preemption accounting).
    pub(crate) prev_active: Option<Tid>,
}

impl ExecState {
    pub(crate) fn op_enabled(&self, tid: Tid, op: Op) -> bool {
        match op {
            Op::Begin | Op::AtomicLoad(_) | Op::AtomicStore(_) | Op::AtomicRmw(_)
            | Op::ChanTryRecv(_) | Op::Yield => true,
            Op::LockAcquire(m) => matches!(&self.objects[m], ObjState::Mutex { owner: None, .. }),
            Op::CvReacquire { mutex, .. } => {
                matches!(&self.objects[mutex], ObjState::Mutex { owner: None, .. })
            }
            Op::ChanRecv(c) => match &self.objects[c] {
                ObjState::Channel { len, senders, .. } => *len > 0 || *senders == 0,
                _ => unreachable!("recv on non-channel"),
            },
            Op::ChanSend(c) => match &self.objects[c] {
                ObjState::Channel { len, cap, recv_alive, .. } => {
                    !*recv_alive || cap.map(|cap| *len < cap).unwrap_or(true)
                }
                _ => unreachable!("send on non-channel"),
            },
            Op::Join(t) => matches!(self.threads[t].state, TState::Done { .. }),
            Op::Park => self.threads[tid].park_token,
        }
    }

    /// Enabled threads in ascending tid order.
    pub(crate) fn enabled(&self) -> Vec<Tid> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(tid, rec)| match &rec.state {
                TState::Ready(op) => self.op_enabled(*tid, *op),
                TState::CvWait { mutex, notified, .. } => {
                    *notified
                        && matches!(&self.objects[*mutex], ObjState::Mutex { owner: None, .. })
                }
                TState::Active | TState::Done { .. } => false,
            })
            .map(|(tid, _)| tid)
            .collect()
    }

    fn pending_op(&self, tid: Tid) -> Op {
        match &self.threads[tid].state {
            TState::Ready(op) => *op,
            TState::CvWait { cv, mutex, .. } => Op::CvReacquire { cv: *cv, mutex: *mutex },
            other => unreachable!("no pending op in state {other:?}"),
        }
    }

    /// Applies the abstract effect of granting `op` to `tid` and starts
    /// the thread's new footprint with it.
    fn grant(&mut self, tid: Tid, op: Op) {
        let rec = &mut self.threads[tid];
        rec.footprint.clear();
        rec.recv_disconnected = false;
        rec.recv_empty = false;
        rec.send_disconnected = false;
        for touch in op_locs(op, tid).into_iter().flatten() {
            rec.footprint.push(touch);
        }
        match op {
            Op::LockAcquire(m) | Op::CvReacquire { mutex: m, .. } => {
                match &mut self.objects[m] {
                    ObjState::Mutex { owner, .. } => {
                        debug_assert!(owner.is_none(), "granted a held mutex");
                        *owner = Some(tid);
                    }
                    _ => unreachable!("lock on non-mutex"),
                }
            }
            Op::ChanRecv(c) | Op::ChanTryRecv(c) => match &mut self.objects[c] {
                ObjState::Channel { len, senders, .. } => {
                    if *len > 0 {
                        *len -= 1;
                    } else if *senders == 0 {
                        self.threads[tid].recv_disconnected = true;
                    } else {
                        debug_assert!(matches!(op, Op::ChanTryRecv(_)));
                        self.threads[tid].recv_empty = true;
                    }
                }
                _ => unreachable!("recv on non-channel"),
            },
            Op::ChanSend(c) => match &mut self.objects[c] {
                ObjState::Channel { len, recv_alive, .. } => {
                    if *recv_alive {
                        *len += 1;
                    } else {
                        self.threads[tid].send_disconnected = true;
                    }
                }
                _ => unreachable!("send on non-channel"),
            },
            Op::Park => {
                debug_assert!(self.threads[tid].park_token);
                self.threads[tid].park_token = false;
            }
            Op::Begin | Op::AtomicLoad(_) | Op::AtomicStore(_) | Op::AtomicRmw(_)
            | Op::Join(_) | Op::Yield => {}
        }
        self.threads[tid].state = TState::Active;
        self.active = Some(tid);
    }

    fn describe_stuck(&self) -> Vec<(Tid, String)> {
        self.threads
            .iter()
            .enumerate()
            .filter_map(|(tid, rec)| match &rec.state {
                TState::Ready(op) => Some((tid, format!("blocked at {op}"))),
                TState::CvWait { cv, mutex, notified } => Some((
                    tid,
                    format!(
                        "waiting on condvar c{cv} (mutex m{mutex}{})",
                        if *notified { ", notified" } else { ", never notified" }
                    ),
                )),
                TState::Active => Some((tid, "active (scheduler bug)".to_string())),
                TState::Done { .. } => None,
            })
            .collect()
    }
}

pub(crate) struct Shared {
    pub(crate) state: StdMutex<ExecState>,
    pub(crate) cv: StdCondvar,
    /// Execution generation, for shim-object id caches.
    pub(crate) generation: u64,
}

thread_local! {
    static CURRENT: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
pub(crate) struct ThreadCtx {
    pub(crate) shared: Arc<Shared>,
    pub(crate) tid: Tid,
}

/// The current model-thread context, or `None` when the calling thread is
/// not part of a model execution (the dual-mode escape hatch: shim types
/// then behave exactly like std).
pub(crate) fn current() -> Option<ThreadCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(ctx: Option<ThreadCtx>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// Panic payload used to tear a thread out of a failed execution. The
/// wrapper recognizes it; user-level `catch_unwind` may intercept it, but
/// every subsequent yield point re-raises until the thread unwinds out.
pub(crate) struct AbortExecution;

impl ThreadCtx {
    /// Registers a new synchronization object, returning its id.
    pub(crate) fn register_object(&self, obj: ObjState) -> ObjId {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.objects.push(obj);
        state.objects.len() - 1
    }

    /// Announces `op`, cedes control, and blocks until the scheduler
    /// grants it. On return the calling thread is the unique active
    /// thread and the op's abstract effect has been applied.
    pub(crate) fn yield_point(&self, op: Op) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.failure.is_some() {
            drop(state);
            std::panic::panic_any(AbortExecution);
        }
        debug_assert_eq!(state.active, Some(self.tid), "yield from a non-active thread");
        state.threads[self.tid].state = TState::Ready(op);
        state.active = None;
        schedule(&mut state, &self.shared.cv, self.tid);
        state = self.wait_for_turn(state);
        drop(state);
    }

    /// First half of `Condvar::wait`: atomically (w.r.t. the model —
    /// nobody else runs in between) releases `mutex`, joins `cv`'s wait
    /// set, cedes control, and blocks until notified, granted the
    /// reacquire, and scheduled. The caller must have dropped the real
    /// guard already.
    pub(crate) fn condvar_wait(&self, cv: ObjId, mutex: ObjId) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.failure.is_some() {
            drop(state);
            std::panic::panic_any(AbortExecution);
        }
        debug_assert_eq!(state.active, Some(self.tid));
        // Eager release of the mutex, as part of this step's footprint.
        release_mutex_locked(&mut state, self.tid, mutex);
        state.threads[self.tid].state = TState::CvWait { cv, mutex, notified: false };
        state.active = None;
        schedule(&mut state, &self.shared.cv, self.tid);
        let state = self.wait_for_turn(state);
        drop(state);
    }

    fn wait_for_turn<'a>(
        &self,
        mut state: std::sync::MutexGuard<'a, ExecState>,
    ) -> std::sync::MutexGuard<'a, ExecState> {
        loop {
            if state.failure.is_some() {
                drop(state);
                std::panic::panic_any(AbortExecution);
            }
            if state.active == Some(self.tid) {
                return state;
            }
            state = self
                .shared
                .cv
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Applies an eager (release-side) effect without a scheduling point,
    /// recording it in the running step's footprint.
    fn eager(&self, f: impl FnOnce(&mut ExecState, Tid)) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        // During teardown of a failed execution, threads unwind through
        // destructors that release locks and drop senders; keep applying
        // the effects (harmless) but never block or panic here — a panic
        // inside a `Drop` during unwind would abort the process.
        let tid = self.tid;
        f(&mut state, tid);
    }

    pub(crate) fn mutex_release(&self, mutex: ObjId, poison: bool) {
        self.eager(|state, tid| {
            release_mutex_locked(state, tid, mutex);
            if poison {
                if let ObjState::Mutex { poisoned, .. } = &mut state.objects[mutex] {
                    *poisoned = true;
                }
            }
        });
    }

    pub(crate) fn mutex_poisoned(&self, mutex: ObjId) -> bool {
        let state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        matches!(&state.objects[mutex], ObjState::Mutex { poisoned: true, .. })
    }

    pub(crate) fn condvar_notify(&self, cv: ObjId, all: bool) {
        self.eager(|state, tid| {
            state.threads[tid].footprint.push(Touch { loc: Loc::Obj(cv), write: true });
            let mut woken = 0usize;
            for rec in state.threads.iter_mut() {
                if let TState::CvWait { cv: waiting_cv, notified, .. } = &mut rec.state {
                    if *waiting_cv == cv && !*notified {
                        *notified = true;
                        woken += 1;
                        if !all && woken == 1 {
                            break;
                        }
                    }
                }
            }
            // A notify with no waiter is lost — exactly the condvar
            // semantics missed-notify bugs are made of.
        });
    }

    pub(crate) fn chan_sender_change(&self, chan: ObjId, delta: isize) {
        self.eager(|state, tid| {
            state.threads[tid].footprint.push(Touch { loc: Loc::Obj(chan), write: true });
            if let ObjState::Channel { senders, .. } = &mut state.objects[chan] {
                *senders = senders.checked_add_signed(delta).expect("sender count underflow");
            }
        });
    }

    pub(crate) fn chan_receiver_dropped(&self, chan: ObjId) {
        self.eager(|state, tid| {
            state.threads[tid].footprint.push(Touch { loc: Loc::Obj(chan), write: true });
            if let ObjState::Channel { recv_alive, .. } = &mut state.objects[chan] {
                *recv_alive = false;
            }
        });
    }

    pub(crate) fn unpark(&self, target: Tid) {
        self.eager(|state, tid| {
            state.threads[tid].footprint.push(Touch { loc: Loc::ParkToken(target), write: true });
            state.threads[target].park_token = true;
        });
    }

    /// Registers a child thread record; the caller then spawns the real
    /// thread. Returns the child's tid.
    pub(crate) fn register_thread(&self) -> Tid {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.threads.push(ThreadRec::new());
        let child = state.threads.len() - 1;
        state.threads[self.tid].footprint.push(Touch { loc: Loc::Thread(child), write: true });
        child
    }

    /// Marks the calling thread finished and hands control to the
    /// scheduler. Called from the thread wrapper, including on panic.
    pub(crate) fn finish(&self, panicked: Option<Box<dyn Any + Send>>) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        let was_abort = panicked
            .as_ref()
            .map(|p| p.is::<AbortExecution>())
            .unwrap_or(false);
        let is_panic = panicked.is_some() && !was_abort;
        state.threads[self.tid].footprint.push(Touch { loc: Loc::Thread(self.tid), write: true });
        state.threads[self.tid].state = TState::Done { panicked: is_panic };
        if is_panic {
            state.threads[self.tid].panic_payload = panicked;
        }
        if state.failure.is_some() {
            // Teardown of an already-failed execution: just notify so the
            // controller can observe progress.
            self.shared.cv.notify_all();
            return;
        }
        if is_panic && self.tid == 0 {
            // Root panic is an immediate model failure.
            let message = panic_text(state.threads[0].panic_payload.as_deref());
            state.failure = Some(Failure::Panic { tid: 0, message });
            state.finished = true;
            self.shared.cv.notify_all();
            return;
        }
        state.active = None;
        schedule(&mut state, &self.shared.cv, self.tid);
    }

    /// Claims a finished thread's panic payload (the `join` path).
    pub(crate) fn take_panic(&self, target: Tid) -> Option<Box<dyn Any + Send>> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.threads[target].panic_payload.take()
    }

    /// Reads-and-clears the "send found the receiver gone" flag set by the
    /// last `ChanSend` grant for this thread.
    pub(crate) fn take_send_disconnected(&self) -> bool {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut state.threads[self.tid].send_disconnected)
    }

    /// Reads-and-clears the `(disconnected, empty)` flags set by the last
    /// `ChanRecv`/`ChanTryRecv` grant for this thread.
    pub(crate) fn take_recv_flags(&self) -> (bool, bool) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        let rec = &mut state.threads[self.tid];
        (std::mem::take(&mut rec.recv_disconnected), std::mem::take(&mut rec.recv_empty))
    }

    /// Whether `target` has finished (for `JoinHandle::is_finished`).
    pub(crate) fn thread_is_done(&self, target: Tid) -> bool {
        let state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        matches!(state.threads[target].state, TState::Done { .. })
    }
}

/// Body of every model thread (root and spawned): waits for its first
/// grant, runs `f` with the model context installed, and reports the
/// outcome to the scheduler — panics included, so a blown assertion
/// becomes a model failure (root) or a joinable payload (children).
pub(crate) fn run_model_thread(ctx: ThreadCtx, f: impl FnOnce()) {
    // Wait for the Begin grant.
    {
        let mut state = ctx.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.failure.is_some() {
                state.threads[ctx.tid].state = TState::Done { panicked: false };
                ctx.shared.cv.notify_all();
                return;
            }
            if state.active == Some(ctx.tid) {
                break;
            }
            state = ctx.shared.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
    set_current(Some(ctx.clone()));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    set_current(None);
    ctx.finish(outcome.err());
}

fn release_mutex_locked(state: &mut ExecState, tid: Tid, mutex: ObjId) {
    state.threads[tid].footprint.push(Touch { loc: Loc::Obj(mutex), write: true });
    match &mut state.objects[mutex] {
        ObjState::Mutex { owner, .. } => {
            if owner.is_none() {
                // Double unlock: only reachable through the checker's raw
                // self-test API (the typed guard makes it impossible), but
                // detect it rather than corrupt the abstract state.
                state.failure = Some(Failure::Nondeterminism {
                    detail: format!("thread t{tid} unlocked mutex m{mutex} it does not own"),
                });
                state.finished = true;
                return;
            }
            *owner = None;
        }
        _ => unreachable!("release on non-mutex"),
    }
}

pub(crate) fn panic_text(payload: Option<&(dyn Any + Send)>) -> String {
    match payload {
        Some(p) => {
            if let Some(s) = p.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = p.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            }
        }
        None => "<missing payload>".to_string(),
    }
}

/// The heart of the checker: called by the thread that just stopped
/// (`from`), with the state lock held. Picks the next thread per the
/// exploration path (replaying the prefix, appending fresh decision
/// nodes past it), applies the grant, and wakes everyone so the chosen
/// thread can run.
pub(crate) fn schedule(state: &mut ExecState, cv: &StdCondvar, from: Tid) {
    state.steps += 1;
    if state.steps > state.max_steps {
        state.failure = Some(Failure::StepBudget { limit: state.max_steps });
        state.finished = true;
        cv.notify_all();
        return;
    }

    let enabled = state.enabled();
    if enabled.is_empty() {
        let stuck = state.describe_stuck();
        if stuck.is_empty() {
            // Every thread finished: the execution completed.
            // An unclaimed child panic is still a failure.
            for (tid, rec) in state.threads.iter().enumerate() {
                if let TState::Done { panicked: true } = rec.state {
                    if rec.panic_payload.is_some() {
                        let message = panic_text(rec.panic_payload.as_deref());
                        state.failure =
                            Some(Failure::Panic { tid, message });
                        break;
                    }
                }
            }
        } else {
            state.failure = Some(Failure::Deadlock { stuck });
        }
        state.finished = true;
        cv.notify_all();
        return;
    }

    let pending: Vec<(Tid, Op)> = enabled.iter().map(|&t| (t, state.pending_op(t))).collect();

    // Forced replay of a failure schedule.
    if let Some(replay) = &state.replay {
        let idx = state.cursor;
        state.cursor += 1;
        let chosen = match replay.get(idx) {
            Some(&t) => t,
            None => *enabled.first().expect("nonempty"),
        };
        if !enabled.contains(&chosen) {
            state.failure = Some(Failure::Nondeterminism {
                detail: format!(
                    "replay step {idx} chose t{chosen}, but enabled threads are {enabled:?}"
                ),
            });
            state.finished = true;
            cv.notify_all();
            return;
        }
        state.path.push(Node {
            enabled,
            pending: pending.clone(),
            candidates: Vec::new(),
            explored: Vec::new(),
            sleep: Vec::new(),
            chosen,
            preemptions: 0,
        });
        let op = state.pending_op(chosen);
        state.grant(chosen, op);
        state.prev_active = Some(chosen);
        cv.notify_all();
        return;
    }

    if state.cursor < state.path.len() {
        // Replaying the prefix of the exploration path.
        let idx = state.cursor;
        state.cursor += 1;
        let node = &state.path[idx];
        if node.enabled != enabled {
            state.failure = Some(Failure::Nondeterminism {
                detail: format!(
                    "at step {idx} the enabled set changed between executions \
                     (recorded {:?}, now {enabled:?}) — the model closure must be \
                     deterministic",
                    node.enabled
                ),
            });
            state.finished = true;
            cv.notify_all();
            return;
        }
        let chosen = node.chosen;
        let op = state.pending_op(chosen);
        state.grant(chosen, op);
        state.prev_active = Some(chosen);
        cv.notify_all();
        return;
    }

    // Fresh decision point. Compute the sleep set inherited from the
    // previous node: a thread stays asleep while the steps executed since
    // it was put to sleep are independent of its pending op.
    let sleep: Vec<Tid> = match state.path.last() {
        Some(prev) => {
            let executed_footprint = state.threads[from].footprint.clone();
            prev.sleep
                .iter()
                .chain(prev.explored.iter())
                .copied()
                .filter(|&t| t != prev.chosen)
                .filter(|&t| enabled.contains(&t))
                .filter(|&t| {
                    let op = state.pending_op(t);
                    !footprint_hits(&executed_footprint, op, t)
                })
                .collect()
        }
        None => Vec::new(),
    };

    let preemptions_so_far = state.path.last().map(|n| n.preemptions).unwrap_or(0);
    let prev_active = state.prev_active;

    // Candidate choices: enabled minus sleeping, bounded by the
    // preemption budget.
    let mut candidates: Vec<Tid> = enabled.iter().copied().filter(|t| !sleep.contains(t)).collect();
    let budget_left = state
        .preemption_bound
        .map(|b| preemptions_so_far < b)
        .unwrap_or(true);
    if !budget_left {
        if let Some(prev) = prev_active {
            if enabled.contains(&prev) {
                // Out of preemptions: the previous thread must continue.
                candidates = vec![prev];
            }
        }
    }
    let forced = if candidates.is_empty() {
        // Everything enabled is asleep: any continuation only revisits
        // explored behaviors. Continue deterministically without opening
        // a branch.
        candidates = vec![*enabled.first().expect("nonempty")];
        true
    } else {
        false
    };

    let chosen = candidates[0];
    let is_preemption = prev_active
        .map(|p| p != chosen && enabled.contains(&p))
        .unwrap_or(false);
    let node = Node {
        enabled,
        pending,
        candidates: if forced || candidates.len() <= 1 { Vec::new() } else { candidates },
        explored: Vec::new(),
        sleep,
        chosen,
        preemptions: preemptions_so_far + u32::from(is_preemption),
    };
    state.path.push(node);
    state.cursor += 1;
    let op = state.pending_op(chosen);
    state.grant(chosen, op);
    state.prev_active = Some(chosen);
    cv.notify_all();
}
