//! Drop-in shim for the `std::sync` surface the workspace uses.
//!
//! Every type here is **dual-mode**: on a thread that is part of a model
//! execution (spawned under [`crate::model`]) operations route through
//! the controlled scheduler; on any other thread they delegate straight
//! to the `std` primitive they wrap. That duality is what lets the
//! production crates compile against this module under
//! `cfg(oneperc_model)` while their ordinary unit tests — which use real
//! OS threads — keep running unchanged.
//!
//! Modeling scope (documented limitation): the checker explores *thread
//! interleavings* under sequentially consistent memory — it does not
//! model weak memory reorderings, condvar spurious wakeups, or timeouts
//! (`wait_timeout*` panics inside a model). `Ordering` arguments are
//! accepted and ignored in model mode; the nightly TSan job covers the
//! ordering axis the model deliberately skips.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex};
use std::time::Duration;

use crate::rt::{self, ObjId, ObjState, Op, ThreadCtx};

pub mod atomic;
pub mod mpsc;
pub mod thread;

// Untracked re-exports: `Arc` is pure reference counting (its clone/drop
// ordering cannot produce the lost-update/lost-wakeup class of bug this
// checker hunts), and the poison plumbing types are plain data.
pub use std::sync::{
    Arc, LockResult, PoisonError, TryLockError, TryLockResult, WaitTimeoutResult, Weak,
};

/// Per-object registration cache: a packed `(generation, id + 1)` word.
/// Objects register lazily on first touch inside an execution; the
/// generation check makes an object that leaks across executions (a
/// static, a leaked Arc) re-register instead of aliasing a stale id.
pub(crate) struct ObjCell(std::sync::atomic::AtomicU64);

const ID_BITS: u32 = 20;
const ID_MASK: u64 = (1 << ID_BITS) - 1;

impl ObjCell {
    pub(crate) const fn new() -> Self {
        ObjCell(std::sync::atomic::AtomicU64::new(0))
    }

    pub(crate) fn id(&self, ctx: &ThreadCtx, mk: impl FnOnce() -> ObjState) -> ObjId {
        let gen = ctx.shared.generation;
        let packed = self.0.load(StdOrdering::Relaxed);
        if packed >> ID_BITS == gen && packed & ID_MASK != 0 {
            return (packed & ID_MASK) as usize - 1;
        }
        let id = ctx.register_object(mk());
        assert!((id as u64) < ID_MASK, "model execution registered too many objects");
        self.0.store((gen << ID_BITS) | (id as u64 + 1), StdOrdering::Relaxed);
        id
    }
}

/// Dual-mode `std::sync::Mutex`.
pub struct Mutex<T: ?Sized> {
    cell: ObjCell,
    inner: StdMutex<T>,
}

/// Dual-mode `std::sync::MutexGuard`. Holds the real guard either way;
/// in model mode dropping it also releases the abstract lock (an eager
/// effect — no scheduling point).
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(ThreadCtx, ObjId)>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { cell: ObjCell::new(), inner: StdMutex::new(value) }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn mutex_id(&self, ctx: &ThreadCtx) -> ObjId {
        self.cell.id(ctx, || ObjState::Mutex { owner: None, poisoned: false })
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match rt::current() {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard { lock: self, inner: Some(g), model: None }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            },
            Some(ctx) => {
                let id = self.mutex_id(&ctx);
                ctx.yield_point(Op::LockAcquire(id));
                // The grant made this thread the unique abstract owner, so
                // the real lock is free (model threads are serialized); a
                // plain blocking lock keeps us safe even against misuse.
                let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
                let poisoned = ctx.mutex_poisoned(id);
                let guard = MutexGuard { lock: self, inner: Some(g), model: Some((ctx, id)) };
                if poisoned {
                    Err(PoisonError::new(guard))
                } else {
                    Ok(guard)
                }
            }
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("inner", &&self.inner).finish()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((ctx, id)) = self.model.take() {
            // Release the real lock before the abstract one; the next
            // abstract owner is only scheduled after both are free.
            drop(self.inner.take());
            ctx.mutex_release(id, std::thread::panicking());
        }
    }
}

/// Dual-mode `std::sync::Condvar`. In model mode `notify_one` wakes the
/// longest-waiting thread (deterministic FIFO — real condvars may pick
/// any; the FIFO choice is a documented narrowing) and a notify with no
/// waiter is lost, exactly like the real primitive — which is what lets
/// the checker surface missed-notify bugs as deadlocks.
pub struct Condvar {
    cell: ObjCell,
    inner: StdCondvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { cell: ObjCell::new(), inner: StdCondvar::new() }
    }

    fn cv_id(&self, ctx: &ThreadCtx) -> ObjId {
        self.cell.id(ctx, || ObjState::Condvar)
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.model.take() {
            None => {
                let std_guard = guard.inner.take().expect("guard holds the lock");
                let lock = guard.lock;
                std::mem::forget(guard);
                match self.inner.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard { lock, inner: Some(g), model: None }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(p.into_inner()),
                        model: None,
                    })),
                }
            }
            Some((ctx, mutex_id)) => {
                let cv_id = self.cv_id(&ctx);
                let lock = guard.lock;
                // Drop the real guard before ceding control: the next
                // scheduled thread may take the real lock.
                drop(guard.inner.take());
                std::mem::forget(guard);
                ctx.condvar_wait(cv_id, mutex_id);
                // Granted the reacquire: abstract owner again, take real.
                let g = lock.inner.lock().unwrap_or_else(|p| p.into_inner());
                let poisoned = ctx.mutex_poisoned(mutex_id);
                let guard =
                    MutexGuard { lock, inner: Some(g), model: Some((ctx, mutex_id)) };
                if poisoned {
                    Err(PoisonError::new(guard))
                } else {
                    Ok(guard)
                }
            }
        }
    }

    /// `std`-compatible predicate loop over [`Condvar::wait`].
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> LockResult<MutexGuard<'a, T>>
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut guard) {
            guard = self.wait(guard)?;
        }
        Ok(guard)
    }

    /// Timeouts cannot be modeled (there is no clock under the scheduler);
    /// inside a model this panics. Outside it delegates to std — test
    /// watchdogs keep working in ordinary builds.
    pub fn wait_timeout_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Duration,
        condition: F,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)>
    where
        F: FnMut(&mut T) -> bool,
    {
        match guard.model.take() {
            Some(_) => panic!(
                "oneperc-verify: Condvar::wait_timeout_while is not modeled — \
                 restructure the model test to use wait/notify"
            ),
            None => {
                let std_guard = guard.inner.take().expect("guard holds the lock");
                let lock = guard.lock;
                std::mem::forget(guard);
                match self.inner.wait_timeout_while(std_guard, dur, condition) {
                    Ok((g, timeout)) => {
                        Ok((MutexGuard { lock, inner: Some(g), model: None }, timeout))
                    }
                    Err(p) => {
                        let (g, timeout) = p.into_inner();
                        Err(PoisonError::new((
                            MutexGuard { lock, inner: Some(g), model: None },
                            timeout,
                        )))
                    }
                }
            }
        }
    }

    pub fn notify_one(&self) {
        match rt::current() {
            None => self.inner.notify_one(),
            Some(ctx) => {
                let id = self.cv_id(&ctx);
                ctx.condvar_notify(id, false);
            }
        }
    }

    pub fn notify_all(&self) {
        match rt::current() {
            None => self.inner.notify_all(),
            Some(ctx) => {
                let id = self.cv_id(&ctx);
                ctx.condvar_notify(id, true);
            }
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Raw object-level operations, for the checker's own self-tests (they
/// plant bugs — a double unlock — that the typed guards make impossible
/// to express). Not part of the supported surface.
#[doc(hidden)]
pub mod raw {
    use super::*;

    /// Registers a fresh mutex object; model-context only.
    pub fn mutex() -> ObjId {
        let ctx = rt::current().expect("raw::mutex outside a model execution");
        ctx.register_object(ObjState::Mutex { owner: None, poisoned: false })
    }

    pub fn lock(id: ObjId) {
        let ctx = rt::current().expect("raw::lock outside a model execution");
        ctx.yield_point(Op::LockAcquire(id));
    }

    pub fn unlock(id: ObjId) {
        let ctx = rt::current().expect("raw::unlock outside a model execution");
        ctx.mutex_release(id, false);
    }
}
