//! Dual-mode `std::thread`. Model threads are real OS threads whose
//! every synchronization operation is serialized by the scheduler;
//! `spawn` inside a model registers the child with the scheduler and the
//! child's first instruction waits for its `Begin` grant.

use std::io;
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

use crate::rt::{self, Op, ThreadCtx, Tid};

pub use std::thread::Result;

struct ModelJoin<T> {
    tid: Tid,
    slot: Arc<StdMutex<Option<T>>>,
}

enum JoinInner<T> {
    Std(std::thread::JoinHandle<T>),
    Model(ModelJoin<T>),
}

/// Dual-mode `std::thread::JoinHandle`.
pub struct JoinHandle<T>(JoinInner<T>);

impl<T> JoinHandle<T> {
    pub fn join(self) -> Result<T> {
        match self.0 {
            JoinInner::Std(handle) => handle.join(),
            JoinInner::Model(m) => {
                let ctx = rt::current().expect("model JoinHandle joined outside its execution");
                ctx.yield_point(Op::Join(m.tid));
                if let Some(payload) = ctx.take_panic(m.tid) {
                    return Err(payload);
                }
                let value = m
                    .slot
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("joined thread finished without a result");
                Ok(value)
            }
        }
    }

    pub fn is_finished(&self) -> bool {
        match &self.0 {
            JoinInner::Std(handle) => handle.is_finished(),
            JoinInner::Model(m) => {
                let ctx = rt::current().expect("model JoinHandle used outside its execution");
                ctx.thread_is_done(m.tid)
            }
        }
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}

fn spawn_model<F, T>(ctx: &ThreadCtx, f: F) -> ModelJoin<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let tid = ctx.register_thread();
    let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let child_ctx = ThreadCtx { shared: Arc::clone(&ctx.shared), tid };
    let result_slot = Arc::clone(&slot);
    std::thread::Builder::new()
        .name(format!("oneperc-model-t{tid}"))
        .spawn(move || {
            rt::run_model_thread(child_ctx, move || {
                let value = f();
                *result_slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
            });
        })
        .expect("failed to spawn model thread");
    ModelJoin { tid, slot }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        None => JoinHandle(JoinInner::Std(std::thread::spawn(f))),
        Some(ctx) => JoinHandle(JoinInner::Model(spawn_model(&ctx, f))),
    }
}

/// Dual-mode `std::thread::Builder`. The name is applied on the std path
/// and ignored under the model (model threads are identified by tid).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    pub fn new() -> Builder {
        Builder { name: None }
    }

    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match rt::current() {
            None => {
                let mut builder = std::thread::Builder::new();
                if let Some(name) = self.name {
                    builder = builder.name(name);
                }
                builder.spawn(f).map(|h| JoinHandle(JoinInner::Std(h)))
            }
            Some(ctx) => Ok(JoinHandle(JoinInner::Model(spawn_model(&ctx, f)))),
        }
    }
}

/// Dual-mode `std::thread::Thread` (the `current()`/`unpark()` pair the
/// service tier uses to implement `block_on`).
#[derive(Clone)]
pub struct Thread(ThreadInner);

#[derive(Clone)]
enum ThreadInner {
    Std(std::thread::Thread),
    Model(Tid),
}

impl Thread {
    pub fn unpark(&self) {
        match &self.0 {
            ThreadInner::Std(t) => t.unpark(),
            ThreadInner::Model(tid) => {
                let ctx =
                    rt::current().expect("unpark of a model thread from outside its execution");
                ctx.unpark(*tid);
            }
        }
    }

    pub fn name(&self) -> Option<&str> {
        match &self.0 {
            ThreadInner::Std(t) => t.name(),
            ThreadInner::Model(_) => None,
        }
    }
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            ThreadInner::Std(t) => std::fmt::Debug::fmt(t, f),
            ThreadInner::Model(tid) => write!(f, "ModelThread(t{tid})"),
        }
    }
}

pub fn current() -> Thread {
    match rt::current() {
        None => Thread(ThreadInner::Std(std::thread::current())),
        Some(ctx) => Thread(ThreadInner::Model(ctx.tid)),
    }
}

pub fn park() {
    match rt::current() {
        None => std::thread::park(),
        Some(ctx) => ctx.yield_point(Op::Park),
    }
}

pub fn yield_now() {
    match rt::current() {
        None => std::thread::yield_now(),
        Some(ctx) => ctx.yield_point(Op::Yield),
    }
}

/// Under the model a sleep is just a scheduling point — there is no
/// clock, and correctness must never depend on wall time anyway.
pub fn sleep(duration: Duration) {
    match rt::current() {
        None => std::thread::sleep(duration),
        Some(ctx) => {
            let _ = duration;
            ctx.yield_point(Op::Yield)
        }
    }
}

/// Deterministic (2) under the model so worker-count decisions cannot
/// vary between executions.
pub fn available_parallelism() -> io::Result<NonZeroUsize> {
    match rt::current() {
        None => std::thread::available_parallelism(),
        Some(_) => Ok(NonZeroUsize::new(2).expect("nonzero")),
    }
}
