//! Dual-mode `std::sync::mpsc`. The mode is fixed at *creation*: a
//! channel created on a model thread is a model channel (abstract
//! queue-length/sender-count state lives in the scheduler, the actual
//! messages in a shim-side queue); any other channel is plain std.
//!
//! Modeled surface: `send`, `recv`, `try_recv`, sender clone/drop,
//! receiver drop, bounded `sync_channel` capacity. `recv_timeout` is not
//! modeled (no clock) and panics inside a model.

use std::collections::VecDeque;
use std::sync::mpsc as std_mpsc;
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

use crate::rt::{self, ObjId, ObjState, Op, ThreadCtx};

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

struct ChanInner<T> {
    id: ObjId,
    queue: StdMutex<VecDeque<T>>,
}

struct ModelChan<T> {
    inner: Arc<ChanInner<T>>,
}

impl<T> Clone for ModelChan<T> {
    fn clone(&self) -> Self {
        ModelChan { inner: Arc::clone(&self.inner) }
    }
}

impl<T> ModelChan<T> {
    fn new(ctx: &ThreadCtx, cap: Option<usize>) -> Self {
        let id = ctx.register_object(ObjState::Channel {
            len: 0,
            cap,
            senders: 1,
            recv_alive: true,
        });
        ModelChan { inner: Arc::new(ChanInner { id, queue: StdMutex::new(VecDeque::new()) }) }
    }

    fn push(&self, value: T) {
        self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()).push_back(value);
    }

    fn pop(&self) -> T {
        self.inner
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
            .expect("scheduler granted a receive from an empty queue")
    }

    fn send_model(&self, value: T) -> Result<(), SendError<T>> {
        let ctx = rt::current().expect("model Sender used outside its execution");
        ctx.yield_point(Op::ChanSend(self.inner.id));
        if ctx.take_send_disconnected() {
            Err(SendError(value))
        } else {
            self.push(value);
            Ok(())
        }
    }

    fn sender_change(&self, delta: isize) {
        // A drop on a non-model thread can only happen during teardown of
        // a failed execution (whose threads never run again) — skip.
        if let Some(ctx) = rt::current() {
            ctx.chan_sender_change(self.inner.id, delta);
        }
    }
}

/// Dual-mode `std::sync::mpsc::Sender`.
pub struct Sender<T>(SenderInner<T>);

enum SenderInner<T> {
    Std(std_mpsc::Sender<T>),
    Model(ModelChan<T>),
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.0 {
            SenderInner::Std(tx) => tx.send(value),
            SenderInner::Model(chan) => chan.send_model(value),
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        match &self.0 {
            SenderInner::Std(tx) => Sender(SenderInner::Std(tx.clone())),
            SenderInner::Model(chan) => {
                chan.sender_change(1);
                Sender(SenderInner::Model(chan.clone()))
            }
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if let SenderInner::Model(chan) = &self.0 {
            chan.sender_change(-1);
        }
    }
}

/// Dual-mode `std::sync::mpsc::SyncSender` (bounded channel).
pub struct SyncSender<T>(SyncSenderInner<T>);

enum SyncSenderInner<T> {
    Std(std_mpsc::SyncSender<T>),
    Model(ModelChan<T>),
}

impl<T> SyncSender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.0 {
            SyncSenderInner::Std(tx) => tx.send(value),
            SyncSenderInner::Model(chan) => chan.send_model(value),
        }
    }
}

impl<T> Clone for SyncSender<T> {
    fn clone(&self) -> Self {
        match &self.0 {
            SyncSenderInner::Std(tx) => SyncSender(SyncSenderInner::Std(tx.clone())),
            SyncSenderInner::Model(chan) => {
                chan.sender_change(1);
                SyncSender(SyncSenderInner::Model(chan.clone()))
            }
        }
    }
}

impl<T> Drop for SyncSender<T> {
    fn drop(&mut self) {
        if let SyncSenderInner::Model(chan) = &self.0 {
            chan.sender_change(-1);
        }
    }
}

/// Dual-mode `std::sync::mpsc::Receiver`.
pub struct Receiver<T>(ReceiverInner<T>);

enum ReceiverInner<T> {
    Std(std_mpsc::Receiver<T>),
    Model(ModelChan<T>),
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        match &self.0 {
            ReceiverInner::Std(rx) => rx.recv(),
            ReceiverInner::Model(chan) => {
                let ctx = rt::current().expect("model Receiver used outside its execution");
                ctx.yield_point(Op::ChanRecv(chan.inner.id));
                let (disconnected, _) = ctx.take_recv_flags();
                if disconnected {
                    Err(RecvError)
                } else {
                    Ok(chan.pop())
                }
            }
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        match &self.0 {
            ReceiverInner::Std(rx) => rx.try_recv(),
            ReceiverInner::Model(chan) => {
                let ctx = rt::current().expect("model Receiver used outside its execution");
                ctx.yield_point(Op::ChanTryRecv(chan.inner.id));
                let (disconnected, empty) = ctx.take_recv_flags();
                if disconnected {
                    Err(TryRecvError::Disconnected)
                } else if empty {
                    Err(TryRecvError::Empty)
                } else {
                    Ok(chan.pop())
                }
            }
        }
    }

    /// Not modeled (no clock under the scheduler); panics inside a model.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        match &self.0 {
            ReceiverInner::Std(rx) => rx.recv_timeout(timeout),
            ReceiverInner::Model(_) => panic!(
                "oneperc-verify: Receiver::recv_timeout is not modeled — use recv/try_recv \
                 in model tests"
            ),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if let ReceiverInner::Model(chan) = &self.0 {
            if let Some(ctx) = rt::current() {
                ctx.chan_receiver_dropped(chan.inner.id);
            }
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for SyncSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncSender").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

/// Unbounded channel, mode fixed by the calling thread.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    match rt::current() {
        None => {
            let (tx, rx) = std_mpsc::channel();
            (Sender(SenderInner::Std(tx)), Receiver(ReceiverInner::Std(rx)))
        }
        Some(ctx) => {
            let chan = ModelChan::new(&ctx, None);
            (Sender(SenderInner::Model(chan.clone())), Receiver(ReceiverInner::Model(chan)))
        }
    }
}

/// Bounded channel, mode fixed by the calling thread.
pub fn sync_channel<T>(bound: usize) -> (SyncSender<T>, Receiver<T>) {
    match rt::current() {
        None => {
            let (tx, rx) = std_mpsc::sync_channel(bound);
            (SyncSender(SyncSenderInner::Std(tx)), Receiver(ReceiverInner::Std(rx)))
        }
        Some(ctx) => {
            let chan = ModelChan::new(&ctx, Some(bound));
            (
                SyncSender(SyncSenderInner::Model(chan.clone())),
                Receiver(ReceiverInner::Model(chan)),
            )
        }
    }
}
