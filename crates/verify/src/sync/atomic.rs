//! Dual-mode atomics. In model mode every access is a scheduling point
//! (`load` a read, `store`/RMW writes) and memory is sequentially
//! consistent regardless of the `Ordering` argument — model threads are
//! serialized, so the argument only matters to the real hardware path
//! the nightly TSan job exercises.

use crate::rt::{self, ObjId, ObjState, Op, ThreadCtx};
use crate::sync::ObjCell;

pub use std::sync::atomic::Ordering;

macro_rules! atomic_int {
    ($name:ident, $std:ident, $ty:ty) => {
        pub struct $name {
            cell: ObjCell,
            inner: std::sync::atomic::$std,
        }

        impl $name {
            pub const fn new(value: $ty) -> Self {
                $name { cell: ObjCell::new(), inner: std::sync::atomic::$std::new(value) }
            }

            fn hit(&self, mk: fn(ObjId) -> Op) {
                if let Some(ctx) = rt::current() {
                    let id = self.obj_id(&ctx);
                    ctx.yield_point(mk(id));
                }
            }

            fn obj_id(&self, ctx: &ThreadCtx) -> ObjId {
                self.cell.id(ctx, || ObjState::Atomic)
            }

            pub fn load(&self, order: Ordering) -> $ty {
                self.hit(Op::AtomicLoad);
                self.inner.load(order)
            }

            pub fn store(&self, value: $ty, order: Ordering) {
                self.hit(Op::AtomicStore);
                self.inner.store(value, order)
            }

            pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                self.hit(Op::AtomicRmw);
                self.inner.swap(value, order)
            }

            pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                self.hit(Op::AtomicRmw);
                self.inner.fetch_add(value, order)
            }

            pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                self.hit(Op::AtomicRmw);
                self.inner.fetch_sub(value, order)
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.hit(Op::AtomicRmw);
                self.inner.compare_exchange(current, new, success, failure)
            }

            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                f: F,
            ) -> Result<$ty, $ty>
            where
                F: FnMut($ty) -> Option<$ty>,
            {
                // One scheduling point for the whole RMW: under the model
                // the internal CAS loop cannot be contended (threads are
                // serialized), so it runs at most twice and never spins.
                self.hit(Op::AtomicRmw);
                self.inner.fetch_update(set_order, fetch_order, f)
            }

            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }

            pub fn get_mut(&mut self) -> &mut $ty {
                self.inner.get_mut()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$ty>::default())
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                std::fmt::Debug::fmt(&self.inner, f)
            }
        }
    };
}

atomic_int!(AtomicUsize, AtomicUsize, usize);
atomic_int!(AtomicU64, AtomicU64, u64);
atomic_int!(AtomicU32, AtomicU32, u32);

pub struct AtomicBool {
    cell: ObjCell,
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(value: bool) -> Self {
        AtomicBool { cell: ObjCell::new(), inner: std::sync::atomic::AtomicBool::new(value) }
    }

    fn hit(&self, mk: fn(ObjId) -> Op) {
        if let Some(ctx) = rt::current() {
            let id = self.cell.id(&ctx, || ObjState::Atomic);
            ctx.yield_point(mk(id));
        }
    }

    pub fn load(&self, order: Ordering) -> bool {
        self.hit(Op::AtomicLoad);
        self.inner.load(order)
    }

    pub fn store(&self, value: bool, order: Ordering) {
        self.hit(Op::AtomicStore);
        self.inner.store(value, order)
    }

    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        self.hit(Op::AtomicRmw);
        self.inner.swap(value, order)
    }

    pub fn fetch_or(&self, value: bool, order: Ordering) -> bool {
        self.hit(Op::AtomicRmw);
        self.inner.fetch_or(value, order)
    }

    pub fn fetch_and(&self, value: bool, order: Ordering) -> bool {
        self.hit(Op::AtomicRmw);
        self.inner.fetch_and(value, order)
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.hit(Op::AtomicRmw);
        self.inner.compare_exchange(current, new, success, failure)
    }

    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.inner, f)
    }
}
