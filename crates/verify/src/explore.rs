//! Exploration driver: runs the test closure under every scheduling
//! decision vector up to the preemption bound, with sleep-set (DPOR-lite)
//! pruning, and renders replayable failure reports.

use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

use crate::rt::{self, ExecState, Failure, Node, Shared, ThreadCtx, ThreadRec, Tid};

/// Environment variable holding a comma-separated schedule (the `chosen`
/// thread id per step) to replay a single execution instead of exploring.
pub const REPLAY_ENV: &str = "ONEPERC_MODEL_REPLAY";

/// Default context-switch (preemption) bound. Two preemptions catch the
/// overwhelming majority of real concurrency bugs (CHESS's empirical
/// result) while keeping exhaustive exploration tractable; the service
/// model tests raise it where the acceptance bar demands.
pub const DEFAULT_PREEMPTION_BOUND: u32 = 2;

/// Configures and runs a bounded model-checking session.
///
/// ```
/// use oneperc_verify::{Builder, sync::atomic::{AtomicUsize, Ordering}};
/// use oneperc_verify::sync::Arc;
///
/// let report = Builder::new().preemption_bound(2).check(|| {
///     let n = Arc::new(AtomicUsize::new(0));
///     let n2 = Arc::clone(&n);
///     let t = oneperc_verify::sync::thread::spawn(move || {
///         n2.fetch_add(1, Ordering::SeqCst);
///     });
///     n.fetch_add(1, Ordering::SeqCst);
///     t.join().unwrap();
///     assert_eq!(n.load(Ordering::SeqCst), 2);
/// });
/// assert!(report.complete);
/// ```
#[derive(Debug, Clone)]
pub struct Builder {
    preemption_bound: Option<u32>,
    max_executions: u64,
    max_steps: usize,
    replay: Option<Vec<Tid>>,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

/// What an exploration did. Returned on success; failures panic with a
/// replayable report instead.
#[derive(Debug, Clone)]
pub struct Report {
    /// Executions (distinct schedules) actually run.
    pub executions: u64,
    /// True when the bounded space was exhausted (always true on return —
    /// running out of budget panics — but kept explicit for telemetry).
    pub complete: bool,
    /// Deepest schedule explored, in scheduling points.
    pub max_depth: usize,
}

impl Builder {
    pub fn new() -> Self {
        let replay = std::env::var(REPLAY_ENV).ok().map(|v| {
            v.split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| s.trim().parse::<usize>().expect("malformed ONEPERC_MODEL_REPLAY"))
                .collect()
        });
        Builder {
            preemption_bound: Some(DEFAULT_PREEMPTION_BOUND),
            max_executions: 1_000_000,
            max_steps: 20_000,
            replay,
        }
    }

    /// Bounds context switches away from a still-runnable thread. `None`
    /// removes the bound (full exhaustive exploration — use only on tiny
    /// models).
    pub fn preemption_bound(mut self, bound: impl Into<Option<u32>>) -> Self {
        self.preemption_bound = bound.into();
        self
    }

    /// Caps the number of executions; exceeding the cap panics (an
    /// under-explored model must fail loudly, not pass quietly).
    pub fn max_executions(mut self, max: u64) -> Self {
        self.max_executions = max;
        self
    }

    /// Caps scheduling points per execution (catches livelocks/spins).
    pub fn max_steps(mut self, max: usize) -> Self {
        self.max_steps = max;
        self
    }

    /// Replays exactly one execution along `schedule` (the thread ids a
    /// failure report prints) instead of exploring.
    pub fn replay(mut self, schedule: &[Tid]) -> Self {
        self.replay = Some(schedule.to_vec());
        self
    }

    /// Explores every schedule of `f` within the bounds. Panics with a
    /// replayable report on the first failing schedule (assertion panic,
    /// deadlock — which is how lost wakeups surface — livelock budget, or
    /// nondeterminism); returns exploration statistics otherwise.
    pub fn check<F>(self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut path: Vec<Node> = Vec::new();
        let mut executions: u64 = 0;
        let mut max_depth = 0usize;

        if let Some(schedule) = &self.replay {
            let (done_path, failure) = run_once(
                Arc::clone(&f),
                Vec::new(),
                Some(schedule.clone()),
                self.preemption_bound,
                self.max_steps,
            );
            if let Some(failure) = failure {
                panic!("{}", format_failure(&done_path, &failure, 1, true));
            }
            return Report { executions: 1, complete: true, max_depth: done_path.len() };
        }

        loop {
            executions += 1;
            if executions > self.max_executions {
                panic!(
                    "oneperc-verify: exploration budget exhausted after {} executions \
                     (raise Builder::max_executions or shrink the model)",
                    self.max_executions
                );
            }
            let (done_path, failure) = run_once(
                Arc::clone(&f),
                path,
                None,
                self.preemption_bound,
                self.max_steps,
            );
            if let Some(failure) = failure {
                panic!("{}", format_failure(&done_path, &failure, executions, false));
            }
            max_depth = max_depth.max(done_path.len());
            path = done_path;

            // Backtrack: find the deepest node with an unexplored
            // candidate, advance it, and drop everything below.
            let advanced = loop {
                let Some(mut node) = path.pop() else { break false };
                if node.candidates.is_empty() {
                    continue; // forced move, nothing to branch into
                }
                node.explored.push(node.chosen);
                let next = node
                    .candidates
                    .iter()
                    .copied()
                    .find(|c| !node.explored.contains(c));
                if let Some(next) = next {
                    // Re-derive the preemption count for the new choice.
                    let prev_chosen = path.last().map(|n| n.chosen);
                    let parent_preemptions = path.last().map(|n| n.preemptions).unwrap_or(0);
                    let is_preemption = prev_chosen
                        .map(|p| p != next && node.enabled.contains(&p))
                        .unwrap_or(false);
                    node.preemptions = parent_preemptions + u32::from(is_preemption);
                    node.chosen = next;
                    path.push(node);
                    break true;
                }
                // Node exhausted: stays popped, continue upward.
            };
            if !advanced {
                return Report { executions, complete: true, max_depth };
            }
        }
    }
}

/// Checks `f` under the default bounds. The everyday entry point:
/// `oneperc_verify::model(|| { ... })`.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

/// Runs one execution, replaying `path` as its decision prefix. Returns
/// the full decision path taken and the failure, if any.
fn run_once(
    f: Arc<dyn Fn() + Send + Sync>,
    path: Vec<Node>,
    replay: Option<Vec<Tid>>,
    preemption_bound: Option<u32>,
    max_steps: usize,
) -> (Vec<Node>, Option<Failure>) {
    let shared = Arc::new(Shared {
        state: StdMutex::new(ExecState {
            threads: vec![ThreadRec::new()],
            objects: Vec::new(),
            active: None,
            path,
            cursor: 0,
            replay,
            preemption_bound,
            max_steps,
            steps: 0,
            failure: None,
            finished: false,
            prev_active: None,
        }),
        cv: StdCondvar::new(),
        generation: rt::next_generation(),
    });

    // Spawn the root model thread; it parks until the kick-off grant.
    {
        let shared = Arc::clone(&shared);
        let f = Arc::clone(&f);
        std::thread::spawn(move || {
            let ctx = ThreadCtx { shared, tid: 0 };
            rt::run_model_thread(ctx, move || f());
        });
    }

    // Kick off: grant the root thread its Begin.
    {
        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        rt::schedule(&mut state, &shared.cv, 0);
    }

    // Wait for the execution to finish (cleanly or by failure). Threads
    // of a failed execution may still be blocked; they are leaked — the
    // caller is about to panic with the report.
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    while !state.finished {
        state = shared.cv.wait(state).unwrap_or_else(|e| e.into_inner());
    }
    let failure = state.failure.take();
    let path = std::mem::take(&mut state.path);
    (path, failure)
}

fn schedule_vector(path: &[Node]) -> String {
    let ids: Vec<String> = path.iter().map(|n| n.chosen.to_string()).collect();
    ids.join(",")
}

fn format_failure(path: &[Node], failure: &Failure, executions: u64, replayed: bool) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "\n== oneperc-verify: model failure ==");
    let _ = writeln!(
        out,
        "{} execution{} explored{}",
        executions,
        if executions == 1 { "" } else { "s" },
        if replayed { " (replay mode)" } else { "" },
    );
    match failure {
        Failure::Panic { tid, message } => {
            let _ = writeln!(out, "reason: thread t{tid} panicked: {message}");
        }
        Failure::Deadlock { stuck } => {
            let _ = writeln!(
                out,
                "reason: deadlock — no thread is runnable (lost wakeup / missed notify?)"
            );
            for (tid, what) in stuck {
                let _ = writeln!(out, "        t{tid}: {what}");
            }
        }
        Failure::StepBudget { limit } => {
            let _ = writeln!(
                out,
                "reason: step budget exceeded ({limit} scheduling points) — livelock or \
                 unbounded spin"
            );
        }
        Failure::Nondeterminism { detail } => {
            let _ = writeln!(out, "reason: {detail}");
        }
    }
    let _ = writeln!(out, "schedule: [{}]", schedule_vector(path));
    let _ = writeln!(out, "steps:");
    for (i, node) in path.iter().enumerate() {
        let op = node
            .pending
            .iter()
            .find(|(t, _)| *t == node.chosen)
            .map(|(_, op)| op.to_string())
            .unwrap_or_else(|| "?".to_string());
        let _ = writeln!(out, "  #{i:<4} t{} {op}", node.chosen);
    }
    let _ = writeln!(
        out,
        "replay: {REPLAY_ENV}=\"{}\" (or Builder::replay(&[{}]))",
        schedule_vector(path),
        schedule_vector(path).replace(',', ", "),
    );
    out
}
