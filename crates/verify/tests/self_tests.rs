//! Checker self-tests: plant known concurrency bugs and assert the
//! checker finds each one within the default preemption bound, with a
//! replayable schedule in the report. These tests are the evidence that
//! a green model suite elsewhere in the workspace means something.

use std::panic::{catch_unwind, AssertUnwindSafe};

use oneperc_verify::sync::atomic::{AtomicUsize, Ordering};
use oneperc_verify::sync::{thread, Arc, Condvar, Mutex};
use oneperc_verify::Builder;

/// Runs `f` under the checker expecting a failure; returns the report text.
fn expect_failure(f: impl Fn() + Send + Sync + 'static) -> String {
    let result = catch_unwind(AssertUnwindSafe(|| Builder::new().check(f)));
    let payload = result.expect_err("checker should have found the planted bug");
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        panic!("non-string failure report");
    }
}

/// Extracts the `schedule: [..]` decision vector from a failure report.
fn parse_schedule(report: &str) -> Vec<usize> {
    let line = report
        .lines()
        .find(|l| l.starts_with("schedule: ["))
        .expect("report carries a schedule");
    line.trim_start_matches("schedule: [")
        .trim_end_matches(']')
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse().expect("schedule entries are thread ids"))
        .collect()
}

// ---------------------------------------------------------------------
// Planted bug 1: racy read-modify-write (load + store instead of
// fetch_add). Two increments can both read 0; the final assert fires on
// the interleaved schedule.
// ---------------------------------------------------------------------

fn racy_counter() {
    let n = Arc::new(AtomicUsize::new(0));
    let n2 = Arc::clone(&n);
    let t = thread::spawn(move || {
        let v = n2.load(Ordering::SeqCst);
        n2.store(v + 1, Ordering::SeqCst);
    });
    let v = n.load(Ordering::SeqCst);
    n.store(v + 1, Ordering::SeqCst);
    t.join().unwrap();
    assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn detects_racy_counter() {
    let report = expect_failure(racy_counter);
    assert!(report.contains("lost update"), "unexpected report:\n{report}");
    assert!(report.contains("schedule: ["), "report must be replayable:\n{report}");
}

#[test]
fn replays_racy_counter_schedule() {
    let report = expect_failure(racy_counter);
    let schedule = parse_schedule(&report);
    // Replaying the printed schedule must reproduce the same failure
    // deterministically, first try.
    let replay =
        catch_unwind(AssertUnwindSafe(move || Builder::new().replay(&schedule).check(racy_counter)));
    let payload = replay.expect_err("replay must reproduce the failure");
    let text = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(text.contains("lost update"), "replay found a different failure:\n{text}");
    assert!(text.contains("(replay mode)"), "replay must be marked:\n{text}");
}

// ---------------------------------------------------------------------
// Planted bug 2: lost wakeup. The waiter tests the flag *before* taking
// the lock, so the notifier can fire `notify_one` in the gap between the
// check and the wait; the notify is lost and the waiter blocks forever.
// The checker reports this as a deadlock.
// ---------------------------------------------------------------------

#[test]
fn detects_lost_wakeup() {
    let report = expect_failure(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock().unwrap() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        // BUG: decide to wait based on a stale read, then wait
        // unconditionally. If the notifier runs entirely inside the gap
        // between the read and the wait, the wakeup is lost.
        let ready = *lock.lock().unwrap();
        if !ready {
            let guard = lock.lock().unwrap();
            let _guard = cv.wait(guard).unwrap();
        }
        t.join().unwrap();
    });
    assert!(
        report.contains("deadlock"),
        "lost wakeup must surface as a deadlock:\n{report}"
    );
    assert!(
        report.contains("waiting on condvar"),
        "report should name the stuck waiter:\n{report}"
    );
}

// The fixed version of the same protocol passes exhaustively: witness
// that the detector above isn't just rejecting everything.
#[test]
fn passes_correct_condvar_protocol() {
    let report = Builder::new().check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock().unwrap() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut guard = lock.lock().unwrap();
        while !*guard {
            guard = cv.wait(guard).unwrap();
        }
        drop(guard);
        t.join().unwrap();
    });
    assert!(report.complete);
    // At least two schedules: notify before the wait and after it.
    assert!(report.executions >= 2, "explored only {} executions", report.executions);
}

// ---------------------------------------------------------------------
// Planted bug 3: double unlock, via the raw object API (the typed guard
// makes this unrepresentable — which is the point of the typed guard).
// ---------------------------------------------------------------------

#[test]
fn detects_double_unlock() {
    let report = expect_failure(|| {
        let m = oneperc_verify::sync::raw::mutex();
        oneperc_verify::sync::raw::lock(m);
        oneperc_verify::sync::raw::unlock(m);
        oneperc_verify::sync::raw::unlock(m);
    });
    assert!(report.contains("does not own"), "unexpected report:\n{report}");
}

// ---------------------------------------------------------------------
// Sanity: correct protocols pass exhaustively.
// ---------------------------------------------------------------------

#[test]
fn passes_atomic_counter() {
    let report = Builder::new().check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 3);
    });
    assert!(report.complete);
}

#[test]
fn passes_mutex_counter() {
    let report = Builder::new().check(|| {
        let n = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    *n.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 3);
    });
    assert!(report.complete);
}

#[test]
fn passes_channel_handoff() {
    use oneperc_verify::sync::mpsc;
    let report = Builder::new().check(|| {
        let (tx, rx) = mpsc::channel();
        let tx2 = tx.clone();
        let a = thread::spawn(move || tx.send(1u32).unwrap());
        let b = thread::spawn(move || tx2.send(2u32).unwrap());
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
        assert!(matches!(rx.try_recv(), Err(mpsc::TryRecvError::Empty) | Err(mpsc::TryRecvError::Disconnected)));
        a.join().unwrap();
        b.join().unwrap();
    });
    assert!(report.complete);
}

#[test]
fn passes_park_unpark() {
    let report = Builder::new().check(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        let flag2 = Arc::clone(&flag);
        let main = thread::current();
        let t = thread::spawn(move || {
            flag2.store(1, Ordering::SeqCst);
            main.unpark();
        });
        while flag.load(Ordering::SeqCst) == 0 {
            thread::park();
        }
        t.join().unwrap();
    });
    assert!(report.complete);
}

// A child panic that nobody joins must still fail the model — losing a
// panic is exactly what the checker must not allow.
#[test]
fn detects_unjoined_child_panic() {
    let report = expect_failure(|| {
        let t = thread::spawn(|| panic!("child blew up"));
        drop(t);
    });
    assert!(report.contains("child blew up"), "unexpected report:\n{report}");
}
