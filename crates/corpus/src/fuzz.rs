//! The cross-path determinism fuzzer.
//!
//! Every byte-identity guarantee in the workspace — pipelined ≡ serial,
//! warm ≡ cold, cached ≡ uncached, any lane count — is pinned by
//! hand-written suites over four seed benchmarks. This module sweeps
//! *sampled* circuits (see [`CorpusSpec`](crate::CorpusSpec)) through the
//! full path matrix instead:
//!
//! > warm/cold × pipelined/serial × cached/uncached × 1/2/4 lanes
//!
//! For each sampled circuit the fuzzer computes a **baseline** (a fresh
//! single-lane serial uncached [`Session`]) and asserts that every other
//! path shape reproduces it byte-for-byte per execution seed (wall-clock
//! and operational telemetry aside, via
//! [`ExecutionReport::deterministic`](oneperc::ExecutionReport::deterministic)
//! — including the full [`LayerFailure`](oneperc::LayerFailure) diagnostics
//! of incomplete runs).
//!
//! On a divergence the failing spec is **shrunk** to a minimal reproducer
//! (greedy descent over [`CorpusSpec::shrink`] candidates, re-checking only
//! the diverging path) and reported with a replay token; export it as
//! `ONEPERC_FUZZ_REPLAY` and re-run `cargo xtask fuzz-determinism` to
//! re-check exactly that circuit through the whole matrix.

use std::fmt;
use std::time::{Duration, Instant};

use oneperc::{CompileError, CompilerConfig, ExecuteOutcome, Session};
use oneperc_circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{CorpusSpec, FAMILIES};

/// Environment variable holding a replay token
/// (`<spec>@<circuit_seed>:<exec_seed>[,<exec_seed>…]`); when set, the
/// fuzzer re-checks exactly that circuit instead of sampling.
pub const REPLAY_ENV: &str = "ONEPERC_FUZZ_REPLAY";

/// One shape of the execution path matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathShape {
    /// Run a lane-warming sweep (seeds outside the test set) before the
    /// checked executions, so the engines, generator threads and (when
    /// cached) the program cache are all hot.
    pub warm: bool,
    /// Double-buffered RSL pipeline on the online pass.
    pub pipelined: bool,
    /// Resolve the program through the content-addressed cache
    /// ([`Session::sweep`]) instead of compiling explicitly.
    pub cached: bool,
    /// Session lanes the executions fan out over.
    pub lanes: usize,
}

impl PathShape {
    /// The full 2×2×2×3 matrix, baseline-most shape first.
    pub fn matrix() -> Vec<PathShape> {
        let mut shapes = Vec::with_capacity(24);
        for &warm in &[false, true] {
            for &pipelined in &[false, true] {
                for &cached in &[false, true] {
                    for &lanes in &[1usize, 2, 4] {
                        shapes.push(PathShape { warm, pipelined, cached, lanes });
                    }
                }
            }
        }
        shapes
    }
}

impl fmt::Display for PathShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}l",
            if self.warm { "warm" } else { "cold" },
            if self.pipelined { "pipelined" } else { "serial" },
            if self.cached { "cached" } else { "uncached" },
            self.lanes
        )
    }
}

/// Fuzzer options; the defaults match the bounded CI budget.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Sampled circuits to sweep.
    pub circuits: u64,
    /// Seed of the corpus stream: specs, circuit seeds and execution
    /// seeds all derive from it.
    pub base_seed: u64,
    /// Execution seeds checked per circuit and path shape.
    pub exec_seeds: usize,
    /// Minimize a failing spec before reporting it.
    pub shrink: bool,
    /// Print one progress line per circuit (the xtask runner turns this
    /// on; library callers usually leave it off).
    pub progress: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            circuits: 200,
            base_seed: 0x0ec0_ffee,
            exec_seeds: 2,
            shrink: true,
            progress: false,
        }
    }
}

/// Summary of a clean fuzzing run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuzzStats {
    /// Circuits swept through the full matrix.
    pub circuits: u64,
    /// Total checked executions (baseline and matrix, warm-ups excluded).
    pub executions: u64,
    /// Circuits per family, indexed like
    /// [`FAMILIES`](crate::spec::FAMILIES).
    pub family_counts: [u64; 4],
    /// Circuits whose offline pass failed (skipped; compile errors are
    /// deterministic per `(circuit, config)` and carry no stream state).
    pub skipped: u64,
    /// Wall-clock of the sweep.
    pub wall: Duration,
}

impl fmt::Display for FuzzStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let families: Vec<String> = FAMILIES
            .iter()
            .zip(self.family_counts)
            .map(|(name, count)| format!("{name} {count}"))
            .collect();
        write!(
            f,
            "{} circuits ({}) x {} path shapes, {} checked executions, {} skipped, {:.1} s",
            self.circuits,
            families.join(", "),
            PathShape::matrix().len(),
            self.executions,
            self.skipped,
            self.wall.as_secs_f64()
        )
    }
}

/// A byte-identity violation: the minimal reproducer and everything
/// needed to replay it.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Corpus index of the originally failing circuit (`u64::MAX` in
    /// replay mode).
    pub index: u64,
    /// The spec as sampled.
    pub spec: CorpusSpec,
    /// The spec after shrinking (equals `spec` when shrinking is off or
    /// no smaller reproducer diverged).
    pub minimized: CorpusSpec,
    /// Circuit seed the spec was instantiated with.
    pub circuit_seed: u64,
    /// Execution seed whose outcome diverged.
    pub exec_seed: u64,
    /// The first path shape that disagreed with the baseline.
    pub path: PathShape,
    /// Baseline (cold/serial/uncached/1-lane) outcome, deterministic view.
    pub expected: ExecuteOutcome,
    /// The diverging path's outcome, deterministic view.
    pub actual: ExecuteOutcome,
}

impl Divergence {
    /// The replay token for [`REPLAY_ENV`], reproducing the minimized
    /// divergence.
    pub fn replay_token(&self) -> String {
        format!("{}@{}:{}", self.minimized.to_token(), self.circuit_seed, self.exec_seed)
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "determinism divergence at corpus index {}: path {} disagrees with the \
             cold/serial/uncached/1l baseline",
            self.index, self.path
        )?;
        writeln!(f, "  spec      : {} (circuit seed {})", self.spec, self.circuit_seed)?;
        writeln!(f, "  minimized : {} (exec seed {})", self.minimized, self.exec_seed)?;
        writeln!(f, "  expected  : {:?}", self.expected)?;
        writeln!(f, "  actual    : {:?}", self.actual)?;
        write!(f, "  replay    : {}='{}' cargo xtask fuzz-determinism", REPLAY_ENV, self.replay_token())
    }
}

/// A parsed [`REPLAY_ENV`] token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// The spec to re-instantiate.
    pub spec: CorpusSpec,
    /// Circuit seed to instantiate it with.
    pub circuit_seed: u64,
    /// Execution seeds to check (at least one).
    pub exec_seeds: Vec<u64>,
}

impl Replay {
    /// Parses `<spec>@<circuit_seed>:<exec_seed>[,<exec_seed>…]`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the malformed part.
    pub fn parse(token: &str) -> Result<Replay, String> {
        let (spec_part, seeds_part) = token
            .split_once('@')
            .ok_or_else(|| format!("replay token `{token}` is missing `@<circuit_seed>`"))?;
        let spec = CorpusSpec::parse(spec_part)?;
        let (circuit_seed, exec_part) = seeds_part
            .split_once(':')
            .ok_or_else(|| format!("replay token `{token}` is missing `:<exec_seed>`"))?;
        let circuit_seed = circuit_seed
            .parse()
            .map_err(|_| format!("circuit seed `{circuit_seed}` is not an integer"))?;
        let mut exec_seeds = Vec::new();
        for part in exec_part.split(',') {
            exec_seeds
                .push(part.parse().map_err(|_| format!("exec seed `{part}` is not an integer"))?);
        }
        Ok(Replay { spec, circuit_seed, exec_seeds })
    }

    /// Reads and parses [`REPLAY_ENV`]; `Ok(None)` when unset or empty.
    ///
    /// # Errors
    ///
    /// Returns the parse failure for a set-but-malformed token.
    pub fn from_env() -> Result<Option<Replay>, String> {
        match std::env::var(REPLAY_ENV) {
            Ok(token) if !token.trim().is_empty() => Replay::parse(token.trim()).map(Some),
            _ => Ok(None),
        }
    }
}

/// The deterministic comparison view of an outcome: wall-clock, cache
/// counters and scheduler telemetry cleared on either arm; completion flag
/// and full failure diagnostics kept. The report's `pipelined` flag is
/// also cleared — it records *which* path ran, and the whole point of the
/// sweep is comparing across paths.
pub fn deterministic_view(outcome: ExecuteOutcome) -> ExecuteOutcome {
    let strip = |report: oneperc::ExecutionReport| {
        let mut report = report.deterministic();
        report.pipelined = false;
        report
    };
    match outcome {
        ExecuteOutcome::Complete(report) => ExecuteOutcome::Complete(strip(report)),
        ExecuteOutcome::Incomplete { report, failure } => {
            ExecuteOutcome::Incomplete { report: strip(report), failure }
        }
    }
}

/// The compiler configuration a corpus circuit runs under: the Table 1
/// auto-sizing for its width at a hyper-advanced fusion rate, so the
/// RSLs stay small and one circuit sweeps the whole matrix in
/// milliseconds. The probability alternates per circuit seed for a little
/// hardware diversity without leaving the small-RSL preset table.
fn exec_config(spec: &CorpusSpec, circuit_seed: u64) -> CompilerConfig {
    let p = if circuit_seed.is_multiple_of(2) { 0.9 } else { 0.88 };
    CompilerConfig::for_qubits(spec.qubits().max(2), p, 0)
}

/// Warm-up seeds: far away from the derived execution seeds (which stay
/// below 2³²) so warming can never alias a checked execution.
fn warm_seeds(lanes: usize) -> Vec<u64> {
    (0..lanes as u64).map(|lane| 0xFFFF_0000_0000_0100 + lane).collect()
}

/// Runs one path shape and returns the deterministic outcome views in
/// seed order.
///
/// # Errors
///
/// Propagates the offline pass's [`CompileError`].
fn run_path(
    path: PathShape,
    base: CompilerConfig,
    circuit: &Circuit,
    seeds: &[u64],
) -> Result<Vec<ExecuteOutcome>, CompileError> {
    let config = base.with_pipelining(path.pipelined);
    let session = Session::builder(config)
        .lanes(path.lanes)
        .program_cache(if path.cached { 4 } else { 0 })
        .build();
    if path.warm {
        let warm = warm_seeds(path.lanes);
        if path.cached {
            session.sweep(circuit, &warm)?;
        } else {
            let compiled = session.compile(circuit)?;
            session.execute_batch(&compiled, &warm);
        }
    }
    let outcomes = if path.cached {
        session.sweep(circuit, seeds)?
    } else {
        let compiled = session.compile(circuit)?;
        session.execute_batch(&compiled, seeds)
    };
    Ok(outcomes.into_iter().map(deterministic_view).collect())
}

/// The first divergence of one circuit against its baseline, if any.
/// `Ok(None)` means every path reproduced the baseline; `Err` means the
/// offline pass failed (the circuit is skipped — compilation consumes no
/// stream state).
fn check_circuit(
    spec: &CorpusSpec,
    circuit_seed: u64,
    exec_seeds: &[u64],
) -> Result<Option<(PathShape, u64, ExecuteOutcome, ExecuteOutcome)>, CompileError> {
    let circuit = spec.circuit(circuit_seed);
    let config = exec_config(spec, circuit_seed);
    let baseline = run_path(
        PathShape { warm: false, pipelined: false, cached: false, lanes: 1 },
        config,
        &circuit,
        exec_seeds,
    )?;
    for path in PathShape::matrix() {
        let outcomes = run_path(path, config, &circuit, exec_seeds)?;
        for (slot, (&seed, actual)) in exec_seeds.iter().zip(&outcomes).enumerate() {
            if *actual != baseline[slot] {
                return Ok(Some((path, seed, baseline[slot], *actual)));
            }
        }
    }
    Ok(None)
}

/// Greedy shrink: walk [`CorpusSpec::shrink`] candidates, keeping the
/// first strictly smaller spec that still diverges on the *same* path
/// shape and circuit seed, until no candidate diverges. Re-checks only
/// the diverging path against a fresh baseline, so minimization costs a
/// couple of runs per candidate rather than a full matrix.
fn shrink_divergence(
    spec: CorpusSpec,
    circuit_seed: u64,
    exec_seeds: &[u64],
    path: PathShape,
) -> CorpusSpec {
    let baseline_shape = PathShape { warm: false, pipelined: false, cached: false, lanes: 1 };
    let still_diverges = |candidate: &CorpusSpec| -> bool {
        let circuit = candidate.circuit(circuit_seed);
        let config = exec_config(candidate, circuit_seed);
        match (
            run_path(baseline_shape, config, &circuit, exec_seeds),
            run_path(path, config, &circuit, exec_seeds),
        ) {
            (Ok(expected), Ok(actual)) => expected != actual,
            // A candidate that stops compiling is not a reproducer.
            _ => false,
        }
    };
    let mut current = spec;
    'outer: loop {
        for candidate in current.shrink() {
            if still_diverges(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        return current;
    }
}

/// Packages one confirmed divergence, shrinking it first when enabled.
fn report_divergence(
    options: &FuzzOptions,
    index: u64,
    spec: CorpusSpec,
    circuit_seed: u64,
    exec_seeds: &[u64],
    found: (PathShape, u64, ExecuteOutcome, ExecuteOutcome),
) -> Divergence {
    let (path, exec_seed, mut expected, mut actual) = found;
    let minimized = if options.shrink {
        shrink_divergence(spec, circuit_seed, exec_seeds, path)
    } else {
        spec
    };
    if minimized != spec {
        // Re-derive the expected/actual pair for the minimized spec so
        // the report shows the reproducer, not the original monster.
        let circuit = minimized.circuit(circuit_seed);
        let config = exec_config(&minimized, circuit_seed);
        if let (Ok(base), Ok(other)) = (
            run_path(
                PathShape { warm: false, pipelined: false, cached: false, lanes: 1 },
                config,
                &circuit,
                exec_seeds,
            ),
            run_path(path, config, &circuit, exec_seeds),
        ) {
            if let Some(slot) = base.iter().zip(&other).position(|(b, o)| b != o) {
                expected = base[slot];
                actual = other[slot];
            }
        }
    }
    Divergence { index, spec, minimized, circuit_seed, exec_seed, path, expected, actual }
}

/// Derived per-circuit seeds: the circuit seed feeds the spec's random
/// generator, the exec seeds feed the online pass. All below 2³² so the
/// warm-up seeds can never collide with them.
fn derive_seeds(base_seed: u64, index: u64, exec_seeds: usize) -> (u64, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(index).rotate_left(32) ^ index);
    let circuit_seed = u64::from(rng.gen::<u32>());
    let seeds = (0..exec_seeds).map(|_| u64::from(rng.gen::<u32>())).collect();
    (circuit_seed, seeds)
}

/// Sweeps `options.circuits` sampled circuits through the full path
/// matrix.
///
/// # Errors
///
/// Returns the first (minimized) [`Divergence`]; a clean sweep returns
/// its [`FuzzStats`].
pub fn run_fuzz(options: &FuzzOptions) -> Result<FuzzStats, Box<Divergence>> {
    let start = Instant::now();
    let mut stats = FuzzStats::default();
    let shapes = PathShape::matrix().len() as u64;
    for index in 0..options.circuits {
        let spec = CorpusSpec::sample(options.base_seed, index);
        let (circuit_seed, exec_seeds) = derive_seeds(options.base_seed, index, options.exec_seeds);
        if options.progress {
            println!(
                "[{:>4}/{}] {spec} (circuit seed {circuit_seed})",
                index + 1,
                options.circuits
            );
        }
        match check_circuit(&spec, circuit_seed, &exec_seeds) {
            Ok(None) => {
                stats.circuits += 1;
                stats.family_counts[spec.family_index()] += 1;
                stats.executions += (shapes + 1) * exec_seeds.len() as u64;
            }
            Ok(Some(found)) => {
                return Err(Box::new(report_divergence(
                    options,
                    index,
                    spec,
                    circuit_seed,
                    &exec_seeds,
                    found,
                )));
            }
            Err(_) => stats.skipped += 1,
        }
    }
    stats.wall = start.elapsed();
    Ok(stats)
}

/// Re-checks one replayed circuit through the full matrix.
///
/// # Errors
///
/// Returns the (minimized) [`Divergence`] when the replay still diverges.
pub fn run_replay(replay: &Replay, options: &FuzzOptions) -> Result<FuzzStats, Box<Divergence>> {
    let start = Instant::now();
    let mut stats = FuzzStats::default();
    match check_circuit(&replay.spec, replay.circuit_seed, &replay.exec_seeds) {
        Ok(None) => {
            stats.circuits = 1;
            stats.family_counts[replay.spec.family_index()] = 1;
            stats.executions = (PathShape::matrix().len() as u64 + 1) * replay.exec_seeds.len() as u64;
        }
        Ok(Some(found)) => {
            return Err(Box::new(report_divergence(
                options,
                u64::MAX,
                replay.spec,
                replay.circuit_seed,
                &replay.exec_seeds,
                found,
            )));
        }
        Err(error) => panic!(
            "replayed spec {} does not compile under its derived config: {error}",
            replay.spec
        ),
    }
    stats.wall = start.elapsed();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_matrix_is_2x2x2x3() {
        let shapes = PathShape::matrix();
        assert_eq!(shapes.len(), 24);
        let mut unique = shapes.clone();
        unique.dedup();
        assert_eq!(unique.len(), 24, "no duplicate shapes");
        assert!(shapes.iter().any(|s| s.warm && s.pipelined && s.cached && s.lanes == 4));
    }

    #[test]
    fn replay_token_roundtrip() {
        let divergence = Divergence {
            index: 3,
            spec: CorpusSpec::Layered { width: 5, depth: 8, entanglement_permille: 420 },
            minimized: CorpusSpec::Layered { width: 5, depth: 2, entanglement_permille: 420 },
            circuit_seed: 1234,
            exec_seed: 77,
            path: PathShape { warm: true, pipelined: true, cached: false, lanes: 2 },
            expected: ExecuteOutcome::Complete(Default::default()),
            actual: ExecuteOutcome::Complete(Default::default()),
        };
        let token = divergence.replay_token();
        assert_eq!(token, "layered:w5,d2,e420@1234:77");
        let replay = Replay::parse(&token).unwrap();
        assert_eq!(replay.spec, divergence.minimized);
        assert_eq!(replay.circuit_seed, 1234);
        assert_eq!(replay.exec_seeds, vec![77]);
        assert!(Replay::parse("layered:w5,d2,e420").is_err());
        assert!(Replay::parse("layered:w5,d2,e420@12").is_err());
        assert!(Replay::parse("layered:w5,d2,e420@x:1").is_err());
        let multi = Replay::parse("rev:w4,g9,s1@9:1,2,3").unwrap();
        assert_eq!(multi.exec_seeds, vec![1, 2, 3]);
    }

    #[test]
    fn derived_seeds_are_stable_and_low() {
        let (c1, e1) = derive_seeds(42, 7, 3);
        let (c2, e2) = derive_seeds(42, 7, 3);
        assert_eq!((c1, &e1), (c2, &e2));
        assert!(c1 < (1 << 32));
        assert!(e1.iter().all(|&s| s < (1 << 32)));
        assert_eq!(e1.len(), 3);
        let (c3, _) = derive_seeds(42, 8, 3);
        assert_ne!(c1, c3, "indices get distinct circuit seeds");
    }

    #[test]
    fn path_labels_are_readable() {
        let path = PathShape { warm: true, pipelined: false, cached: true, lanes: 4 };
        assert_eq!(path.to_string(), "warm/serial/cached/4l");
    }
}
