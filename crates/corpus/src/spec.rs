//! [`CorpusSpec`]: the deterministic description of one corpus circuit.
//!
//! A spec plus a circuit seed is the *complete* identity of a corpus
//! circuit: [`CorpusSpec::circuit`] is a pure function of `(spec, seed)`,
//! so a failing circuit never has to travel further than its one-line
//! textual form (see [`CorpusSpec::to_token`] / [`CorpusSpec::parse`]).
//! Four families cover the workload axes the hand-written benchmarks
//! leave open:
//!
//! * **Layered CNOT+T** ([`CorpusSpec::Layered`]) — brickwork layers over
//!   a shuffled qubit order; each adjacent pair entangles with the spec's
//!   density, the rest draw from `{T, T†, H, S}`. Width, depth and
//!   entanglement density are independent knobs.
//! * **Random reversible** ([`CorpusSpec::Reversible`]) — a random
//!   `{X, CNOT, Toffoli}` program followed by rounds of *collision-aware*
//!   adjacent-gate shuffling (two neighbors may swap only when neither
//!   writes a wire the other reads, so every shuffle preserves the
//!   circuit's classical function — the sampling discipline of the
//!   obfustopia-style reversible samplers).
//! * **Ripple-carry chain** ([`CorpusSpec::RcaChain`]) — `rounds`
//!   sequential Cuccaro adder passes over one register: deep arithmetic
//!   at fixed width.
//! * **QFT adder** ([`CorpusSpec::QftAdder`]) — the Draper in-place adder
//!   (QFT, controlled-phase additions, inverse QFT): dense long-range
//!   two-qubit structure, `O(bits²)` gates.

use std::f64::consts::PI;
use std::fmt;
use std::str::FromStr;

use oneperc_circuit::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};

/// The deterministic description of one corpus circuit; see the
/// [module docs](self) for the four families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusSpec {
    /// Brickwork layers of CNOTs and `{T, T†, H, S}` singles over a
    /// shuffled qubit order.
    Layered {
        /// Qubit count (≥ 2).
        width: usize,
        /// Number of brickwork layers (≥ 1).
        depth: usize,
        /// Probability, in thousandths, that an adjacent pair of the
        /// layer's shuffled order entangles with a CNOT (0..=1000).
        /// Stored as permille so the spec's textual form round-trips
        /// exactly.
        entanglement_permille: u32,
    },
    /// A random `{X, CNOT, Toffoli}` program with collision-aware
    /// adjacent-gate shuffling.
    Reversible {
        /// Qubit count (≥ 3, so Toffolis fit).
        width: usize,
        /// Number of reversible gates before shuffling (≥ 1).
        gates: usize,
        /// Full adjacent-swap passes over the gate list; each candidate
        /// swap is taken with probability ½ and only when the two gates
        /// do not collide.
        shuffle_rounds: usize,
    },
    /// `rounds` sequential ripple-carry adder passes over an `n`-qubit
    /// register ([`oneperc_circuit::benchmarks::rca`] repeated).
    RcaChain {
        /// Total register width (≥ 4).
        qubits: usize,
        /// Sequential adder passes (≥ 1).
        rounds: usize,
    },
    /// The Draper QFT adder `|a⟩|b⟩ → |a⟩|a+b⟩` on two `bits`-qubit
    /// registers.
    QftAdder {
        /// Operand width in qubits; the circuit uses `2 × bits` qubits.
        bits: usize,
    },
}

/// Short family name, used in stats and tokens.
pub const FAMILIES: [&str; 4] = ["layered", "rev", "rcachain", "qftadder"];

impl CorpusSpec {
    /// The number of qubits a circuit of this spec occupies.
    pub fn qubits(&self) -> usize {
        match *self {
            CorpusSpec::Layered { width, .. } => width,
            CorpusSpec::Reversible { width, .. } => width,
            CorpusSpec::RcaChain { qubits, .. } => qubits,
            CorpusSpec::QftAdder { bits } => 2 * bits,
        }
    }

    /// Index of this spec's family in [`FAMILIES`].
    pub fn family_index(&self) -> usize {
        match self {
            CorpusSpec::Layered { .. } => 0,
            CorpusSpec::Reversible { .. } => 1,
            CorpusSpec::RcaChain { .. } => 2,
            CorpusSpec::QftAdder { .. } => 3,
        }
    }

    /// A monotone size proxy used by the shrinker: every candidate from
    /// [`CorpusSpec::shrink`] has a strictly smaller weight, so shrinking
    /// always terminates.
    pub fn weight(&self) -> u64 {
        match *self {
            CorpusSpec::Layered { width, depth, .. } => (width * depth) as u64,
            CorpusSpec::Reversible { width, gates, shuffle_rounds } => {
                (width + gates + shuffle_rounds) as u64
            }
            CorpusSpec::RcaChain { qubits, rounds } => (qubits * rounds) as u64,
            CorpusSpec::QftAdder { bits } => (bits * bits) as u64,
        }
    }

    /// Samples the spec for corpus index `index` under `base_seed`. Pure:
    /// the same `(base_seed, index)` always yields the same spec. The
    /// families are weighted toward the random generators (layered and
    /// reversible circuits are where structural diversity lives); sizes
    /// stay small enough that one circuit sweeps the full path matrix in
    /// milliseconds.
    pub fn sample(base_seed: u64, index: u64) -> CorpusSpec {
        let mut rng = StdRng::seed_from_u64(
            base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17),
        );
        match rng.gen_range(0..10usize) {
            0..=3 => CorpusSpec::Layered {
                width: rng.gen_range(2..10),
                depth: rng.gen_range(2..21),
                entanglement_permille: rng.gen_range(100..901) as u32,
            },
            4..=6 => CorpusSpec::Reversible {
                width: rng.gen_range(3..10),
                gates: rng.gen_range(6..61),
                shuffle_rounds: rng.gen_range(0..4),
            },
            7 | 8 => CorpusSpec::RcaChain {
                qubits: rng.gen_range(4..10),
                rounds: rng.gen_range(1..4),
            },
            _ => CorpusSpec::QftAdder { bits: rng.gen_range(2..5) },
        }
    }

    /// Builds the circuit: a pure function of `(self, seed)`. The two
    /// arithmetic families are seed-independent; the random families
    /// derive every draw from `seed` through the family's own stream.
    pub fn circuit(&self, seed: u64) -> Circuit {
        match *self {
            CorpusSpec::Layered { width, depth, entanglement_permille } => {
                layered(width, depth, entanglement_permille, seed)
            }
            CorpusSpec::Reversible { width, gates, shuffle_rounds } => {
                reversible(width, gates, shuffle_rounds, seed)
            }
            CorpusSpec::RcaChain { qubits, rounds } => rca_chain(qubits, rounds),
            CorpusSpec::QftAdder { bits } => qft_adder(bits),
        }
    }

    /// Strictly smaller variants to try while minimizing a failing spec,
    /// largest reduction first. Every candidate is valid (respects the
    /// family's minimum sizes) and has a strictly smaller
    /// [`weight`](CorpusSpec::weight).
    pub fn shrink(&self) -> Vec<CorpusSpec> {
        let mut out = Vec::new();
        match *self {
            CorpusSpec::Layered { width, depth, entanglement_permille } => {
                let e = entanglement_permille;
                if depth / 2 >= 1 && depth / 2 < depth {
                    out.push(CorpusSpec::Layered { width, depth: depth / 2, entanglement_permille: e });
                }
                if depth > 1 {
                    out.push(CorpusSpec::Layered { width, depth: depth - 1, entanglement_permille: e });
                }
                if width > 2 {
                    out.push(CorpusSpec::Layered { width: width - 1, depth, entanglement_permille: e });
                }
            }
            CorpusSpec::Reversible { width, gates, shuffle_rounds } => {
                if gates / 2 >= 1 && gates / 2 < gates {
                    out.push(CorpusSpec::Reversible { width, gates: gates / 2, shuffle_rounds });
                }
                if gates > 1 {
                    out.push(CorpusSpec::Reversible { width, gates: gates - 1, shuffle_rounds });
                }
                if shuffle_rounds > 0 {
                    out.push(CorpusSpec::Reversible { width, gates, shuffle_rounds: 0 });
                }
                if width > 3 {
                    out.push(CorpusSpec::Reversible { width: width - 1, gates, shuffle_rounds });
                }
            }
            CorpusSpec::RcaChain { qubits, rounds } => {
                if rounds / 2 >= 1 && rounds / 2 < rounds {
                    out.push(CorpusSpec::RcaChain { qubits, rounds: rounds / 2 });
                }
                if rounds > 1 {
                    out.push(CorpusSpec::RcaChain { qubits, rounds: rounds - 1 });
                }
                if qubits > 4 {
                    out.push(CorpusSpec::RcaChain { qubits: qubits - 1, rounds });
                }
            }
            CorpusSpec::QftAdder { bits } => {
                if bits > 1 {
                    out.push(CorpusSpec::QftAdder { bits: bits - 1 });
                }
            }
        }
        debug_assert!(out.iter().all(|s| s.weight() < self.weight()));
        out
    }

    /// The compact one-line form (`layered:w5,d12,e375`), parseable by
    /// [`CorpusSpec::parse`] — the spec half of a replay token.
    pub fn to_token(&self) -> String {
        self.to_string()
    }

    /// Parses the form produced by [`CorpusSpec::to_token`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the malformed part.
    pub fn parse(token: &str) -> Result<CorpusSpec, String> {
        let (family, rest) = token
            .split_once(':')
            .ok_or_else(|| format!("spec `{token}` is missing the `family:` prefix"))?;
        let mut fields = std::collections::HashMap::new();
        for part in rest.split(',') {
            let key: String = part.chars().take_while(|c| c.is_ascii_alphabetic()).collect();
            let value = &part[key.len()..];
            let value: u64 = value
                .parse()
                .map_err(|_| format!("field `{part}` of `{token}` is not `<letter><integer>`"))?;
            fields.insert(key, value);
        }
        let get = |k: &str| {
            fields
                .get(k)
                .copied()
                .ok_or_else(|| format!("spec `{token}` is missing field `{k}`"))
        };
        let spec = match family {
            "layered" => CorpusSpec::Layered {
                width: get("w")? as usize,
                depth: get("d")? as usize,
                entanglement_permille: get("e")? as u32,
            },
            "rev" => CorpusSpec::Reversible {
                width: get("w")? as usize,
                gates: get("g")? as usize,
                shuffle_rounds: get("s")? as usize,
            },
            "rcachain" => {
                CorpusSpec::RcaChain { qubits: get("q")? as usize, rounds: get("r")? as usize }
            }
            "qftadder" => CorpusSpec::QftAdder { bits: get("b")? as usize },
            other => return Err(format!("unknown corpus family `{other}`")),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the family's minimum sizes, so hand-written replay tokens
    /// fail with a message instead of a generator panic.
    pub fn validate(&self) -> Result<(), String> {
        let problem = match *self {
            CorpusSpec::Layered { width, depth, entanglement_permille } => {
                if width < 2 {
                    Some("layered width must be >= 2")
                } else if depth < 1 {
                    Some("layered depth must be >= 1")
                } else if entanglement_permille > 1000 {
                    Some("entanglement is permille: 0..=1000")
                } else {
                    None
                }
            }
            CorpusSpec::Reversible { width, gates, .. } => {
                if width < 3 {
                    Some("reversible width must be >= 3 (Toffolis need 3 wires)")
                } else if gates < 1 {
                    Some("reversible gate count must be >= 1")
                } else {
                    None
                }
            }
            CorpusSpec::RcaChain { qubits, rounds } => {
                if qubits < 4 {
                    Some("rca chain needs >= 4 qubits")
                } else if rounds < 1 {
                    Some("rca chain needs >= 1 round")
                } else {
                    None
                }
            }
            CorpusSpec::QftAdder { bits } => (bits < 1).then_some("qft adder needs >= 1 bit"),
        };
        match problem {
            Some(message) => Err(format!("{self}: {message}")),
            None => Ok(()),
        }
    }
}

impl fmt::Display for CorpusSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CorpusSpec::Layered { width, depth, entanglement_permille } => {
                write!(f, "layered:w{width},d{depth},e{entanglement_permille}")
            }
            CorpusSpec::Reversible { width, gates, shuffle_rounds } => {
                write!(f, "rev:w{width},g{gates},s{shuffle_rounds}")
            }
            CorpusSpec::RcaChain { qubits, rounds } => write!(f, "rcachain:q{qubits},r{rounds}"),
            CorpusSpec::QftAdder { bits } => write!(f, "qftadder:b{bits}"),
        }
    }
}

impl FromStr for CorpusSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CorpusSpec::parse(s)
    }
}

/// One random single-qubit gate from the layered family's `{T, T†, H, S}`
/// palette.
fn random_single<R: RngCore>(qubit: usize, rng: &mut R) -> Gate {
    match rng.gen_range(0..4usize) {
        0 => Gate::T { qubit },
        1 => Gate::Tdg { qubit },
        2 => Gate::H { qubit },
        _ => Gate::S { qubit },
    }
}

/// Layered CNOT+T generator; see [`CorpusSpec::Layered`].
pub fn layered(width: usize, depth: usize, entanglement_permille: u32, seed: u64) -> Circuit {
    assert!(width >= 2, "layered circuits need at least 2 qubits");
    assert!(entanglement_permille <= 1000, "entanglement is permille");
    let p = f64::from(entanglement_permille) / 1000.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circuit = Circuit::new(width);
    let mut order: Vec<usize> = (0..width).collect();
    for _ in 0..depth {
        order.shuffle(&mut rng);
        let mut pairs = order.chunks_exact(2);
        for pair in pairs.by_ref() {
            if rng.gen_bool(p) {
                circuit.push(Gate::Cnot { control: pair[0], target: pair[1] });
            } else {
                circuit.push(random_single(pair[0], &mut rng));
                circuit.push(random_single(pair[1], &mut rng));
            }
        }
        if let [leftover] = pairs.remainder() {
            circuit.push(random_single(*leftover, &mut rng));
        }
    }
    circuit
}

/// A reversible gate over classical wires: `target ^= AND(controls)`
/// (zero controls = X, one = CNOT, two = Toffoli).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RevGate {
    controls: [usize; 2],
    n_controls: usize,
    target: usize,
}

impl RevGate {
    fn controls(&self) -> &[usize] {
        &self.controls[..self.n_controls]
    }

    /// The obfustopia-style collision predicate: two adjacent gates may
    /// swap exactly when neither writes a wire the other reads (same
    /// targets commute — both are XOR writes — so targets alone never
    /// collide).
    fn collides(&self, other: &RevGate) -> bool {
        other.controls().contains(&self.target) || self.controls().contains(&other.target)
    }

    fn to_gate(self) -> Gate {
        match self.n_controls {
            0 => Gate::X { qubit: self.target },
            1 => Gate::Cnot { control: self.controls[0], target: self.target },
            _ => Gate::Toffoli { a: self.controls[0], b: self.controls[1], target: self.target },
        }
    }
}

/// Random reversible generator with collision-aware shuffling; see
/// [`CorpusSpec::Reversible`].
pub fn reversible(width: usize, gates: usize, shuffle_rounds: usize, seed: u64) -> Circuit {
    assert!(width >= 3, "reversible circuits need at least 3 qubits for Toffolis");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program: Vec<RevGate> = Vec::with_capacity(gates);
    for _ in 0..gates {
        // 50% CNOT, 35% Toffoli, 15% X.
        let n_controls = match rng.gen_range(0..100usize) {
            0..=49 => 1,
            50..=84 => 2,
            _ => 0,
        };
        let target = rng.gen_range(0..width);
        let mut controls = [0usize; 2];
        let mut picked = 0;
        while picked < n_controls {
            let candidate = rng.gen_range(0..width);
            if candidate != target && !controls[..picked].contains(&candidate) {
                controls[picked] = candidate;
                picked += 1;
            }
        }
        program.push(RevGate { controls, n_controls, target });
    }
    // Collision-aware shuffling: a pass proposes every adjacent swap once;
    // a swap is taken with probability ½ and only when the pair commutes,
    // so the classical function of the program is invariant under any
    // number of rounds (pinned by the corpus property suite).
    for _ in 0..shuffle_rounds {
        for i in 0..program.len().saturating_sub(1) {
            if !program[i].collides(&program[i + 1]) && rng.gen_bool(0.5) {
                program.swap(i, i + 1);
            }
        }
    }
    let mut circuit = Circuit::new(width);
    circuit.extend(program.into_iter().map(RevGate::to_gate));
    circuit
}

/// Classical simulation of a reversible (`{X, CNOT, Toffoli}`-only)
/// circuit on a basis state: the reference the shuffle-invariance
/// property checks against.
///
/// # Panics
///
/// Panics when the circuit contains a non-reversible gate or the input
/// width does not match the circuit.
pub fn simulate_reversible(circuit: &Circuit, input: &[bool]) -> Vec<bool> {
    assert_eq!(input.len(), circuit.n_qubits(), "input width mismatch");
    let mut wires = input.to_vec();
    for gate in circuit.gates() {
        match *gate {
            Gate::X { qubit } => wires[qubit] = !wires[qubit],
            Gate::Cnot { control, target } => wires[target] ^= wires[control],
            Gate::Toffoli { a, b, target } => wires[target] ^= wires[a] && wires[b],
            ref other => panic!("non-reversible gate {other} in a reversible circuit"),
        }
    }
    wires
}

/// `rounds` sequential ripple-carry adder passes over one register; see
/// [`CorpusSpec::RcaChain`].
pub fn rca_chain(qubits: usize, rounds: usize) -> Circuit {
    assert!(rounds >= 1, "an adder chain needs at least one round");
    let pass = oneperc_circuit::benchmarks::rca(qubits);
    let mut circuit = Circuit::new(qubits);
    for _ in 0..rounds {
        circuit.extend(pass.gates().iter().cloned());
    }
    circuit
}

/// The Draper QFT adder `|a⟩|b⟩ → |a⟩|a+b⟩` on `2 × bits` qubits; see
/// [`CorpusSpec::QftAdder`]. Register `a` occupies qubits `0..bits`,
/// register `b` qubits `bits..2·bits`; the QFT and its inverse bracket the
/// controlled-phase additions.
pub fn qft_adder(bits: usize) -> Circuit {
    assert!(bits >= 1, "the QFT adder needs at least 1 operand bit");
    let a = |i: usize| i;
    let b = |i: usize| bits + i;
    let phase = |distance: usize| PI / f64::from(1u32 << distance.min(30) as u32);
    let mut circuit = Circuit::new(2 * bits);
    // QFT on b (no terminal swaps, matching `benchmarks::qft`).
    for i in 0..bits {
        circuit.push(Gate::H { qubit: b(i) });
        for j in (i + 1)..bits {
            circuit.push(Gate::Cphase { control: b(j), target: b(i), theta: phase(j - i) });
        }
    }
    // Phase additions: in the Fourier basis, b_i accumulates a_j with
    // weight 2^-(j - i) for every j >= i.
    for i in 0..bits {
        for j in i..bits {
            circuit.push(Gate::Cphase { control: a(j), target: b(i), theta: phase(j - i) });
        }
    }
    // Inverse QFT on b: conjugate angles in reverse order.
    for i in (0..bits).rev() {
        for j in ((i + 1)..bits).rev() {
            circuit.push(Gate::Cphase { control: b(j), target: b(i), theta: -phase(j - i) });
        }
        circuit.push(Gate::H { qubit: b(i) });
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_pure_functions_of_spec_and_seed() {
        for index in 0..32u64 {
            let spec = CorpusSpec::sample(7, index);
            assert_eq!(spec, CorpusSpec::sample(7, index));
            let c1 = spec.circuit(11);
            let c2 = spec.circuit(11);
            assert_eq!(c1, c2, "{spec}: circuit must be pure");
            assert_eq!(c1.n_qubits(), spec.qubits());
            assert!(!c1.is_empty(), "{spec}: corpus circuits are never empty");
        }
    }

    #[test]
    fn token_roundtrip() {
        for index in 0..64u64 {
            let spec = CorpusSpec::sample(3, index);
            let token = spec.to_token();
            assert_eq!(CorpusSpec::parse(&token), Ok(spec), "token `{token}`");
        }
        assert!(CorpusSpec::parse("layered:w1,d4,e500").is_err(), "width floor enforced");
        assert!(CorpusSpec::parse("nonsense").is_err());
        assert!(CorpusSpec::parse("rev:w6,g10").is_err(), "missing field rejected");
    }

    #[test]
    fn shrink_strictly_reduces_weight_and_stays_valid() {
        for index in 0..64u64 {
            let spec = CorpusSpec::sample(5, index);
            for smaller in spec.shrink() {
                assert!(smaller.weight() < spec.weight(), "{spec} -> {smaller}");
                assert_eq!(smaller.validate(), Ok(()));
            }
        }
    }

    #[test]
    fn sampling_covers_every_family() {
        let mut seen = [false; 4];
        for index in 0..128u64 {
            seen[CorpusSpec::sample(0, index).family_index()] = true;
        }
        assert_eq!(seen, [true; 4], "128 samples must hit all four families");
    }

    #[test]
    fn layered_respects_width_and_entanglement_extremes() {
        // Full entanglement: every chunk pair is a CNOT.
        let dense = layered(6, 4, 1000, 1);
        assert!(dense.gates().iter().all(|g| matches!(g, Gate::Cnot { .. })));
        assert_eq!(dense.gates().len(), 3 * 4);
        // Zero entanglement: no CNOT at all.
        let sparse = layered(5, 3, 0, 1);
        assert!(sparse.gates().iter().all(|g| !matches!(g, Gate::Cnot { .. })));
        // Odd width: the leftover qubit gets a single-qubit gate, so every
        // layer covers all qubits.
        let mut touched = vec![false; 5];
        for g in layered(5, 1, 500, 9).gates() {
            for q in g.qubits() {
                touched[q] = true;
            }
        }
        assert!(touched.into_iter().all(|t| t));
    }

    #[test]
    fn collision_aware_shuffle_preserves_the_classical_function() {
        for seed in 0..8u64 {
            let baseline = reversible(6, 40, 0, seed);
            for rounds in [1usize, 2, 5] {
                let shuffled = reversible(6, 40, rounds, seed);
                // Shuffling with the same seed consumes extra RNG draws, but
                // the gate *multiset* and the function must be preserved.
                for input_index in 0..16u64 {
                    let input: Vec<bool> = (0..6).map(|b| (input_index >> b) & 1 == 1).collect();
                    assert_eq!(
                        simulate_reversible(&baseline, &input),
                        simulate_reversible(&shuffled, &input),
                        "seed {seed}, {rounds} shuffle rounds, input {input_index}"
                    );
                }
            }
        }
    }

    #[test]
    fn rev_gates_have_distinct_operands() {
        let c = reversible(4, 200, 2, 3);
        for g in c.gates() {
            let mut qs = g.qubits();
            qs.sort_unstable();
            qs.dedup();
            assert_eq!(qs.len(), g.qubits().len(), "{g}: operands must be distinct");
        }
    }

    #[test]
    fn rca_chain_repeats_the_single_pass() {
        let single = rca_chain(7, 1);
        assert_eq!(single, {
            let mut c = Circuit::new(7);
            c.extend(oneperc_circuit::benchmarks::rca(7).gates().iter().cloned());
            c
        });
        let triple = rca_chain(7, 3);
        assert_eq!(triple.len(), 3 * single.len());
        assert_eq!(&triple.gates()[..single.len()], single.gates());
    }

    #[test]
    fn qft_adder_adds_on_basis_states() {
        // The Draper adder is diagonal-phase magic, so a classical check
        // needs structure instead: gate count and the QFT/inverse-QFT
        // bracket being conjugate.
        let bits = 3;
        let c = qft_adder(bits);
        assert_eq!(c.n_qubits(), 2 * bits);
        let h = c.gates().iter().filter(|g| matches!(g, Gate::H { .. })).count();
        assert_eq!(h, 2 * bits, "one H per b-qubit in each QFT direction");
        let phases = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Cphase { .. }))
            .count();
        // QFT + inverse QFT: 2 * C(bits, 2); additions: bits*(bits+1)/2.
        assert_eq!(phases, bits * (bits - 1) + bits * (bits + 1) / 2);
        // The phase ladder is symmetric: summing all Cphase angles of the
        // QFT and its inverse cancels exactly.
        let bracket_sum: f64 = c
            .gates()
            .iter()
            .filter_map(|g| match *g {
                Gate::Cphase { control, theta, .. } if control >= bits => Some(theta),
                _ => None,
            })
            .sum();
        assert!(bracket_sum.abs() < 1e-12, "QFT and inverse QFT angles cancel");
    }
}
