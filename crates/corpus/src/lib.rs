//! # oneperc-corpus — structured random circuits and the determinism fuzzer
//!
//! The workspace's byte-identity guarantees (pipelined ≡ serial, warm ≡
//! cold, cached ≡ uncached, any lane count) were historically pinned on
//! four hand-written benchmarks. This crate grows the workload surface:
//!
//! - [`CorpusSpec`] — a compact, token-serializable description of a
//!   structured random circuit. Four families:
//!   - `layered` — brickwork layers of CNOT + single-qubit Clifford+T
//!     gates with a controllable entanglement density (permille of pairs
//!     that become CNOTs),
//!   - `rev` — random reversible X/CNOT/Toffoli circuits whose gate
//!     order is scrambled by a collision-aware shuffle (only
//!     commuting-adjacent gates swap, so the classical function is
//!     preserved),
//!   - `rcachain` — repeated ripple-carry adder passes over one
//!     register (multi-word arithmetic at controllable depth),
//!   - `qftadder` — the Draper QFT adder (QFT, controlled-phase
//!     additions, inverse QFT).
//! - Every circuit is a **pure function** of `(spec, seed)` — same spec
//!   and seed, byte-identical gate list, on any host.
//! - [`fuzz`] — sweeps sampled circuits through the full
//!   warm/cold × pipelined/serial × cached/uncached × 1/2/4-lane path
//!   matrix and asserts byte-identical deterministic
//!   [`ExecutionReport`](oneperc::ExecutionReport)s, shrinking any
//!   divergence to a minimal replayable reproducer.
//!
//! ## Quickstart
//!
//! ```
//! use oneperc_corpus::{fuzz, CorpusSpec};
//!
//! // A spec is a value; a circuit is a pure function of spec + seed.
//! let spec: CorpusSpec = "layered:w5,d8,e400".parse().unwrap();
//! let circuit = spec.circuit(7);
//! assert_eq!(circuit, spec.circuit(7));
//!
//! // A bounded fuzz sweep (CI runs 200+ circuits; keep doctests tiny).
//! let options = fuzz::FuzzOptions { circuits: 1, exec_seeds: 1, ..Default::default() };
//! let stats = fuzz::run_fuzz(&options).expect("no determinism divergence");
//! assert_eq!(stats.circuits + stats.skipped, 1);
//! ```
//!
//! The command-line front end is `cargo xtask fuzz-determinism`; see
//! `crates/corpus/README.md` for the replay workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod spec;

pub use fuzz::{Divergence, FuzzOptions, FuzzStats, PathShape, Replay, REPLAY_ENV};
pub use spec::{simulate_reversible, CorpusSpec, FAMILIES};
